"""Case/text generation: determinism, validity, coverage of the space."""

from repro.verify.cases import VerifyCase
from repro.verify.generate import CaseGenerator


class TestDeterminism:
    def test_same_seed_same_index_same_case(self):
        first = CaseGenerator(seed=7)
        second = CaseGenerator(seed=7)
        for index in range(50):
            assert first.case(index) == second.case(index)
            assert first.topology_text(index) == second.topology_text(index)
            assert first.config_text(index) == second.config_text(index)

    def test_indices_are_order_independent(self):
        forward = [CaseGenerator(seed=3).case(i) for i in range(20)]
        backward = [CaseGenerator(seed=3).case(i) for i in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_different_seeds_diverge(self):
        a = [CaseGenerator(seed=1).case(i) for i in range(20)]
        b = [CaseGenerator(seed=2).case(i) for i in range(20)]
        assert a != b


class TestCoverage:
    def test_all_cases_are_valid(self):
        generator = CaseGenerator(seed=11)
        for index in range(200):
            case = generator.case(index)
            assert isinstance(case, VerifyCase)
            assert case.is_valid(), case.describe()

    def test_space_is_actually_explored(self):
        generator = CaseGenerator(seed=5)
        cases = [generator.case(i) for i in range(200)]
        assert {c.dataflow for c in cases} == {"os", "ws", "is"}
        assert any(c.is_degraded for c in cases)
        assert any(not c.is_degraded for c in cases)
        assert any(not c.is_monolithic for c in cases)
        assert any(c.is_monolithic for c in cases)
        assert len({(c.array_rows, c.array_cols) for c in cases}) > 5

    def test_dims_include_divisibility_edge_cases(self):
        generator = CaseGenerator(seed=5)
        cases = [generator.case(i) for i in range(300)]
        exact = [
            c for c in cases
            if c.is_monolithic and not c.is_degraded
            and c.mapping().sr % c.array_rows == 0
            and c.mapping().sc % c.array_cols == 0
        ]
        ragged = [
            c for c in cases
            if c.is_monolithic and not c.is_degraded
            and (c.mapping().sr % c.array_rows or c.mapping().sc % c.array_cols)
        ]
        assert exact, "generator never hits the Eq. 4 exactness branch"
        assert ragged, "generator never hits edge folds"


class TestTextGeneration:
    def test_texts_are_strings_with_poison(self):
        generator = CaseGenerator(seed=9)
        topo = [generator.topology_text(i) for i in range(50)]
        conf = [generator.config_text(i) for i in range(50)]
        assert all(isinstance(t, str) for t in topo + conf)
        joined = "\n".join(topo + conf)
        assert "nan" in joined or "inf" in joined
