"""Unit tests for repro.utils.mathutils."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.mathutils import (
    ceil_div,
    factor_pairs,
    is_power_of_two,
    next_power_of_two,
    pow2_range,
    split_evenly,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(8, 2) == 4

    def test_rounds_up(self):
        assert ceil_div(7, 2) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_one_denominator(self):
        assert ceil_div(13, 1) == 13

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_float_ceiling(self, numerator, denominator):
        result = ceil_div(numerator, denominator)
        assert (result - 1) * denominator < max(numerator, 1) <= result * denominator or (
            numerator == 0 and result == 0
        )

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_is_minimal_cover(self, numerator, denominator):
        result = ceil_div(numerator, denominator)
        assert result * denominator >= numerator
        if result:
            assert (result - 1) * denominator < numerator


class TestPowersOfTwo:
    def test_is_power_of_two_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_is_power_of_two_rejects_others(self):
        for value in (0, -1, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_next_power_of_two_rounds_up(self):
        assert next_power_of_two(5) == 8

    def test_next_power_of_two_fixed_point(self):
        assert next_power_of_two(16) == 16

    def test_next_power_of_two_one(self):
        assert next_power_of_two(1) == 1

    def test_next_power_of_two_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_pow2_range_inclusive(self):
        assert pow2_range(8, 64) == [8, 16, 32, 64]

    def test_pow2_range_non_power_bounds(self):
        assert pow2_range(5, 33) == [8, 16, 32]

    def test_pow2_range_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            pow2_range(0, 8)

    @given(st.integers(1, 10**9))
    def test_next_power_of_two_properties(self, value):
        result = next_power_of_two(value)
        assert is_power_of_two(result)
        assert result >= value
        assert result // 2 < value


class TestFactorPairs:
    def test_all_pairs_of_12(self):
        assert list(factor_pairs(12)) == [(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)]

    def test_minimum_filter(self):
        assert list(factor_pairs(12, minimum=3)) == [(3, 4), (4, 3)]

    def test_prime(self):
        assert list(factor_pairs(7)) == [(1, 7), (7, 1)]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            list(factor_pairs(0))

    @given(st.integers(1, 2000))
    def test_products_are_exact(self, value):
        for a, b in factor_pairs(value):
            assert a * b == value


class TestSplitEvenly:
    def test_even_split(self):
        assert split_evenly(9, 3) == [3, 3, 3]

    def test_remainder_goes_first(self):
        assert split_evenly(10, 3) == [4, 3, 3]

    def test_more_parts_than_total(self):
        assert split_evenly(2, 4) == [1, 1, 0, 0]

    def test_zero_total(self):
        assert split_evenly(0, 3) == [0, 0, 0]

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            split_evenly(5, 0)

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError):
            split_evenly(-1, 2)

    @given(st.integers(0, 10**6), st.integers(1, 1000))
    def test_sum_and_balance(self, total, parts):
        chunks = split_evenly(total, parts)
        assert sum(chunks) == total
        assert len(chunks) == parts
        assert max(chunks) - min(chunks) <= 1
        assert chunks == sorted(chunks, reverse=True)
