"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.config.parser import dump_config
from repro.config.presets import SMALL_TEST
from repro.topology.parser import dump_topology
from repro.workloads.alexnet import alexnet


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_flags(self):
        args = build_parser().parse_args(["run", "--workload", "alexnet", "--array", "8x8"])
        assert args.workload == "alexnet"


class TestWorkloadsCommand:
    def test_lists_builtin(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "TF0" in out


class TestRunCommand:
    def test_run_builtin_layer(self, capsys):
        assert main(["run", "--workload", "TF1", "--array", "32x32"]) == 0
        out = capsys.readouterr().out
        assert "TF1" in out and "cycles" in out

    def test_run_with_partitions(self, capsys):
        assert main(["run", "--workload", "NCF0", "--array", "8x8", "--partitions", "2x2"]) == 0
        assert "2x2" in capsys.readouterr().out

    def test_run_with_files(self, tmp_path, capsys):
        config_path = dump_config(SMALL_TEST, tmp_path / "config.cfg")
        topo_path = dump_topology(alexnet(), tmp_path / "alexnet.csv")
        code = main([
            "run", "-c", str(config_path), "-t", str(topo_path),
            "-o", str(tmp_path / "out"),
        ])
        assert code == 0
        assert (tmp_path / "out" / "alexnet_report.csv").exists()

    def test_run_requires_workload_or_topology(self):
        with pytest.raises(SystemExit):
            main(["run", "--array", "8x8"])

    def test_bad_array_shape(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "TF1", "--array", "32by32"])

    def test_dataflow_override(self, capsys):
        assert main(["run", "--workload", "TF1", "--array", "16x16", "--dataflow", "ws"]) == 0
        assert "ws" in capsys.readouterr().out


class TestSearchCommand:
    def test_scaleup_search(self, capsys):
        assert main(["search", "--workload", "language-models", "--macs", "1024"]) == 0
        out = capsys.readouterr().out
        assert "optimal scale-up" in out and "best:" in out

    def test_scaleout_search(self, capsys):
        code = main(["search", "--workload", "language-models", "--macs", "4096", "--scaleout"])
        assert code == 0
        assert "scale-out" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_language_layer(self, capsys):
        assert main(["sweep", "--layer", "TF1", "--macs", "1024"]) == 0
        out = capsys.readouterr().out
        assert "partitions" in out

    def test_sweep_resnet_layer(self, capsys):
        code = main(["sweep", "--layer", "CB2a_3", "--macs", "1024", "--partitions", "1,4"])
        assert code == 0

    def test_sweep_rejects_non_pow2(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--layer", "TF1", "--macs", "1000"])

    def test_sweep_unknown_layer(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--layer", "Nope", "--macs", "1024"])
