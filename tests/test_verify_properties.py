"""Metamorphic properties and the registry contract."""

import pytest

from repro.errors import VerificationError
from repro.perf.cache import cache
from repro.verify.cases import VerifyCase
from repro.verify.properties import (
    PROPERTIES,
    check_config_text,
    check_topology_text,
    prop_cache_identity,
    prop_conservation,
    prop_monotone_array,
    prop_monotone_batch,
    prop_permutation,
    prop_serial_parallel,
    resolve_properties,
)

CASES = [
    VerifyCase(m=8, k=8, n=8, array_rows=4, array_cols=4),
    VerifyCase(m=7, k=3, n=5, dataflow="ws", array_rows=4, array_cols=2),
    VerifyCase(m=6, k=4, n=9, dataflow="is", array_rows=3, array_cols=3),
    VerifyCase(m=12, k=4, n=8, partition_rows=2, partition_cols=2),
]


class TestMetamorphicPass:
    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.describe())
    def test_conservation(self, case):
        assert prop_conservation(case) == []

    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.describe())
    def test_monotone_array(self, case):
        assert prop_monotone_array(case) == []

    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.describe())
    def test_monotone_batch(self, case):
        assert prop_monotone_batch(case) == []

    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.describe())
    def test_permutation(self, case):
        assert prop_permutation(case) == []

    def test_cache_identity(self):
        assert prop_cache_identity(CASES[0]) == []

    def test_cache_identity_restores_cache_state(self):
        was_enabled = cache.enabled
        prop_cache_identity(CASES[1])
        assert cache.enabled == was_enabled

    def test_serial_parallel(self):
        assert prop_serial_parallel() == []


class TestParserProperties:
    def test_valid_topology_passes(self):
        text = "conv1, 8, 8, 3, 3, 4, 8, 1,\n"
        assert check_topology_text(text) == []

    def test_typed_topology_error_is_fine(self):
        assert check_topology_text("just,one,field\n") == []
        assert check_topology_text("l, nan, 2, 3, 4, 5, 6, 1,\n") == []

    def test_absurd_topology_dim_is_rejected_not_accepted(self):
        huge = 2**40
        text = f"l, {huge}, 2, 3, 4, 5, 6, 1,\n"
        # The hardened parser raises TopologyError -> no violation.
        assert check_topology_text(text) == []

    def test_valid_config_passes(self):
        text = "[architecture_presets]\nArrayHeight = 8\nArrayWidth = 8\n"
        assert check_config_text(text) == []

    def test_typed_config_error_is_fine(self):
        assert check_config_text("[architecture_presets]\nArrayHeight = nan\n") == []
        assert check_config_text("not an ini at all {") == []

    def test_leaked_exception_is_a_finding(self, monkeypatch):
        import repro.verify.properties as properties

        def explode(text, name="fuzz"):
            raise ZeroDivisionError("boom")

        monkeypatch.setattr(properties, "parse_topology_text", explode)
        violations = properties.check_topology_text("x, 1, 1, 1, 1, 1, 1, 1,\n")
        assert violations and "ZeroDivisionError" in violations[0].message


class TestRegistry:
    def test_registry_names_are_stable(self):
        assert set(PROPERTIES) == {
            "models", "shape_classes", "golden", "conservation",
            "monotone_array", "monotone_batch", "permutation",
            "cache_identity", "vectorized", "serial_parallel",
            "parser_topology", "parser_config",
        }

    def test_resolve_defaults_to_everything(self):
        assert len(resolve_properties(None)) == len(PROPERTIES)

    def test_resolve_by_name(self):
        chosen = resolve_properties(["models", "golden"])
        assert [p.name for p in chosen] == ["models", "golden"]

    def test_resolve_unknown_raises(self):
        with pytest.raises(VerificationError, match="unknown property"):
            resolve_properties(["models", "nope"])

    def test_resolve_empty_selection_raises(self):
        with pytest.raises(VerificationError):
            resolve_properties(["", " "])

    def test_golden_gate_is_wired(self):
        prop = PROPERTIES["golden"]
        assert prop.applies(VerifyCase(m=4, k=4, n=4, array_rows=4, array_cols=4))
        assert not prop.applies(VerifyCase(m=500, k=500, n=500))
