"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.config.hardware import Dataflow, HardwareConfig

# Simulation-heavy property tests legitimately take long per example;
# judge them by correctness, not wall clock.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
from repro.topology.layer import ConvLayer, GemmLayer

ALL_DATAFLOWS = [
    Dataflow.OUTPUT_STATIONARY,
    Dataflow.WEIGHT_STATIONARY,
    Dataflow.INPUT_STATIONARY,
]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_config() -> HardwareConfig:
    """An 8x8 array with modest SRAM: fast to simulate exactly."""
    return HardwareConfig(
        array_rows=8,
        array_cols=8,
        ifmap_sram_kb=16,
        filter_sram_kb=16,
        ofmap_sram_kb=8,
    )


@pytest.fixture
def small_conv() -> ConvLayer:
    """A conv small enough for full trace materialization."""
    return ConvLayer(
        name="conv",
        ifmap_h=8,
        ifmap_w=8,
        filter_h=3,
        filter_w=3,
        channels=4,
        num_filters=6,
        stride=1,
    )


@pytest.fixture
def small_gemm() -> GemmLayer:
    return GemmLayer(name="gemm", m=20, k=12, n=10)


@pytest.fixture(params=ALL_DATAFLOWS, ids=[df.value for df in ALL_DATAFLOWS])
def dataflow(request) -> Dataflow:
    """Parametrize a test over all three dataflows."""
    return request.param
