"""Tests for the cross-model validation harness."""

import pytest

from repro.config.hardware import Dataflow
from repro.golden.validate import validate_configuration, validation_sweep


class TestValidateConfiguration:
    def test_divisible_case_exact(self):
        report = validate_configuration(16, 8, 16, Dataflow.OUTPUT_STATIONARY, 8, 8)
        assert report.dims_divide
        assert report.passed
        assert report.engine_cycles == report.analytical_cycles

    def test_non_divisible_case_bounded(self):
        report = validate_configuration(17, 8, 13, Dataflow.OUTPUT_STATIONARY, 8, 8)
        assert not report.dims_divide
        assert report.passed
        assert report.engine_cycles < report.analytical_cycles

    def test_all_dataflows_pass(self):
        for dataflow in Dataflow:
            assert validate_configuration(11, 7, 9, dataflow, 4, 6).passed

    def test_describe_mentions_status(self):
        report = validate_configuration(8, 4, 8, Dataflow.WEIGHT_STATIONARY, 4, 4)
        assert report.describe().startswith("[PASS]")

    def test_seed_changes_data_not_cycles(self):
        a = validate_configuration(9, 5, 7, Dataflow.OUTPUT_STATIONARY, 4, 4, seed=1)
        b = validate_configuration(9, 5, 7, Dataflow.OUTPUT_STATIONARY, 4, 4, seed=2)
        assert a.engine_cycles == b.engine_cycles
        assert a.golden_cycles == b.golden_cycles


class TestValidationSweep:
    def test_sweep_covers_all_dataflows(self):
        reports = validation_sweep(trials=3)
        dataflows = {report.dataflow for report in reports}
        assert dataflows == set(Dataflow)

    def test_sweep_all_pass(self):
        reports = validation_sweep(trials=5, max_dim=16, max_array=6)
        assert all(report.passed for report in reports)

    def test_sweep_is_deterministic(self):
        a = validation_sweep(seed=3, trials=2)
        b = validation_sweep(seed=3, trials=2)
        assert a == b
