"""Unit tests for design-space enumeration and optimal-config search."""

import pytest

from repro.analytical.runtime import scaleout_runtime
from repro.analytical.search import (
    array_shapes,
    best_scaleout,
    best_scaleup,
    partition_grids,
    search_space,
)
from repro.config.hardware import Dataflow
from repro.errors import SearchError
from repro.mapping.dims import map_layer
from repro.topology.layer import GemmLayer
from repro.workloads.language import language_layer

LAYER = GemmLayer("g", m=500, k=40, n=300)


class TestEnumeration:
    def test_pow2_shapes(self):
        shapes = array_shapes(64)
        assert shapes == [(1, 64), (2, 32), (4, 16), (8, 8), (16, 4), (32, 2), (64, 1)]

    def test_min_dim_filter(self):
        assert array_shapes(64, min_dim=8) == [(8, 8)]

    def test_non_pow2_uses_factor_pairs(self):
        assert (3, 4) in array_shapes(12)

    def test_impossible_min_dim_raises(self):
        with pytest.raises(SearchError):
            array_shapes(16, min_dim=8)

    def test_partition_grids(self):
        assert partition_grids(4) == [(1, 4), (2, 2), (4, 1)]

    def test_search_space_covers_monolithic_and_partitioned(self):
        space = search_space(LAYER, 1024, min_array_dim=8)
        partition_counts = {cand.num_partitions for cand in space}
        assert 1 in partition_counts
        assert max(partition_counts) == 1024 // 64

    def test_search_space_total_macs_constant(self):
        space = search_space(LAYER, 1024, min_array_dim=8)
        assert {cand.total_macs for cand in space} == {1024}

    def test_search_space_respects_min_dim_for_partitioned(self):
        space = search_space(LAYER, 1024, min_array_dim=8)
        for cand in space:
            if not cand.is_monolithic:
                assert cand.array_rows >= 8 and cand.array_cols >= 8

    def test_monolithic_aspect_ratios_unrestricted(self):
        space = search_space(LAYER, 1024, min_array_dim=8)
        mono_shapes = {
            (cand.array_rows, cand.array_cols) for cand in space if cand.is_monolithic
        }
        assert (1, 1024) in mono_shapes


class TestBestScaleup:
    def test_runtime_is_minimum_over_shapes(self):
        best = best_scaleup(LAYER, 256)
        mapping = map_layer(LAYER, Dataflow.OUTPUT_STATIONARY)
        for rows, cols in array_shapes(256):
            assert best.runtime <= scaleout_runtime(mapping, 1, 1, rows, cols)

    def test_is_monolithic(self):
        assert best_scaleup(LAYER, 256).is_monolithic

    def test_candidate_consistency(self):
        best = best_scaleup(LAYER, 256)
        mapping = map_layer(LAYER, Dataflow.OUTPUT_STATIONARY)
        assert best.runtime == scaleout_runtime(
            mapping, 1, 1, best.array_rows, best.array_cols
        )


class TestBestScaleout:
    def test_excludes_monolithic_by_default(self):
        best = best_scaleout(LAYER, 1024)
        assert not best.is_monolithic

    def test_never_slower_than_best_scaleup(self):
        """Fig. 10's claim, at the analytical level."""
        for macs in (2**10, 2**12, 2**14):
            up = best_scaleup(LAYER, macs)
            out = best_scaleout(LAYER, macs)
            assert out.runtime <= up.runtime

    def test_ratio_amplifies_with_macs(self):
        """Relative slowdown of monolithic grows as hardware scales."""
        layer = language_layer("TF0")
        ratios = [
            best_scaleup(layer, macs).runtime / best_scaleout(layer, macs).runtime
            for macs in (2**12, 2**14, 2**16)
        ]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 2

    def test_include_monolithic_searches_whole_space(self):
        best = best_scaleout(LAYER, 1024, include_monolithic=True)
        space = search_space(LAYER, 1024)
        assert best.runtime == min(cand.runtime for cand in space)

    def test_budget_too_small_for_partitions(self):
        with pytest.raises(SearchError):
            best_scaleout(LAYER, 64, min_array_dim=8)  # only 1 partition fits
