"""Unit + property tests for im2col tensor addressing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.dataflow.factory import engine_for
from repro.errors import TopologyError
from repro.topology.layer import ConvLayer
from repro.topology.lowering import TensorAddressLayout


def conv(ifmap=6, kernel=3, channels=2, filters=4, stride=1) -> ConvLayer:
    return ConvLayer(
        name="c", ifmap_h=ifmap, ifmap_w=ifmap, filter_h=kernel, filter_w=kernel,
        channels=channels, num_filters=filters, stride=stride,
    )


class TestCoordinates:
    def test_window_origin_walks_row_major(self):
        layout = TensorAddressLayout(conv())
        assert layout.window_origin(0) == (0, 0)
        assert layout.window_origin(1) == (0, 1)
        assert layout.window_origin(4) == (1, 0)  # ofmap_w = 4

    def test_window_origin_respects_stride(self):
        layout = TensorAddressLayout(conv(stride=2))
        assert layout.window_origin(1) == (0, 2)

    def test_element_offset_channel_minor(self):
        layout = TensorAddressLayout(conv(channels=2))
        assert layout.element_offset(0) == (0, 0, 0)
        assert layout.element_offset(1) == (0, 0, 1)
        assert layout.element_offset(2) == (0, 1, 0)
        assert layout.element_offset(6) == (1, 0, 0)  # filter_w * channels = 6

    def test_out_of_range_rejected(self):
        layout = TensorAddressLayout(conv())
        with pytest.raises(TopologyError):
            layout.window_origin(999)
        with pytest.raises(TopologyError):
            layout.element_offset(-1)
        with pytest.raises(TopologyError):
            layout.filter_addr(0, 999)


class TestAddresses:
    def test_overlapping_windows_share_ifmap_addresses(self):
        layout = TensorAddressLayout(conv(stride=1))
        # Window 0's element (0,1,ch) is window 1's element (0,0,ch).
        assert layout.ifmap_addr(0, 2) == layout.ifmap_addr(1, 0)

    def test_non_overlapping_windows_disjoint(self):
        layer = conv(ifmap=8, kernel=2, stride=2)
        layout = TensorAddressLayout(layer)
        w0 = {layout.ifmap_addr(0, e) for e in range(layer.gemm_k)}
        w1 = {layout.ifmap_addr(1, e) for e in range(layer.gemm_k)}
        assert not w0 & w1

    def test_filter_addresses_bijective(self):
        layer = conv()
        layout = TensorAddressLayout(layer)
        addrs = {
            layout.filter_addr(e, f)
            for e in range(layer.gemm_k)
            for f in range(layer.gemm_n)
        }
        assert len(addrs) == layer.gemm_k * layer.gemm_n

    def test_ofmap_addresses_bijective(self):
        layer = conv()
        layout = TensorAddressLayout(layer)
        addrs = {
            layout.ofmap_addr(w, f)
            for w in range(layer.gemm_m)
            for f in range(layer.gemm_n)
        }
        assert len(addrs) == layer.gemm_m * layer.gemm_n

    def test_offsets_apply(self):
        layout = TensorAddressLayout(conv(), ifmap_offset=100, filter_offset=200, ofmap_offset=300)
        assert layout.ifmap_addr(0, 0) == 100
        assert layout.filter_addr(0, 0) == 200
        assert layout.ofmap_addr(0, 0) == 300


class TestReuseAnalytics:
    def test_unique_pixels_dense_stride(self):
        layer = conv(ifmap=6, kernel=3, channels=2, stride=1)
        layout = TensorAddressLayout(layer)
        assert layout.unique_ifmap_pixels() == 6 * 6 * 2  # every pixel touched

    def test_unique_pixels_sparse_stride(self):
        # 2x2 kernel with stride 4 on 10x10: touches 3 blocks of 2 per axis.
        layer = conv(ifmap=10, kernel=2, channels=1, stride=4)
        layout = TensorAddressLayout(layer)
        assert layout.unique_ifmap_pixels() == 6 * 6

    def test_reuse_factor_no_overlap(self):
        layer = conv(ifmap=8, kernel=2, stride=2)
        assert TensorAddressLayout(layer).ifmap_reuse_factor() == pytest.approx(1.0)

    def test_reuse_factor_overlap(self):
        layer = conv(ifmap=6, kernel=3, stride=1)
        factor = TensorAddressLayout(layer).ifmap_reuse_factor()
        assert factor > 2  # 3x3 windows at stride 1 reuse heavily

    @settings(max_examples=40)
    @given(
        st.integers(3, 12), st.integers(1, 3), st.integers(1, 3),
        st.integers(1, 3), st.integers(1, 3),
    )
    def test_trace_unique_addresses_match_formula(self, ifmap, kernel, channels, filters, stride):
        if kernel > ifmap:
            kernel = ifmap
        layer = conv(ifmap=ifmap, kernel=kernel, channels=channels, filters=filters, stride=stride)
        layout = TensorAddressLayout(layer)
        seen = {
            layout.ifmap_addr(w, e)
            for w in range(layer.gemm_m)
            for e in range(layer.gemm_k)
        }
        assert len(seen) == layout.unique_ifmap_pixels()


class TestEngineIntegration:
    """TensorAddressLayout drops into any engine's trace generator."""

    def test_layer_trace_in_tensor_space(self, dataflow):
        layer = conv(ifmap=5, kernel=3, channels=1, filters=3)
        layout = TensorAddressLayout(layer)
        engine = engine_for(layer, dataflow, 4, 4)
        ifmap_addrs = set()
        for row in engine.layer_trace(layout):
            ifmap_addrs.update(row.ifmap_addrs)
        # The trace touches exactly the raw pixels im2col predicts.
        assert len(ifmap_addrs) == layout.unique_ifmap_pixels()

    def test_tensor_trace_shows_more_reuse_than_matrix_trace(self):
        from repro.dataflow.base import AddressLayout

        layer = conv(ifmap=6, kernel=3, channels=2, filters=4)
        engine = engine_for(layer, Dataflow.OUTPUT_STATIONARY, 4, 4)
        matrix = AddressLayout(m=layer.gemm_m, k=layer.gemm_k, n=layer.gemm_n)
        tensor = TensorAddressLayout(layer)
        matrix_unique = set()
        tensor_unique = set()
        for row in engine.layer_trace(matrix):
            matrix_unique.update(row.ifmap_addrs)
        for row in engine.layer_trace(tensor):
            tensor_unique.update(row.ifmap_addrs)
        assert len(tensor_unique) < len(matrix_unique)
