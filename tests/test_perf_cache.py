"""The simulation result cache: transparent memoization of GEMM runs.

The cache must be *semantically invisible* — every LayerResult a cached
simulator returns must equal the one a cold simulator computes — while
being observable through its counters and strictly bounded in size.
"""

from __future__ import annotations

import pytest

from repro.config.hardware import Dataflow, HardwareConfig
from repro.engine.scaleout import ScaleOutSimulator
from repro.engine.simulator import Simulator
from repro.obs import metrics
from repro.perf.cache import SimulationCache, cache, simulation_key
from repro.resilience.faultmap import FaultMap
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def _pristine_cache():
    """Each test starts (and leaves the suite) with a clean global cache."""
    cache.reset()
    yield
    cache.reset()


def _config(**overrides) -> HardwareConfig:
    base = dict(
        array_rows=8,
        array_cols=8,
        ifmap_sram_kb=16,
        filter_sram_kb=16,
        ofmap_sram_kb=8,
    )
    base.update(overrides)
    return HardwareConfig(**base)


# ----------------------------------------------------------------------
# SimulationCache mechanics
# ----------------------------------------------------------------------

def test_lru_eviction_keeps_the_most_recent_entries():
    small = SimulationCache(max_entries=2)
    small.put("a", 1)
    small.put("b", 2)
    assert small.get("a") == 1  # refresh "a": now "b" is least recent
    small.put("c", 3)
    assert len(small) == 2
    assert small.get("b") is None
    assert small.get("a") == 1
    assert small.get("c") == 3
    assert small.info()["evictions"] == 1


def test_disable_clears_and_stops_serving():
    box = SimulationCache()
    box.put("k", "v")
    box.disable()
    assert len(box) == 0
    assert box.get("k") is None
    box.put("k2", "v2")
    assert len(box) == 0  # puts are ignored while disabled
    box.enable()
    assert box.get("k") is None  # old contents did not survive
    box.put("k", "v")
    assert box.get("k") == "v"


def test_reset_restores_pristine_state():
    box = SimulationCache()
    box.put("k", "v")
    box.get("k")
    box.get("missing")
    box.disable()
    box.reset()
    assert box.enabled
    assert len(box) == 0
    info = box.info()
    assert info["hits"] == 0 and info["misses"] == 0 and info["evictions"] == 0


def test_info_reports_hit_rate():
    box = SimulationCache()
    box.put("k", "v")
    box.get("k")
    box.get("k")
    box.get("nope")
    info = box.info()
    assert info["hits"] == 2 and info["misses"] == 1
    assert info["hit_rate"] == pytest.approx(2 / 3)


def test_invalid_max_entries_rejected():
    with pytest.raises(ValueError):
        SimulationCache(max_entries=0)


# ----------------------------------------------------------------------
# Key sensitivity: everything that changes the simulation changes the key
# ----------------------------------------------------------------------

def test_key_distinguishes_every_relevant_input():
    base = _config()
    key = simulation_key(base, 8, 8, 12, 3, 4, "row")
    variants = [
        simulation_key(base, 8, 8, 13, 3, 4, "row"),
        simulation_key(base, 8, 8, 12, 5, 4, "row"),
        simulation_key(base, 8, 8, 12, 3, 7, "row"),
        simulation_key(base, 4, 8, 12, 3, 4, "row"),
        simulation_key(base, 8, 4, 12, 3, 4, "row"),
        simulation_key(base, 8, 8, 12, 3, 4, "col"),
        simulation_key(_config(dataflow=Dataflow.WEIGHT_STATIONARY), 8, 8, 12, 3, 4, "row"),
        simulation_key(_config(ifmap_sram_kb=32), 8, 8, 12, 3, 4, "row"),
        simulation_key(_config(filter_sram_kb=32), 8, 8, 12, 3, 4, "row"),
        simulation_key(_config(ofmap_sram_kb=16), 8, 8, 12, 3, 4, "row"),
        simulation_key(_config(word_bytes=2), 8, 8, 12, 3, 4, "row"),
        simulation_key(
            _config(fault_map=FaultMap(dead_pe_rows=frozenset({1}))), 8, 8, 12, 3, 4, "row"
        ),
    ]
    assert len({key, *variants}) == len(variants) + 1


def test_healthy_fault_map_aliases_no_fault_map():
    """An empty FaultMap is physically identical to None: same key."""
    healthy = _config(fault_map=FaultMap())
    bare = _config()
    assert simulation_key(healthy, 8, 8, 12, 3, 4, "row") == simulation_key(
        bare, 8, 8, 12, 3, 4, "row"
    )


def test_key_ignores_run_name():
    assert simulation_key(_config(run_name="a"), 8, 8, 2, 2, 2, "row") == simulation_key(
        _config(run_name="b"), 8, 8, 2, 2, 2, "row"
    )


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------

def test_repeated_gemm_hits_and_result_is_identical():
    sim = Simulator(_config())
    cold = sim.run_gemm(24, 9, 17)
    assert cache.info()["misses"] >= 1
    warm = sim.run_gemm(24, 9, 17)
    assert cache.info()["hits"] == 1
    assert warm == cold


def test_hit_is_relabeled_with_the_requesting_layer_name():
    sim = Simulator(_config())
    first = sim.run_gemm(24, 9, 17, name="conv1")
    second = sim.run_gemm(24, 9, 17, name="conv2")
    assert first.layer_name == "conv1"
    assert second.layer_name == "conv2"
    # Only the label differs.
    from dataclasses import replace

    assert replace(second, layer_name="conv1") == first


def test_cache_on_equals_cache_off_across_resnet50():
    """Full-topology equivalence: memoized run == memoization disabled."""
    network = get_workload("resnet50")
    config = _config(array_rows=16, array_cols=16)

    cache.disable()
    baseline = Simulator(config).run_network(network)
    assert len(cache) == 0

    cache.reset()
    memoized = Simulator(config).run_network(network)
    assert cache.info()["hits"] > 0, "ResNet-50 repeats conv shapes; must hit"
    assert memoized.layers == baseline.layers


def test_scaleout_path_shares_the_cache():
    config = _config(
        array_rows=16, array_cols=16, partition_rows=2, partition_cols=2
    )
    sim = ScaleOutSimulator(config)
    network = get_workload("resnet50")
    layer = next(iter(network))
    sim.run_layer(layer)
    misses_after_first = cache.info()["misses"]
    assert misses_after_first >= 1
    result = sim.run_layer(layer)
    info = cache.info()
    assert info["misses"] == misses_after_first
    assert info["hits"] >= 1
    assert result == sim.run_layer(layer)


def test_disabled_cache_counts_nothing_and_stores_nothing():
    cache.disable()
    sim = Simulator(_config())
    sim.run_gemm(24, 9, 17)
    sim.run_gemm(24, 9, 17)
    info = cache.info()
    assert info["hits"] == 0 and info["misses"] == 0 and info["entries"] == 0


def test_cache_counters_mirror_into_metrics():
    metrics.clear()
    metrics.enable()
    try:
        sim = Simulator(_config())
        sim.run_gemm(24, 9, 17)
        sim.run_gemm(24, 9, 17)
        counters = metrics.snapshot()["counters"]
        assert counters.get("perf.cache.misses", 0) >= 1
        assert counters.get("perf.cache.hits", 0) == 1
        # sim.* accounting is identical for fresh and cached layers.
        assert counters["sim.layers"] == 2
        assert counters["sim.cycles"] % 2 == 0
    finally:
        metrics.disable()
        metrics.clear()


def test_different_loop_orders_do_not_alias():
    config = _config()
    row = Simulator(config, loop_order="row").run_gemm(40, 6, 40)
    assert cache.info()["hits"] == 0
    col = Simulator(config, loop_order="col").run_gemm(40, 6, 40)
    assert cache.info()["hits"] == 0  # distinct keys: both were misses
    assert row.total_cycles == col.total_cycles  # order never changes runtime
