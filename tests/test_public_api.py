"""The documented public API stays importable and minimally usable."""

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestQuickstartPath:
    """The README's five-line quickstart must keep working."""

    def test_simulate_one_layer(self):
        config = repro.HardwareConfig(array_rows=16, array_cols=16)
        layer = repro.ConvLayer(
            name="conv", ifmap_h=14, ifmap_w=14, filter_h=3, filter_w=3,
            channels=16, num_filters=32, stride=1,
        )
        result = repro.Simulator(config).run_layer(layer)
        assert result.total_cycles > 0

    def test_analyze_scaling(self):
        layer = repro.language_layer("TF1")
        up = repro.best_scaleup(layer, 4096)
        out = repro.best_scaleout(layer, 4096)
        assert out.runtime <= up.runtime

    def test_error_hierarchy(self):
        assert issubclass(repro.ConfigError, repro.ReproError)
        assert issubclass(repro.DramError, repro.ReproError)
