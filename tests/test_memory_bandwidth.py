"""Unit tests for stall-free DRAM bandwidth accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.factory import engine_for_gemm
from repro.memory.bandwidth import _stall_free_bandwidths, compute_dram_traffic
from repro.memory.buffers import BufferSet

BIG_SRAM = HardwareConfig(ifmap_sram_kb=1024, filter_sram_kb=1024, ofmap_sram_kb=1024)
TINY_SRAM = HardwareConfig(ifmap_sram_kb=1, filter_sram_kb=1, ofmap_sram_kb=1)


class TestStallFreeMath:
    def test_single_fold_moves_everything_within_itself(self):
        profile = _stall_free_bandwidths([100], [40], [50])
        assert profile.peak_read_bw == 2.0
        assert profile.peak_write_bw == 0.8

    def test_prefetch_hides_behind_previous_fold(self):
        # fold 1's 60 bytes prefetch over fold 0's 30 cycles
        profile = _stall_free_bandwidths([0, 60], [0, 0], [30, 20])
        assert profile.peak_read_bw == 2.0

    def test_writes_drain_during_next_fold(self):
        profile = _stall_free_bandwidths([0, 0], [40, 0], [10, 20])
        assert profile.peak_write_bw == 2.0

    def test_final_fold_writes_counted(self):
        profile = _stall_free_bandwidths([0, 0], [0, 80], [10, 20])
        assert profile.peak_write_bw == 4.0

    def test_averages(self):
        profile = _stall_free_bandwidths([10, 30], [5, 5], [20, 20])
        assert profile.avg_read_bw == 1.0
        assert profile.avg_write_bw == 0.25
        assert profile.avg_total_bw == 1.25


class TestComputeDramTraffic:
    def engine(self, m=64, k=16, n=48):
        return engine_for_gemm(m, k, n, Dataflow.OUTPUT_STATIONARY, 8, 8)

    def test_big_buffers_move_unique_data_only(self):
        engine = self.engine()
        traffic = compute_dram_traffic(engine, BufferSet.from_config(BIG_SRAM), 1)
        assert traffic.ifmap.total_bytes == 64 * 16
        assert traffic.filter.total_bytes == 16 * 48
        assert traffic.write_bytes == 64 * 48

    def test_tiny_buffers_refetch(self):
        engine = engine_for_gemm(256, 512, 256, Dataflow.OUTPUT_STATIONARY, 8, 8)
        big = compute_dram_traffic(engine, BufferSet.from_config(BIG_SRAM), 1)
        small = compute_dram_traffic(engine, BufferSet.from_config(TINY_SRAM), 1)
        assert small.read_bytes > big.read_bytes
        # Writes are not refetched: each output leaves once under OS.
        assert small.write_bytes == big.write_bytes

    def test_cold_start_is_first_fold_reads(self):
        engine = self.engine()
        traffic = compute_dram_traffic(engine, BufferSet.from_config(BIG_SRAM), 1)
        assert traffic.cold_start_bytes == (
            traffic.ifmap.per_fold_bytes[0] + traffic.filter.per_fold_bytes[0]
        )

    def test_total_cycles_matches_engine(self):
        engine = self.engine()
        traffic = compute_dram_traffic(engine, BufferSet.from_config(BIG_SRAM), 1)
        assert traffic.total_cycles == engine.total_cycles()

    def test_word_bytes_scaling(self):
        engine = self.engine()
        one = compute_dram_traffic(engine, BufferSet.from_config(BIG_SRAM), 1)
        two = compute_dram_traffic(engine, BufferSet.from_config(BIG_SRAM), 2)
        assert two.read_bytes == 2 * one.read_bytes
        assert two.write_bytes == 2 * one.write_bytes

    @given(
        st.integers(1, 80), st.integers(1, 40), st.integers(1, 80),
        st.sampled_from(list(Dataflow)),
    )
    def test_reads_bounded_below_by_unique(self, m, k, n, dataflow):
        engine = engine_for_gemm(m, k, n, dataflow, 8, 8)
        traffic = compute_dram_traffic(engine, BufferSet.from_config(TINY_SRAM), 1)
        assert traffic.ifmap.total_bytes >= m * k
        assert traffic.filter.total_bytes >= k * n

    @given(
        st.integers(1, 80), st.integers(1, 40), st.integers(1, 80),
        st.sampled_from(list(Dataflow)),
    )
    def test_peak_at_least_average(self, m, k, n, dataflow):
        engine = engine_for_gemm(m, k, n, dataflow, 8, 8)
        traffic = compute_dram_traffic(engine, BufferSet.from_config(BIG_SRAM), 1)
        bw = traffic.bandwidth
        # Averaging over the whole run can never exceed the worst
        # per-window rate plus the cold start amortized over the run.
        assert bw.peak_read_bw >= 0
        cold_rate = traffic.cold_start_bytes / traffic.total_cycles
        assert bw.avg_read_bw <= bw.peak_read_bw + cold_rate + 1e-9
