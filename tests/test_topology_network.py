"""Unit tests for the Network container."""

import pytest

from repro.errors import TopologyError
from repro.topology.layer import GemmLayer
from repro.topology.network import Network


def build(names=("a", "b", "c")) -> Network:
    return Network("net", [GemmLayer(name, m=2, k=3, n=4) for name in names])


class TestNetwork:
    def test_len_and_iter(self):
        net = build()
        assert len(net) == 3
        assert [layer.name for layer in net] == ["a", "b", "c"]

    def test_index_by_position(self):
        assert build()[1].name == "b"

    def test_index_by_name(self):
        assert build()["c"].name == "c"

    def test_negative_index(self):
        assert build()[-1].name == "c"

    def test_contains(self):
        net = build()
        assert "a" in net
        assert "z" not in net

    def test_unknown_name_lists_layers(self):
        with pytest.raises(KeyError, match="'z'"):
            build()["z"]

    def test_layer_names_in_order(self):
        assert build().layer_names() == ["a", "b", "c"]

    def test_total_macs(self):
        assert build().total_macs == 3 * 24

    def test_subset_preserves_order(self):
        subset = build().subset(["c", "a"])
        assert subset.layer_names() == ["c", "a"]
        assert subset.name == "net-subset"

    def test_subset_custom_name(self):
        assert build().subset(["a"], name="just-a").name == "just-a"

    def test_rejects_duplicate_names(self):
        with pytest.raises(TopologyError, match="duplicate"):
            build(names=("a", "a"))

    def test_rejects_empty(self):
        with pytest.raises(TopologyError, match="no layers"):
            Network("net", [])

    def test_rejects_empty_name(self):
        with pytest.raises(TopologyError):
            Network("", [GemmLayer("a", m=1, k=1, n=1)])

    def test_describe_lists_layers(self):
        text = build().describe()
        assert "3 layers" in text
        assert "a: GEMM 2x3x4" in text
