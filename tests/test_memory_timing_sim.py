"""Tests for the event-driven double-buffer timing simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.factory import engine_for_gemm
from repro.engine.stalls import bandwidth_limited_runtime
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet
from repro.memory.timing_sim import simulate_execution


def traffic_for(m=64, k=32, n=64, kb=2, dataflow=Dataflow.OUTPUT_STATIONARY):
    config = HardwareConfig(
        array_rows=8, array_cols=8,
        ifmap_sram_kb=kb, filter_sram_kb=kb, ofmap_sram_kb=kb,
        dataflow=dataflow,
    )
    engine = engine_for_gemm(m, k, n, dataflow, 8, 8)
    return compute_dram_traffic(engine, BufferSet.from_config(config), 1)


class TestTimelineStructure:
    def test_folds_execute_in_order(self):
        timeline = simulate_execution(traffic_for(), bandwidth=8.0)
        ends = [fold.compute_end for fold in timeline.folds]
        assert ends == sorted(ends)

    def test_compute_never_starts_before_data(self):
        timeline = simulate_execution(traffic_for(), bandwidth=2.0)
        for fold in timeline.folds:
            assert fold.compute_start >= fold.data_ready - 1e-9

    def test_writeback_after_compute(self):
        timeline = simulate_execution(traffic_for(), bandwidth=2.0)
        for fold in timeline.folds:
            assert fold.writeback_end >= fold.compute_end

    def test_total_covers_last_event(self):
        timeline = simulate_execution(traffic_for(), bandwidth=2.0)
        last = timeline.folds[-1]
        assert timeline.total_cycles >= last.writeback_end - 1e-9

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            simulate_execution(traffic_for(), bandwidth=0)


class TestLimits:
    def test_converges_to_stall_free(self):
        traffic = traffic_for()
        timeline = simulate_execution(traffic, bandwidth=1e9)
        assert timeline.total_cycles == pytest.approx(traffic.total_cycles, rel=1e-6)
        assert timeline.num_stalled_folds <= 1  # only the cold start

    def test_transfer_bound_at_tiny_bandwidth(self):
        traffic = traffic_for()
        bandwidth = 0.01
        timeline = simulate_execution(traffic, bandwidth)
        assert timeline.total_cycles >= traffic.total_bytes / bandwidth * 0.99

    def test_sandwich_bounds(self):
        """Total time sits between the two obvious extremes."""
        traffic = traffic_for()
        for bandwidth in (0.5, 2.0, 8.0, 64.0):
            timeline = simulate_execution(traffic, bandwidth)
            lower = max(traffic.total_cycles, traffic.total_bytes / bandwidth)
            upper = traffic.total_cycles + traffic.total_bytes / bandwidth
            assert lower - 1e-6 <= timeline.total_cycles <= upper + 1e-6

    @settings(max_examples=25)
    @given(
        st.integers(1, 60), st.integers(1, 40), st.integers(1, 60),
        st.sampled_from(list(Dataflow)),
        st.floats(0.05, 500.0),
    )
    def test_monotone_and_bounded_for_any_layer(self, m, k, n, dataflow, bandwidth):
        traffic = traffic_for(m=m, k=k, n=n, dataflow=dataflow)
        slower = simulate_execution(traffic, bandwidth)
        faster = simulate_execution(traffic, bandwidth * 2)
        assert faster.total_cycles <= slower.total_cycles + 1e-6
        assert slower.total_cycles >= traffic.total_cycles - 1e-6


class TestAgainstClosedForm:
    """Two independent stall models must agree on the regime boundaries."""

    @settings(max_examples=25)
    @given(
        st.integers(1, 60), st.integers(1, 40), st.integers(1, 60),
        st.floats(0.1, 200.0),
    )
    def test_same_order_of_magnitude(self, m, k, n, bandwidth):
        traffic = traffic_for(m=m, k=k, n=n)
        event = simulate_execution(traffic, bandwidth)
        closed = bandwidth_limited_runtime(traffic, bandwidth)
        # Both sit in the same sandwich; they can differ by scheduling
        # detail but never by more than the serialization gap.
        upper = traffic.total_cycles + traffic.total_bytes / bandwidth
        lower = max(traffic.total_cycles, traffic.total_bytes / bandwidth)
        assert lower - 1e-6 <= event.total_cycles <= upper + 1e-6
        assert lower * 0.49 <= closed.total_cycles <= upper + 1e-6

    def test_agree_when_compute_bound(self):
        traffic = traffic_for()
        event = simulate_execution(traffic, bandwidth=1e6)
        closed = bandwidth_limited_runtime(traffic, bandwidth=1e6)
        assert event.total_cycles == pytest.approx(closed.total_cycles, rel=1e-3)

    def test_agree_when_transfer_bound(self):
        traffic = traffic_for()
        event = simulate_execution(traffic, bandwidth=0.01)
        closed = bandwidth_limited_runtime(traffic, bandwidth=0.01)
        assert event.total_cycles == pytest.approx(closed.total_cycles, rel=0.1)
