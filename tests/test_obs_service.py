"""Service observability helpers: correlation IDs and Prometheus text.

:func:`prometheus_text` is proved against its own strict parser — a
rendering bug and a parsing bug would have to cancel exactly for these
round-trips to pass.
"""

from __future__ import annotations

import pytest

from repro.errors import InstrumentKindError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.service import (
    CORRELATION_ENV,
    correlation_id_from_env,
    mangle,
    new_correlation_id,
    parse_prometheus_text,
    prometheus_text,
    sample_value,
    split_labels,
)


def enabled_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.enable()
    return registry


# ----------------------------------------------------------------------
# Correlation IDs
# ----------------------------------------------------------------------

class TestCorrelationIds:
    def test_ids_are_short_hex_and_unique(self):
        ids = {new_correlation_id() for _ in range(64)}
        assert len(ids) == 64
        for cid in ids:
            assert len(cid) == 16
            int(cid, 16)  # hex

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.delenv(CORRELATION_ENV, raising=False)
        assert correlation_id_from_env() is None
        monkeypatch.setenv(CORRELATION_ENV, "  ")
        assert correlation_id_from_env() is None
        monkeypatch.setenv(CORRELATION_ENV, "abc123")
        assert correlation_id_from_env() == "abc123"


# ----------------------------------------------------------------------
# Name handling
# ----------------------------------------------------------------------

class TestNameHandling:
    def test_split_labels(self):
        assert split_labels("sim.cycles") == ("sim.cycles", "")
        assert split_labels('job_seconds{kind="gemm"}') == (
            "job_seconds", 'kind="gemm"'
        )

    def test_split_labels_rejects_malformed(self):
        with pytest.raises(ValueError):
            split_labels('job_seconds{kind="gemm"')  # unclosed

    def test_mangle_dots_and_prefix(self):
        assert mangle("sim.cycles") == "repro_sim_cycles"
        assert mangle("a-b c", prefix="x") == "x_a_b_c"

    def test_mangle_rejects_unfixable(self):
        with pytest.raises(ValueError):
            mangle("", prefix="")


# ----------------------------------------------------------------------
# Exposition round-trips (rendered text must satisfy the strict parser)
# ----------------------------------------------------------------------

class TestPrometheusText:
    def test_counters_gauges_histograms_round_trip(self):
        registry = enabled_registry()
        registry.counter("sim.cycles").add(1234)
        registry.gauge("queue.depth").set(3)
        hist = registry.histogram("job.seconds")
        for value in (0.1, 0.2, 0.3, 0.4):
            hist.observe(value)

        text = prometheus_text(registry)
        families = parse_prometheus_text(text)

        assert families["repro_sim_cycles_total"]["type"] == "counter"
        assert sample_value(families, "repro_sim_cycles_total") == 1234
        assert sample_value(families, "repro_queue_depth") == 3
        summary = families["repro_job_seconds"]
        assert summary["type"] == "summary"
        names = {name for name, _labels, _value in summary["samples"]}
        assert "repro_job_seconds_sum" in names
        assert "repro_job_seconds_count" in names
        quantiles = {
            labels["quantile"]
            for name, labels, _value in summary["samples"]
            if name == "repro_job_seconds"
        }
        assert quantiles == {"0.5", "0.9", "0.99"}

    def test_embedded_labels_export_as_one_family(self):
        registry = enabled_registry()
        registry.histogram('serve.job_seconds{kind="gemm"}').observe(0.5)
        registry.histogram('serve.job_seconds{kind="run"}').observe(1.5)

        families = parse_prometheus_text(prometheus_text(registry))
        sums = [
            (labels, value)
            for name, labels, value in families["repro_serve_job_seconds"]["samples"]
            if name == "repro_serve_job_seconds_sum"
        ]
        assert ({"kind": "gemm"}, 0.5) in sums
        assert ({"kind": "run"}, 1.5) in sums

    def test_extras_override_registry_instruments(self):
        # The daemon mirrors its counters into the registry under the
        # same raw names; the merge must dedup, never double-export.
        registry = enabled_registry()
        registry.counter("serve.executed").add(1)  # stale mirror
        text = prometheus_text(registry, extra_counters={"serve.executed": 7})
        families = parse_prometheus_text(text)
        assert sample_value(families, "repro_serve_executed_total") == 7
        assert len(families["repro_serve_executed_total"]["samples"]) == 1

    def test_counter_does_not_double_total_suffix(self):
        registry = enabled_registry()
        registry.counter("jobs_total").add(2)
        families = parse_prometheus_text(prometheus_text(registry))
        assert sample_value(families, "repro_jobs_total") == 2

    def test_none_gauges_are_skipped(self):
        registry = enabled_registry()
        registry.gauge("maybe")  # never set
        assert "repro_maybe" not in parse_prometheus_text(prometheus_text(registry))

    def test_cross_type_mangle_collision_fails_loudly(self):
        registry = enabled_registry()
        registry.counter("queue.depth").add(1)  # -> repro_queue_depth_total
        registry.gauge("queue.depth.total").set(5)  # -> repro_queue_depth_total
        with pytest.raises(InstrumentKindError) as excinfo:
            prometheus_text(registry)
        assert isinstance(excinfo.value, ReproError)
        assert "repro_queue_depth_total" in str(excinfo.value)

    def test_build_info_style_gauge(self):
        registry = enabled_registry()
        text = prometheus_text(
            registry, extra_gauges={'build_info{version="1.0.0"}': 1}
        )
        families = parse_prometheus_text(text)
        assert sample_value(families, "repro_build_info", version="1.0.0") == 1


class TestStrictParser:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_prometheus_text("orphan 1\n")

    def test_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus_text("# TYPE a counter\n# TYPE a counter\n")

    def test_rejects_non_numeric_value(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_prometheus_text("# TYPE a gauge\na NaNsense\n")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ValueError, match="label"):
            parse_prometheus_text('# TYPE a gauge\na{k=unquoted} 1\n')

    def test_help_lines_pass_through(self):
        families = parse_prometheus_text(
            "# HELP a something\n# TYPE a gauge\na 1\n"
        )
        assert sample_value(families, "a") == 1
