"""Tests for reuse-distance and stream analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.dataflow.base import AddressLayout
from repro.dataflow.factory import engine_for_gemm
from repro.topology.layer import ConvLayer
from repro.topology.lowering import TensorAddressLayout
from repro.traceanalysis.reuse import COLD, reuse_distances, reuse_profile
from repro.traceanalysis.streams import stream_addresses, stream_stats


def naive_distances(addresses):
    """Reference O(n^2) stack-distance computation."""
    result = []
    for i, addr in enumerate(addresses):
        previous = None
        for j in range(i - 1, -1, -1):
            if addresses[j] == addr:
                previous = j
                break
        if previous is None:
            result.append(COLD)
        else:
            result.append(len(set(addresses[previous + 1 : i])))
    return result


class TestReuseDistances:
    def test_all_cold(self):
        assert reuse_distances([1, 2, 3]) == [COLD, COLD, COLD]

    def test_immediate_reuse(self):
        assert reuse_distances([1, 1]) == [COLD, 0]

    def test_one_intervening_address(self):
        assert reuse_distances([1, 2, 1]) == [COLD, COLD, 1]

    def test_duplicate_intervening_counted_once(self):
        assert reuse_distances([1, 2, 2, 1]) == [COLD, COLD, 0, 1]

    def test_classic_example(self):
        # a b c b a: a's second access saw distinct {b, c} -> 2
        assert reuse_distances("abcba") == [COLD, COLD, COLD, 1, 2]

    def test_empty_stream(self):
        assert reuse_distances([]) == []

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 12), max_size=80))
    def test_matches_naive_reference(self, addresses):
        assert reuse_distances(addresses) == naive_distances(addresses)


class TestReuseProfile:
    def test_cold_equals_unique(self):
        profile = reuse_profile([1, 2, 1, 3, 2, 1])
        assert profile.unique_addresses == 3
        assert profile.accesses == 6
        assert profile.warm == 3

    def test_lru_capacity_oracle(self):
        # Stream a b a b: distance 1 each warm access; cache of 2 hits both.
        profile = reuse_profile("abab")
        assert profile.hits_with_capacity(2) == 2
        assert profile.hits_with_capacity(1) == 0

    def test_hit_rate_monotone_in_capacity(self):
        profile = reuse_profile([1, 2, 3, 1, 2, 3, 1, 2, 3])
        rates = [profile.hit_rate(c) for c in range(0, 6)]
        assert rates == sorted(rates)

    def test_capacity_for_hit_rate(self):
        profile = reuse_profile([1, 2, 3, 1, 2, 3])
        capacity = profile.capacity_for_hit_rate(0.5)
        assert capacity is not None
        assert profile.hit_rate(capacity) >= 0.5
        assert profile.hit_rate(capacity - 1) < 0.5

    def test_unreachable_target(self):
        assert reuse_profile([1, 2, 3]).capacity_for_hit_rate(0.5) is None

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            reuse_profile([1]).capacity_for_hit_rate(0)

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100), st.integers(1, 25))
    def test_oracle_matches_lru_simulation(self, addresses, capacity):
        """hits_with_capacity must equal simulating an actual LRU cache."""
        profile = reuse_profile(addresses)
        lru: list = []
        hits = 0
        for addr in addresses:
            if addr in lru:
                hits += 1
                lru.remove(addr)
            lru.append(addr)
            if len(lru) > capacity:
                lru.pop(0)
        assert profile.hits_with_capacity(capacity) == hits


class TestStreamStats:
    def engine_and_layout(self):
        engine = engine_for_gemm(10, 6, 8, Dataflow.OUTPUT_STATIONARY, 4, 4)
        return engine, AddressLayout(m=10, k=6, n=8)

    def test_counts_match_engine(self):
        engine, layout = self.engine_and_layout()
        stats = stream_stats(engine, layout, "ifmap")
        assert stats.accesses == engine.layer_counts().ifmap_reads
        assert stats.unique_addresses == 10 * 6

    def test_reuse_ratio(self):
        engine, layout = self.engine_and_layout()
        stats = stream_stats(engine, layout, "ifmap")
        assert stats.accesses_per_address == pytest.approx(engine.plan.col_folds)

    def test_footprint(self):
        engine, layout = self.engine_and_layout()
        stats = stream_stats(engine, layout, "filter")
        assert stats.footprint == 6 * 8

    def test_unknown_stream_rejected(self):
        engine, layout = self.engine_and_layout()
        with pytest.raises(ValueError):
            stream_stats(engine, layout, "psum")

    def test_tensor_layout_shows_window_overlap(self):
        """In tensor space, a strided-1 conv's IFMAP stream has higher
        per-address reuse than in matrix space (windows share pixels)."""
        layer = ConvLayer(
            name="c", ifmap_h=6, ifmap_w=6, filter_h=3, filter_w=3,
            channels=2, num_filters=4, stride=1,
        )
        from repro.dataflow.factory import engine_for

        engine = engine_for(layer, Dataflow.OUTPUT_STATIONARY, 4, 4)
        matrix = stream_stats(engine, AddressLayout(m=layer.gemm_m, k=layer.gemm_k, n=layer.gemm_n), "ifmap")
        tensor = stream_stats(engine, TensorAddressLayout(layer), "ifmap")
        assert tensor.accesses == matrix.accesses
        assert tensor.unique_addresses < matrix.unique_addresses
        assert tensor.accesses_per_address > matrix.accesses_per_address


class TestEngineReuseIntegration:
    def test_ifmap_reuse_distance_bounded_by_working_set(self):
        """Under OS row-major, the IFMAP row-block re-streams once per
        column fold: warm reuse distances stay below the slice size."""
        engine = engine_for_gemm(16, 8, 16, Dataflow.OUTPUT_STATIONARY, 4, 4)
        layout = AddressLayout(m=16, k=8, n=16)
        profile = reuse_profile(list(stream_addresses(engine, layout, "ifmap")))
        slice_elements = 4 * 8  # rows x T
        assert profile.warm > 0
        assert max(profile.distances) < slice_elements
