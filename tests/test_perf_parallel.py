"""Multiprocess sweeps must be indistinguishable from serial ones.

``workers > 1`` routes grid points through a process pool; everything
observable — row values and order, CSV bytes, per-point statuses,
checkpoint journals, circuit-breaker skip patterns — must match a
``workers=1`` run exactly.  These tests pin that contract, plus the
safety fallbacks (non-picklable work, injected clocks) that quietly
drop back to the serial path.

All point callables live at module level so they pickle by reference.
"""

from __future__ import annotations

import contextlib
import logging
import time

import pytest

from repro.robust.checkpoint import CheckpointStore
from repro.robust.executor import execute_grid
from repro.robust.policy import ExecutionPolicy
from repro.robust.report import STATUS_CACHED, STATUS_FAILED, STATUS_OK, STATUS_SKIPPED
from repro.perf.parallel import pickle_problem
from repro.sweep import _CheckedCallable, run_sweep, run_sweep_report, sweep_to_csv

WORKERS = 2


def square(x: int) -> dict:
    return {"sq": x * x}


def square_rows(x: int) -> dict:
    return {"sq": x * x, "cube": x * x * x}


def fails_on_three(x: int) -> dict:
    if x == 3:
        raise ValueError(f"bad point {x}")
    return {"sq": x * x}


def fails_when_even(x: int) -> dict:
    if x % 2 == 0:
        raise ValueError(f"even point {x}")
    return {"sq": x * x}


def _statuses(report) -> list:
    return [record.status for record in report.records]


# ----------------------------------------------------------------------
# Serial/parallel equivalence
# ----------------------------------------------------------------------

def test_parallel_rows_and_csv_identical_to_serial(tmp_path):
    xs = list(range(12))
    serial = run_sweep(square_rows, x=xs)
    parallel = run_sweep(square_rows, x=xs, workers=WORKERS)
    assert parallel == serial
    serial_csv = sweep_to_csv(serial, tmp_path / "serial.csv")
    parallel_csv = sweep_to_csv(parallel, tmp_path / "parallel.csv")
    assert parallel_csv.read_bytes() == serial_csv.read_bytes()


def test_parallel_report_statuses_match_serial():
    xs = list(range(8))
    _, serial = run_sweep_report(square, x=xs)
    _, parallel = run_sweep_report(square, x=xs, workers=WORKERS)
    assert _statuses(parallel) == _statuses(serial)
    assert [r.params for r in parallel.records] == [r.params for r in serial.records]


def test_collect_mode_error_rows_identical_to_serial():
    xs = [1, 2, 3, 4, 5]
    serial = run_sweep(fails_on_three, skip_errors=True, x=xs)
    parallel = run_sweep(fails_on_three, skip_errors=True, x=xs, workers=WORKERS)
    assert parallel == serial
    bad = [row for row in parallel if row.get("status") == STATUS_FAILED]
    assert len(bad) == 1 and bad[0]["x"] == 3
    assert "bad point 3" in bad[0]["error"]


def test_circuit_breaker_trips_at_the_same_point_as_serial():
    xs = list(range(1, 11))  # evens 2,4 fail -> breaker trips after x=4
    policy = ExecutionPolicy(mode="collect", max_failures=2)
    _, serial = run_sweep_report(fails_when_even, policy=policy, x=xs)
    _, parallel = run_sweep_report(
        fails_when_even, policy=policy, x=xs, workers=WORKERS
    )
    assert _statuses(parallel) == _statuses(serial)
    assert _statuses(parallel) == [
        STATUS_OK, STATUS_FAILED, STATUS_OK, STATUS_FAILED,
        STATUS_SKIPPED, STATUS_SKIPPED, STATUS_SKIPPED,
        STATUS_SKIPPED, STATUS_SKIPPED, STATUS_SKIPPED,
    ]
    assert parallel.rows() == serial.rows()


def test_fail_fast_reraises_the_original_exception():
    with pytest.raises(ValueError, match="bad point 3"):
        run_sweep(
            fails_on_three,
            policy=ExecutionPolicy(mode="fail_fast"),
            x=[1, 2, 3, 4],
            workers=WORKERS,
        )


def test_parallel_resume_from_mid_sweep_checkpoint(tmp_path):
    xs = list(range(10))
    serial_journal = tmp_path / "serial.jsonl"
    parallel_journal = tmp_path / "parallel.jsonl"
    # Interrupt a serial sweep halfway: journal only the first 5 points.
    half = CheckpointStore(serial_journal)
    execute_grid(_CheckedCallable(square), [{"x": x} for x in xs[:5]], checkpoint=half)
    (tmp_path / "parallel.jsonl").write_bytes(serial_journal.read_bytes())

    _, serial = run_sweep_report(square, checkpoint=serial_journal, x=xs)
    _, parallel = run_sweep_report(
        square, checkpoint=parallel_journal, x=xs, workers=WORKERS
    )
    assert _statuses(serial) == [STATUS_CACHED] * 5 + [STATUS_OK] * 5
    assert _statuses(parallel) == _statuses(serial)
    assert parallel.rows() == serial.rows()
    # Both journals now hold all ten points, identically keyed.
    assert {e["key"] for e in CheckpointStore(parallel_journal)} == {
        e["key"] for e in CheckpointStore(serial_journal)
    }


def test_parallel_journal_replays_on_next_run(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    xs = [1, 2, 3, 4]
    first = run_sweep(square, checkpoint=journal, x=xs, workers=WORKERS)
    _, resumed = run_sweep_report(square, checkpoint=journal, x=xs, workers=WORKERS)
    assert _statuses(resumed) == [STATUS_CACHED] * len(xs)
    assert resumed.rows() == first


def test_retry_policy_applies_inside_workers(tmp_path):
    # A function that fails once per x, persisting state via the
    # filesystem so retries are observable across process boundaries.
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    policy = ExecutionPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
    rows, report = run_sweep_report(
        _FlakyOnce(str(marker_dir)), policy=policy, x=[1, 2, 3], workers=WORKERS
    )
    assert [r.status for r in report.records] == [STATUS_OK] * 3
    assert [r.attempts for r in report.records] == [2, 2, 2]
    assert rows == [{"x": x, "sq": x * x} for x in [1, 2, 3]]


class _FlakyOnce:
    """Fails the first time each point is tried, in any process."""

    def __init__(self, marker_dir: str):
        self.marker_dir = marker_dir

    def __call__(self, x: int) -> dict:
        import os

        marker = os.path.join(self.marker_dir, f"tried-{x}")
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("1")
            raise RuntimeError(f"transient failure for {x}")
        return {"sq": x * x}


# ----------------------------------------------------------------------
# Fallback behaviour
# ----------------------------------------------------------------------

@contextlib.contextmanager
def _capture_executor_warnings(caplog):
    """Capture executor warnings even when ``configure_logging`` has
    already turned off propagation on the ``repro`` logger hierarchy."""
    executor_logger = logging.getLogger("repro.robust.executor")
    executor_logger.addHandler(caplog.handler)
    try:
        with caplog.at_level(logging.WARNING, logger="repro.robust.executor"):
            yield
    finally:
        executor_logger.removeHandler(caplog.handler)


def test_unpicklable_callable_falls_back_to_serial(caplog):
    with _capture_executor_warnings(caplog):
        rows = run_sweep(lambda x: {"sq": x * x}, x=[1, 2, 3], workers=WORKERS)
    assert rows == [{"x": x, "sq": x * x} for x in [1, 2, 3]]
    assert any("executing serially instead" in r.message for r in caplog.records)


def test_injected_clock_falls_back_to_serial(caplog):
    ticks = iter(range(1000))
    with _capture_executor_warnings(caplog):
        report = execute_grid(
            _CheckedCallable(square),
            [{"x": 1}, {"x": 2}],
            clock=lambda: float(next(ticks)),
            workers=WORKERS,
        )
    assert _statuses(report) == [STATUS_OK, STATUS_OK]
    assert any("injected sleep/clock" in r.message for r in caplog.records)


def test_workers_below_one_rejected():
    with pytest.raises(ValueError, match="workers"):
        execute_grid(_CheckedCallable(square), [{"x": 1}], workers=0)


def test_pickle_problem_diagnoses_each_ingredient():
    policy = ExecutionPolicy()
    assert pickle_problem(square, [{"x": 1}], policy) is None
    assert "callable" in pickle_problem(lambda x: x, [{"x": 1}], policy)
    assert "grid points" in pickle_problem(
        square, [{"x": lambda: None}], policy
    )


def test_checked_callable_pickles_when_wrapped_fn_does():
    import pickle

    wrapped = _CheckedCallable(square)
    clone = pickle.loads(pickle.dumps(wrapped))
    assert clone(x=3) == [{"x": 3, "sq": 9}]
    with pytest.raises(Exception):
        pickle.dumps(_CheckedCallable(lambda x: {"sq": x}))


def test_parallel_timeout_policy_still_enforced():
    policy = ExecutionPolicy(mode="collect", timeout=0.2, retry_on=())
    _, report = run_sweep_report(
        _SlowOnTwo(), policy=policy, x=[1, 2, 3], workers=WORKERS
    )
    assert _statuses(report) == [STATUS_OK, STATUS_FAILED, STATUS_OK]
    assert "PointTimeoutError" in report.records[1].error


class _SlowOnTwo:
    def __call__(self, x: int) -> dict:
        if x == 2:
            time.sleep(2.0)
        return {"sq": x * x}
