"""Greedy shrinking: minimal repros, validity, budget discipline."""

from repro.verify.cases import VerifyCase
from repro.verify.shrink import shrink_case, shrink_text


class TestShrinkCase:
    def test_shrinks_dimensions_to_the_boundary(self):
        big = VerifyCase(m=64, k=32, n=48)
        small = shrink_case(big, lambda c: c.m >= 4)
        assert small.m == 4
        assert small.k == 1 and small.n == 1

    def test_drops_irrelevant_faults(self):
        case = VerifyCase(
            m=16, k=8, n=8, array_rows=4, array_cols=4,
            dead_pe_rows=(0, 1), dead_pe_cols=(2,),
        )
        small = shrink_case(case, lambda c: c.m >= 2)
        assert not small.is_degraded

    def test_keeps_the_fault_when_it_matters(self):
        case = VerifyCase(
            m=16, k=8, n=8, array_rows=4, array_cols=4, dead_pe_rows=(0, 1)
        )
        small = shrink_case(case, lambda c: len(c.dead_pe_rows) >= 1)
        assert len(small.dead_pe_rows) == 1

    def test_collapses_grid_and_resets_knobs(self):
        case = VerifyCase(
            m=8, k=8, n=8, partition_rows=4, partition_cols=4,
            word_bytes=4, loop_order="col", dataflow="ws",
            ifmap_sram_kb=256,
        )
        small = shrink_case(case, lambda c: True)
        assert small.is_monolithic
        assert small.word_bytes == 1
        assert small.loop_order == "row"
        assert small.dataflow == "os"
        assert small.ifmap_sram_kb == 64

    def test_never_returns_an_invalid_case(self):
        case = VerifyCase(
            m=8, k=8, n=8, array_rows=4, array_cols=4, dead_pe_rows=(0, 1, 2)
        )
        small = shrink_case(case, lambda c: True)
        assert small.is_valid()

    def test_result_still_fails(self):
        case = VerifyCase(m=40, k=40, n=40)
        predicate = lambda c: c.m * c.k * c.n >= 100  # noqa: E731
        small = shrink_case(case, predicate)
        assert predicate(small)
        assert small.cost < case.cost

    def test_budget_bounds_the_work(self):
        calls = []

        def predicate(candidate):
            calls.append(candidate)
            return True

        shrink_case(VerifyCase(m=1000, k=1000, n=1000), predicate, budget=5)
        assert len(calls) <= 5

    def test_crashing_predicate_counts_as_repro(self):
        case = VerifyCase(m=8, k=8, n=8)

        def explodes(candidate):
            raise RuntimeError("the bug itself crashes")

        small = shrink_case(case, explodes)
        assert small.cost < case.cost  # it still made progress


class TestShrinkText:
    def test_drops_irrelevant_lines(self):
        text = "keep-me\nnoise-1\nnoise-2\nnoise-3"
        small = shrink_text(text, lambda t: "keep-me" in t)
        assert small == "keep-me"

    def test_empty_input_is_returned_unchanged(self):
        assert shrink_text("", lambda t: True) == ""

    def test_budget_bounds_the_work(self):
        calls = []

        def predicate(candidate):
            calls.append(candidate)
            return True

        shrink_text("\n".join(f"line{i}" for i in range(100)), predicate, budget=7)
        assert len(calls) <= 7
