"""Tests for the scaling-recommendation heuristic."""

import pytest

from repro.analytical.multiworkload import WorkloadSet
from repro.analytical.recommend import recommend_configuration
from repro.errors import SearchError
from repro.topology.layer import GemmLayer
from repro.workloads.language import language_layer


@pytest.fixture
def workloads():
    return WorkloadSet(
        name="mix",
        layers=(
            language_layer("TF0"),
            language_layer("TF1"),
            GemmLayer("square", m=512, k=128, n=512),
        ),
    )


class TestSelection:
    def test_runtime_objective_minimizes_runtime(self, workloads):
        rec = recommend_configuration(workloads, 2**14, objective="runtime")
        assert rec.best.runtime == min(s.runtime for s in rec.ranking)

    def test_energy_objective_minimizes_energy(self, workloads):
        rec = recommend_configuration(workloads, 2**14, objective="energy")
        assert rec.best.energy == min(s.energy for s in rec.ranking)

    def test_objectives_can_disagree(self, workloads):
        fast = recommend_configuration(workloads, 2**14, objective="runtime")
        frugal = recommend_configuration(workloads, 2**14, objective="energy")
        # Runtime wants partitions, energy is shy of the DRAM bill.
        assert fast.candidate.num_partitions >= frugal.candidate.num_partitions

    def test_edp_between_extremes(self, workloads):
        fast = recommend_configuration(workloads, 2**14, objective="runtime")
        frugal = recommend_configuration(workloads, 2**14, objective="energy")
        balanced = recommend_configuration(workloads, 2**14, objective="edp")
        assert frugal.best.energy <= balanced.best.energy <= fast.best.energy or (
            balanced.candidate in (fast.candidate, frugal.candidate)
        )

    def test_unknown_objective_rejected(self, workloads):
        with pytest.raises(ValueError):
            recommend_configuration(workloads, 2**14, objective="vibes")

    def test_ranking_sorted_by_objective(self, workloads):
        rec = recommend_configuration(workloads, 2**14, objective="runtime")
        values = [s.runtime for s in rec.ranking]
        assert values == sorted(values)


class TestBandwidthBudget:
    def test_generous_budget_changes_nothing(self, workloads):
        free = recommend_configuration(workloads, 2**14)
        budgeted = recommend_configuration(workloads, 2**14, bandwidth_budget=1e9)
        assert budgeted.candidate == free.candidate
        assert budgeted.bandwidth_feasible

    def test_tight_budget_prefers_fewer_partitions(self, workloads):
        free = recommend_configuration(workloads, 2**14)
        tight = recommend_configuration(workloads, 2**14, bandwidth_budget=40.0)
        assert tight.best.avg_bandwidth <= 40.0 or not tight.bandwidth_feasible
        if tight.bandwidth_feasible:
            assert tight.candidate.num_partitions <= free.candidate.num_partitions

    def test_impossible_budget_flagged(self, workloads):
        rec = recommend_configuration(workloads, 2**14, bandwidth_budget=1e-6)
        assert not rec.bandwidth_feasible
        # Still returns the least-demanding option.
        assert rec.best.avg_bandwidth == min(s.avg_bandwidth for s in rec.ranking)

    def test_summary_mentions_budget(self, workloads):
        rec = recommend_configuration(workloads, 2**14, bandwidth_budget=1e-6)
        assert "EXCEEDS" in rec.summary()
        rec_ok = recommend_configuration(workloads, 2**14, bandwidth_budget=1e9)
        assert "within" in rec_ok.summary()


class TestPool:
    def test_pool_includes_both_strategies(self, workloads):
        rec = recommend_configuration(workloads, 2**14)
        partition_counts = {s.candidate.num_partitions for s in rec.ranking}
        assert 1 in partition_counts  # scale-up candidates
        assert any(count > 1 for count in partition_counts)  # scale-out

    def test_tiny_budget_still_works_without_scaleout(self):
        single = WorkloadSet(name="one", layers=(GemmLayer("g", m=64, k=16, n=64),))
        rec = recommend_configuration(single, 64, min_array_dim=8)
        assert rec.candidate.is_monolithic
