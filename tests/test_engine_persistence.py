"""Tests for result JSON persistence."""

import json

import pytest

from repro.engine.persistence import (
    SCHEMA_VERSION,
    layer_result_from_dict,
    layer_result_to_dict,
    load_run_result,
    run_result_from_dict,
    run_result_to_dict,
    save_run_result,
)
from repro.engine.simulator import Simulator
from repro.errors import ReproError
from repro.topology.layer import GemmLayer
from repro.topology.network import Network


@pytest.fixture
def run(small_config):
    net = Network("two", [GemmLayer("a", m=20, k=8, n=20), GemmLayer("b", m=10, k=4, n=10)])
    return Simulator(small_config).run_network(net)


class TestLayerRoundtrip:
    def test_bit_identical(self, run):
        original = run["a"]
        restored = layer_result_from_dict(layer_result_to_dict(original))
        assert restored == original

    def test_json_safe(self, run):
        json.dumps(layer_result_to_dict(run["a"]))  # must not raise

    def test_missing_field_reported(self, run):
        data = layer_result_to_dict(run["a"])
        del data["macs"]
        with pytest.raises(ReproError, match="missing field"):
            layer_result_from_dict(data)


class TestRunRoundtrip:
    def test_dict_roundtrip(self, run):
        restored = run_result_from_dict(run_result_to_dict(run))
        assert restored.network_name == run.network_name
        assert list(restored) == list(run)

    def test_file_roundtrip(self, run, tmp_path):
        path = save_run_result(run, tmp_path / "run.json")
        restored = load_run_result(path)
        assert list(restored) == list(run)
        assert restored.total_cycles == run.total_cycles

    def test_schema_version_stamped(self, run):
        assert run_result_to_dict(run)["schema_version"] == SCHEMA_VERSION

    def test_wrong_schema_rejected(self, run):
        data = run_result_to_dict(run)
        data["schema_version"] = 999
        with pytest.raises(ReproError, match="schema version"):
            run_result_from_dict(data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_run_result(tmp_path / "nope.json")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="malformed"):
            load_run_result(path)

    def test_derived_metrics_survive(self, run, tmp_path):
        path = save_run_result(run, tmp_path / "run.json")
        restored = load_run_result(path)
        assert restored.overall_compute_utilization == pytest.approx(
            run.overall_compute_utilization
        )
        assert restored["a"].avg_total_bw == pytest.approx(run["a"].avg_total_bw)
