"""Unit tests for per-channel DRAM scheduling."""

from repro.dram.channel import Channel
from repro.dram.request import DramAccess
from repro.dram.timing import DramTiming

TIMING = DramTiming(num_channels=1, banks_per_channel=2, row_bytes=256, line_bytes=64)

# Lines interleave across the 2 banks, so bank-0 lines sit at even
# blocks; 4 lines per row means bank 0 row 0 holds blocks {0,2,4,6}
# (addresses 0, 128, 256, 384) and row 1 starts at block 8 (512).
SAME_ROW = TIMING.line_bytes * TIMING.banks_per_channel  # 128: bank 0, row 0
NEXT_ROW = TIMING.line_bytes * TIMING.banks_per_channel * TIMING.lines_per_row  # 512


def service(requests, window=8):
    channel = Channel(TIMING, window=window)
    return channel.service(list(requests))


class TestRowPolicy:
    def test_first_access_is_a_miss(self):
        done = service([DramAccess(0, 0)])
        assert not done[0].row_hit

    def test_same_row_is_a_hit(self):
        done = service([DramAccess(0, 0), DramAccess(0, SAME_ROW)])
        assert [item.row_hit for item in done] == [False, True]

    def test_row_conflict_is_a_miss(self):
        done = service([DramAccess(0, 0), DramAccess(0, NEXT_ROW)])
        assert [item.row_hit for item in done] == [False, False]

    def test_row_hits_finish_sooner_than_conflicts(self):
        friendly = service([DramAccess(0, 0), DramAccess(0, SAME_ROW)])
        hostile = service([DramAccess(0, 0), DramAccess(0, NEXT_ROW)])
        assert max(r.finish_cycle for r in friendly) < max(r.finish_cycle for r in hostile)


class TestScheduling:
    def test_reorders_row_hits_within_window(self):
        # open row 0, then a conflicting access followed by a row hit:
        # the scheduler should serve the hit first.
        requests = [DramAccess(0, 0), DramAccess(0, NEXT_ROW), DramAccess(0, SAME_ROW)]
        done = service(requests)
        served_addresses = [item.request.address for item in done]
        assert served_addresses == [0, SAME_ROW, NEXT_ROW]

    def test_window_of_one_is_fcfs(self):
        requests = [DramAccess(0, 0), DramAccess(0, NEXT_ROW), DramAccess(0, SAME_ROW)]
        done = service(requests, window=1)
        assert [item.request.address for item in done] == [0, NEXT_ROW, SAME_ROW]

    def test_bus_serializes_transfers(self):
        done = service([DramAccess(0, 0), DramAccess(0, 64), DramAccess(0, 128)])
        finishes = sorted(item.finish_cycle for item in done)
        for earlier, later in zip(finishes, finishes[1:]):
            assert later - earlier >= TIMING.t_burst

    def test_latency_never_negative(self):
        done = service([DramAccess(5, 0), DramAccess(6, 64), DramAccess(7, 4096)])
        assert all(item.latency > 0 for item in done)

    def test_requests_not_served_before_arrival(self):
        done = service([DramAccess(100, 0)])
        assert done[0].start_cycle >= 100
