"""End-to-end tests for fault-tolerant sweeps (the ISSUE acceptance
scenarios): checkpoint resume after an interrupt, retried transients
with full per-point accounting, and invariant guards catching corrupted
simulation results inside a sweep."""

import pytest

from repro.config.presets import paper_scaling_config
from repro.engine.scaleout import simulate
from repro.errors import InvariantError
from repro.robust import (
    CheckpointStore,
    ExecutionPolicy,
    Fault,
    check_layer_result,
    inject_faults,
)
from repro.robust.faults import InjectedFault
from repro.sweep import run_sweep, run_sweep_report
from repro.topology.layer import GemmLayer

LAYER = GemmLayer("tf", m=64, k=32, n=64)


def measure(macs: int) -> dict:
    """One real grid point: simulate LAYER on a square array of ``macs``."""
    side = 1
    while side * side < macs:
        side <<= 1
    config = paper_scaling_config(side, macs // side)
    result = simulate(config, LAYER)
    return {"cycles": result.total_cycles, "dram_rd": result.dram_read_bytes}


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_without_reexecution(self, tmp_path):
        """A sweep killed mid-run resumes from its journal: completed
        points are replayed as ``cached``, only the rest execute."""
        journal = tmp_path / "sweep.jsonl"
        grid = [64, 256, 1024, 4096]

        # First run: an injected operator interrupt lands on the third point.
        interrupted = inject_faults(
            measure, Fault(kind="interrupt", when={"macs": 1024})
        )
        with pytest.raises(KeyboardInterrupt):
            run_sweep(interrupted, checkpoint=CheckpointStore(journal), macs=grid)

        # The journal holds exactly the points that finished.
        store = CheckpointStore(journal)
        assert store.completed_count == 2

        # Resume: finished points come from the journal, not the callable.
        executed = []

        def counting(macs):
            executed.append(macs)
            return measure(macs)

        rows, report = run_sweep_report(
            counting, checkpoint=CheckpointStore(journal), macs=grid
        )
        assert executed == [1024, 4096]
        assert report.cached == 2
        assert report.ok == 2
        assert len(rows) == len(grid)
        # Cached rows carry the original measurements.
        by_macs = {row["macs"]: row for row in rows}
        assert by_macs[64]["cycles"] == measure(64)["cycles"]

    def test_resumed_rows_match_uninterrupted_run(self, tmp_path):
        grid = [64, 256]
        direct = run_sweep(measure, macs=grid)
        journal = tmp_path / "sweep.jsonl"
        run_sweep(measure, checkpoint=CheckpointStore(journal), macs=grid)
        resumed = run_sweep(measure, checkpoint=CheckpointStore(journal), macs=grid)
        assert resumed == direct


class TestTransientRetries:
    def test_injected_transients_retried_to_success(self):
        """Transient failures succeed on retry and the report accounts
        for every grid point, attempts included."""
        grid = [64, 256, 1024]
        flaky = inject_faults(
            measure,
            Fault(kind="transient", when={"macs": 256}, times=2),
            Fault(kind="timeout", when={"macs": 1024}, times=1),
        )
        policy = ExecutionPolicy(max_retries=3, backoff_base=0.0, mode="collect")
        rows, report = run_sweep_report(flaky, policy=policy, macs=grid)

        assert len(report) == len(grid)
        assert report.ok == 3
        attempts = {record.params["macs"]: record.attempts for record in report}
        assert attempts == {64: 1, 256: 3, 1024: 2}
        assert all("cycles" in row for row in rows)

    def test_exhausted_point_reported_not_raised(self):
        grid = [64, 256]
        broken = inject_faults(
            measure, Fault(kind="transient", when={"macs": 256}, times=None)
        )
        policy = ExecutionPolicy(max_retries=1, backoff_base=0.0, mode="collect")
        rows, report = run_sweep_report(broken, policy=policy, macs=grid)
        assert report.ok == 1 and report.failed == 1
        (failure,) = report.failures()
        assert failure.attempts == 2
        assert "InjectedFault" in failure.error
        failed_row = [row for row in rows if row.get("status") == "failed"][0]
        assert failed_row["macs"] == 256


class TestInvariantGuardInSweep:
    def test_corrupted_cycle_count_caught(self, small_config):
        """A fault-injected cycle count is surfaced as InvariantError
        carrying both the corrupted and the analytical value."""
        layer = GemmLayer("g", m=32, k=16, n=24)
        honest = simulate(small_config, layer)

        def guarded(bump: int) -> dict:
            result = simulate(small_config, layer)
            if bump:  # fault injection: corrupt the measurement
                import dataclasses

                result = dataclasses.replace(
                    result, total_cycles=result.total_cycles + bump
                )
            check_layer_result(result, layer, small_config)
            return {"cycles": result.total_cycles}

        rows, report = run_sweep_report(
            guarded, skip_errors=True, bump=[0, 5000]
        )
        assert report.ok == 1 and report.failed == 1
        (failure,) = report.failures()
        assert failure.error.startswith("InvariantError")
        assert str(honest.total_cycles + 5000) in failure.error
        assert str(honest.total_cycles) in failure.error

    def test_fail_fast_raises_invariant_error(self, small_config):
        layer = GemmLayer("g", m=32, k=16, n=24)

        def corrupted(_point: int) -> dict:
            import dataclasses

            result = simulate(small_config, layer)
            result = dataclasses.replace(result, total_cycles=result.total_cycles * 3)
            check_layer_result(result, layer, small_config)
            return {"cycles": result.total_cycles}

        with pytest.raises(InvariantError, match="analytical"):
            run_sweep(corrupted, _point=[1])
