"""VerifyCase: construction, validity, serialization, shrink ordering."""

import pytest

from repro.errors import VerificationError
from repro.verify.cases import VerifyCase


class TestConstruction:
    def test_default_case_is_valid_and_monolithic(self):
        case = VerifyCase(m=4, k=4, n=4)
        assert case.is_valid()
        assert case.is_monolithic
        assert not case.is_degraded
        assert case.fault_map() is None

    def test_config_carries_every_knob(self):
        case = VerifyCase(
            m=6, k=3, n=5, dataflow="ws", array_rows=4, array_cols=2,
            ifmap_sram_kb=16, filter_sram_kb=8, ofmap_sram_kb=4, word_bytes=2,
        )
        config = case.config()
        assert (config.array_rows, config.array_cols) == (4, 2)
        assert config.dataflow.value == "ws"
        assert config.ifmap_sram_kb == 16
        assert config.word_bytes == 2

    def test_degraded_case_builds_fault_map(self):
        case = VerifyCase(
            m=4, k=4, n=4, array_rows=4, array_cols=4, dead_pe_rows=(1,)
        )
        assert case.is_degraded
        fault = case.fault_map()
        assert fault is not None and 1 in fault.dead_pe_rows
        assert case.config().effective_array_rows == 3

    def test_grid_case_with_dead_partition(self):
        case = VerifyCase(
            m=8, k=8, n=8, partition_rows=2, partition_cols=2,
            dead_partitions=((0, 1),),
        )
        assert not case.is_monolithic
        assert case.is_valid()
        # The scale-up counterpart drops grid-level faults.
        mono = case.scaleup_config()
        assert mono.partition_rows == mono.partition_cols == 1

    def test_layer_and_mapping_agree_on_macs(self):
        case = VerifyCase(m=5, k=7, n=3, dataflow="is")
        assert case.mapping().macs == 5 * 7 * 3


class TestValidity:
    @pytest.mark.parametrize(
        "changes",
        [
            {"m": 0},
            {"array_rows": 0},
            {"dataflow": "nope"},
            {"loop_order": "diagonal"},
            {"dead_pe_rows": (9,)},  # out of array bounds
            {"dead_partitions": ((5, 0),)},  # out of grid bounds
            {"word_bytes": 0},
        ],
    )
    def test_invalid_variants_are_rejected(self, changes):
        case = VerifyCase(m=4, k=4, n=4, array_rows=4, array_cols=4)
        assert not case.replace(**changes).is_valid()

    def test_all_array_rows_dead_is_invalid(self):
        case = VerifyCase(
            m=2, k=2, n=2, array_rows=2, array_cols=2, dead_pe_rows=(0, 1)
        )
        assert not case.is_valid()


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        case = VerifyCase(
            m=9, k=2, n=4, dataflow="ws", array_rows=3, array_cols=6,
            partition_rows=2, partition_cols=2, dead_partitions=((1, 0),),
            dead_pe_rows=(0,), loop_order="col", word_bytes=4,
        )
        assert VerifyCase.from_dict(case.to_dict()) == case

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(VerificationError):
            VerifyCase.from_dict({"m": 1, "k": 1, "n": 1, "bogus": 2})

    def test_describe_is_human_readable(self):
        text = VerifyCase(m=4, k=2, n=8, dataflow="os").describe()
        assert "4x2x8" in text and "os" in text


class TestCost:
    def test_cost_orders_simpler_cases_first(self):
        small = VerifyCase(m=2, k=2, n=2)
        big = VerifyCase(m=64, k=64, n=64)
        degraded = VerifyCase(m=2, k=2, n=2, dead_pe_rows=(0,))
        assert small.cost < big.cost
        assert small.cost < degraded.cost
