"""Unit tests for the weight-stationary engine."""

import numpy as np

from repro.config.hardware import Dataflow
from repro.dataflow.base import AddressLayout
from repro.dataflow.weight_stationary import WeightStationaryEngine


def engine(m=10, k=5, n=8, rows=4, cols=4) -> WeightStationaryEngine:
    return WeightStationaryEngine(m, k, n, rows, cols)


def single_fold(eng):
    return next(iter(eng.plan.folds()))


class TestMapping:
    def test_table3_roles(self):
        eng = engine(m=10, k=5, n=8)
        assert eng.mapping.sr == 5  # W_conv on rows
        assert eng.mapping.sc == 8  # N_filter on cols
        assert eng.mapping.t == 10  # N_ofmap in time

    def test_dataflow_tag(self):
        assert engine().dataflow is Dataflow.WEIGHT_STATIONARY


class TestCounts:
    def test_fold_counts(self):
        eng = engine(m=10, k=4, n=4, rows=4, cols=4)
        fold = single_fold(eng)
        counts = eng.fold_counts(fold)
        assert counts.filter_reads == 4 * 4  # prefill r x c
        assert counts.ifmap_reads == 4 * 10  # r x T
        assert counts.ofmap_writes == 4 * 10  # c x T

    def test_layer_filter_reads_equal_filter_matrix(self):
        # WS touches each weight exactly once per fold visit; each tile
        # belongs to exactly one fold, so totals equal the matrix size.
        eng = engine(m=10, k=9, n=7, rows=4, cols=4)
        assert eng.layer_counts().filter_reads == 9 * 7


class TestDemand:
    def test_prefill_phase_reads_weights(self):
        eng = engine(m=6, k=4, n=4, rows=4, cols=4)
        demand = eng.fold_demand(single_fold(eng))
        assert np.all(demand.filter_reads[:4] == 4)
        assert np.all(demand.filter_reads[4:] == 0)

    def test_no_ifmap_reads_during_prefill(self):
        eng = engine(m=6, k=4, n=4, rows=4, cols=4)
        demand = eng.fold_demand(single_fold(eng))
        assert np.all(demand.ifmap_reads[:4] == 0)

    def test_write_count_totals(self):
        eng = engine(m=6, k=4, n=4, rows=4, cols=4)
        demand = eng.fold_demand(single_fold(eng))
        assert int(demand.ofmap_writes.sum()) == 4 * 6  # c x T

    def test_last_cycle_has_the_final_write(self):
        eng = engine(m=6, k=4, n=4, rows=4, cols=4)
        demand = eng.fold_demand(single_fold(eng))
        assert demand.ofmap_writes[-1] == 1
        assert demand.ofmap_writes[-1] == demand.ofmap_writes[demand.cycles - 1]


class TestTrace:
    def test_prefill_feeds_bottom_weight_row_first(self):
        eng = engine(m=6, k=4, n=4, rows=4, cols=4)
        layout = AddressLayout(m=6, k=4, n=4)
        rows = list(eng.fold_trace(single_fold(eng), layout))
        assert rows[0].filter_addrs == tuple(layout.filter_addr(3, j) for j in range(4))
        assert rows[3].filter_addrs == tuple(layout.filter_addr(0, j) for j in range(4))

    def test_stream_reads_windows_in_order(self):
        eng = engine(m=6, k=4, n=4, rows=4, cols=4)
        layout = AddressLayout(m=6, k=4, n=4)
        rows = list(eng.fold_trace(single_fold(eng), layout))
        # First stream cycle (cycle r=4): row 0 reads window 0, element 0.
        assert rows[4].ifmap_addrs == (layout.ifmap_addr(0, 0),)

    def test_outputs_cover_matrix_once(self):
        eng = engine(m=6, k=9, n=7, rows=4, cols=4)
        layout = AddressLayout(m=6, k=9, n=7)
        written = []
        for row in eng.layer_trace(layout):
            written.extend(row.ofmap_addrs)
        # With folded K (9 > 4 rows), each output is written once per
        # row fold (partial sums): 3 row folds here.
        assert len(written) == eng.plan.row_folds * 6 * 7

    def test_ifmap_addresses_cover_matrix(self):
        eng = engine(m=6, k=9, n=7, rows=4, cols=4)
        layout = AddressLayout(m=6, k=9, n=7)
        seen = set()
        for row in eng.layer_trace(layout):
            seen.update(row.ifmap_addrs)
        expected = {layout.ifmap_addr(w, e) for w in range(6) for e in range(9)}
        assert seen == expected


class TestSlices:
    def test_filter_slice_unique_per_fold(self):
        eng = engine(m=10, k=9, n=9, rows=4, cols=4)
        ids = [eng.filter_slice(f).slice_id for f in eng.plan.folds()]
        assert len(ids) == len(set(ids))

    def test_ifmap_slice_shared_across_column_folds(self):
        eng = engine(m=10, k=9, n=9, rows=4, cols=4)
        folds = [f for f in eng.plan.folds() if f.row_index == 1]
        ids = {eng.ifmap_slice(f).slice_id for f in folds}
        assert len(ids) == 1

    def test_ofmap_elements_per_fold(self):
        eng = engine(m=10, k=4, n=4, rows=4, cols=4)
        fold = single_fold(eng)
        assert eng.fold_ofmap_elements(fold) == fold.cols * 10
