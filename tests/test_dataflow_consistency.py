"""Cross-view consistency properties for all dataflow engines.

The three views of one fold — totals, per-cycle demand, per-cycle
addresses — must agree exactly, for every dataflow and any geometry.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.dataflow.base import AddressLayout
from repro.dataflow.factory import engine_for_gemm

DIM = st.integers(1, 24)
ARR = st.integers(1, 9)
DATAFLOWS = st.sampled_from(list(Dataflow))


@settings(max_examples=60, deadline=None)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_demand_sums_to_counts(m, k, n, rows, cols, dataflow):
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    for fold in engine.plan.folds():
        assert engine.fold_demand(fold).totals() == engine.fold_counts(fold)


@settings(max_examples=40, deadline=None)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_trace_matches_demand_cycle_by_cycle(m, k, n, rows, cols, dataflow):
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    layout = AddressLayout(m=m, k=k, n=n)
    for fold in engine.plan.folds():
        demand = engine.fold_demand(fold)
        trace = list(engine.fold_trace(fold, layout))
        assert len(trace) == demand.cycles
        for row in trace:
            assert len(row.ifmap_addrs) == demand.ifmap_reads[row.cycle]
            assert len(row.filter_addrs) == demand.filter_reads[row.cycle]
            assert len(row.ofmap_addrs) == demand.ofmap_writes[row.cycle]


@settings(max_examples=40, deadline=None)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_trace_addresses_stay_in_their_regions(m, k, n, rows, cols, dataflow):
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    layout = AddressLayout(m=m, k=k, n=n)
    ifmap_region = range(layout.ifmap_offset, layout.ifmap_offset + m * k)
    filter_region = range(layout.filter_offset, layout.filter_offset + k * n)
    ofmap_region = range(layout.ofmap_offset, layout.ofmap_offset + m * n)
    for row in engine.layer_trace(layout):
        assert all(addr in ifmap_region for addr in row.ifmap_addrs)
        assert all(addr in filter_region for addr in row.filter_addrs)
        assert all(addr in ofmap_region for addr in row.ofmap_addrs)


@settings(max_examples=40, deadline=None)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_all_operand_addresses_are_touched(m, k, n, rows, cols, dataflow):
    """Every operand element is read at least once, outputs written."""
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    layout = AddressLayout(m=m, k=k, n=n)
    ifmap, filt, ofmap = set(), set(), set()
    for row in engine.layer_trace(layout):
        ifmap.update(row.ifmap_addrs)
        filt.update(row.filter_addrs)
        ofmap.update(row.ofmap_addrs)
    assert ifmap == {layout.ifmap_addr(i, e) for i in range(m) for e in range(k)}
    assert filt == {layout.filter_addr(e, j) for e in range(k) for j in range(n)}
    assert ofmap == {layout.ofmap_addr(i, j) for i in range(m) for j in range(n)}


@settings(max_examples=40, deadline=None)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_no_duplicate_addresses_within_a_cycle(m, k, n, rows, cols, dataflow):
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    layout = AddressLayout(m=m, k=k, n=n)
    for row in engine.layer_trace(layout):
        assert len(set(row.ifmap_addrs)) == len(row.ifmap_addrs)
        assert len(set(row.filter_addrs)) == len(row.filter_addrs)
        assert len(set(row.ofmap_addrs)) == len(row.ofmap_addrs)


@settings(max_examples=60, deadline=None)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_edge_reads_bounded_by_array_ports(m, k, n, rows, cols, dataflow):
    """At most one read per edge port per cycle: r row ports, c column
    ports (prefill uses the column ports)."""
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    for fold in engine.plan.folds():
        demand = engine.fold_demand(fold)
        assert demand.ifmap_reads.max() <= max(fold.rows, fold.cols)
        assert demand.filter_reads.max() <= max(fold.rows, fold.cols)
        assert demand.ofmap_writes.max() <= fold.cols


@settings(max_examples=60, deadline=None)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_slice_elements_bounded_by_operand(m, k, n, rows, cols, dataflow):
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    for fold in engine.plan.folds():
        assert engine.ifmap_slice(fold).elements <= m * k
        assert engine.filter_slice(fold).elements <= k * n
