"""Tests for the repro.experiments package (figure regeneration API)."""

import pytest

from repro.experiments.common import paper_partitioned_config, square_grid
from repro.experiments.fig04 import fig04_validation
from repro.experiments.fig09 import fig09a_search_space, fig09bc_aspect_sweep
from repro.experiments.fig10 import ratio_rows
from repro.experiments.fig11 import partition_sweep
from repro.experiments.fig12 import energy_optimal_partitions, energy_sweep
from repro.experiments.fig13 import loss_rows, language_workloads
from repro.experiments.registry import available_experiments, run_experiment
from repro.experiments.tables import (
    table1_config_schema,
    table2_topology_schema,
    table3_mapping,
    table4_language_dims,
)
from repro.workloads.language import language_layer


class TestCommon:
    def test_square_grid_perfect_square(self):
        assert square_grid(16) == (4, 4)

    def test_square_grid_non_square(self):
        assert square_grid(8) == (2, 4)

    def test_square_grid_one(self):
        assert square_grid(1) == (1, 1)

    def test_paper_partitioned_config(self):
        config = paper_partitioned_config(2**14, 16)
        assert config.total_macs == 2**14
        assert config.num_partitions == 16
        assert config.ifmap_sram_kb == 512  # total budget, divided later


class TestTables:
    def test_table1_rows(self):
        assert len(table1_config_schema()) == 13

    def test_table2_rows(self):
        assert len(table2_topology_schema()) == 8

    def test_table3_rows(self):
        assert {row["dataflow"] for row in table3_mapping()} == {"os", "ws", "is"}

    def test_table4_rows(self):
        assert len(table4_language_dims()) == 10


class TestFigureFunctions:
    def test_fig04_small(self):
        rows = fig04_validation(sizes=(4, 8))
        assert [row["array"] for row in rows] == ["4x4", "8x8"]
        assert all(row["sim_cycles"] == row["rtl_cycles"] for row in rows)

    def test_fig09a_small_budget(self):
        rows = fig09a_search_space(budgets=(2**10,))
        assert all(row["macs"] == 2**10 for row in rows)
        assert all(0 < row["normalized"] <= 1 for row in rows)

    def test_fig09bc_sorted_by_aspect(self):
        rows = fig09bc_aspect_sweep(2**10)
        aspects = [row["aspect_R:C"] for row in rows]
        assert aspects == sorted(aspects)

    def test_fig10_rows(self):
        rows = ratio_rows([language_layer("TF1")], budgets=(2**10,))
        assert len(rows) == 1
        assert rows[0]["ratio"] > 0

    def test_fig11_partition_sweep(self):
        rows = partition_sweep(language_layer("TF1"), 2**10, partition_counts=(1, 4))
        assert [row["partitions"] for row in rows] == [1, 4]
        assert rows[1]["cycles"] <= rows[0]["cycles"]

    def test_fig12_energy_sweep(self):
        rows = energy_sweep(language_layer("TF1"), 2**10, partition_counts=(1, 4))
        assert all(row["e_total"] > 0 for row in rows)

    def test_fig12_optima_extraction(self):
        rows = [
            {"macs": 1, "partitions": 1, "e_total": 5.0},
            {"macs": 1, "partitions": 4, "e_total": 3.0},
            {"macs": 2, "partitions": 1, "e_total": 1.0},
        ]
        assert energy_optimal_partitions(rows) == {1: 4, 2: 1}

    def test_fig13_losses(self):
        rows = loss_rows(language_workloads(), budgets=(2**10,), scaleout=False)
        assert min(row["perf_loss"] for row in rows) == 1.0


class TestRegistry:
    def test_all_listed_experiments_have_builders(self):
        names = available_experiments()
        assert "fig4" in names and "table4" in names

    def test_run_experiment_dispatch(self):
        rows = run_experiment("table4")
        assert len(rows) == 10

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")

    @pytest.mark.parametrize("name", ["table1", "table2", "table3", "table4", "fig4"])
    def test_cheap_experiments_run(self, name):
        rows = run_experiment(name)
        assert rows and isinstance(rows[0], dict)
