"""Unit + property tests for the bandwidth-limited runtime model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.factory import engine_for_gemm
from repro.engine.stalls import bandwidth_limited_runtime, sweet_spot_bandwidth
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet


def traffic_for(m=64, k=32, n=64, rows=8, cols=8, kb=2, dataflow=Dataflow.OUTPUT_STATIONARY):
    config = HardwareConfig(
        array_rows=rows, array_cols=cols,
        ifmap_sram_kb=kb, filter_sram_kb=kb, ofmap_sram_kb=kb,
        dataflow=dataflow,
    )
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    return compute_dram_traffic(engine, BufferSet.from_config(config), 1)


class TestBandwidthLimitedRuntime:
    def test_infinite_bandwidth_approaches_stall_free(self):
        traffic = traffic_for()
        stalled = bandwidth_limited_runtime(traffic, 1e12)
        assert stalled.total_cycles == pytest.approx(traffic.total_cycles, rel=1e-6)
        assert stalled.slowdown == pytest.approx(1.0, rel=1e-6)

    def test_tiny_bandwidth_is_transfer_bound(self):
        traffic = traffic_for()
        bandwidth = 1e-3
        stalled = bandwidth_limited_runtime(traffic, bandwidth)
        # All bytes must cross the interface at that rate, minimum.
        assert stalled.total_cycles >= traffic.total_bytes / bandwidth * 0.99

    def test_never_faster_than_stall_free(self):
        traffic = traffic_for()
        for bandwidth in (0.1, 1.0, 10.0, 100.0):
            stalled = bandwidth_limited_runtime(traffic, bandwidth)
            assert stalled.total_cycles >= traffic.total_cycles

    def test_monotone_in_bandwidth(self):
        traffic = traffic_for()
        runtimes = [
            bandwidth_limited_runtime(traffic, bandwidth).total_cycles
            for bandwidth in (0.1, 0.5, 1, 2, 8, 32, 128)
        ]
        assert runtimes == sorted(runtimes, reverse=True)

    def test_stall_cycles_accounting(self):
        traffic = traffic_for()
        stalled = bandwidth_limited_runtime(traffic, 1.0)
        assert stalled.stall_cycles == pytest.approx(
            stalled.total_cycles - stalled.compute_cycles
        )

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            bandwidth_limited_runtime(traffic_for(), 0)

    @settings(max_examples=30)
    @given(
        st.integers(1, 60), st.integers(1, 40), st.integers(1, 60),
        st.sampled_from(list(Dataflow)),
        st.floats(0.01, 1000.0),
    )
    def test_bounds_hold_for_any_layer(self, m, k, n, dataflow, bandwidth):
        traffic = traffic_for(m=m, k=k, n=n, dataflow=dataflow)
        stalled = bandwidth_limited_runtime(traffic, bandwidth)
        assert stalled.total_cycles >= traffic.total_cycles
        assert stalled.total_cycles >= traffic.total_bytes / bandwidth * 0.5


class TestSweetSpotBandwidth:
    def test_found_bandwidth_meets_tolerance(self):
        traffic = traffic_for()
        bandwidth = sweet_spot_bandwidth(traffic, tolerance=0.05)
        stalled = bandwidth_limited_runtime(traffic, bandwidth)
        assert stalled.slowdown <= 1.05 + 1e-6

    def test_found_bandwidth_is_tight(self):
        traffic = traffic_for()
        bandwidth = sweet_spot_bandwidth(traffic, tolerance=0.05)
        # Halving it must violate the tolerance: the answer is not slack.
        worse = bandwidth_limited_runtime(traffic, bandwidth / 2)
        assert worse.slowdown > 1.05

    def test_tighter_tolerance_needs_more_bandwidth(self):
        traffic = traffic_for()
        loose = sweet_spot_bandwidth(traffic, tolerance=0.2)
        tight = sweet_spot_bandwidth(traffic, tolerance=0.01)
        assert tight >= loose

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            sweet_spot_bandwidth(traffic_for(), tolerance=0)
