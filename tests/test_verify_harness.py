"""The harness end to end: clean runs, seeded bugs, mutation smoke."""

import unittest.mock as mock

import pytest

import repro.analytical.runtime as analytical_runtime
from repro.errors import VerificationError
from repro.verify.corpus import load_bundle, load_corpus, replay_bundle
from repro.verify.harness import run_verify
from repro.verify.mutation import MUTANTS, run_mutation_smoke


class TestCleanRun:
    def test_head_passes_clean(self, tmp_path):
        report = run_verify(
            budget=20.0, seed=7, max_cases=25, corpus_dir=tmp_path
        )
        assert report.passed, report.summary()
        assert report.cases_run == 25
        assert report.bundles == []
        assert load_corpus(tmp_path) == []

    def test_every_property_gets_scheduled(self):
        report = run_verify(budget=20.0, seed=3, max_cases=40)
        assert report.checks_by_prop["models"] == 40
        assert report.checks_by_prop["serial_parallel"] == 1
        assert report.checks_by_prop["parser_topology"] == 40
        assert report.checks_by_prop.get("golden", 0) >= 1

    def test_props_selection_is_honoured(self):
        report = run_verify(
            budget=10.0, seed=0, max_cases=5, props=["shape_classes"]
        )
        assert set(report.checks_by_prop) == {"shape_classes"}

    def test_seeded_runs_are_reproducible(self):
        first = run_verify(budget=10.0, seed=42, max_cases=10)
        second = run_verify(budget=10.0, seed=42, max_cases=10)
        assert first.checks_by_prop == second.checks_by_prop
        assert first.violations == second.violations == []

    def test_nonpositive_budget_is_rejected(self):
        with pytest.raises(VerificationError, match="budget"):
            run_verify(budget=0.0)

    def test_unknown_prop_is_rejected(self):
        with pytest.raises(VerificationError, match="unknown property"):
            run_verify(budget=5.0, props=["nope"])


class TestSeededBug:
    def test_off_by_one_is_caught_shrunk_and_bundled(self, tmp_path):
        real = analytical_runtime.fold_runtime
        with mock.patch.object(
            analytical_runtime, "fold_runtime",
            lambda r, c, t: real(r, c, t) + 1,
        ):
            report = run_verify(
                budget=30.0, seed=7, max_cases=15,
                props=["models"], corpus_dir=tmp_path,
            )
            assert not report.passed
            assert report.bundles

            # The bundle replays the defect while the bug is live...
            bundle = load_bundle(report.bundles[0])
            assert replay_bundle(bundle)

        # ...and comes back clean once the bug is fixed.
        assert replay_bundle(bundle) == []

    def test_shrinking_minimizes_the_case(self, tmp_path):
        real = analytical_runtime.fold_runtime
        with mock.patch.object(
            analytical_runtime, "fold_runtime",
            lambda r, c, t: real(r, c, t) + 1,
        ):
            report = run_verify(
                budget=30.0, seed=7, max_cases=10,
                props=["models"], corpus_dir=tmp_path,
            )
        assert report.violations
        smallest = min(v.case.cost for v in report.violations if v.case)
        # The off-by-one reproduces on a trivial dividing case, so the
        # shrinker must land well below the generator's typical sizes.
        assert smallest <= VerifyCaseCostCeiling.TRIVIAL

    def test_no_shrink_keeps_the_original_case(self, tmp_path):
        real = analytical_runtime.fold_runtime
        with mock.patch.object(
            analytical_runtime, "fold_runtime",
            lambda r, c, t: real(r, c, t) + 1,
        ):
            report = run_verify(
                budget=30.0, seed=7, max_cases=10,
                props=["models"], corpus_dir=tmp_path, shrink=False,
            )
        assert report.violations


class VerifyCaseCostCeiling:
    #: m*k*n + array area + grid for a 1x1x1 GEMM on a tiny array.
    TRIVIAL = 40


class TestMutationSmoke:
    def test_all_registered_mutants_are_killed(self, tmp_path):
        report = run_mutation_smoke(seed=7, corpus_dir=tmp_path)
        assert report.passed
        assert set(report.kills) == {m.name for m in MUTANTS}
        assert report.survivors == []
        for name in report.kills:
            assert report.bundles[name], f"{name} killed without a bundle"

    def test_surviving_mutant_fails_the_smoke(self, tmp_path):
        import repro.verify.mutation as mutation

        harmless = mutation.Mutant(
            name="harmless",
            install=lambda: mock.patch.dict({}, {}),  # changes nothing
            props=("models",),
            doc="a mutant that mutates nothing and must survive",
        )
        with mock.patch.object(mutation, "MUTANTS", (harmless,)):
            with pytest.raises(VerificationError, match="harmless"):
                mutation.run_mutation_smoke(seed=7, corpus_dir=tmp_path)
