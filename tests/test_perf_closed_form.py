"""Closed-form fold aggregation must match the exhaustive fold walk.

The perf layer replaces O(F_R x F_C) Python loops with shape-class
arithmetic (at most four distinct fold shapes).  These tests pin the
equivalence *exactly* — integer totals and IEEE floats alike — against
brute-force references that iterate every fold, across all engines,
loop orders, edge-remainder geometries and buffer regimes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.dataflow.base import SramCounts
from repro.dataflow.input_stationary import InputStationaryEngine
from repro.dataflow.output_stationary import OutputStationaryEngine
from repro.dataflow.output_stationary_dataplane import OutputStationaryDataPlaneEngine
from repro.dataflow.weight_stationary import WeightStationaryEngine
from repro.mapping.folds import plan_folds
from repro.mapping.dims import OperandMapping
from repro.config.hardware import Dataflow
from repro.memory.bandwidth import (
    _closed_form_traffic,
    _iterative_traffic,
    compute_dram_traffic,
)
from repro.memory.buffers import BufferSet, DoubleBuffer

ENGINES = [
    OutputStationaryEngine,
    WeightStationaryEngine,
    InputStationaryEngine,
    OutputStationaryDataPlaneEngine,
]

#: (m, k, n) shapes covering exact-fit, remainder-edge and degenerate cases.
SHAPES = [(1, 1, 1), (7, 3, 5), (16, 16, 16), (33, 9, 17), (5, 200, 3), (31, 32, 33)]
ARRAYS = [(4, 4), (3, 5), (16, 16), (1, 1), (32, 8)]


def _buffers(ifmap: int, filt: int, ofmap: int) -> BufferSet:
    return BufferSet(
        ifmap=DoubleBuffer("ifmap", ifmap),
        filter=DoubleBuffer("filter", filt),
        ofmap=DoubleBuffer("ofmap", ofmap),
    )


# ----------------------------------------------------------------------
# FoldPlan shape classes
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sr,sc,t,rows,cols", [
    (1, 1, 1, 1, 1),
    (8, 8, 3, 4, 4),
    (9, 7, 2, 4, 4),
    (100, 1, 5, 8, 8),
    (5, 5, 5, 16, 16),
])
def test_shape_classes_partition_the_fold_grid(sr, sc, t, rows, cols):
    mapping = OperandMapping(sr=sr, sc=sc, t=t, dataflow=Dataflow.OUTPUT_STATIONARY)
    plan = plan_folds(mapping, rows, cols)
    classes = plan.shape_classes()
    assert sum(count for _, count in classes) == plan.num_folds
    # Multiplicity-weighted shapes must equal the exhaustive multiset.
    from collections import Counter

    exhaustive = Counter((f.rows, f.cols) for f in plan.folds())
    closed = Counter()
    for fold, count in classes:
        closed[(fold.rows, fold.cols)] += count
    assert closed == exhaustive
    # Representatives carry genuine grid coordinates.
    for fold, _ in classes:
        assert fold.rows == plan.fold_rows(fold.row_index)
        assert fold.cols == plan.fold_cols(fold.col_index)
        assert fold.row_offset == fold.row_index * rows
        assert fold.col_offset == fold.col_index * cols


@given(
    sr=st.integers(1, 200),
    sc=st.integers(1, 200),
    rows=st.integers(1, 40),
    cols=st.integers(1, 40),
)
def test_row_col_classes_cover_all_folds(sr, sc, rows, cols):
    mapping = OperandMapping(sr=sr, sc=sc, t=3, dataflow=Dataflow.OUTPUT_STATIONARY)
    plan = plan_folds(mapping, rows, cols)
    assert sum(count for _, count, _ in plan.row_classes()) == plan.row_folds
    assert sum(count for _, count, _ in plan.col_classes()) == plan.col_folds
    assert sum(ext * cnt for ext, cnt, _ in plan.row_classes()) == sum(
        plan.fold_rows(i) for i in range(plan.row_folds)
    )
    assert sum(ext * cnt for ext, cnt, _ in plan.col_classes()) == sum(
        plan.fold_cols(i) for i in range(plan.col_folds)
    )


# ----------------------------------------------------------------------
# Engine aggregates
# ----------------------------------------------------------------------

@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("array", ARRAYS)
def test_engine_aggregates_match_brute_force(engine_cls, shape, array):
    m, k, n = shape
    engine = engine_cls(m, k, n, *array)
    ref_cycles = sum(engine.fold_cycles(f) for f in engine.plan.folds())
    ref_counts = SramCounts()
    for fold in engine.plan.folds():
        ref_counts = ref_counts + engine.fold_counts(fold)
    folds = list(engine.plan.folds())
    ref_util = sum(f.mapped_pes for f in folds) / (array[0] * array[1] * len(folds))
    assert engine.total_cycles() == ref_cycles
    assert engine.layer_counts() == ref_counts
    assert engine.mapping_utilization() == ref_util
    assert engine.compute_utilization() == engine.compute_utilization(ref_cycles)
    assert engine.plan.total_mapped_pe_cycles == engine.layer_macs


def test_shape_uniform_opt_out_restores_exhaustive_walk():
    class PositionDependent(OutputStationaryEngine):
        shape_uniform_folds = False

        def fold_cycles(self, fold):
            # Depends on position, not just shape: closed form would lie.
            return super().fold_cycles(fold) + fold.row_index

    engine = PositionDependent(33, 4, 17, 8, 8)
    ref = sum(engine.fold_cycles(f) for f in engine.plan.folds())
    assert engine.total_cycles() == ref


def test_sram_counts_scalar_multiplication():
    counts = SramCounts(ifmap_reads=3, filter_reads=5, ofmap_writes=7)
    assert counts * 4 == SramCounts(12, 20, 28)
    assert 4 * counts == counts * 4
    assert counts * 0 == SramCounts()
    assert counts * 1 == counts
    with pytest.raises(ValueError):
        counts * -1
    with pytest.raises(TypeError):
        counts * 1.5


# ----------------------------------------------------------------------
# DRAM traffic: closed form vs iterative walk
# ----------------------------------------------------------------------

@pytest.mark.parametrize("engine_cls", ENGINES)
@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("array", [(4, 4), (3, 5), (16, 16)])
@pytest.mark.parametrize("buf_bytes", [(64, 64, 64), (1 << 20, 1 << 20, 1 << 20), (256, 2048, 128)])
@pytest.mark.parametrize("order", ["row", "col"])
def test_dram_traffic_closed_form_is_exact(engine_cls, shape, array, buf_bytes, order):
    engine = engine_cls(*shape, *array)
    buffers = _buffers(*buf_bytes)
    fast = _closed_form_traffic(engine, buffers, 2, order)
    slow = _iterative_traffic(engine, buffers, 2, order)
    assert fast is not None, "declared engines must take the fast path"
    # Dataclass equality covers per-fold lists, totals and IEEE floats.
    assert fast == slow
    assert compute_dram_traffic(engine, buffers, 2, loop_order=order) == slow


@given(
    m=st.integers(1, 120),
    k=st.integers(1, 60),
    n=st.integers(1, 120),
    rows=st.integers(1, 12),
    cols=st.integers(1, 12),
    ifmap_kb=st.sampled_from([64, 1024, 1 << 22]),
    filter_kb=st.sampled_from([64, 1024, 1 << 22]),
    order=st.sampled_from(["row", "col"]),
    engine_index=st.integers(0, len(ENGINES) - 1),
)
def test_dram_traffic_equivalence_property(
    m, k, n, rows, cols, ifmap_kb, filter_kb, order, engine_index
):
    engine = ENGINES[engine_index](m, k, n, rows, cols)
    buffers = _buffers(ifmap_kb, filter_kb, 64)
    fast = _closed_form_traffic(engine, buffers, 1, order)
    assert fast == _iterative_traffic(engine, buffers, 1, order)


def test_undeclared_slice_axis_falls_back():
    class CustomSlices(OutputStationaryEngine):
        ifmap_slice_axis = None  # custom engine: axis unknown

    engine = CustomSlices(20, 4, 20, 8, 8)
    buffers = _buffers(1024, 1024, 1024)
    assert _closed_form_traffic(engine, buffers, 1, "row") is None
    # The public entry point still answers, via the iterative path.
    assert compute_dram_traffic(engine, buffers, 1) == _iterative_traffic(
        engine, buffers, 1, "row"
    )


def test_contradicting_slice_axis_is_detected_by_probes():
    class LyingAxis(OutputStationaryEngine):
        # Claims filter slices are keyed per column fold, but actually
        # emits per-tile ids: probes must catch it and fall back.
        def filter_slice(self, fold):
            piece = super().filter_slice(fold)
            from repro.dataflow.base import OperandSlice

            return OperandSlice(
                stream="filter",
                slice_id=("tile", fold.row_index, fold.col_index),
                elements=piece.elements,
            )

    engine = LyingAxis(33, 4, 17, 8, 8)
    buffers = _buffers(1024, 1024, 1024)
    assert _closed_form_traffic(engine, buffers, 1, "row") is None
    assert compute_dram_traffic(engine, buffers, 1) == _iterative_traffic(
        engine, buffers, 1, "row"
    )
