"""Tests for the fold iteration order ablation (row vs column major)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.factory import engine_for_gemm
from repro.engine.simulator import Simulator
from repro.errors import MappingError, SimulationError
from repro.mapping.dims import OperandMapping
from repro.mapping.folds import plan_folds
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet
from repro.topology.layer import GemmLayer


def plan(sr=10, sc=9, t=4, rows=4, cols=4):
    mapping = OperandMapping(sr=sr, sc=sc, t=t, dataflow=Dataflow.OUTPUT_STATIONARY)
    return plan_folds(mapping, rows, cols)


class TestFoldOrdering:
    def test_row_major_default(self):
        order = [(f.row_index, f.col_index) for f in plan().folds()]
        assert order == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)]

    def test_col_major(self):
        order = [(f.row_index, f.col_index) for f in plan().folds(order="col")]
        assert order == [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1), (0, 2), (1, 2), (2, 2)]

    def test_same_fold_set(self):
        row_set = set(plan().fold_shapes())
        col_shapes = {(f.rows, f.cols) for f in plan().folds(order="col")}
        assert col_shapes == row_set

    def test_rejects_unknown_order(self):
        with pytest.raises(MappingError):
            list(plan().folds(order="diagonal"))


SMALL_SRAM = HardwareConfig(
    array_rows=8, array_cols=8,
    ifmap_sram_kb=1, filter_sram_kb=1, ofmap_sram_kb=1,
)


class TestTrafficOrderDependence:
    def engine(self, m, k, n):
        return engine_for_gemm(m, k, n, Dataflow.OUTPUT_STATIONARY, 8, 8)

    def test_runtime_is_order_independent(self):
        engine = self.engine(100, 64, 100)
        buffers = BufferSet.from_config(SMALL_SRAM)
        row = compute_dram_traffic(engine, buffers, 1, loop_order="row")
        col = compute_dram_traffic(engine, buffers, 1, loop_order="col")
        assert row.total_cycles == col.total_cycles

    def test_row_order_protects_the_ifmap(self):
        """OS + row-major reuses the IFMAP row-block; transposing the
        loops makes the filter the protected operand instead."""
        engine = self.engine(200, 64, 200)
        buffers = BufferSet.from_config(SMALL_SRAM)
        row = compute_dram_traffic(engine, buffers, 1, loop_order="row")
        col = compute_dram_traffic(engine, buffers, 1, loop_order="col")
        assert row.ifmap.refetch_factor <= col.ifmap.refetch_factor
        assert col.filter.refetch_factor <= row.filter.refetch_factor

    def test_order_choice_matters_for_skewed_layers(self):
        """Row order re-fetches the filter once per *row* fold, col order
        the IFMAP once per *column* fold, so the cheaper order protects
        whichever operand would run up the bigger refetch bill: a tall
        GEMM (many row folds, small filter) wants col order, a wide one
        (many column folds, small IFMAP) wants row order."""
        buffers = BufferSet.from_config(SMALL_SRAM)
        tall = self.engine(4000, 64, 16)
        wide = self.engine(16, 64, 4000)
        tall_row = compute_dram_traffic(tall, buffers, 1, loop_order="row").read_bytes
        tall_col = compute_dram_traffic(tall, buffers, 1, loop_order="col").read_bytes
        wide_row = compute_dram_traffic(wide, buffers, 1, loop_order="row").read_bytes
        wide_col = compute_dram_traffic(wide, buffers, 1, loop_order="col").read_bytes
        assert tall_col < tall_row
        assert wide_row < wide_col

    @settings(max_examples=40)
    @given(st.integers(1, 100), st.integers(1, 60), st.integers(1, 100))
    def test_write_traffic_is_order_independent_for_os(self, m, k, n):
        engine = self.engine(m, k, n)
        buffers = BufferSet.from_config(SMALL_SRAM)
        row = compute_dram_traffic(engine, buffers, 1, loop_order="row")
        col = compute_dram_traffic(engine, buffers, 1, loop_order="col")
        assert row.write_bytes == col.write_bytes


class TestSimulatorIntegration:
    def test_loop_order_plumbs_through(self):
        layer = GemmLayer("g", m=400, k=64, n=100)  # asymmetric on purpose
        row = Simulator(SMALL_SRAM, loop_order="row").run_layer(layer)
        col = Simulator(SMALL_SRAM, loop_order="col").run_layer(layer)
        assert row.total_cycles == col.total_cycles
        assert row.dram_read_bytes != col.dram_read_bytes

    def test_rejects_unknown_order(self):
        with pytest.raises(SimulationError):
            Simulator(SMALL_SRAM, loop_order="zigzag")
