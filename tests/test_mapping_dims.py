"""Unit tests for Table III mapping (repro.mapping.dims)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.errors import MappingError
from repro.mapping.dims import OperandMapping, gemm_from_mapping, map_gemm, map_layer
from repro.topology.layer import ConvLayer

DIMS = st.integers(1, 10**4)


class TestTable3:
    """The exact Table III assignments."""

    def test_output_stationary(self):
        mapping = map_gemm(10, 20, 30, Dataflow.OUTPUT_STATIONARY)
        assert (mapping.sr, mapping.sc, mapping.t) == (10, 30, 20)

    def test_weight_stationary(self):
        mapping = map_gemm(10, 20, 30, Dataflow.WEIGHT_STATIONARY)
        assert (mapping.sr, mapping.sc, mapping.t) == (20, 30, 10)

    def test_input_stationary(self):
        mapping = map_gemm(10, 20, 30, Dataflow.INPUT_STATIONARY)
        assert (mapping.sr, mapping.sc, mapping.t) == (20, 10, 30)

    def test_conv_layer_dimensions(self):
        layer = ConvLayer(
            name="c", ifmap_h=8, ifmap_w=8, filter_h=3, filter_w=3,
            channels=2, num_filters=5, stride=1,
        )
        mapping = map_layer(layer, Dataflow.OUTPUT_STATIONARY)
        assert mapping.sr == 36  # N_ofmap
        assert mapping.sc == 5  # N_filter
        assert mapping.t == 18  # W_conv

    @given(DIMS, DIMS, DIMS)
    def test_macs_invariant_across_dataflows(self, m, k, n):
        macs = {map_gemm(m, k, n, df).macs for df in Dataflow}
        assert macs == {m * k * n}


class TestOperandMapping:
    def test_rejects_zero_dims(self):
        with pytest.raises(MappingError):
            OperandMapping(sr=0, sc=1, t=1, dataflow=Dataflow.OUTPUT_STATIONARY)

    def test_max_parallelism(self):
        mapping = OperandMapping(sr=4, sc=5, t=9, dataflow=Dataflow.OUTPUT_STATIONARY)
        assert mapping.max_parallelism == 20

    def test_transpose_swaps_spatial(self):
        mapping = OperandMapping(sr=4, sc=5, t=9, dataflow=Dataflow.OUTPUT_STATIONARY)
        flipped = mapping.transpose()
        assert (flipped.sr, flipped.sc, flipped.t) == (5, 4, 9)


class TestInverse:
    @given(DIMS, DIMS, DIMS)
    def test_gemm_from_mapping_inverts_map_gemm(self, m, k, n):
        for dataflow in Dataflow:
            mapping = map_gemm(m, k, n, dataflow)
            assert gemm_from_mapping(mapping.sr, mapping.sc, mapping.t, dataflow) == (m, k, n)

    @given(DIMS, DIMS, DIMS)
    def test_map_gemm_inverts_gemm_from_mapping(self, sr, sc, t):
        for dataflow in Dataflow:
            m, k, n = gemm_from_mapping(sr, sc, t, dataflow)
            mapping = map_gemm(m, k, n, dataflow)
            assert (mapping.sr, mapping.sc, mapping.t) == (sr, sc, t)
