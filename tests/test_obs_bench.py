"""The perf-regression sentinel: suite, durable history, rolling compare."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import PerfRegressionError
from repro.obs import bench
from repro.obs.bench import (
    BENCH_SCHEMA,
    BENCHES,
    BenchResult,
    compare,
    load_history,
    record,
    run_suite,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def history_entry(name: str, wall: float, counters=None) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "benches": {name: {"wall_time_s": wall, "counters": counters or {}}},
    }


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------

class TestRunSuite:
    def test_measures_every_bench_with_counter_deltas(self):
        results = run_suite(repeats=1)
        assert [result.name for result in results] == list(BENCHES)
        for result in results:
            assert result.wall_time_s > 0
            assert result.counters, f"{result.name} moved no counters"
            if result.name == "sweep_ledger":  # I/O bench: no simulation
                assert result.counters.get("ledger.entries", 0) > 0
            else:
                assert result.counters.get("sim.cycles", 0) > 0

    def test_counters_are_deterministic_across_runs(self):
        first = run_suite(["gemm_256"], repeats=1)[0]
        second = run_suite(["gemm_256"], repeats=1)[0]
        assert first.counters == second.counters

    def test_leaves_disabled_registry_disabled(self):
        assert not obs.metrics.enabled
        run_suite(["gemm_256"], repeats=1)
        assert not obs.metrics.enabled

    def test_unknown_bench_and_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="unknown bench"):
            run_suite(["nope"])
        with pytest.raises(ValueError, match="repeats"):
            run_suite(["gemm_256"], repeats=0)


# ----------------------------------------------------------------------
# Durable history
# ----------------------------------------------------------------------

class TestHistory:
    def test_record_appends_schema_tagged_jsonl(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        results = [BenchResult("gemm_256", 0.01, {"sim.cycles": 100})]
        record(path, results, note="first")
        record(path, results)
        entries = load_history(path)
        assert len(entries) == 2
        assert entries[0]["schema"] == BENCH_SCHEMA
        assert entries[0]["note"] == "first"
        assert entries[0]["benches"]["gemm_256"]["wall_time_s"] == 0.01
        assert entries[0]["benches"]["gemm_256"]["counters"] == {"sim.cycles": 100}

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_malformed_line_raises_foreign_schema_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({"schema": "other/1"}) + "\n")
        assert load_history(path) == []
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="malformed"):
            load_history(path)


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

class TestCompare:
    def test_no_history_passes(self):
        report = compare([], [BenchResult("gemm_256", 0.5)])
        assert report.ok
        assert report.verdicts[0].baseline_s is None
        report.raise_on_regression()  # no-op

    def test_within_threshold_passes(self):
        history = [history_entry("gemm_256", 1.0)]
        report = compare(history, [BenchResult("gemm_256", 1.2)], threshold=0.25)
        assert report.ok
        assert report.verdicts[0].ratio == pytest.approx(1.2)

    def test_regression_beyond_threshold_trips(self):
        history = [history_entry("gemm_256", 1.0)]
        report = compare(history, [BenchResult("gemm_256", 1.5)], threshold=0.25)
        assert not report.ok
        with pytest.raises(PerfRegressionError, match="gemm_256"):
            report.raise_on_regression()

    def test_baseline_is_rolling_median_of_window(self):
        history = [history_entry("gemm_256", wall) for wall in
                   (9.0, 1.0, 1.2, 1.0, 1.1, 1.0)]
        report = compare(history, [BenchResult("gemm_256", 1.05)], window=5)
        # the ancient 9.0 outlier fell out of the window; median of the
        # last five is 1.0
        assert report.verdicts[0].baseline_s == pytest.approx(1.0)

    def test_noise_floor_guards_micro_benches(self):
        history = [history_entry("gemm_256", 0.001)]
        # +300% relative, but only 3ms absolute: below the floor
        report = compare(
            history, [BenchResult("gemm_256", 0.004)],
            threshold=0.25, noise_floor_s=0.010,
        )
        assert report.ok
        report = compare(
            history, [BenchResult("gemm_256", 0.004)],
            threshold=0.25, noise_floor_s=0.0,
        )
        assert not report.ok

    def test_counter_growth_trips_shrink_does_not(self):
        history = [history_entry("gemm_256", 1.0, {"sim.cycles": 1000})]
        grown = compare(history, [BenchResult("gemm_256", 1.0,
                                              {"sim.cycles": 1100})])
        assert not grown.ok
        assert "sim.cycles" in grown.verdicts[0].counter_regressions
        shrunk = compare(history, [BenchResult("gemm_256", 1.0,
                                               {"sim.cycles": 900})])
        assert shrunk.ok

    def test_inject_slowdown_self_test(self):
        history = [history_entry("gemm_256", 1.0)]
        report = compare(
            history, [BenchResult("gemm_256", 1.0)],
            threshold=0.25, inject_slowdown=0.5,
        )
        assert not report.ok
        assert report.verdicts[0].wall_time_s == pytest.approx(1.5)

    def test_render_names_the_culprit(self):
        history = [history_entry("gemm_256", 1.0)]
        report = compare(history, [BenchResult("gemm_256", 2.0)])
        text = report.render()
        assert "REGRESSED" in text and "wall +100%" in text

    def test_real_suite_against_its_own_recording(self, tmp_path):
        # end to end: record a run, then compare an identical run
        path = tmp_path / "history.jsonl"
        results = bench.run_suite(["gemm_256"], repeats=1)
        bench.record(path, results)
        report = bench.compare(bench.load_history(path),
                               bench.run_suite(["gemm_256"], repeats=1))
        assert report.ok, report.render()
