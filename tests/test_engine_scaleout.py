"""Unit tests for the scale-out (partitioned) simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow, HardwareConfig
from repro.config.presets import paper_scaling_config
from repro.engine.scaleout import ScaleOutSimulator, simulate
from repro.engine.simulator import Simulator
from repro.topology.layer import GemmLayer


def grid_config(rows=8, cols=8, p_rows=2, p_cols=2, dataflow=Dataflow.OUTPUT_STATIONARY):
    return HardwareConfig(
        array_rows=rows,
        array_cols=cols,
        partition_rows=p_rows,
        partition_cols=p_cols,
        ifmap_sram_kb=64,
        filter_sram_kb=64,
        ofmap_sram_kb=32,
        dataflow=dataflow,
    )


LAYER = GemmLayer("g", m=64, k=20, n=48)


class TestAggregation:
    def test_macs_conserved(self, dataflow):
        result = ScaleOutSimulator(grid_config(dataflow=dataflow)).run_layer(LAYER)
        assert result.macs == LAYER.macs

    def test_runtime_is_slowest_partition(self):
        sim = ScaleOutSimulator(grid_config())
        result, shares = sim.run_layer_detailed(LAYER)
        assert result.total_cycles == max(s.result.total_cycles for s in shares)

    def test_partition_counts_sum_to_grid(self):
        sim = ScaleOutSimulator(grid_config(p_rows=2, p_cols=4))
        _, shares = sim.run_layer_detailed(LAYER)
        assert sum(s.count for s in shares) == 8

    def test_traffic_sums_over_partitions(self):
        sim = ScaleOutSimulator(grid_config())
        result, shares = sim.run_layer_detailed(LAYER)
        assert result.dram_read_bytes == sum(
            s.result.dram_read_bytes * s.count for s in shares
        )
        assert result.sram.total == sum(s.result.sram.total * s.count for s in shares)

    def test_result_records_grid(self):
        result = ScaleOutSimulator(grid_config(p_rows=2, p_cols=4)).run_layer(LAYER)
        assert result.partition_rows == 2
        assert result.partition_cols == 4
        assert result.total_pes == 8 * 8 * 8


class TestScalingBehaviour:
    def test_never_slower_than_monolithic_equal_macs(self, dataflow):
        """The paper's headline: partitioning never loses on runtime."""
        layer = GemmLayer("g", m=256, k=30, n=256)
        mono = Simulator(
            paper_scaling_config(32, 32, dataflow=dataflow)
        ).run_layer(layer)
        parts = ScaleOutSimulator(
            paper_scaling_config(16, 16, 2, 2, dataflow=dataflow)
        ).run_layer(layer)
        assert parts.total_cycles <= mono.total_cycles

    def test_partitioning_raises_dram_traffic(self):
        """Loss of spatial reuse: aggregate DRAM reads grow with the grid."""
        layer = GemmLayer("g", m=256, k=64, n=256)
        mono = Simulator(paper_scaling_config(32, 32)).run_layer(layer)
        parts = ScaleOutSimulator(paper_scaling_config(8, 8, 4, 4)).run_layer(layer)
        assert parts.dram_read_bytes > mono.dram_read_bytes

    def test_idle_partitions_tolerated(self):
        """Grid larger than the workload leaves partitions idle but works."""
        tiny = GemmLayer("tiny", m=2, k=3, n=2)
        result = ScaleOutSimulator(grid_config(p_rows=4, p_cols=4)).run_layer(tiny)
        assert result.macs == tiny.macs

    def test_1x1_grid_matches_monolithic(self, dataflow):
        config = grid_config(p_rows=1, p_cols=1, dataflow=dataflow)
        so_result = ScaleOutSimulator(config).run_layer(LAYER)
        mono = Simulator(config).run_layer(LAYER)
        assert so_result.total_cycles == mono.total_cycles
        assert so_result.dram_read_bytes == mono.dram_read_bytes

    @settings(max_examples=25)
    @given(
        st.integers(1, 100), st.integers(1, 30), st.integers(1, 100),
        st.sampled_from([(1, 2), (2, 1), (2, 2), (1, 4), (4, 4)]),
    )
    def test_compute_utilization_bounded(self, m, k, n, grid):
        layer = GemmLayer("g", m=m, k=k, n=n)
        config = grid_config(p_rows=grid[0], p_cols=grid[1])
        result = ScaleOutSimulator(config).run_layer(layer)
        assert 0 < result.compute_utilization <= 1
        assert 0 <= result.mapping_utilization <= 1


class TestConvenienceFrontDoor:
    def test_simulate_routes_monolithic(self):
        config = grid_config(p_rows=1, p_cols=1)
        assert simulate(config, LAYER) == Simulator(config).run_layer(LAYER)

    def test_simulate_routes_partitioned(self):
        config = grid_config(p_rows=2, p_cols=2)
        assert simulate(config, LAYER) == ScaleOutSimulator(config).run_layer(LAYER)

    def test_run_network(self):
        from repro.topology.network import Network

        net = Network("two", [GemmLayer("a", m=20, k=8, n=20), GemmLayer("b", m=10, k=4, n=10)])
        run = ScaleOutSimulator(grid_config()).run_network(net)
        assert len(run) == 2
        assert run.total_cycles == run["a"].total_cycles + run["b"].total_cycles
