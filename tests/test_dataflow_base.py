"""Unit tests for the shared dataflow machinery."""

import numpy as np
import pytest

from repro.dataflow.base import (
    AddressLayout,
    SramCounts,
    _stream_window_counts,
    fold_cycles,
)
from repro.dataflow.factory import engine_for_gemm
from repro.config.hardware import Dataflow


class TestFoldCycles:
    def test_eq3(self):
        assert fold_cycles(4, 5, 9) == 2 * 4 + 5 + 9 - 2

    def test_minimal_fold(self):
        assert fold_cycles(1, 1, 1) == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            fold_cycles(0, 1, 1)


class TestSramCounts:
    def test_addition(self):
        total = SramCounts(1, 2, 3) + SramCounts(10, 20, 30)
        assert total == SramCounts(11, 22, 33)

    def test_totals(self):
        counts = SramCounts(ifmap_reads=5, filter_reads=7, ofmap_writes=2)
        assert counts.total_reads == 12
        assert counts.total == 14

    def test_default_is_zero(self):
        assert SramCounts().total == 0


class TestStreamWindowCounts:
    def test_single_stream(self):
        counts = _stream_window_counts(length=6, active_rows=1, depth=3, start=1)
        assert counts.tolist() == [0, 1, 1, 1, 0, 0]

    def test_overlapping_streams(self):
        # rows 0,1 each active 3 cycles, row i starting at cycle i
        counts = _stream_window_counts(length=6, active_rows=2, depth=3, start=0)
        assert counts.tolist() == [1, 2, 2, 1, 0, 0]

    def test_total_equals_rows_times_depth(self):
        counts = _stream_window_counts(length=30, active_rows=4, depth=7, start=5)
        assert int(counts.sum()) == 4 * 7

    def test_peak_bounded_by_rows(self):
        counts = _stream_window_counts(length=50, active_rows=6, depth=20, start=0)
        assert int(counts.max()) == 6


class TestAddressLayout:
    def test_row_major_ifmap(self):
        layout = AddressLayout(m=4, k=3, n=2, ifmap_offset=100)
        assert layout.ifmap_addr(0, 0) == 100
        assert layout.ifmap_addr(1, 0) == 103
        assert layout.ifmap_addr(1, 2) == 105

    def test_row_major_filter(self):
        layout = AddressLayout(m=4, k=3, n=2, filter_offset=1000)
        assert layout.filter_addr(0, 1) == 1001
        assert layout.filter_addr(2, 0) == 1004

    def test_row_major_ofmap(self):
        layout = AddressLayout(m=4, k=3, n=2, ofmap_offset=5000)
        assert layout.ofmap_addr(3, 1) == 5007

    def test_regions_disjoint_for_default_offsets(self):
        layout = AddressLayout(m=100, k=100, n=100)
        ifmap_max = layout.ifmap_addr(99, 99)
        filter_min = layout.filter_addr(0, 0)
        filter_max = layout.filter_addr(99, 99)
        ofmap_min = layout.ofmap_addr(0, 0)
        assert ifmap_max < filter_min
        assert filter_max < ofmap_min


class TestEngineShared:
    def test_total_cycles_sums_folds(self, dataflow):
        engine = engine_for_gemm(10, 4, 9, dataflow, 4, 4)
        expected = sum(engine.fold_cycles(fold) for fold in engine.plan.folds())
        assert engine.total_cycles() == expected

    def test_layer_macs(self, dataflow):
        engine = engine_for_gemm(10, 4, 9, dataflow, 4, 4)
        assert engine.layer_macs == 360

    def test_utilizations_bounded(self, dataflow):
        engine = engine_for_gemm(10, 4, 9, dataflow, 4, 4)
        assert 0 < engine.mapping_utilization() <= 1
        assert 0 < engine.compute_utilization() <= 1

    def test_full_mapping_utilization_when_exact(self, dataflow):
        # choose a GEMM whose mapped dims divide the array exactly
        engine = engine_for_gemm(8, 8, 8, dataflow, 4, 4)
        assert engine.mapping_utilization() == 1.0

    def test_layer_trace_cycles_monotonic(self, dataflow):
        engine = engine_for_gemm(6, 3, 5, dataflow, 4, 4)
        layout = AddressLayout(m=6, k=3, n=5)
        cycles = [row.cycle for row in engine.layer_trace(layout)]
        assert cycles == sorted(cycles)
        assert cycles[-1] == engine.total_cycles() - 1
