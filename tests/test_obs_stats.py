"""Trace/metrics summarization behind the ``repro stats`` subcommand."""

import json

import pytest

from repro.obs.export import write_chrome_trace, write_metrics_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import (
    render_metrics_summary,
    render_trace_summary,
    summarize_file,
    trace_event_counts,
    trace_span_stats,
)
from repro.obs.tracer import Tracer


def _trace_doc():
    return {
        "traceEvents": [
            {"name": "outer", "ph": "X", "ts": 0.0, "dur": 100.0,
             "args": {"self_us": 10.0}},
            {"name": "inner", "ph": "X", "ts": 5.0, "dur": 90.0,
             "args": {"self_us": 90.0}},
            {"name": "outer", "ph": "X", "ts": 200.0, "dur": 50.0,
             "args": {"self_us": 50.0}},
            {"name": "retry", "ph": "i", "ts": 20.0, "s": "t", "args": {}},
            {"name": "retry", "ph": "i", "ts": 30.0, "s": "t", "args": {}},
        ],
        "metadata": {"tool": "scalesim-repro", "version": "1.0.0",
                     "config_hash": "abc"},
    }


def test_span_stats_aggregate_and_rank_by_self_time():
    stats = trace_span_stats(_trace_doc())
    assert [s.name for s in stats] == ["inner", "outer"]
    outer = stats[1]
    assert outer.count == 2
    assert outer.total_us == pytest.approx(150.0)
    assert outer.self_us == pytest.approx(60.0)
    assert outer.max_us == pytest.approx(100.0)
    assert outer.avg_us == pytest.approx(75.0)


def test_span_stats_default_self_to_duration():
    doc = {"traceEvents": [{"name": "bare", "ph": "X", "ts": 0.0, "dur": 7.0}]}
    (stat,) = trace_span_stats(doc)
    assert stat.self_us == pytest.approx(7.0)


def test_event_counts():
    assert trace_event_counts(_trace_doc()) == {"retry": 2}


def test_render_trace_summary_contents():
    text = render_trace_summary(_trace_doc())
    assert "scalesim-repro 1.0.0" in text
    assert "config abc" in text
    assert "3 spans" in text
    assert "2 distinct names" in text
    assert "retry=2" in text
    # ranked: inner (90us self) above outer (60us self)
    assert text.index("inner") < text.index("outer")


def test_render_trace_summary_respects_top():
    text = render_trace_summary(_trace_doc(), top=1)
    assert "inner" in text
    lines = [line for line in text.splitlines() if line.startswith("outer")]
    assert not lines


def test_render_metrics_summary_contents():
    registry = MetricsRegistry(enabled=True)
    registry.counter("sim.cycles").add(12345)
    registry.gauge("sweep.points_done").set(4)
    for value in range(100):
        registry.histogram("dram.request_latency").observe(value)
    doc = {"metadata": {"tool": "scalesim-repro", "version": "1.0.0",
                        "config_hash": None},
           **registry.snapshot()}
    text = render_metrics_summary(doc)
    assert "unhashed" in text
    assert "sim.cycles" in text and "12345" in text
    assert "sweep.points_done" in text
    assert "dram.request_latency" in text
    assert "p50" in text and "p99" in text


def test_render_metrics_summary_empty():
    assert "(no metrics recorded)" in render_metrics_summary({"counters": {}})


def test_summarize_file_sniffs_both_formats(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("work"):
        pass
    trace_path = write_chrome_trace(tracer, tmp_path / "t.json")
    registry = MetricsRegistry(enabled=True)
    registry.counter("x").add()
    metrics_path = write_metrics_json(registry, tmp_path / "m.json")
    assert "spans" in summarize_file(trace_path)
    assert "counter" in summarize_file(metrics_path)


def test_summarize_file_rejects_unknown_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"rows": []}))
    with pytest.raises(ValueError, match="neither"):
        summarize_file(path)


def test_summarize_file_rejects_jsonl(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('["not", "an", "object"]\n')
    with pytest.raises(ValueError, match="JSON object"):
        summarize_file(path)
