"""Unit tests for configuration presets."""

import pytest

from repro.config.presets import (
    EYERISS_LIKE,
    GOOGLE_TPU_LIKE,
    PAPER_SCALING_SRAM_KB,
    SMALL_TEST,
    paper_scaling_config,
    preset,
    preset_names,
)


class TestPresets:
    def test_names_listed(self):
        assert preset_names() == ["eyeriss", "small", "tpu"]

    def test_lookup_by_name(self):
        assert preset("tpu") is GOOGLE_TPU_LIKE
        assert preset("EYERISS") is EYERISS_LIKE
        assert preset("small") is SMALL_TEST

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown preset"):
            preset("cerebras")

    def test_tpu_is_weight_stationary_256(self):
        assert GOOGLE_TPU_LIKE.array_rows == 256
        assert GOOGLE_TPU_LIKE.dataflow.value == "ws"


class TestPaperScalingConfig:
    def test_uses_paper_sram_budget(self):
        config = paper_scaling_config(32, 32)
        assert config.ifmap_sram_kb == PAPER_SCALING_SRAM_KB["ifmap"] == 512
        assert config.filter_sram_kb == 512
        assert config.ofmap_sram_kb == 256

    def test_partition_grid_passthrough(self):
        config = paper_scaling_config(16, 16, 4, 4)
        assert config.num_partitions == 16
        assert config.total_macs == 16 * 16 * 16

    def test_partitioned_sram_is_divided(self):
        config = paper_scaling_config(16, 16, 2, 2)
        per = config.partition_config()
        assert per.ifmap_sram_kb == 128
