"""Unit tests for the single-array simulator."""

import pytest

from repro.config.hardware import Dataflow, HardwareConfig
from repro.engine.simulator import Simulator
from repro.errors import SimulationError
from repro.topology.layer import ConvLayer, GemmLayer
from repro.topology.network import Network
from repro.workloads.alexnet import alexnet


class TestConstruction:
    def test_rejects_partitioned_config(self):
        config = HardwareConfig(partition_rows=2)
        with pytest.raises(SimulationError, match="ScaleOutSimulator"):
            Simulator(config)


class TestRunLayer:
    def test_result_identity_fields(self, small_config, small_conv):
        result = Simulator(small_config).run_layer(small_conv)
        assert result.layer_name == "conv"
        assert result.array_rows == 8
        assert result.num_partitions == 1
        assert result.dataflow is Dataflow.OUTPUT_STATIONARY

    def test_macs_match_layer(self, small_config, small_conv):
        result = Simulator(small_config).run_layer(small_conv)
        assert result.macs == small_conv.macs

    def test_cycles_positive_and_bounded(self, small_config, small_conv):
        result = Simulator(small_config).run_layer(small_conv)
        # Can't beat perfect parallelism; can't be slower than serial.
        assert result.total_cycles >= small_conv.macs / small_config.num_macs
        assert result.total_cycles <= small_conv.macs + 10**6

    def test_utilizations_in_range(self, small_config, small_conv):
        result = Simulator(small_config).run_layer(small_conv)
        assert 0 < result.mapping_utilization <= 1
        assert 0 < result.compute_utilization <= 1
        assert result.compute_utilization <= result.mapping_utilization

    def test_run_gemm_equivalent_to_gemm_layer(self, small_config):
        sim = Simulator(small_config)
        by_layer = sim.run_layer(GemmLayer("g", m=30, k=12, n=20))
        by_dims = sim.run_gemm(30, 12, 20, name="g")
        assert by_layer == by_dims

    def test_dataflow_changes_cycles(self, small_config):
        layer = GemmLayer("g", m=100, k=5, n=30)
        os_cycles = Simulator(small_config).run_layer(layer).total_cycles
        ws_cycles = Simulator(
            small_config.with_dataflow(Dataflow.WEIGHT_STATIONARY)
        ).run_layer(layer).total_cycles
        assert os_cycles != ws_cycles

    def test_fc_layer_runs(self, small_config):
        layer = ConvLayer.fully_connected("fc", inputs=64, outputs=32)
        result = Simulator(small_config).run_layer(layer)
        assert result.macs == 64 * 32

    def test_degenerate_1x1_layer(self, small_config):
        layer = GemmLayer("tiny", m=1, k=1, n=1)
        result = Simulator(small_config).run_layer(layer)
        assert result.total_cycles == 2  # Eq. 3 with r=c=T=1
        assert result.macs == 1


class TestSramAccounting:
    def test_os_sram_totals(self, small_config):
        layer = GemmLayer("g", m=16, k=10, n=16)  # divides 8x8 exactly
        result = Simulator(small_config).run_layer(layer)
        plan_cols = 2  # 16/8
        plan_rows = 2
        assert result.sram.ifmap_reads == 16 * 10 * plan_cols
        assert result.sram.filter_reads == 16 * 10 * plan_rows
        assert result.sram.ofmap_writes == 16 * 16

    def test_dram_reads_at_least_unique(self, small_config, small_conv):
        result = Simulator(small_config).run_layer(small_conv)
        assert result.dram_read_bytes >= (
            small_conv.ifmap_elements + small_conv.filter_elements
        )

    def test_bandwidths_consistent(self, small_config, small_conv):
        result = Simulator(small_config).run_layer(small_conv)
        assert result.avg_read_bw == pytest.approx(
            result.dram_read_bytes / result.total_cycles
        )
        assert result.avg_total_bw == pytest.approx(result.avg_read_bw + result.avg_write_bw)


class TestRunNetwork:
    def test_network_runs_all_layers(self, small_config):
        net = alexnet()
        run = Simulator(small_config).run_network(net)
        assert len(run) == len(net)
        assert run.network_name == "alexnet"

    def test_network_cycles_add(self, small_config):
        net = alexnet()
        run = Simulator(small_config).run_network(net)
        assert run.total_cycles == sum(layer.total_cycles for layer in run)

    def test_lookup_by_name(self, small_config):
        run = Simulator(small_config).run_network(alexnet())
        assert run["FC8"].layer_name == "FC8"
        with pytest.raises(KeyError):
            run["nope"]

    def test_total_macs_match_network(self, small_config):
        net = alexnet()
        run = Simulator(small_config).run_network(net)
        assert run.total_macs == net.total_macs
