"""Unit tests for the Sec. IV-B multi-workload optimization."""

import pytest

from repro.analytical.multiworkload import (
    WorkloadSet,
    candidate_costs,
    pareto_search,
    per_workload_losses,
)
from repro.analytical.runtime import scaleout_runtime
from repro.config.hardware import Dataflow
from repro.errors import SearchError
from repro.mapping.dims import map_layer
from repro.topology.layer import GemmLayer
from repro.workloads.language import language_layer


@pytest.fixture
def workloads():
    return WorkloadSet(
        name="mixed",
        layers=(
            GemmLayer("wide", m=16, k=64, n=2000),
            GemmLayer("tall", m=2000, k=64, n=16),
            GemmLayer("square", m=300, k=64, n=300),
        ),
    )


class TestWorkloadSet:
    def test_rejects_empty(self):
        with pytest.raises(SearchError):
            WorkloadSet(name="x", layers=())

    def test_mappings_follow_dataflow(self, workloads):
        mappings = workloads.mappings()
        assert mappings[0].sr == 16  # OS: rows = M

    def test_len(self, workloads):
        assert len(workloads) == 3


class TestCandidateCosts:
    def test_sorted_fastest_first(self, workloads):
        costed = candidate_costs(workloads, 1024)
        costs = [cost for _, cost in costed]
        assert costs == sorted(costs)

    def test_costs_are_additive_runtimes(self, workloads):
        costed = candidate_costs(workloads, 1024)
        cand, cost = costed[0]
        expected = sum(
            scaleout_runtime(
                map_layer(layer, Dataflow.OUTPUT_STATIONARY),
                cand.partition_rows,
                cand.partition_cols,
                cand.array_rows,
                cand.array_cols,
            )
            for layer in workloads.layers
        )
        assert cost == expected

    def test_candidates_deduplicated(self, workloads):
        costed = candidate_costs(workloads, 1024)
        keys = [
            (c.partition_rows, c.partition_cols, c.array_rows, c.array_cols)
            for c, _ in costed
        ]
        assert len(keys) == len(set(keys))

    def test_scaleout_candidates_partitioned(self, workloads):
        costed = candidate_costs(workloads, 4096, scaleout=True)
        assert all(not cand.is_monolithic for cand, _ in costed)


class TestParetoSearch:
    def test_best_has_loss_one(self, workloads):
        best, ranking = pareto_search(workloads, 1024)
        assert ranking[0][0] == best
        assert ranking[0][1] == 1.0

    def test_losses_monotone(self, workloads):
        _, ranking = pareto_search(workloads, 1024)
        losses = [loss for _, loss in ranking]
        assert losses == sorted(losses)
        assert all(loss >= 1.0 for loss in losses)

    def test_opposing_workloads_create_real_losses(self, workloads):
        """Tall and wide layers prefer opposite aspect ratios, so the
        slowest candidate must pay a real penalty (Fig. 13's spread)."""
        _, ranking = pareto_search(workloads, 2**14)
        assert ranking[-1][1] > 1.2

    def test_scaleout_spread_tighter_than_scaleup(self):
        """Fig. 13 vs Fig. 14: partitioned candidates track each other
        more closely than monolithic aspect ratios do."""
        layers = tuple(language_layer(name) for name in ("GNMT0", "TF0", "TF1", "DB1"))
        workloads = WorkloadSet(name="lm", layers=layers)
        _, up_ranking = pareto_search(workloads, 2**14, scaleout=False)
        _, out_ranking = pareto_search(workloads, 2**14, scaleout=True)
        assert out_ranking[-1][1] <= up_ranking[-1][1]


class TestPerWorkloadLosses:
    def test_losses_at_least_one(self, workloads):
        best, _ = pareto_search(workloads, 1024)
        losses = per_workload_losses(workloads, best)
        assert set(losses) == {"wide", "tall", "square"}
        assert all(loss >= 1.0 - 1e-9 for loss in losses.values())
