"""Crash drills for the sweep ledger: the robustness acceptance bar.

Three families of drills pin the PR's contract:

* **kill -9 at every injected publish point.**  A child process records
  points with ``REPRO_LEDGER_CRASH_POINT`` armed and dies with
  ``os._exit(137)`` mid-pipeline; the parent reopens the ledger and
  must find zero lost completed points and zero corrupt rows served —
  including the ``mid-segment-publish`` drill, which plants a torn
  half-written segment at the final path.
* **Single-bit flip in a sealed segment.**  Reopen quarantines exactly
  that segment, only its points re-simulate, and the recomputed
  entries are byte-identical to the originals.
* **Ledger-vs-JSONL byte identity.**  As an ``execute_grid`` sink the
  ledger must be indistinguishable from the checkpoint journal —
  serial, ``workers=2``, analytically pruned, and across a mid-sweep
  interruption + incremental resume.

All point callables live at module level so they pickle by reference.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.robust.checkpoint import CheckpointStore
from repro.store.ledger import CRASH_POINT_ENV, SweepLedger
from repro.sweep import run_sweep_report

SRC = str(Path(__file__).resolve().parent.parent / "src")
VERSION = "crash-test"


def measure(partitions: int) -> dict:
    return {
        "array": f"{partitions}x{partitions}",
        "cycles": 1000 * partitions + 17,
        "avg_bw": round(partitions / 3.0, 3),
    }


def estimate(partitions: int) -> tuple:
    row = measure(partitions)
    return row, float(row["cycles"])


def entries_json(journal, points):
    """Entry bytes with the one nondeterministic field (wall-clock
    ``duration``) pinned; key order is otherwise preserved exactly."""
    out = []
    for params in points:
        entry = dict(journal.get(params))
        entry["duration"] = 0.0
        out.append(json.dumps(entry, default=repr))
    return out


# ----------------------------------------------------------------------
# kill -9 at every injected publish point
# ----------------------------------------------------------------------

CHILD = textwrap.dedent(
    """
    import sys
    from repro.store.ledger import SweepLedger

    ledger = SweepLedger(sys.argv[1], version="crash-test", segment_entries=3)
    for i in range(3):
        ledger.record(
            {"partitions": i}, "ok",
            rows=[{"partitions": i, "cycles": 100 + i}],
        )
    print("survived")
    """
)

#: crash point -> (completed points guaranteed durable, sealed segments)
CRASH_POINTS = {
    "after-record": (1, 0),
    "before-segment-publish": (3, 0),
    "mid-segment-publish": (3, 0),
    "after-segment-before-manifest": (3, 1),
    "after-manifest-before-truncate": (3, 1),
}


def run_crashing_child(root, point):
    env = {**os.environ, CRASH_POINT_ENV: point, "PYTHONPATH": SRC}
    return subprocess.run(
        [sys.executable, "-c", CHILD, str(root)],
        env=env, capture_output=True, text=True, timeout=120,
    )


@pytest.mark.parametrize("point", sorted(CRASH_POINTS))
def test_kill9_at_publish_point_loses_nothing(tmp_path, point):
    completed, segments = CRASH_POINTS[point]
    result = run_crashing_child(tmp_path / "led", point)
    assert result.returncode == 137, result.stderr
    assert "survived" not in result.stdout

    recovered = SweepLedger(tmp_path / "led", version=VERSION)
    assert recovered.completed_count == completed
    assert len(recovered.segments()) == segments
    # Zero corrupt rows served: every surviving entry is exactly what
    # the child recorded.
    for index in range(completed):
        entry = recovered.get({"partitions": index})
        assert entry["status"] == "ok"
        assert entry["rows"] == [{"partitions": index, "cycles": 100 + index}]
    if point == "mid-segment-publish":
        # The torn half-segment was quarantined, not parsed.
        assert len(recovered.quarantined()) == 1
    recovered.close()


@pytest.mark.parametrize("point", sorted(CRASH_POINTS))
def test_resweep_after_crash_completes_the_grid(tmp_path, point):
    run_crashing_child(tmp_path / "led", point)
    ledger = SweepLedger(tmp_path / "led", version=VERSION, segment_entries=3)
    survivors = [i for i in range(3) if ledger.completed({"partitions": i})]
    diff = ledger.diff_grid([{"partitions": i} for i in range(3)])
    assert [p["partitions"] for p in diff.reused] == survivors
    for i in range(3):
        if i not in survivors:
            ledger.record(
                {"partitions": i}, "ok",
                rows=[{"partitions": i, "cycles": 100 + i}],
            )
    assert ledger.completed_count == 3
    ledger.close()


def test_unarmed_child_survives(tmp_path):
    env = {**os.environ, "PYTHONPATH": SRC}
    env.pop(CRASH_POINT_ENV, None)
    result = subprocess.run(
        [sys.executable, "-c", CHILD, str(tmp_path / "led")],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0
    assert "survived" in result.stdout


# ----------------------------------------------------------------------
# Bit flip in a sealed segment: quarantine + byte-identical recompute
# ----------------------------------------------------------------------

def test_bit_flip_recovery_recomputes_byte_identically(tmp_path):
    grid = list(range(1, 7))
    ledger = SweepLedger(tmp_path / "led", version=VERSION, segment_entries=3)
    rows_before, _ = run_sweep_report(
        measure, ledger=ledger, incremental=True, partitions=grid
    )
    baseline = entries_json(ledger, [{"partitions": p} for p in grid])
    ledger.close()

    victim = sorted((tmp_path / "led" / "segments").glob("seg-*.seg"))[1]
    raw = bytearray(victim.read_bytes())
    raw[len(raw) // 3] ^= 0x40
    victim.write_bytes(bytes(raw))

    ledger = SweepLedger(tmp_path / "led", version=VERSION, segment_entries=3)
    assert len(ledger.quarantined()) == 1
    lost = [p for p in grid if not ledger.completed({"partitions": p})]
    assert lost == grid[3:]  # exactly the flipped segment's points

    calls = []

    def counting_measure(partitions):
        calls.append(partitions)
        return measure(partitions)

    rows_after, _ = run_sweep_report(
        counting_measure, ledger=ledger, incremental=True, partitions=grid
    )
    assert calls == lost  # only the quarantined points re-simulated
    assert rows_after == rows_before
    assert entries_json(ledger, [{"partitions": p} for p in grid]) == baseline
    ledger.close()


# ----------------------------------------------------------------------
# Ledger-vs-JSONL byte identity as an execute_grid sink
# ----------------------------------------------------------------------

GRID = list(range(1, 9))


def paired_run(tmp_path, name, **kwargs):
    """The same sweep through a checkpoint and through a ledger."""
    checkpoint = CheckpointStore(tmp_path / f"{name}.jsonl", version=VERSION)
    rows_ck, report_ck = run_sweep_report(
        measure, checkpoint=checkpoint, partitions=GRID, **kwargs
    )
    ledger = SweepLedger(tmp_path / f"{name}-ledger", version=VERSION)
    rows_led, report_led = run_sweep_report(
        measure, ledger=ledger, partitions=GRID, **kwargs
    )
    return checkpoint, rows_ck, report_ck, ledger, rows_led, report_led


def assert_identical(checkpoint, rows_ck, ledger, rows_led):
    assert rows_led == rows_ck
    points = [{"partitions": p} for p in GRID]
    assert entries_json(ledger, points) == entries_json(checkpoint, points)


def test_serial_ledger_matches_checkpoint(tmp_path):
    checkpoint, rows_ck, _, ledger, rows_led, _ = paired_run(tmp_path, "serial")
    assert_identical(checkpoint, rows_ck, ledger, rows_led)
    ledger.close()


def test_parallel_ledger_matches_checkpoint(tmp_path):
    checkpoint, rows_ck, _, ledger, rows_led, _ = paired_run(
        tmp_path, "parallel", workers=2
    )
    assert_identical(checkpoint, rows_ck, ledger, rows_led)
    ledger.close()


def test_pruned_ledger_matches_checkpoint(tmp_path):
    checkpoint, rows_ck, report_ck, ledger, rows_led, report_led = paired_run(
        tmp_path, "pruned", estimator=estimate, top_k=3
    )
    assert_identical(checkpoint, rows_ck, ledger, rows_led)
    assert report_led.estimated == report_ck.estimated > 0
    ledger.close()


def test_midsweep_resume_is_byte_identical(tmp_path):
    # The reference: one uninterrupted run.
    rows_full, _ = run_sweep_report(measure, partitions=GRID)

    # The drill: half the grid lands, then the "interrupted" sweep
    # resumes incrementally over the full grid.
    ledger = SweepLedger(tmp_path / "led", version=VERSION)
    run_sweep_report(measure, ledger=ledger, incremental=True,
                     partitions=GRID[: len(GRID) // 2])
    calls = []

    def counting_measure(partitions):
        calls.append(partitions)
        return measure(partitions)

    rows_resumed, report = run_sweep_report(
        counting_measure, ledger=ledger, incremental=True, partitions=GRID
    )
    assert calls == GRID[len(GRID) // 2:]  # first half replayed, not re-run
    assert rows_resumed == rows_full
    ledger.close()


def test_midsweep_resume_pruned_plan_is_stable(tmp_path):
    # Journal-aware planning must not move the frontier: a resumed
    # pruned sweep returns the same rows as an uninterrupted one.
    rows_full, _ = run_sweep_report(
        measure, estimator=estimate, top_k=2, partitions=GRID
    )
    ledger = SweepLedger(tmp_path / "led", version=VERSION)
    run_sweep_report(measure, estimator=estimate, top_k=2,
                     ledger=ledger, incremental=True,
                     partitions=GRID[: len(GRID) // 2])
    rows_resumed, _ = run_sweep_report(
        measure, estimator=estimate, top_k=2,
        ledger=ledger, incremental=True, partitions=GRID,
    )
    assert rows_resumed == rows_full
    ledger.close()


def test_fresh_ledger_view_resimulates_everything(tmp_path):
    # ledger= without incremental=True refreshes every point but still
    # sinks durably.
    ledger = SweepLedger(tmp_path / "led", version=VERSION)
    run_sweep_report(measure, ledger=ledger, partitions=GRID)
    calls = []

    def counting_measure(partitions):
        calls.append(partitions)
        return measure(partitions)

    rows, _ = run_sweep_report(
        counting_measure, ledger=ledger, partitions=GRID
    )
    assert calls == GRID  # nothing replayed
    assert ledger.completed_count == len(GRID)
    ledger.close()
