"""Tests for multi-objective scoring and the pareto front."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.objectives import (
    ConfigScore,
    estimate_sram_counts,
    pareto_front,
    score_candidate,
    score_candidates,
)
from repro.analytical.search import CandidateConfig, search_space
from repro.config.hardware import Dataflow
from repro.dataflow.factory import engine_for_gemm
from repro.energy.model import energy_of_result
from repro.engine.simulator import Simulator
from repro.config.presets import paper_scaling_config
from repro.mapping.dims import map_gemm
from repro.topology.layer import GemmLayer

LAYER = GemmLayer("g", m=512, k=64, n=512)


class TestSramCountsClosedForm:
    @settings(max_examples=60)
    @given(
        st.integers(1, 80), st.integers(1, 40), st.integers(1, 80),
        st.integers(1, 12), st.integers(1, 12),
        st.sampled_from(list(Dataflow)),
    )
    def test_equals_engine_layer_counts(self, m, k, n, rows, cols, dataflow):
        engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
        estimate = estimate_sram_counts(map_gemm(m, k, n, dataflow), rows, cols)
        assert estimate == engine.layer_counts()


class TestScoreCandidate:
    def monolithic(self, rows=32, cols=32):
        return CandidateConfig(
            partition_rows=1, partition_cols=1, array_rows=rows, array_cols=cols,
            runtime=0, utilization=0.0, dataflow=Dataflow.OUTPUT_STATIONARY,
        )

    def test_monolithic_score_matches_simulator(self):
        """For monolithic configs the closed-form score equals the
        cycle-accurate simulator's energy exactly."""
        score = score_candidate(LAYER, self.monolithic())
        result = Simulator(paper_scaling_config(32, 32)).run_layer(LAYER)
        assert score.runtime == result.total_cycles
        assert score.dram_bytes == result.dram_total_bytes
        assert score.energy == pytest.approx(energy_of_result(result).total)

    def test_partitioned_runtime_uses_slowest_tile(self):
        candidate = CandidateConfig(
            partition_rows=2, partition_cols=2, array_rows=16, array_cols=16,
            runtime=0, utilization=0.0, dataflow=Dataflow.OUTPUT_STATIONARY,
        )
        score = score_candidate(LAYER, candidate)
        mono = score_candidate(LAYER, self.monolithic(32, 32))
        assert score.runtime <= mono.runtime
        assert score.dram_bytes >= mono.dram_bytes

    def test_avg_bandwidth(self):
        score = score_candidate(LAYER, self.monolithic())
        assert score.avg_bandwidth == pytest.approx(score.dram_bytes / score.runtime)


class TestDominance:
    def make(self, runtime, dram, energy):
        return ConfigScore(
            candidate=CandidateConfig(
                partition_rows=1, partition_cols=1, array_rows=8, array_cols=8,
                runtime=runtime, utilization=1.0,
                dataflow=Dataflow.OUTPUT_STATIONARY,
            ),
            runtime=runtime, dram_bytes=dram, energy=energy,
        )

    def test_strict_dominance(self):
        assert self.make(1, 1, 1).dominates(self.make(2, 2, 2))

    def test_equal_scores_do_not_dominate(self):
        assert not self.make(1, 1, 1).dominates(self.make(1, 1, 1))

    def test_tradeoff_is_not_dominance(self):
        a = self.make(1, 10, 1)
        b = self.make(10, 1, 1)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestParetoFront:
    def test_front_over_real_search_space(self):
        candidates = search_space(LAYER, 2**12, min_array_dim=8)
        scores = score_candidates(LAYER, candidates)
        front = pareto_front(scores)
        assert 1 <= len(front) <= len(scores)
        # Nothing on the front is dominated by anything anywhere.
        for survivor in front:
            assert not any(other.dominates(survivor) for other in scores)

    def test_front_contains_extremes(self):
        candidates = search_space(LAYER, 2**12, min_array_dim=8)
        scores = score_candidates(LAYER, candidates)
        front = pareto_front(scores)
        best_runtime = min(scores, key=lambda s: (s.runtime, s.dram_bytes, s.energy))
        best_dram = min(scores, key=lambda s: (s.dram_bytes, s.runtime, s.energy))
        front_keys = {id(score) for score in front}
        assert best_runtime.runtime == front[0].runtime
        assert any(score.dram_bytes == best_dram.dram_bytes for score in front)

    def test_front_sorted_by_runtime(self):
        candidates = search_space(LAYER, 2**12, min_array_dim=8)
        front = pareto_front(score_candidates(LAYER, candidates))
        runtimes = [score.runtime for score in front]
        assert runtimes == sorted(runtimes)

    def test_front_runtime_vs_dram_tradeoff_is_monotone(self):
        """Along the front (sorted by runtime), DRAM traffic must not
        get strictly better too — otherwise the slower point would be
        dominated (modulo the energy objective)."""
        candidates = search_space(LAYER, 2**12, min_array_dim=8)
        front = pareto_front(score_candidates(LAYER, candidates))
        for faster, slower in zip(front, front[1:]):
            assert (
                slower.dram_bytes < faster.dram_bytes
                or slower.energy < faster.energy
                or slower.runtime == faster.runtime
            )
