"""Atomic writes under filesystem failure: typed errors, no orphans."""

from __future__ import annotations

import errno

import pytest

from repro.errors import ReproError, StorageError
from repro.utils.atomicio import atomic_write_json, atomic_write_text, fsync_directory


def _tmp_files(directory):
    return [p for p in directory.iterdir() if p.name.endswith(".tmp")]


def test_atomic_write_replaces_contents(tmp_path):
    target = tmp_path / "out.json"
    atomic_write_text(target, "first")
    atomic_write_text(target, "second")
    assert target.read_text() == "second"
    assert _tmp_files(tmp_path) == []


def test_atomic_write_json_round_trips(tmp_path):
    import json

    target = tmp_path / "out.json"
    atomic_write_json(target, {"a": [1, 2.5, "x"]})
    assert json.loads(target.read_text()) == {"a": [1, 2.5, "x"]}


def test_missing_directory_raises_typed_storage_error(tmp_path):
    target = tmp_path / "nope" / "out.json"
    with pytest.raises(StorageError) as excinfo:
        atomic_write_text(target, "data")
    # StorageError is both a ReproError (exit-code table) and an OSError
    # (existing `except OSError` guards keep working).
    assert isinstance(excinfo.value, ReproError)
    assert isinstance(excinfo.value, OSError)
    assert _tmp_files(tmp_path) == []


def test_write_failure_unlinks_temp_and_keeps_original(tmp_path, monkeypatch):
    target = tmp_path / "out.json"
    atomic_write_text(target, "precious")

    def enospc(src, dst):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr("repro.utils.atomicio.os.replace", enospc)
    with pytest.raises(StorageError) as excinfo:
        atomic_write_text(target, "overwrite attempt")
    assert excinfo.value.errno == errno.ENOSPC
    assert "no space left" in str(excinfo.value).lower()
    monkeypatch.undo()

    assert target.read_text() == "precious"  # original untouched
    assert _tmp_files(tmp_path) == []  # orphan swept


def test_eio_is_named_in_the_error(tmp_path, monkeypatch):
    def eio(src, dst):
        raise OSError(errno.EIO, "Input/output error")

    monkeypatch.setattr("repro.utils.atomicio.os.replace", eio)
    with pytest.raises(StorageError, match="I/O error"):
        atomic_write_text(tmp_path / "out", "data")


def test_fsync_directory_tolerates_anything(tmp_path):
    fsync_directory(tmp_path)  # a real directory
    fsync_directory(tmp_path / "does-not-exist")  # silently ignored


def test_storage_error_preserves_errno_and_filename(tmp_path, monkeypatch):
    def enospc(src, dst):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr("repro.utils.atomicio.os.replace", enospc)
    target = tmp_path / "out.json"
    with pytest.raises(StorageError) as excinfo:
        atomic_write_text(target, "data")
    assert excinfo.value.errno == errno.ENOSPC
    assert excinfo.value.filename == str(target)
