"""Unit tests for report rendering and CSV output."""

import csv

import pytest

from repro.engine.reports import layer_report_rows, render_report, write_report_csv
from repro.engine.simulator import Simulator
from repro.topology.layer import GemmLayer
from repro.topology.network import Network


@pytest.fixture
def run(small_config):
    net = Network("two", [GemmLayer("a", m=20, k=8, n=20), GemmLayer("b", m=10, k=4, n=10)])
    return Simulator(small_config).run_network(net)


class TestRows:
    def test_one_row_per_layer(self, run):
        rows = layer_report_rows(run)
        assert [row["layer"] for row in rows] == ["a", "b"]

    def test_accepts_bare_iterable(self, run):
        rows = layer_report_rows(list(run))
        assert len(rows) == 2

    def test_row_fields(self, run):
        row = layer_report_rows(run)[0]
        for field in ("cycles", "macs", "dram_read_bytes", "avg_read_bw", "partitions"):
            assert field in row


class TestRender:
    def test_contains_layers_and_totals(self, run):
        text = render_report(run)
        assert "a" in text and "b" in text
        assert "total cycles" in text

    def test_custom_columns(self, run):
        text = render_report(run, columns=["layer", "cycles"])
        assert "dram_read_bytes" not in text

    def test_unknown_column_raises(self, run):
        with pytest.raises(KeyError, match="unknown report columns"):
            render_report(run, columns=["layer", "nonsense"])

    def test_empty_results_raise(self):
        with pytest.raises(ValueError):
            render_report([])


class TestCsv:
    def test_roundtrip(self, run, tmp_path):
        path = write_report_csv(run, tmp_path / "report.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["layer"] == "a"
        assert int(rows[0]["cycles"]) == run["a"].total_cycles

    def test_empty_results_raise(self, tmp_path):
        with pytest.raises(ValueError):
            write_report_csv([], tmp_path / "empty.csv")
