"""Unit tests for the energy model."""

import pytest

from repro.config.presets import paper_scaling_config
from repro.energy.model import EnergyBreakdown, energy_of_result, energy_of_run
from repro.energy.params import DEFAULT_ENERGY, EnergyParams
from repro.engine.scaleout import ScaleOutSimulator
from repro.engine.simulator import Simulator
from repro.topology.layer import GemmLayer
from repro.topology.network import Network


@pytest.fixture
def result(small_config):
    return Simulator(small_config).run_layer(GemmLayer("g", m=64, k=20, n=48))


class TestParams:
    def test_defaults_follow_known_ratios(self):
        assert DEFAULT_ENERGY.mac == 1.0
        assert DEFAULT_ENERGY.sram_access == 6.0
        assert DEFAULT_ENERGY.dram_access == 200.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyParams(mac=-1)

    def test_rejects_non_number(self):
        with pytest.raises(ValueError):
            EnergyParams(sram_access="big")


class TestBreakdown:
    def test_total_sums_components(self):
        breakdown = EnergyBreakdown(mac=1, sram=2, dram=3, idle=4)
        assert breakdown.total == 10

    def test_addition(self):
        total = EnergyBreakdown(1, 2, 3, 4) + EnergyBreakdown(10, 20, 30, 40)
        assert total == EnergyBreakdown(11, 22, 33, 44)


class TestEnergyOfResult:
    def test_mac_term(self, result):
        breakdown = energy_of_result(result)
        assert breakdown.mac == result.macs * DEFAULT_ENERGY.mac

    def test_sram_term(self, result):
        breakdown = energy_of_result(result)
        assert breakdown.sram == result.sram.total * DEFAULT_ENERGY.sram_access

    def test_dram_term_scaled_by_word(self, result):
        breakdown = energy_of_result(result)
        words = result.dram_total_bytes / result.word_bytes
        assert breakdown.dram == words * DEFAULT_ENERGY.dram_access

    def test_idle_term_excludes_active_macs(self, result):
        breakdown = energy_of_result(result)
        pe_cycles = result.total_pes * result.total_cycles
        assert breakdown.idle == pytest.approx(
            DEFAULT_ENERGY.pe_idle * (pe_cycles - result.macs)
        )

    def test_energy_monotone_in_params(self, result):
        cheap = energy_of_result(result, EnergyParams(dram_access=1.0))
        expensive = energy_of_result(result, EnergyParams(dram_access=400.0))
        assert expensive.total > cheap.total

    def test_zero_params_give_zero(self, result):
        zero = EnergyParams(mac=0, sram_access=0, dram_access=0, pe_idle=0)
        assert energy_of_result(result, zero).total == 0


class TestScalingTrend:
    def test_small_budget_prefers_monolithic(self):
        """Fig. 12: at modest MAC counts, the monolithic config wins on
        energy because partitioning pays DRAM without a big idle saving."""
        layer = GemmLayer("g", m=512, k=128, n=512)
        mono = Simulator(paper_scaling_config(32, 32)).run_layer(layer)
        parts = ScaleOutSimulator(paper_scaling_config(8, 8, 4, 4)).run_layer(layer)
        assert energy_of_result(mono).total < energy_of_result(parts).total


class TestEnergyOfRun:
    def test_sums_layers(self, small_config):
        net = Network("two", [GemmLayer("a", m=20, k=8, n=20), GemmLayer("b", m=10, k=4, n=10)])
        run = Simulator(small_config).run_network(net)
        total = energy_of_run(run)
        by_hand = energy_of_result(run["a"]) + energy_of_result(run["b"])
        assert total == by_hand
