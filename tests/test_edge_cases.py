"""Edge cases across modules that mainline tests don't reach."""

import pytest

from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.base import AddressLayout, OperandSlice
from repro.dataflow.factory import engine_for_gemm
from repro.engine.tracefiles import dram_request_stream
from repro.errors import MappingError, SimulationError
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet
from repro.noc.cost import layer_noc_cost
from repro.topology.layer import GemmLayer


class TestSingleFoldLayers:
    """Layers that fit the array in one fold exercise boundary branches."""

    def config(self):
        return HardwareConfig(
            array_rows=16, array_cols=16,
            ifmap_sram_kb=64, filter_sram_kb=64, ofmap_sram_kb=32,
        )

    def test_dram_request_stream_single_fold(self):
        engine = engine_for_gemm(8, 8, 8, Dataflow.OUTPUT_STATIONARY, 16, 16)
        traffic = compute_dram_traffic(engine, BufferSet.from_config(self.config()), 1)
        assert len(traffic.fold_cycles) == 1
        requests = list(dram_request_stream(traffic, AddressLayout(m=8, k=8, n=8)))
        reads = [r for r in requests if not r.is_write]
        writes = [r for r in requests if r.is_write]
        assert reads and writes
        # Single fold: the writeback drains after the fold's own window.
        assert min(w.cycle for w in writes) >= traffic.fold_cycles[0]

    def test_single_fold_peak_bandwidth_defined(self):
        engine = engine_for_gemm(4, 4, 4, Dataflow.WEIGHT_STATIONARY, 16, 16)
        traffic = compute_dram_traffic(engine, BufferSet.from_config(self.config()), 1)
        assert traffic.bandwidth.peak_read_bw > 0
        assert traffic.bandwidth.peak_write_bw > 0

    def test_one_by_one_array(self):
        """The degenerate 1x1 'array' is a scalar MAC; everything folds."""
        engine = engine_for_gemm(3, 2, 3, Dataflow.OUTPUT_STATIONARY, 1, 1)
        assert engine.plan.num_folds == 9
        assert engine.total_cycles() == 9 * (2 * 1 + 1 + 2 - 2)
        assert engine.mapping_utilization() == 1.0


class TestOperandSliceValidation:
    def test_rejects_unknown_stream(self):
        with pytest.raises(MappingError, match="unknown operand stream"):
            OperandSlice(stream="psum", slice_id=0, elements=1)

    def test_rejects_zero_elements(self):
        with pytest.raises(ValueError):
            OperandSlice(stream="ifmap", slice_id=0, elements=0)


class TestNocEdgeCases:
    def test_rectangular_grid_costs(self):
        layer = GemmLayer("g", m=64, k=16, n=64)
        tall = layer_noc_cost(layer, HardwareConfig(
            array_rows=8, array_cols=8, partition_rows=4, partition_cols=1,
            ifmap_sram_kb=64, filter_sram_kb=64, ofmap_sram_kb=32,
        ))
        wide = layer_noc_cost(layer, HardwareConfig(
            array_rows=8, array_cols=8, partition_rows=1, partition_cols=4,
            ifmap_sram_kb=64, filter_sram_kb=64, ofmap_sram_kb=32,
        ))
        assert tall.total_byte_hops > 0 and wide.total_byte_hops > 0
        # Under OS, the 4x1 grid slices S_R while 1x4 slices S_C; on this
        # symmetric layer the grand totals mirror, but the per-stream
        # components swap roles.
        assert tall.ifmap_byte_hops == wide.filter_byte_hops
        assert tall.filter_byte_hops == wide.ifmap_byte_hops
        assert tall.ifmap_byte_hops != tall.filter_byte_hops

    def test_grid_larger_than_workload(self):
        tiny = GemmLayer("tiny", m=1, k=1, n=1)
        cost = layer_noc_cost(tiny, HardwareConfig(
            array_rows=8, array_cols=8, partition_rows=4, partition_cols=4,
            ifmap_sram_kb=16, filter_sram_kb=16, ofmap_sram_kb=16,
        ))
        assert cost.total_byte_hops > 0  # one partition worked, rest idle


class TestDegenerateGemms:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (1, 100, 1), (100, 1, 1), (1, 1, 100)])
    def test_vector_like_layers_simulate(self, dims, small_config):
        from repro.engine.simulator import Simulator

        m, k, n = dims
        result = Simulator(small_config).run_layer(GemmLayer("v", m=m, k=k, n=n))
        assert result.macs == m * k * n
        assert result.total_cycles >= 2

    def test_vector_like_layers_validate_cross_model(self):
        from repro.golden.validate import validate_configuration

        for dims in [(1, 1, 1), (1, 17, 1), (9, 1, 9)]:
            for dataflow in Dataflow:
                report = validate_configuration(*dims, dataflow, 4, 4)
                assert report.passed, report.describe()


class TestScaleOutDegenerate:
    def test_grid_row_exceeding_sr_leaves_idle_rows(self):
        from repro.config.presets import paper_scaling_config
        from repro.engine.scaleout import ScaleOutSimulator

        layer = GemmLayer("short", m=3, k=16, n=64)  # S_R = 3 < P_R = 8
        config = paper_scaling_config(8, 8, 8, 2)
        result = ScaleOutSimulator(config).run_layer(layer)
        assert result.macs == layer.macs
        assert result.compute_utilization < 0.5  # most partitions idle
