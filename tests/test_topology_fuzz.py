"""Fuzz the topology CSV parser: bad input must fail *predictably*.

Whatever bytes arrive, :func:`parse_topology_text` may only raise
:class:`TopologyError` — never a bare ``ValueError``/``KeyError``/
``IndexError`` leaking from the implementation.  Robust sweeps rely on
this to classify failures by exit code.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, TopologyError
from repro.topology.parser import TOPOLOGY_HEADER, parse_topology_text

# Printable-ish soup plus the characters that matter to a CSV parser.
_cell = st.text(
    alphabet=st.sampled_from("abc019 -._;:%\t"),
    max_size=6,
)
_row = st.lists(_cell, min_size=0, max_size=12).map(",".join)
_csv_text = st.lists(_row, min_size=0, max_size=8).map("\n".join)


def _assert_only_topology_error(text):
    try:
        network = parse_topology_text(text)
    except TopologyError:
        pass  # the one sanctioned failure mode
    else:
        assert len(network) >= 1


@settings(max_examples=200)
@given(text=_csv_text)
def test_random_csv_soup_raises_only_topology_error(text):
    _assert_only_topology_error(text)


@settings(max_examples=100)
@given(
    rows=st.lists(
        st.lists(st.integers(-5, 5).map(str), min_size=1, max_size=10),
        min_size=1,
        max_size=5,
    )
)
def test_numeric_rows_with_wrong_shape_raise_only_topology_error(rows):
    """Near-miss inputs: right character class, wrong arity or range."""
    body = "\n".join("L{},{}".format(i, ",".join(r)) for i, r in enumerate(rows))
    _assert_only_topology_error(",".join(TOPOLOGY_HEADER) + "\n" + body)


@settings(max_examples=50)
@given(
    dims=st.lists(st.integers(1, 64), min_size=8, max_size=8),
    mutate_at=st.integers(0, 7),
    garbage=st.sampled_from(["", "x", "-3", "0", "1.5", " "]),
)
def test_single_field_corruption_raises_only_topology_error(dims, mutate_at, garbage):
    """Take a valid row and corrupt exactly one field."""
    fields = [str(d) for d in dims]
    fields[mutate_at] = garbage
    _assert_only_topology_error("corrupt," + ",".join(fields) + ",")


@pytest.mark.parametrize(
    "text",
    [
        "",
        ",".join(TOPOLOGY_HEADER),
        "layer,1,1,1",  # too few fields
        "layer,3,3,3,1,1,64,one,",  # non-integer
        "layer,0,3,3,1,1,64,1,",  # dim < 1
    ],
)
def test_known_bad_inputs(text):
    with pytest.raises(TopologyError):
        parse_topology_text(text)


def test_topology_error_is_a_repro_error():
    assert issubclass(TopologyError, ReproError)
