"""Unit tests for ExecutionPolicy: validation, backoff, retry gating."""

import pytest

from repro.robust.policy import COLLECT, FAIL_FAST, ExecutionPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = ExecutionPolicy()
        assert policy.max_attempts == 1
        assert policy.mode == "collect"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
            {"timeout": 0},
            {"timeout": -1.0},
            {"max_failures": 0},
            {"mode": "explode"},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_presets(self):
        assert FAIL_FAST.mode == "fail_fast"
        assert COLLECT.mode == "collect"


class TestBackoff:
    def test_exponential_growth(self):
        policy = ExecutionPolicy(
            max_retries=5, backoff_base=1.0, backoff_factor=2.0, jitter=0.0
        )
        delays = [policy.backoff_delay(attempt) for attempt in (1, 2, 3)]
        assert delays == [1.0, 2.0, 4.0]

    def test_clamped_at_backoff_max(self):
        policy = ExecutionPolicy(
            max_retries=10, backoff_base=1.0, backoff_factor=10.0,
            backoff_max=5.0, jitter=0.0,
        )
        assert policy.backoff_delay(4) == 5.0

    def test_jitter_is_deterministic(self):
        policy = ExecutionPolicy(max_retries=3, backoff_base=1.0, jitter=0.5)
        first = policy.backoff_delay(2, key="point-a")
        second = policy.backoff_delay(2, key="point-a")
        assert first == second

    def test_jitter_varies_by_key(self):
        policy = ExecutionPolicy(max_retries=3, backoff_base=1.0, jitter=0.5)
        assert policy.backoff_delay(2, key="a") != policy.backoff_delay(2, key="b")

    def test_jitter_stays_bounded(self):
        policy = ExecutionPolicy(max_retries=3, backoff_base=1.0, jitter=0.25)
        for key in map(str, range(50)):
            delay = policy.backoff_delay(1, key=key)
            assert 0.75 <= delay <= 1.25

    def test_rejects_attempt_zero(self):
        with pytest.raises(ValueError):
            ExecutionPolicy().backoff_delay(0)


class TestShouldRetry:
    def test_exhausted_attempts(self):
        policy = ExecutionPolicy(max_retries=2)
        exc = RuntimeError("x")
        assert policy.should_retry(exc, attempt=1)
        assert policy.should_retry(exc, attempt=2)
        assert not policy.should_retry(exc, attempt=3)

    def test_non_matching_exception_not_retried(self):
        policy = ExecutionPolicy(max_retries=5, retry_on=(TimeoutError,))
        assert not policy.should_retry(ValueError("x"), attempt=1)
        assert policy.should_retry(TimeoutError("x"), attempt=1)
