"""Blessed golden baselines: bless, check, drift, tamper-evidence."""

import json

import pytest

from repro.errors import VerificationError
from repro.verify.baseline import (
    assert_baselines,
    bless,
    blessed_experiments,
    check_baselines,
    load_baseline,
)

REASON = "unit-test blessing"


class TestBless:
    def test_bless_requires_a_reason(self, tmp_path):
        with pytest.raises(VerificationError, match="reason"):
            bless(["table1"], reason="   ", baseline_dir=tmp_path)

    def test_bless_unknown_experiment_is_rejected(self, tmp_path):
        with pytest.raises(VerificationError, match="unknown experiment"):
            bless(["not-a-figure"], reason=REASON, baseline_dir=tmp_path)

    def test_bless_writes_a_self_verifying_record(self, tmp_path):
        (path,) = bless(["table1"], reason=REASON, baseline_dir=tmp_path)
        record = load_baseline(path)
        assert record["experiment"] == "table1"
        assert record["reason"] == REASON
        assert record["rows"]
        assert blessed_experiments(tmp_path) == ["table1"]


class TestCheck:
    def test_blessed_experiment_passes(self, tmp_path):
        bless(["table1", "table3"], reason=REASON, baseline_dir=tmp_path)
        report = check_baselines(baseline_dir=tmp_path)
        assert report.passed
        assert report.checked == ["table1", "table3"]

    def test_empty_store_protects_nothing_and_fails(self, tmp_path):
        report = check_baselines(baseline_dir=tmp_path)
        assert not report.passed
        assert report.missing  # every known experiment is unprotected

    def test_named_missing_baseline_is_reported(self, tmp_path):
        bless(["table1"], reason=REASON, baseline_dir=tmp_path)
        report = check_baselines(["table1", "fig4"], baseline_dir=tmp_path)
        assert report.missing == ["fig4"]
        assert not report.passed

    def test_drift_is_detected_and_named(self, tmp_path):
        (path,) = bless(["table1"], reason=REASON, baseline_dir=tmp_path)
        record = json.loads(path.read_text())
        key = next(iter(record["rows"][0]))
        record["rows"][0][key] = "drifted-value"
        # Recompute the digest so the record reads as *drift*, not tamper.
        from repro.verify.baseline import _rows_digest

        record["digest"] = _rows_digest(record["experiment"], record["rows"])
        path.write_text(json.dumps(record))
        report = check_baselines(["table1"], baseline_dir=tmp_path)
        assert "table1" in report.drifted
        assert "drifted-value" in report.drifted["table1"]

    def test_assert_baselines_raises_with_rebless_instructions(self, tmp_path):
        with pytest.raises(VerificationError, match="--bless"):
            assert_baselines(["table1"], baseline_dir=tmp_path)

    def test_rel_tol_absorbs_small_numeric_drift(self, tmp_path):
        (path,) = bless(["fig9a"], reason=REASON, baseline_dir=tmp_path)
        record = json.loads(path.read_text())
        changed = False
        for row in record["rows"]:
            for key, value in row.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool) and value:
                    row[key] = value * (1 + 1e-9)
                    changed = True
        assert changed, "fig9a rows carry no numeric field to perturb"
        from repro.verify.baseline import _rows_digest

        record["digest"] = _rows_digest(record["experiment"], record["rows"])
        path.write_text(json.dumps(record))
        strict = check_baselines(["fig9a"], baseline_dir=tmp_path, rel_tol=0.0)
        relaxed = check_baselines(["fig9a"], baseline_dir=tmp_path, rel_tol=1e-6)
        assert not strict.passed
        assert relaxed.passed


class TestTamper:
    def test_hand_edited_rows_are_rejected(self, tmp_path):
        (path,) = bless(["table1"], reason=REASON, baseline_dir=tmp_path)
        record = json.loads(path.read_text())
        key = next(iter(record["rows"][0]))
        record["rows"][0][key] = "tampered"
        path.write_text(json.dumps(record))  # digest left stale
        with pytest.raises(VerificationError, match="corrupt or hand-edited"):
            load_baseline(path)

    def test_unreadable_record_is_rejected(self, tmp_path):
        bad = tmp_path / "table1.json"
        bad.write_text("{ nope")
        with pytest.raises(VerificationError, match="unreadable"):
            load_baseline(bad)

    def test_missing_fields_are_rejected(self, tmp_path):
        bad = tmp_path / "table1.json"
        bad.write_text(json.dumps({"experiment": "table1"}))
        with pytest.raises(VerificationError, match="missing"):
            load_baseline(bad)


class TestRepositoryBaselines:
    """The checked-in ``baselines/`` store must stay green on HEAD."""

    def test_all_experiments_are_blessed_and_clean(self):
        from pathlib import Path

        from repro.experiments.registry import available_experiments

        store = Path(__file__).resolve().parent.parent / "baselines"
        blessed = blessed_experiments(store)
        assert blessed == available_experiments()
        report = check_baselines(baseline_dir=store)
        assert report.passed, report.summary()
