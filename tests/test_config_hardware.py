"""Unit tests for HardwareConfig and Dataflow."""

import pytest

from repro.config.hardware import Dataflow, HardwareConfig
from repro.errors import ConfigError


class TestDataflow:
    @pytest.mark.parametrize("text,expected", [
        ("os", Dataflow.OUTPUT_STATIONARY),
        ("WS", Dataflow.WEIGHT_STATIONARY),
        (" is ", Dataflow.INPUT_STATIONARY),
    ])
    def test_from_string(self, text, expected):
        assert Dataflow.from_string(text) is expected

    def test_from_string_rejects_unknown(self):
        with pytest.raises(ConfigError, match="legal values"):
            Dataflow.from_string("nvdla")

    def test_value_roundtrip(self):
        for member in Dataflow:
            assert Dataflow.from_string(member.value) is member


class TestHardwareConfig:
    def test_defaults_are_valid(self):
        config = HardwareConfig()
        assert config.num_macs == 32 * 32
        assert config.is_monolithic

    def test_num_macs(self):
        assert HardwareConfig(array_rows=16, array_cols=8).num_macs == 128

    def test_total_macs_includes_partitions(self):
        config = HardwareConfig(array_rows=8, array_cols=8, partition_rows=2, partition_cols=4)
        assert config.num_partitions == 8
        assert config.total_macs == 512
        assert not config.is_monolithic

    def test_sram_byte_conversion(self):
        config = HardwareConfig(ifmap_sram_kb=3)
        assert config.ifmap_sram_bytes == 3 * 1024

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            HardwareConfig(array_rows=0)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            HardwareConfig(ifmap_offset=-1)

    def test_rejects_non_dataflow(self):
        with pytest.raises(ConfigError):
            HardwareConfig(dataflow="os")  # must be the enum

    def test_with_array_returns_copy(self):
        base = HardwareConfig()
        changed = base.with_array(4, 4)
        assert changed.array_rows == 4
        assert base.array_rows == 32  # original untouched

    def test_with_partitions(self):
        changed = HardwareConfig().with_partitions(2, 2)
        assert changed.num_partitions == 4

    def test_with_dataflow(self):
        changed = HardwareConfig().with_dataflow(Dataflow.WEIGHT_STATIONARY)
        assert changed.dataflow is Dataflow.WEIGHT_STATIONARY

    def test_partition_config_divides_sram(self):
        config = HardwareConfig(
            partition_rows=2, partition_cols=2,
            ifmap_sram_kb=512, filter_sram_kb=512, ofmap_sram_kb=256,
        )
        per = config.partition_config()
        assert per.is_monolithic
        assert per.ifmap_sram_kb == 128
        assert per.filter_sram_kb == 128
        assert per.ofmap_sram_kb == 64

    def test_partition_config_monolithic_is_identity(self):
        config = HardwareConfig()
        assert config.partition_config() is config

    def test_partition_config_floors_sram_at_1kb(self):
        config = HardwareConfig(partition_rows=64, partition_cols=64, ifmap_sram_kb=16)
        assert config.partition_config().ifmap_sram_kb == 1

    def test_as_dict_contains_table1_keys(self):
        as_dict = HardwareConfig().as_dict()
        for key in ("ArrayHeight", "ArrayWidth", "IfmapSramSz", "Dataflow"):
            assert key in as_dict

    def test_shape(self):
        assert HardwareConfig(array_rows=4, array_cols=6).shape() == (4, 6)

    def test_describe_mentions_geometry(self):
        text = HardwareConfig(array_rows=4, array_cols=6).describe()
        assert "4x6" in text and "os" in text

    def test_frozen(self):
        with pytest.raises(Exception):
            HardwareConfig().array_rows = 5
