"""Unit tests for the built-in workloads."""

import pytest

from repro.topology.layer import ConvLayer, GemmLayer
from repro.workloads.alexnet import alexnet
from repro.workloads.language import PAPER_TF0_LAYER, TABLE_IV_DIMS, language_layer, language_models
from repro.workloads.registry import available_workloads, get_workload
from repro.workloads.resnet50 import PAPER_CBA3_LAYER, fig10_resnet_layers, resnet50


class TestResnet50:
    def test_layer_count(self):
        net = resnet50()
        # 1 stem + 16 bottlenecks x 3 convs + 4 shortcut projections + FC
        assert len(net) == 1 + 16 * 3 + 4 + 1

    def test_paper_layer_exists(self):
        assert PAPER_CBA3_LAYER in resnet50()

    def test_stem_shape(self):
        conv1 = resnet50()["Conv1"]
        assert conv1.num_filters == 64
        assert conv1.stride == 2
        assert conv1.ofmap_h == 112

    def test_bottleneck_channel_plumbing(self):
        net = resnet50()
        assert net["CB2a_1"].channels == 64
        assert net["CB2a_3"].num_filters == 256
        assert net["IB2b_1"].channels == 256

    def test_spatial_sizes_shrink_by_stage(self):
        net = resnet50()
        assert net["IB2b_2"].ofmap_h == 56
        assert net["IB3b_2"].ofmap_h == 28
        assert net["IB4b_2"].ofmap_h == 14
        assert net["IB5b_2"].ofmap_h == 7

    def test_downsampling_blocks_stride(self):
        net = resnet50()
        assert net["CB3a_1"].stride == 2
        assert net["CB3a_sc"].stride == 2
        assert net["CB2a_1"].stride == 1

    def test_fc_layer(self):
        fc = resnet50()["FC1000"]
        assert fc.is_fully_connected
        assert fc.gemm_dims() == (1, 2048, 1000)

    def test_total_macs_in_expected_range(self):
        # ResNet-50 is ~3.8 GMACs; padding-included IFMAPs push it a bit up.
        macs = resnet50().total_macs
        assert 3.0e9 < macs < 6.0e9

    def test_fig10_selection(self):
        net = fig10_resnet_layers()
        assert len(net) == 10
        assert net.layer_names()[0] == "Conv1"
        assert net.layer_names()[-1] == "FC1000"


class TestLanguageModels:
    def test_table_iv_complete(self):
        assert set(TABLE_IV_DIMS) == {
            "GNMT0", "GNMT1", "GNMT2", "GNMT3", "DB0", "DB1", "TF0", "TF1", "NCF0", "NCF1",
        }

    @pytest.mark.parametrize("name,dims", sorted(TABLE_IV_DIMS.items()))
    def test_layer_matches_table(self, name, dims):
        sr, t, sc = dims
        layer = language_layer(name)
        assert isinstance(layer, GemmLayer)
        assert layer.gemm_dims() == (sr, t, sc)

    def test_tf0_is_the_fig9_layer(self):
        layer = language_layer(PAPER_TF0_LAYER)
        assert layer.gemm_dims() == (31999, 84, 1024)

    def test_unknown_layer(self):
        with pytest.raises(KeyError, match="Table IV"):
            language_layer("BERT0")

    def test_network_has_all_layers(self):
        net = language_models()
        assert len(net) == 10


class TestAlexnet:
    def test_layers(self):
        net = alexnet()
        assert len(net) == 8
        assert isinstance(net["Conv1"], ConvLayer)
        assert net["FC8"].is_fully_connected

    def test_conv1_geometry(self):
        conv1 = alexnet()["Conv1"]
        assert conv1.ofmap_h == 55  # (227-11)/4 + 1


class TestRegistry:
    def test_available(self):
        names = available_workloads()
        assert names == sorted(names)
        for required in ("alexnet", "language-models", "resnet50"):
            assert required in names

    def test_lookup(self):
        assert get_workload("ResNet50").name == "resnet50"

    def test_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("inception-v9")
