"""The crash flight recorder: bounded rings, atomic dumps, rendering."""

from __future__ import annotations

import json
import logging
import sys

import pytest

from repro.obs import flight
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    load_flight,
    render_flight_summary,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


@pytest.fixture(autouse=True)
def _no_global_recorder():
    flight.disarm()
    yield
    flight.disarm()


def make_armed(tmp_path, **kwargs):
    tracer = Tracer()
    registry = MetricsRegistry()
    registry.enable()
    recorder = FlightRecorder(tmp_path, **kwargs)
    recorder.arm(tracer, registry)
    return recorder, tracer, registry


class TestRecorder:
    def test_arm_captures_spans_logs_and_metrics(self, tmp_path):
        recorder, tracer, registry = make_armed(tmp_path)
        assert tracer.enabled  # arming turns the tracer on
        with tracer.span("work", category="test", x=1):
            pass
        logging.getLogger("repro.test").warning("something leaned over")
        registry.counter("sim.cycles").add(42)

        path = recorder.dump("test crash", exit_code=13)
        doc = json.loads(path.read_text())
        assert doc["schema"] == FLIGHT_SCHEMA
        assert doc["reason"] == "test crash"
        assert doc["exit_code"] == 13
        assert [e["name"] for e in doc["traceEvents"]] == ["work"]
        assert any("leaned over" in r["message"] for r in doc["logs"])
        assert doc["counters"]["sim.cycles"] == 42
        recorder.disarm()

    def test_rings_are_bounded(self, tmp_path):
        recorder, tracer, _ = make_armed(tmp_path, span_capacity=4, log_capacity=2)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
            logging.getLogger("repro.test").warning("log %d", index)
        path = recorder.dump("bounded")
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 4
        assert [e["name"] for e in doc["traceEvents"]] == ["s6", "s7", "s8", "s9"]
        assert [r["message"] for r in doc["logs"]] == ["log 8", "log 9"]
        recorder.disarm()

    def test_dump_is_idempotent_unless_forced(self, tmp_path):
        recorder, _tracer, _ = make_armed(tmp_path)
        first = recorder.dump("one")
        assert recorder.dump("two") == first
        assert len(list(tmp_path.glob("flight-*.json"))) == 1
        second = recorder.dump("three", force=True)
        assert second != first
        assert len(list(tmp_path.glob("flight-*.json"))) == 2
        recorder.disarm()

    def test_dump_never_raises_on_unwritable_directory(self, tmp_path):
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("file in the way")
        recorder = FlightRecorder(blocked)
        recorder.arm(Tracer())
        assert recorder.dump("doomed") is None
        recorder.disarm()

    def test_disarm_detaches_the_taps(self, tmp_path):
        recorder, tracer, _ = make_armed(tmp_path)
        recorder.disarm()
        with tracer.span("after"):
            pass
        logging.getLogger("repro.test").warning("after disarm")
        path = recorder.dump("post")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] == []
        assert all("after disarm" != r["message"] for r in doc["logs"])


class TestProcessWide:
    def test_arm_is_idempotent_and_dump_routes(self, tmp_path):
        tracer = Tracer()
        recorder = flight.arm(tmp_path, tracer, install_hook=False)
        assert flight.arm(tmp_path / "elsewhere", tracer) is recorder
        assert flight.get_recorder() is recorder
        path = flight.dump("module-level", exit_code=14)
        assert path is not None and path.parent == tmp_path

    def test_dump_without_recorder_is_noop(self):
        assert flight.dump("nothing armed") is None

    def test_excepthook_dumps_and_chains(self, tmp_path, capsys):
        seen = {}

        def prior(exc_type, exc, tb):
            seen["type"] = exc_type

        original = sys.excepthook
        sys.excepthook = prior
        try:
            flight.arm(tmp_path, Tracer())
            sys.excepthook(RuntimeError, RuntimeError("boom"), None)
            dumps = list(tmp_path.glob("flight-*.json"))
            assert len(dumps) == 1
            assert "RuntimeError" in json.loads(dumps[0].read_text())["reason"]
            assert seen["type"] is RuntimeError  # chained to the prior hook
            flight.disarm()
            assert sys.excepthook is prior  # restored
        finally:
            sys.excepthook = original

    def test_flight_dir_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(flight.FLIGHT_DIR_ENV, raising=False)
        assert flight.flight_dir_from_env() is None
        monkeypatch.setenv(flight.FLIGHT_DIR_ENV, str(tmp_path))
        assert flight.flight_dir_from_env() == tmp_path


class TestLoadAndRender:
    def test_load_validates_schema(self, tmp_path):
        bogus = tmp_path / "not-flight.json"
        bogus.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="flight"):
            load_flight(bogus)

    def test_render_summary_shows_crash_spans_and_log_tail(self, tmp_path):
        recorder, tracer, registry = make_armed(tmp_path)
        with tracer.span("engine.run_layer"):
            pass
        registry.counter("sim.cycles").add(7)
        logging.getLogger("repro.test").error("the last words")
        path = recorder.dump("WorkerCrashError: pool lost", exit_code=13)
        recorder.disarm()

        text = render_flight_summary(load_flight(path))
        assert "WorkerCrashError" in text
        assert "exit code 13" in text
        assert "engine.run_layer" in text
        assert "sim.cycles" in text
        assert "the last words" in text
