"""Unit + property tests for the SRAM bandwidth report."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.dataflow.factory import engine_for_gemm
from repro.engine.sram_bandwidth import demand_histogram, sram_bandwidth_report

DIM = st.integers(1, 40)
ARR = st.integers(1, 10)


class TestReport:
    def engine(self, dataflow=Dataflow.OUTPUT_STATIONARY):
        return engine_for_gemm(20, 12, 16, dataflow, 8, 8)

    def test_averages_match_totals(self, dataflow):
        engine = self.engine(dataflow)
        report = sram_bandwidth_report(engine)
        counts = engine.layer_counts()
        cycles = engine.total_cycles()
        assert report.total_cycles == cycles
        assert report.avg_ifmap_read == pytest.approx(counts.ifmap_reads / cycles)
        assert report.avg_filter_read == pytest.approx(counts.filter_reads / cycles)
        assert report.avg_ofmap_write == pytest.approx(counts.ofmap_writes / cycles)

    def test_max_bounded_by_array_edge(self, dataflow):
        engine = self.engine(dataflow)
        report = sram_bandwidth_report(engine)
        bound = max(engine.array_rows, engine.array_cols)
        assert report.max_ifmap_read <= bound
        assert report.max_filter_read <= bound
        assert report.max_ofmap_write <= engine.array_cols

    def test_os_peaks_hit_the_mapped_edges(self):
        # A workload that fills the array reaches one read per row/col.
        engine = engine_for_gemm(8, 20, 8, Dataflow.OUTPUT_STATIONARY, 8, 8)
        report = sram_bandwidth_report(engine)
        assert report.max_ifmap_read == 8
        assert report.max_filter_read == 8
        assert report.max_ofmap_write == 8

    @given(DIM, DIM, DIM, ARR, ARR, st.sampled_from(list(Dataflow)))
    @settings(max_examples=40)
    def test_avg_never_exceeds_max(self, m, k, n, rows, cols, dataflow):
        engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
        report = sram_bandwidth_report(engine)
        assert report.avg_ifmap_read <= report.max_ifmap_read
        assert report.avg_filter_read <= report.max_filter_read
        assert report.avg_ofmap_write <= report.max_ofmap_write


class TestHistogram:
    def test_histogram_sums_to_cycles(self, dataflow):
        engine = engine_for_gemm(20, 12, 16, dataflow, 8, 8)
        for stream in ("ifmap", "filter", "ofmap"):
            histogram = demand_histogram(engine, stream)
            assert histogram.sum() == engine.total_cycles()

    def test_histogram_weighted_sum_is_total_traffic(self):
        engine = engine_for_gemm(20, 12, 16, Dataflow.OUTPUT_STATIONARY, 8, 8)
        histogram = demand_histogram(engine, "ifmap")
        weighted = sum(d * count for d, count in enumerate(histogram))
        assert weighted == engine.layer_counts().ifmap_reads

    def test_unknown_stream_rejected(self):
        engine = engine_for_gemm(4, 4, 4, Dataflow.OUTPUT_STATIONARY, 4, 4)
        with pytest.raises(ValueError):
            demand_histogram(engine, "psum")
