"""Tests for layer-pipelined scale-out execution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import paper_scaling_config
from repro.engine.pipeline import balance_stages, run_pipelined
from repro.errors import SimulationError
from repro.topology.layer import GemmLayer
from repro.topology.network import Network
from repro.workloads.alexnet import alexnet


class TestBalanceStages:
    def test_single_stage_takes_everything(self):
        assert balance_stages([1, 2, 3], 1) == [(0, 3)]

    def test_even_split(self):
        assert balance_stages([1, 1, 1, 1], 2) == [(0, 2), (2, 4)]

    def test_heavy_head_isolated(self):
        bounds = balance_stages([100, 1, 1, 1], 2)
        assert bounds == [(0, 1), (1, 4)]

    def test_ranges_cover_exactly(self):
        bounds = balance_stages([3, 1, 4, 1, 5, 9, 2, 6], 3)
        flat = []
        for start, end in bounds:
            flat.extend(range(start, end))
        assert flat == list(range(8))

    def test_rejects_more_stages_than_items(self):
        with pytest.raises(SimulationError):
            balance_stages([1, 2], 3)

    @settings(max_examples=40)
    @given(
        st.lists(st.integers(1, 100), min_size=1, max_size=20),
        st.integers(1, 6),
    )
    def test_dp_is_optimal_bottleneck(self, costs, num_stages):
        """The DP's bottleneck is never worse than any greedy split."""
        if num_stages > len(costs):
            num_stages = len(costs)
        bounds = balance_stages(costs, num_stages)
        assert len(bounds) == num_stages
        bottleneck = max(sum(costs[a:b]) for a, b in bounds)
        # Lower bounds every partition must respect:
        assert bottleneck >= max(costs)
        assert bottleneck >= sum(costs) / num_stages - 1e-9
        # And all stages non-empty:
        assert all(b > a for a, b in bounds)


class TestRunPipelined:
    def grid_config(self):
        return paper_scaling_config(16, 16, 2, 2)  # 4 partitions

    def test_latency_is_sum_interval_is_max(self):
        result = run_pipelined(alexnet(), self.grid_config(), num_stages=2)
        assert result.latency == sum(stage.latency for stage in result.stages)
        assert result.interval == max(stage.latency for stage in result.stages)
        assert result.bottleneck.latency == result.interval

    def test_stage_layers_cover_network(self):
        net = alexnet()
        result = run_pipelined(net, self.grid_config(), num_stages=2)
        covered = [name for stage in result.stages for name in stage.layer_names]
        assert covered == net.layer_names()

    def test_macs_conserved(self):
        net = alexnet()
        result = run_pipelined(net, self.grid_config(), num_stages=2)
        assert sum(stage.macs for stage in result.stages) == net.total_macs

    def test_partitions_divided_among_stages(self):
        result = run_pipelined(alexnet(), self.grid_config(), num_stages=2)
        assert sum(stage.num_partitions for stage in result.stages) == 4

    def test_single_stage_equals_data_parallel(self):
        config = self.grid_config()
        result = run_pipelined(alexnet(), config, num_stages=1)
        assert result.interval == result.serial_cycles
        assert result.throughput_speedup == pytest.approx(1.0)

    def test_latency_at_least_serial_interval(self):
        """Per-sample latency through smaller stage grids can't beat the
        full grid working on every layer."""
        result = run_pipelined(alexnet(), self.grid_config(), num_stages=2)
        assert result.latency >= result.serial_cycles * 0.5  # sanity floor
        assert result.interval <= result.latency

    def test_imbalance_at_least_one(self):
        result = run_pipelined(alexnet(), self.grid_config(), num_stages=4)
        assert result.imbalance >= 1.0

    def test_too_many_stages_rejected(self):
        with pytest.raises(SimulationError):
            run_pipelined(alexnet(), self.grid_config(), num_stages=5)

    def test_pipelining_can_beat_data_parallel_throughput(self):
        """The payoff case: layers that fold awkwardly on the full grid
        pipeline well on smaller per-stage grids."""
        layers = [GemmLayer(f"g{i}", m=68, k=64, n=68) for i in range(4)]
        net = Network("awkward", layers)
        config = paper_scaling_config(16, 16, 4, 4)  # 16 partitions
        result = run_pipelined(net, config, num_stages=4)
        assert result.throughput_speedup > 1.0
