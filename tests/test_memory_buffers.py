"""Unit tests for the double-buffered SRAM model."""

import pytest

from repro.config.hardware import HardwareConfig
from repro.memory.buffers import BufferSet, DoubleBuffer


class TestDoubleBuffer:
    def test_working_half(self):
        buffer = DoubleBuffer("ifmap", capacity_bytes=1024)
        assert buffer.working_bytes == 512

    def test_holds_boundary(self):
        buffer = DoubleBuffer("ifmap", capacity_bytes=1024)
        assert buffer.holds(512)
        assert not buffer.holds(513)

    def test_odd_capacity_floors(self):
        assert DoubleBuffer("x", capacity_bytes=3).working_bytes == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            DoubleBuffer("x", capacity_bytes=0)


class TestBufferSet:
    def test_from_config(self):
        config = HardwareConfig(ifmap_sram_kb=4, filter_sram_kb=2, ofmap_sram_kb=1)
        buffers = BufferSet.from_config(config)
        assert buffers.ifmap.capacity_bytes == 4096
        assert buffers.filter.capacity_bytes == 2048
        assert buffers.ofmap.capacity_bytes == 1024

    def test_names(self):
        buffers = BufferSet.from_config(HardwareConfig())
        assert buffers.ifmap.name == "ifmap"
        assert buffers.filter.name == "filter"
        assert buffers.ofmap.name == "ofmap"

    def test_total_bytes(self):
        config = HardwareConfig(ifmap_sram_kb=4, filter_sram_kb=2, ofmap_sram_kb=1)
        assert BufferSet.from_config(config).total_bytes == 7 * 1024
