"""The error hierarchy: every subclass is raised from its documented site.

Each case triggers one :mod:`repro.errors` class through the public API
path its docstring documents, so ``except ReproError`` remains a true
catch-all for library failures and each class keeps a live raise site.
"""

import pytest

import repro.errors as errors_module
from repro.errors import (
    CheckpointError,
    CircuitOpenError,
    ConfigError,
    DramError,
    ExecutionError,
    InstrumentKindError,
    InvariantError,
    LedgerCorruptionError,
    MappingError,
    PerfRegressionError,
    PointTimeoutError,
    ReproError,
    ResilienceError,
    SearchError,
    ServiceError,
    ServiceUnavailableError,
    SimulationError,
    StorageError,
    StoreCorruptionError,
    SupervisorExhaustedError,
    SweepError,
    SweepInterrupted,
    TopologyError,
    VerificationError,
    WorkerCrashError,
)


def _exit_immediately(x):
    """A point that always kills its worker process (module-level so it
    pickles by reference into the pool)."""
    import os

    os._exit(1)


class _SignalParentThenHang:
    """First point SIGINTs the supervising parent, then sleeps so the
    sweep has undrained work when the interrupt is honoured."""

    def __call__(self, x):
        import os
        import signal
        import time

        if x == 1:
            os.kill(os.getppid(), signal.SIGINT)
            time.sleep(2.0)
        else:
            time.sleep(0.2)
        return {"sq": x * x}


def _raise_config_error():
    from repro.config.hardware import Dataflow

    Dataflow.from_string("bogus")


def _raise_topology_error():
    from repro.topology.parser import parse_topology_text

    parse_topology_text("")


def _raise_mapping_error():
    from repro.dataflow.factory import engine_for_gemm

    engine_for_gemm(8, 8, 8, "not-a-dataflow", 8, 8)


def _raise_simulation_error():
    from repro.config.presets import paper_scaling_config
    from repro.engine.simulator import Simulator

    Simulator(paper_scaling_config(8, 8, 2, 2))  # partitioned config


def _raise_search_error():
    from repro.analytical.multiworkload import WorkloadSet
    from repro.config.hardware import Dataflow

    WorkloadSet(name="empty", layers=(), dataflow=Dataflow.OUTPUT_STATIONARY)


def _raise_dram_error():
    from repro.dram.simulator import DramSimulator
    from repro.dram.timing import DramTiming

    DramSimulator(DramTiming()).run([])


def _raise_point_timeout_error():
    import time

    from repro.robust.executor import execute_point
    from repro.robust.policy import ExecutionPolicy

    record = execute_point(
        lambda: time.sleep(0.8), {}, policy=ExecutionPolicy(timeout=0.05)
    )
    raise record.exception


def _raise_circuit_open_error():
    from repro.robust.executor import execute_grid
    from repro.robust.policy import ExecutionPolicy

    def always(**_):
        raise RuntimeError("down")

    report = execute_grid(
        always,
        [{"a": 1}, {"a": 2}],
        policy=ExecutionPolicy(mode="collect", max_failures=1),
    )
    report.ensure_complete()


def _raise_checkpoint_error():
    from repro.robust.checkpoint import CheckpointStore

    CheckpointStore(__file__, resume=False)  # exists and not resuming


def _raise_invariant_error():
    import dataclasses

    from repro.config.hardware import HardwareConfig
    from repro.engine.simulator import Simulator
    from repro.robust.invariants import check_cycles
    from repro.topology.layer import GemmLayer

    config = HardwareConfig(array_rows=8, array_cols=8)
    layer = GemmLayer("g", m=16, k=8, n=16)
    result = Simulator(config).run_layer(layer)
    check_cycles(
        dataclasses.replace(result, total_cycles=result.total_cycles + 100),
        layer,
        config,
    )


def _raise_resilience_error():
    from repro.resilience.faultmap import FaultMap

    FaultMap.from_spec("partition:not-a-coord")


def _raise_worker_crash_error():
    from repro.robust.policy import ExecutionPolicy
    from repro.robust.supervisor import SupervisorPolicy
    from repro.sweep import run_sweep

    # fail_fast + a point that always kills its worker: after the
    # quarantine threshold and the solo retry, the failure re-raises as
    # WorkerCrashError.
    run_sweep(
        _exit_immediately,
        policy=ExecutionPolicy(mode="fail_fast"),
        workers=2,
        supervisor=SupervisorPolicy(quarantine_after=1),
        x=[1],
    )


def _raise_supervisor_exhausted_error():
    from repro.robust.supervisor import SupervisorPolicy
    from repro.sweep import run_sweep

    # max_restarts=0: the first pool loss exhausts the supervisor.
    run_sweep(
        _exit_immediately,
        workers=2,
        supervisor=SupervisorPolicy(max_restarts=0),
        x=[1],
    )


def _raise_sweep_interrupted():
    from repro.sweep import run_sweep

    # A worker SIGINTs this (supervising) process mid-sweep; the
    # supervisor drains completed futures and raises SweepInterrupted.
    run_sweep(_SignalParentThenHang(), workers=2, x=[1, 2, 3, 4])


def _raise_storage_error():
    import tempfile
    from pathlib import Path

    from repro.utils.atomicio import atomic_write_text

    with tempfile.TemporaryDirectory() as tmp:
        atomic_write_text(Path(tmp) / "missing" / "entry.json", "{}")


def _raise_store_corruption_error():
    import tempfile

    from repro.store.result_store import ResultStore

    with tempfile.NamedTemporaryFile() as handle:
        ResultStore(handle.name)


def _raise_sweep_error():
    from repro.sweep import grid_points

    grid_points(macs=4096)  # scalar where a sequence axis is required


def _raise_ledger_corruption_error():
    import tempfile
    from pathlib import Path

    from repro.store.segment import Segment

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "torn.seg"
        path.write_bytes(b"RSG1 half a segment")
        Segment(path)


def _raise_service_error():
    from repro.serve.jobs import normalize_request

    normalize_request({"kind": "teleport"})


def _raise_verification_error():
    from repro.verify.properties import resolve_properties

    resolve_properties(["no-such-property"])


def _raise_service_unavailable_error():
    import threading

    from repro.serve.client import ServiceClient
    from repro.serve.daemon import ServicePolicy, SimulationService, make_server

    # A draining daemon answers 503; with no retries left the client
    # surfaces it as ServiceUnavailableError.
    service = SimulationService(ServicePolicy(workers=1))
    service.drain(timeout=0.0)
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(host="127.0.0.1", port=server.server_address[1])
        client.submit({"kind": "gemm", "m": 8, "k": 8, "n": 8})
    finally:
        server.shutdown()
        server.server_close()


def _raise_instrument_kind_error():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.enable()
    registry.gauge("obs.shadowed")
    registry.counter("obs.shadowed")  # same name, different kind


def _raise_perf_regression_error():
    from repro.obs.bench import BenchResult, compare

    history = [{"schema": "repro.bench/1",
                "benches": {"gemm_256": {"wall_time_s": 1.0, "counters": {}}}}]
    compare(history, [BenchResult("gemm_256", 2.0)]).raise_on_regression()


DOCUMENTED_SITES = {
    ConfigError: _raise_config_error,
    TopologyError: _raise_topology_error,
    MappingError: _raise_mapping_error,
    SimulationError: _raise_simulation_error,
    SearchError: _raise_search_error,
    DramError: _raise_dram_error,
    PointTimeoutError: _raise_point_timeout_error,
    CircuitOpenError: _raise_circuit_open_error,
    CheckpointError: _raise_checkpoint_error,
    InvariantError: _raise_invariant_error,
    ResilienceError: _raise_resilience_error,
    WorkerCrashError: _raise_worker_crash_error,
    SupervisorExhaustedError: _raise_supervisor_exhausted_error,
    SweepError: _raise_sweep_error,
    SweepInterrupted: _raise_sweep_interrupted,
    StorageError: _raise_storage_error,
    LedgerCorruptionError: _raise_ledger_corruption_error,
    StoreCorruptionError: _raise_store_corruption_error,
    ServiceError: _raise_service_error,
    ServiceUnavailableError: _raise_service_unavailable_error,
    VerificationError: _raise_verification_error,
    InstrumentKindError: _raise_instrument_kind_error,
    PerfRegressionError: _raise_perf_regression_error,
}


def _leaf_error_classes():
    """Every concrete ReproError subclass defined in repro.errors,
    except bases that exist purely to be subclassed."""
    classes = [
        obj
        for obj in vars(errors_module).values()
        if isinstance(obj, type)
        and issubclass(obj, ReproError)
        and obj is not ReproError
        and obj is not ExecutionError  # abstract-ish base for timeout/circuit
    ]
    return sorted(classes, key=lambda cls: cls.__name__)


class TestHierarchy:
    def test_every_class_derives_from_repro_error(self):
        for cls in _leaf_error_classes():
            assert issubclass(cls, ReproError)

    def test_execution_errors_share_a_base(self):
        assert issubclass(PointTimeoutError, ExecutionError)
        assert issubclass(CircuitOpenError, ExecutionError)
        assert issubclass(WorkerCrashError, ExecutionError)
        assert issubclass(SupervisorExhaustedError, WorkerCrashError)
        assert issubclass(SweepInterrupted, ExecutionError)

    def test_every_leaf_class_has_a_documented_site(self):
        missing = [
            cls.__name__ for cls in _leaf_error_classes() if cls not in DOCUMENTED_SITES
        ]
        assert not missing, f"error classes without a tested raise site: {missing}"

    @pytest.mark.parametrize(
        "error_class",
        sorted(DOCUMENTED_SITES, key=lambda cls: cls.__name__),
        ids=lambda cls: cls.__name__,
    )
    def test_raised_from_documented_site(self, error_class):
        with pytest.raises(error_class):
            DOCUMENTED_SITES[error_class]()

    @pytest.mark.parametrize(
        "error_class",
        sorted(DOCUMENTED_SITES, key=lambda cls: cls.__name__),
        ids=lambda cls: cls.__name__,
    )
    def test_catchable_as_repro_error(self, error_class):
        with pytest.raises(ReproError):
            DOCUMENTED_SITES[error_class]()
