"""Degraded-mode simulation: fault maps, re-mapping, end-to-end parity.

The two load-bearing guarantees:

* an all-healthy fault map is *bit-identical* to no fault map at all
  (regression-locking the healthy paths), and
* every degraded run agrees exactly with the analytical remap-plan
  prediction and conserves the layer's MACs.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.runtime import (
    degraded_scaleout_runtime,
    degraded_scaleup_runtime,
    scaleout_runtime,
    scaleup_runtime,
)
from repro.config.hardware import Dataflow, HardwareConfig
from repro.config.parser import dump_config, load_config, parse_config_text
from repro.config.presets import paper_scaling_config
from repro.energy.model import energy_of_result
from repro.engine.scaleout import ScaleOutSimulator, simulate
from repro.engine.simulator import Simulator
from repro.errors import ConfigError, InvariantError, ResilienceError
from repro.experiments.registry import run_experiment
from repro.mapping.dims import OperandMapping, map_layer
from repro.noc import DegradedMeshNoc, MeshNoc, layer_noc_cost
from repro.resilience import (
    HEALTHY,
    FaultMap,
    fault_map_from_dict,
    load_fault_map,
    predict_layer_cycles,
    random_fault_map,
    remap_layer,
    tile_cycles,
)
from repro.robust.faults import fault_scenario, scenario_seed
from repro.robust.invariants import check_layer_result, expected_cycles
from repro.topology.layer import GemmLayer

LAYER = GemmLayer("g", m=100, k=36, n=77)


class TestFaultMap:
    def test_healthy_predicates(self):
        assert HEALTHY.is_healthy
        assert not HEALTHY.affects_array
        assert not HEALTHY.affects_grid
        assert HEALTHY.pe_only() is None

    def test_spec_round_trip(self):
        spec = "pe_col:0;pe_row:3;partition:1,2;link:0,0-0,1"
        fm = FaultMap.from_spec(spec)
        assert FaultMap.from_spec(fm.to_spec()) == fm
        assert fm.dead_pe_rows == frozenset({3})
        assert fm.dead_partitions == frozenset({(1, 2)})
        assert fm.dead_links == frozenset({((0, 0), (0, 1))})

    def test_empty_spec_is_healthy(self):
        assert FaultMap.from_spec("") == HEALTHY
        assert HEALTHY.to_spec() == ""

    def test_json_round_trip(self, tmp_path):
        fm = FaultMap.from_spec("pe_row:1;partition:0,1;link:1,0-1,1")
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(fm.as_dict()))
        assert load_fault_map(path) == fm
        assert fault_map_from_dict(fm.as_dict()) == fm

    @pytest.mark.parametrize(
        "spec",
        [
            "pe_row:x",
            "partition:1",
            "partition:a,b",
            "link:0,0-2,2",  # not adjacent
            "link:0,0",
            "bogus:1",
            "pe_row:-1",
        ],
    )
    def test_malformed_specs_raise_resilience_error(self, spec):
        with pytest.raises(ResilienceError):
            FaultMap.from_spec(spec)

    def test_validate_bounds(self):
        fm = FaultMap.from_spec("partition:5,0")
        with pytest.raises(ResilienceError, match="outside"):
            fm.validate_for(8, 8, 2, 2)

    def test_validate_all_dead(self):
        fm = FaultMap.from_spec("partition:0,0")
        with pytest.raises(ResilienceError, match="surviv"):
            fm.validate_for(8, 8, 1, 1)

    def test_random_fault_map_deterministic(self):
        a = random_fault_map(4, 4, dead_partitions=3, dead_links=2, seed=7)
        b = random_fault_map(4, 4, dead_partitions=3, dead_links=2, seed=7)
        c = random_fault_map(4, 4, dead_partitions=3, dead_links=2, seed=8)
        assert a == b
        assert a != c
        assert len(a.dead_partitions) == 3
        assert len(a.dead_links) == 2

    def test_random_fault_map_never_kills_everything(self):
        with pytest.raises(ResilienceError):
            random_fault_map(2, 2, dead_partitions=4)


class TestConfigIntegration:
    def test_fault_map_on_config_validates(self):
        with pytest.raises(ConfigError):
            HardwareConfig(array_rows=8, array_cols=8, fault_map="not-a-map")
        with pytest.raises(ResilienceError):
            HardwareConfig(
                array_rows=8, array_cols=8,
                fault_map=FaultMap.from_spec("pe_row:9"),
            )

    def test_effective_dims(self):
        config = HardwareConfig(
            array_rows=8, array_cols=8,
            fault_map=FaultMap.from_spec("pe_row:0;pe_row:3;pe_col:2"),
        )
        assert config.is_degraded
        assert config.effective_array_rows == 6
        assert config.effective_array_cols == 7

    def test_ini_round_trip(self, tmp_path):
        config = paper_scaling_config(16, 16, 2, 2).with_fault_map(
            FaultMap.from_spec("partition:1,1")
        )
        path = dump_config(config, tmp_path / "degraded.cfg")
        assert load_config(path).fault_map == config.fault_map

    def test_parser_rejects_bad_faultmap_value(self):
        with pytest.raises(ResilienceError):
            parse_config_text("[architecture_presets]\nFaultMap = partition:x\n")


class TestRemapPlan:
    def test_healthy_plan_reduces_to_eq5(self):
        mapping = OperandMapping(sr=100, sc=77, t=36, dataflow=Dataflow.OUTPUT_STATIONARY)
        plan = remap_layer(mapping, 4, 4, 16, 16)
        assert plan.failed_partitions == 0
        assert plan.remapped_tiles == 0
        assert all(a.native for a in plan.assignments)
        assert plan.total_macs == mapping.macs

    def test_orphans_adopted_deterministically(self):
        mapping = OperandMapping(sr=64, sc=64, t=16, dataflow=Dataflow.OUTPUT_STATIONARY)
        fm = FaultMap.from_spec("partition:0,0;partition:1,1")
        a = remap_layer(mapping, 2, 2, 8, 8, fm)
        b = remap_layer(mapping, 2, 2, 8, 8, fm)
        assert a == b
        assert a.failed_partitions == 2
        assert a.remapped_tiles == 2
        assert len(a.survivors) == 2

    def test_no_survivors_raises(self):
        mapping = OperandMapping(sr=8, sc=8, t=8, dataflow=Dataflow.OUTPUT_STATIONARY)
        with pytest.raises(ResilienceError, match="no surviving"):
            remap_layer(mapping, 1, 1, 8, 8, FaultMap.from_spec("partition:0,0"))

    def test_dead_partition_outside_grid_raises(self):
        mapping = OperandMapping(sr=8, sc=8, t=8, dataflow=Dataflow.OUTPUT_STATIONARY)
        with pytest.raises(ResilienceError, match="outside"):
            remap_layer(mapping, 2, 2, 8, 8, FaultMap.from_spec("partition:3,3"))

    @settings(max_examples=60)
    @given(
        sr=st.integers(1, 300),
        sc=st.integers(1, 300),
        t=st.integers(1, 64),
        grid_rows=st.integers(1, 4),
        grid_cols=st.integers(1, 4),
        dead=st.integers(0, 6),
        seed=st.integers(0, 10_000),
    )
    def test_mac_conservation_over_random_grids(
        self, sr, sc, t, grid_rows, grid_cols, dead, seed
    ):
        """Property: every re-mapped plan conserves the layer's MACs and
        loads every tile onto a live survivor."""
        dead = min(dead, grid_rows * grid_cols - 1)
        fm = random_fault_map(grid_rows, grid_cols, dead_partitions=dead, seed=seed)
        mapping = OperandMapping(sr=sr, sc=sc, t=t, dataflow=Dataflow.OUTPUT_STATIONARY)
        plan = remap_layer(mapping, grid_rows, grid_cols, 8, 8, fm)
        assert plan.total_macs == mapping.macs
        survivors = set(plan.survivors)
        assert all(a.owner in survivors for a in plan.assignments)
        assert not survivors & fm.dead_partitions
        # Tile costing matches the per-tile closed form.
        for a in plan.assignments:
            assert a.cycles == tile_cycles(a.sr, a.sc, t, 8, 8)

    def test_conservation_guard_fires_on_corruption(self):
        mapping = OperandMapping(sr=64, sc=64, t=16, dataflow=Dataflow.OUTPUT_STATIONARY)
        plan = remap_layer(mapping, 2, 2, 8, 8)
        from repro.resilience.remap import check_remap_conservation

        corrupted = dataclasses.replace(plan, assignments=plan.assignments[:-1])
        with pytest.raises(InvariantError, match="not conserved"):
            check_remap_conservation(corrupted, mapping)


class TestHealthyBitIdentity:
    """Regression lock: an all-healthy FaultMap changes nothing."""

    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (4, 2)])
    def test_healthy_fault_map_bit_identical(self, grid):
        config = paper_scaling_config(16, 16, grid[0], grid[1])
        baseline = simulate(config, LAYER, verify=True)
        with_map = simulate(config.with_fault_map(HEALTHY), LAYER, verify=True)
        assert with_map == baseline

    def test_healthy_noc_and_energy_identical(self):
        config = paper_scaling_config(16, 16, 2, 2)
        assert layer_noc_cost(LAYER, config) == layer_noc_cost(
            LAYER, config.with_fault_map(HEALTHY)
        )
        result = simulate(config, LAYER)
        assert energy_of_result(result) == energy_of_result(
            simulate(config.with_fault_map(HEALTHY), LAYER)
        )


class TestDegradedEngine:
    def test_degraded_cycles_match_prediction_exactly(self):
        config = paper_scaling_config(16, 16, 4, 4).with_fault_map(
            FaultMap.from_spec("partition:0,0;partition:2,1;partition:3,3")
        )
        result = simulate(config, LAYER, verify=True)  # rel_tol = 0
        assert result.total_cycles == expected_cycles(LAYER, config)
        assert result.failed_partitions == 3
        assert result.remapped_tiles >= 3
        assert result.is_degraded

    def test_degraded_macs_conserved(self):
        config = paper_scaling_config(16, 16, 4, 4)
        healthy = simulate(config, LAYER)
        degraded = simulate(
            config.with_fault_map(FaultMap.from_spec("partition:1,1")), LAYER
        )
        assert degraded.macs == healthy.macs

    def test_runtime_monotone_in_dead_partitions(self):
        config = paper_scaling_config(16, 16, 4, 4)
        cycles = []
        for k in (0, 1, 3, 6, 12):
            fm = random_fault_map(4, 4, dead_partitions=k, seed=1)
            cfg = config.with_fault_map(fm if not fm.is_healthy else None)
            cycles.append(simulate(cfg, LAYER, verify=True).total_cycles)
        assert cycles == sorted(cycles)
        assert cycles[-1] > cycles[0]

    def test_utilizations_stay_bounded(self):
        config = paper_scaling_config(16, 16, 4, 4).with_fault_map(
            random_fault_map(4, 4, dead_partitions=5, seed=3)
        )
        result = simulate(config, LAYER, verify=True)
        assert 0.0 < result.mapping_utilization <= 1.0
        assert 0.0 < result.compute_utilization <= 1.0

    def test_pe_faults_equal_smaller_array(self):
        degraded = paper_scaling_config(16, 16, 1, 1).with_fault_map(
            FaultMap.from_spec("pe_row:3;pe_col:0;pe_col:9")
        )
        smaller = paper_scaling_config(15, 14, 1, 1)
        a = Simulator(degraded).run_layer(LAYER)
        b = Simulator(smaller).run_layer(LAYER)
        assert a.total_cycles == b.total_cycles
        assert (a.array_rows, a.array_cols) == (15, 14)

    def test_pe_faults_propagate_to_partitions(self):
        config = paper_scaling_config(16, 16, 2, 2).with_fault_map(
            FaultMap.from_spec("pe_row:0")
        )
        result = simulate(config, LAYER, verify=True)
        assert result.array_rows == 15
        assert result.failed_partitions == 0

    def test_idle_partitions_recorded_on_healthy_grid(self):
        # sr = 4 rows of work over an 8-row grid: half the grid idles.
        layer = GemmLayer("tiny", m=4, k=4, n=64)
        config = paper_scaling_config(8, 8, 8, 1)
        result = ScaleOutSimulator(config).run_layer(layer)
        assert result.idle_partitions == 4
        assert result.failed_partitions == 0

    def test_serialization_round_trip_degraded_fields(self):
        from repro.engine.persistence import (
            layer_result_from_dict,
            layer_result_to_dict,
        )

        config = paper_scaling_config(16, 16, 2, 2).with_fault_map(
            FaultMap.from_spec("partition:1,0")
        )
        result = simulate(config, LAYER)
        assert layer_result_from_dict(layer_result_to_dict(result)) == result


class TestDegradedAnalytical:
    def test_degraded_scaleout_reduces_to_healthy(self):
        mapping = map_layer(LAYER, Dataflow.OUTPUT_STATIONARY)
        assert degraded_scaleout_runtime(mapping, 4, 4, 16, 16, 0) == scaleout_runtime(
            mapping, 4, 4, 16, 16
        )

    def test_degraded_scaleout_staircase(self):
        mapping = map_layer(LAYER, Dataflow.OUTPUT_STATIONARY)
        healthy = scaleout_runtime(mapping, 4, 4, 16, 16)
        assert degraded_scaleout_runtime(mapping, 4, 4, 16, 16, 1) == 2 * healthy
        assert degraded_scaleout_runtime(mapping, 4, 4, 16, 16, 8) == 2 * healthy
        assert degraded_scaleout_runtime(mapping, 4, 4, 16, 16, 9) == 3 * healthy

    def test_degraded_scaleup_equals_smaller_array(self):
        mapping = map_layer(LAYER, Dataflow.OUTPUT_STATIONARY)
        assert degraded_scaleup_runtime(
            mapping, 16, 16, dead_rows=2, dead_cols=1
        ) == scaleup_runtime(mapping, 14, 15)

    def test_dead_axis_rejected(self):
        mapping = map_layer(LAYER, Dataflow.OUTPUT_STATIONARY)
        with pytest.raises(ValueError):
            degraded_scaleup_runtime(mapping, 8, 8, dead_rows=8)
        with pytest.raises(ValueError):
            degraded_scaleout_runtime(mapping, 2, 2, 8, 8, dead_partitions=4)

    def test_bound_dominates_exact_plan(self):
        mapping = map_layer(LAYER, Dataflow.OUTPUT_STATIONARY)
        for k, seed in ((1, 0), (3, 1), (7, 2)):
            fm = random_fault_map(4, 4, dead_partitions=k, seed=seed)
            config = paper_scaling_config(16, 16, 4, 4).with_fault_map(fm)
            exact = predict_layer_cycles(mapping, config)
            bound = degraded_scaleout_runtime(mapping, 4, 4, 16, 16, k)
            assert exact <= bound


class TestDegradedNoc:
    def test_degraded_mesh_reroutes_around_dead_link(self):
        healthy = MeshNoc(2, 2)
        degraded = DegradedMeshNoc(2, 2, [((0, 0), (0, 1))])
        assert degraded.unicast_hops(0, 1) == healthy.unicast_hops(0, 1) + 2
        assert degraded.unicast_hops(1, 1) == healthy.unicast_hops(1, 1)

    def test_unreachable_partition_raises(self):
        cut_off = DegradedMeshNoc(1, 2, [((0, 0), (0, 1))])
        assert not cut_off.reachable(0, 1)
        with pytest.raises(ResilienceError, match="unreachable"):
            cut_off.unicast_hops(0, 1)

    def test_degraded_noc_cost_not_cheaper(self):
        config = paper_scaling_config(16, 16, 4, 4)
        healthy = layer_noc_cost(LAYER, config)
        degraded = layer_noc_cost(
            LAYER,
            config.with_fault_map(random_fault_map(4, 4, dead_partitions=3, seed=0)),
        )
        assert degraded.total_byte_hops > healthy.total_byte_hops

    def test_dead_link_only_also_degrades(self):
        config = paper_scaling_config(16, 16, 2, 2).with_fault_map(
            FaultMap.from_spec("link:0,0-0,1")
        )
        cost = layer_noc_cost(LAYER, config)
        assert cost.total_byte_hops > 0


class TestDegradedEnergy:
    def test_dead_partitions_are_power_gated(self):
        config = paper_scaling_config(16, 16, 4, 4)
        fm = FaultMap.from_spec("partition:0,0")
        healthy = simulate(config, LAYER)
        degraded = simulate(config.with_fault_map(fm), LAYER)
        # Idle charge scales with surviving PE-cycles, not total.
        assert energy_of_result(degraded).idle < (
            degraded.total_pes
            * degraded.total_cycles
            * energy_of_result(healthy).idle
        )
        assert degraded.surviving_pes == 15 * 16 * 16


class TestFaultScenarios:
    def test_scenario_seed_stable_and_param_sensitive(self):
        assert scenario_seed({"a": 1}, 0) == scenario_seed({"a": 1}, 0)
        assert scenario_seed({"a": 1}, 0) != scenario_seed({"a": 2}, 0)
        assert scenario_seed({"a": 1}, 0) != scenario_seed({"a": 1}, 1)

    def test_fault_scenario_reproducible(self):
        a = fault_scenario({"p": 3}, 4, 4, dead_partitions=2)
        b = fault_scenario({"p": 3}, 4, 4, dead_partitions=2)
        assert a == b
        assert len(a.dead_partitions) == 2


class TestResilienceExperiment:
    def test_rows_shape_and_monotonicity(self):
        rows = run_experiment("resilience")
        assert [row["dead"] for row in rows] == [0, 1, 2, 4]
        cycles = [row["cycles"] for row in rows]
        assert cycles == sorted(cycles)
        for row in rows:
            assert row["cycles"] <= row["bound_cycles"]
            assert row["slowdown"] >= 1.0
