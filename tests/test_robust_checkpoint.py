"""Unit tests for the JSONL checkpoint journal."""

import contextlib
import json
import logging

import pytest

from repro.errors import CheckpointError
from repro.robust.checkpoint import CheckpointStore, point_key


@contextlib.contextmanager
def _capture_checkpoint_warnings(caplog):
    # The CLI may set repro's logger to propagate=False; attach the
    # capture handler to the source logger directly (same idiom as
    # tests/test_perf_parallel.py).
    checkpoint_logger = logging.getLogger("repro.robust.checkpoint")
    checkpoint_logger.addHandler(caplog.handler)
    try:
        with caplog.at_level(logging.WARNING, logger="repro.robust.checkpoint"):
            yield
    finally:
        checkpoint_logger.removeHandler(caplog.handler)


class TestPointKey:
    def test_stable_across_ordering(self):
        assert point_key({"a": 1, "b": 2}, "v1") == point_key({"b": 2, "a": 1}, "v1")

    def test_version_invalidates(self):
        assert point_key({"a": 1}, "v1") != point_key({"a": 1}, "v2")

    def test_distinct_params_distinct_keys(self):
        assert point_key({"a": 1}, "v1") != point_key({"a": 2}, "v1")


class TestStore:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = CheckpointStore(path, version="v1")
        store.record({"a": 1}, status="ok", rows=[{"a": 1, "x": 2}])
        store.record({"a": 2}, status="failed", error="RuntimeError: nope")

        reloaded = CheckpointStore(path, version="v1")
        assert len(reloaded) == 2
        assert reloaded.completed({"a": 1})
        assert not reloaded.completed({"a": 2})  # failed points re-run on resume
        assert reloaded.get({"a": 1})["rows"] == [{"a": 1, "x": 2}]
        assert reloaded.completed_count == 1

    def test_version_mismatch_misses(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CheckpointStore(path, version="v1").record({"a": 1}, status="ok")
        stale = CheckpointStore(path, version="v2")
        assert not stale.completed({"a": 1})

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = CheckpointStore(path, version="v1")
        store.record({"a": 1}, status="ok", rows=[{"y": 9}])
        with path.open("a") as handle:
            handle.write('{"key": "deadbeef", "status"')  # crash mid-write

        reloaded = CheckpointStore(path, version="v1")
        assert len(reloaded) == 1
        assert reloaded.completed({"a": 1})

    def test_truncated_trailing_line_warns(self, tmp_path, caplog):
        path = tmp_path / "run.jsonl"
        store = CheckpointStore(path, version="v1")
        store.record({"a": 1}, status="ok")
        with path.open("a") as handle:
            handle.write('{"key": "deadbeef", "status"')  # crash mid-write

        with _capture_checkpoint_warnings(caplog):
            CheckpointStore(path, version="v1")
        dropped = [r for r in caplog.records if "re-simulated" in r.getMessage()]
        assert len(dropped) == 1
        assert "line 2/2" in dropped[0].getMessage()

    def test_clean_journal_loads_without_warnings(self, tmp_path, caplog):
        path = tmp_path / "run.jsonl"
        CheckpointStore(path, version="v1").record({"a": 1}, status="ok")
        with _capture_checkpoint_warnings(caplog):
            CheckpointStore(path, version="v1")
        assert not [r for r in caplog.records if r.levelname == "WARNING"]

    def test_resume_false_refuses_existing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CheckpointStore(path, version="v1").record({"a": 1}, status="ok")
        with pytest.raises(CheckpointError, match="already exists"):
            CheckpointStore(path, version="v1", resume=False)

    def test_resume_false_fresh_path_ok(self, tmp_path):
        CheckpointStore(tmp_path / "new.jsonl", resume=False)

    def test_directory_path_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="directory"):
            CheckpointStore(tmp_path)

    def test_journal_lines_are_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = CheckpointStore(path, version="v1")
        store.record({"a": 1}, status="ok", attempts=2, duration=0.5)
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["params"] == {"a": 1}
        assert entry["attempts"] == 2
        assert entry["version"] == "v1"
        assert entry["key"] == point_key({"a": 1}, "v1")

    def test_default_version_is_package_version(self, tmp_path):
        from repro import __version__

        store = CheckpointStore(tmp_path / "run.jsonl")
        assert store.version == __version__


class TestCompact:
    def test_drops_failed_and_superseded_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = CheckpointStore(path, version="v1")
        store.record({"a": 1}, status="failed", error="boom")
        store.record({"a": 1}, status="ok", rows=[{"x": 1}])  # supersedes
        store.record({"a": 2}, status="ok", rows=[{"x": 2}])
        store.record({"a": 3}, status="failed", error="boom")
        assert len(path.read_text().splitlines()) == 4

        dropped = store.compact()
        assert dropped == 2  # the superseded {"a": 1} line and the failed {"a": 3}

        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # file stays valid JSONL

        reloaded = CheckpointStore(path, version="v1")
        assert reloaded.completed({"a": 1})
        assert reloaded.completed({"a": 2})
        assert not reloaded.completed({"a": 3})
        assert reloaded.get({"a": 1})["rows"] == [{"x": 1}]

    def test_keep_failed_entries(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = CheckpointStore(path, version="v1")
        store.record({"a": 1}, status="failed", error="boom")
        assert store.compact(drop_failed=False) == 0
        assert len(path.read_text().splitlines()) == 1

    def test_compact_empty_journal(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.jsonl", version="v1")
        assert store.compact() == 0

    def test_compact_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = CheckpointStore(path, version="v1")
        store.record({"a": 1}, status="ok")
        store.compact()
        assert [p.name for p in tmp_path.iterdir()] == ["run.jsonl"]

    def test_store_usable_after_compact(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = CheckpointStore(path, version="v1")
        store.record({"a": 1}, status="failed", error="boom")
        store.compact()
        store.record({"a": 1}, status="ok")
        assert CheckpointStore(path, version="v1").completed({"a": 1})
