"""The content-addressed result store: durability, corruption, recovery.

The contract under test is the acceptance bar of the durable-service
PR: a ``kill -9`` at any instant leaves the store readable with the
interrupted entry either absent or complete; a bit-flipped record is
detected, quarantined and recomputed; two processes racing the same key
both succeed and leave one valid record; and storage failures degrade
the store to compute-only mode instead of failing the simulation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.errors import StorageError, StoreCorruptionError
from repro.store.result_store import (
    SCHEMA_VERSION,
    ResultStore,
    payload_checksum,
    valid_key,
)

KEY = "0123456789abcdef"
OTHER = "fedcba9876543210"
PAYLOAD = {"kind": "test", "cycles": 123, "bw": 1.5, "rows": [1, 2, 3]}


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


# ----------------------------------------------------------------------
# Basic contract
# ----------------------------------------------------------------------

def test_put_get_round_trip(store):
    assert store.put(KEY, PAYLOAD)
    assert store.get(KEY) == PAYLOAD
    assert KEY in store
    assert list(store.keys()) == [KEY]


def test_miss_returns_none_and_counts(store):
    assert store.get(KEY) is None
    assert store.status()["misses"] == 1
    assert store.status()["hits"] == 0


def test_entries_are_sharded_by_key_prefix(store):
    store.put(KEY, PAYLOAD)
    assert store.entry_path(KEY).parent.name == KEY[:2]


def test_put_rejects_invalid_keys(store):
    for bad in ("", "xyz", "UPPERCASE12345678", "short", 42):
        with pytest.raises(StoreCorruptionError):
            store.put(bad, PAYLOAD)


def test_valid_key_accepts_config_hashes():
    assert valid_key("0123456789abcdef")
    assert valid_key("a" * 64)
    assert not valid_key("a" * 65)
    assert not valid_key("g" * 16)


def test_checksum_is_order_insensitive():
    assert payload_checksum({"a": 1, "b": 2}) == payload_checksum({"b": 2, "a": 1})
    assert payload_checksum({"a": 1}) != payload_checksum({"a": 2})


def test_reopened_store_still_hits(tmp_path):
    ResultStore(tmp_path / "s").put(KEY, PAYLOAD)
    assert ResultStore(tmp_path / "s").get(KEY) == PAYLOAD


def test_read_only_view_never_writes(tmp_path):
    ResultStore(tmp_path / "s").put(KEY, PAYLOAD)
    view = ResultStore(tmp_path / "s", writable=False)
    assert view.get(KEY) == PAYLOAD
    assert not view.put(OTHER, PAYLOAD)
    assert view.get(OTHER) is None


# ----------------------------------------------------------------------
# Corruption: detected on read, quarantined, recomputed
# ----------------------------------------------------------------------

def test_bit_flip_is_quarantined_and_healed(store):
    store.put(KEY, PAYLOAD)
    path = store.entry_path(KEY)
    raw = bytearray(path.read_bytes())
    flip = raw.index(b"123")  # flip inside the payload, not the framing
    raw[flip] ^= 0x01
    path.write_bytes(bytes(raw))

    assert store.get(KEY) is None  # detected -> miss
    assert not path.exists()  # evidence moved aside
    assert len(store.quarantined()) == 1
    assert store.status()["quarantined"] == 1

    assert store.put(KEY, PAYLOAD)  # recompute heals the entry
    assert store.get(KEY) == PAYLOAD


def test_truncated_record_is_quarantined(store):
    store.put(KEY, PAYLOAD)
    path = store.entry_path(KEY)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert store.get(KEY) is None
    assert len(store.quarantined()) == 1


def test_stale_schema_is_quarantined(store):
    store.put(KEY, PAYLOAD)
    path = store.entry_path(KEY)
    record = json.loads(path.read_text())
    record["schema"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(record))
    assert store.get(KEY) is None
    assert len(store.quarantined()) == 1


def test_key_mismatch_is_quarantined(store):
    store.put(KEY, PAYLOAD)
    record = store.entry_path(KEY).read_text()
    shard = store.entry_path(OTHER)
    shard.parent.mkdir(parents=True, exist_ok=True)
    shard.write_text(record)  # a record copied to the wrong address
    assert store.get(OTHER) is None
    assert len(store.quarantined()) == 1


def test_quarantine_preserves_every_generation(store):
    for flip in range(3):
        store.put(KEY, PAYLOAD)
        store.entry_path(KEY).write_text("not json at all")
        assert store.get(KEY) is None
    assert len(store.quarantined()) == 3  # .0 .1 .2 sidecars


def test_verify_sweeps_all_entries(store):
    store.put(KEY, PAYLOAD)
    store.put(OTHER, PAYLOAD)
    store.entry_path(OTHER).write_text("garbage")
    summary = store.verify()
    assert summary == {"checked": 2, "ok": 1, "quarantined": 1}
    assert store.get(KEY) == PAYLOAD
    assert store.get(OTHER) is None
    assert store.status()["misses"] == 1  # miss counted once, post-quarantine


# ----------------------------------------------------------------------
# Recovery: manifest + orphan temp files
# ----------------------------------------------------------------------

def test_manifest_records_every_put(store):
    store.put(KEY, PAYLOAD)
    store.put(OTHER, PAYLOAD)
    assert store.manifest_keys() == {KEY: "put", OTHER: "put"}


def test_manifest_tolerates_torn_final_line(store):
    store.put(KEY, PAYLOAD)
    with store.manifest_path.open("a") as handle:
        handle.write('{"op": "put", "key": "trunc')  # crash mid-append
    assert store.manifest_keys() == {KEY: "put"}
    assert ResultStore(store.root).get(KEY) == PAYLOAD


def test_recover_unlinks_orphan_temp_files(store):
    store.put(KEY, PAYLOAD)
    shard = store.entry_path(KEY).parent
    orphan = shard / f".{KEY}.json.abc123.tmp"
    orphan.write_text("half a record")
    ResultStore(store.root)  # recover() runs at every writable open
    assert not orphan.exists()
    orphan.write_text("half a record")
    assert store.recover()["orphan_tmp"] == 1


def test_recover_rejournals_unjournalled_entries(store):
    store.put(KEY, PAYLOAD)
    store.manifest_path.unlink()  # entry landed, WAL append never did
    reopened = ResultStore(store.root)
    assert reopened.manifest_keys() == {KEY: "put"}
    assert reopened.get(KEY) == PAYLOAD


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------

def test_put_failure_degrades_to_compute_only(store, monkeypatch):
    def explode(path, text):
        error = StorageError(f"cannot write {path}: no space left on device")
        error.errno = 28  # ENOSPC
        raise error

    monkeypatch.setattr("repro.store.result_store.atomic_write_text", explode)
    assert not store.put(KEY, PAYLOAD)  # degraded, not raised
    assert not store.writable
    assert "no space left" in store.degraded_reason
    assert store.status()["mode"] == "compute-only"

    monkeypatch.undo()
    assert not store.put(KEY, PAYLOAD)  # stays compute-only once degraded
    assert store.get(KEY) is None  # reads keep working


def test_status_snapshot_shape(store):
    store.put(KEY, PAYLOAD)
    store.get(KEY)
    status = store.status()
    assert status["entries"] == 1
    assert status["schema"] == SCHEMA_VERSION
    assert status["mode"] == "readwrite"
    assert status["hits"] == 1 and status["writes"] == 1


# ----------------------------------------------------------------------
# Crash safety and concurrency (real processes)
# ----------------------------------------------------------------------

def _spawn(code: str, *args: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return subprocess.Popen(
        [sys.executable, "-c", textwrap.dedent(code), *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


WRITER = """
    import sys
    from repro.store.result_store import ResultStore

    store = ResultStore(sys.argv[1])
    payload = {"kind": "test", "blob": "x" * 4096}
    i = 0
    while True:
        store.put(f"{i % 256:02x}{'0' * 14}", {**payload, "i": i})
        i += 1
"""


def test_kill_dash_nine_mid_write_leaves_store_consistent(tmp_path):
    """SIGKILL a busy writer at a random instant; the store must reopen
    clean: every surviving entry validates, nothing is quarantined."""
    root = tmp_path / "store"
    writer = _spawn(WRITER, str(root))
    try:
        deadline = time.time() + 10
        while not (root / "entries").exists() and time.time() < deadline:
            time.sleep(0.01)
        time.sleep(0.3)  # let it publish mid-flight
    finally:
        writer.kill()
        writer.wait(timeout=10)

    survivor = ResultStore(root)
    summary = survivor.verify()
    assert summary["checked"] > 0, "writer never published anything"
    assert summary["quarantined"] == 0, "kill -9 must not leave torn entries"
    assert not list(root.glob("entries/*/.*.tmp"))  # recover() swept orphans


def test_two_processes_racing_same_key(tmp_path):
    """Two writers hammering the same key must both succeed and leave
    exactly one valid record (last complete write wins)."""
    root = tmp_path / "store"
    code = """
        import sys
        from repro.store.result_store import ResultStore

        store = ResultStore(sys.argv[1])
        ok = all(
            store.put("00" + "0" * 14, {"kind": "test", "writer": sys.argv[2]})
            for _ in range(200)
        )
        sys.exit(0 if ok else 1)
    """
    racers = [_spawn(code, str(root), name) for name in ("a", "b")]
    for racer in racers:
        _out, err = racer.communicate(timeout=60)
        assert racer.returncode == 0, err
    store = ResultStore(root)
    payload = store.get("00" + "0" * 14)
    assert payload is not None and payload["writer"] in ("a", "b")
    assert store.verify()["quarantined"] == 0


def test_reader_sees_complete_or_miss_during_writes(tmp_path):
    """A reader polling while a writer churns must only ever observe a
    verified payload or a miss — never a partial record."""
    root = tmp_path / "store"
    writer = _spawn(WRITER, str(root))
    try:
        deadline = time.time() + 10
        while not (root / "entries").exists() and time.time() < deadline:
            time.sleep(0.01)
        reader = ResultStore(root, writable=False)
        observations = 0
        finish = time.time() + 1.0
        while time.time() < finish:
            payload = reader.get(f"{observations % 4:02x}{'0' * 14}")
            if payload is not None:
                assert payload["kind"] == "test"
                assert len(payload["blob"]) == 4096
            observations += 1
        assert reader.status()["quarantined"] == 0
    finally:
        writer.send_signal(signal.SIGKILL)
        writer.wait(timeout=10)
