"""Tests for synthetic workload generators."""

import pytest

from repro.workloads.synthetic import aspect_family, random_gemm_suite, reduction_family


class TestRandomSuite:
    def test_count_and_names(self):
        net = random_gemm_suite(count=5, seed=1)
        assert len(net) == 5
        assert net.layer_names() == [f"rand{i}" for i in range(5)]

    def test_deterministic(self):
        a = random_gemm_suite(count=4, seed=7)
        b = random_gemm_suite(count=4, seed=7)
        for name in a.layer_names():
            assert a[name].gemm_dims() == b[name].gemm_dims()

    def test_seeds_differ(self):
        a = random_gemm_suite(count=4, seed=1)
        b = random_gemm_suite(count=4, seed=2)
        assert any(
            a[name].gemm_dims() != b[name].gemm_dims() for name in a.layer_names()
        )

    def test_dims_within_bounds(self):
        net = random_gemm_suite(count=20, seed=3, min_dim=4, max_dim=64)
        for layer in net:
            for dim in layer.gemm_dims():
                assert 1 <= dim <= 65

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            random_gemm_suite(min_dim=10, max_dim=5)


class TestAspectFamily:
    def test_constant_work(self):
        net = aspect_family(total_macs=2**20, k=64, steps=5)
        macs = [layer.macs for layer in net]
        assert max(macs) / min(macs) < 2.5  # equal up to rounding

    def test_aspect_sweeps_monotonically(self):
        net = aspect_family(total_macs=2**20, k=64, steps=5)
        ratios = [layer.gemm_m / layer.gemm_n for layer in net]
        assert ratios == sorted(ratios)

    def test_middle_is_square(self):
        net = aspect_family(total_macs=2**20, k=64, steps=5)
        middle = net[len(net) // 2]
        assert 0.5 <= middle.gemm_m / middle.gemm_n <= 2.0


class TestReductionFamily:
    def test_k_decreases_by_powers_of_four(self):
        net = reduction_family(total_macs=2**22, spatial=2**10, steps=4)
        ks = [layer.gemm_k for layer in net]
        assert ks == sorted(ks, reverse=True)
        for deep, shallow in zip(ks, ks[1:]):
            assert deep == 4 * shallow or shallow == 1

    def test_spatial_fixed(self):
        net = reduction_family(total_macs=2**22, spatial=2**10, steps=4)
        dims = {(layer.gemm_m, layer.gemm_n) for layer in net}
        assert len(dims) == 1
