"""Span tracer: nesting, self-time, disabled no-op fast path."""

import threading

import pytest

from repro.obs.tracer import (
    NULL_SPAN,
    PHASE_COMPLETE,
    PHASE_INSTANT,
    SpanRecord,
    Tracer,
)


def test_disabled_tracer_returns_null_span_singleton():
    tracer = Tracer()
    assert not tracer.enabled
    assert tracer.span("anything", key="value") is NULL_SPAN
    # the singleton is reusable and inert
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    tracer.event("nothing")
    assert len(tracer) == 0


def test_null_span_set_chains_and_does_nothing():
    assert NULL_SPAN.set(a=1) is NULL_SPAN


def test_span_records_name_category_and_args():
    tracer = Tracer(enabled=True)
    with tracer.span("work", category="test", layer="TF0"):
        pass
    (record,) = tracer.records()
    assert record.name == "work"
    assert record.category == "test"
    assert record.args["layer"] == "TF0"
    assert record.phase == PHASE_COMPLETE
    assert record.duration_ns >= 0
    assert record.depth == 0


def test_nesting_depth_and_order():
    tracer = Tracer(enabled=True)
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
    records = {r.name: r for r in tracer.records()}
    assert records["outer"].depth == 0
    assert records["middle"].depth == 1
    assert records["inner"].depth == 2
    # children finish (and record) before their parents
    names = [r.name for r in tracer.records()]
    assert names == ["inner", "middle", "outer"]


def test_self_time_excludes_direct_children():
    tracer = Tracer(enabled=True)
    with tracer.span("parent"):
        with tracer.span("child_a"):
            pass
        with tracer.span("child_b"):
            pass
    records = {r.name: r for r in tracer.records()}
    parent = records["parent"]
    child_total = records["child_a"].duration_ns + records["child_b"].duration_ns
    assert parent.self_ns == parent.duration_ns - child_total
    assert 0 <= parent.self_ns <= parent.duration_ns
    # leaves have self == duration
    assert records["child_a"].self_ns == records["child_a"].duration_ns


def test_exception_annotates_span_and_propagates():
    tracer = Tracer(enabled=True)
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("boom")
    (record,) = tracer.records()
    assert record.args["error"] == "ValueError"


def test_event_records_instant_at_current_depth():
    tracer = Tracer(enabled=True)
    with tracer.span("outer"):
        tracer.event("ping", attempt=2)
    event = [r for r in tracer.records() if r.phase == PHASE_INSTANT][0]
    assert event.name == "ping"
    assert event.args == {"attempt": 2}
    assert event.depth == 1
    assert event.duration_ns == 0


def test_set_attaches_attributes_mid_span():
    tracer = Tracer(enabled=True)
    with tracer.span("work") as span:
        span.set(rows=8, cols=8)
    (record,) = tracer.records()
    assert record.args == {"rows": 8, "cols": 8}


def test_clear_drops_records_and_restarts_epoch():
    tracer = Tracer(enabled=True)
    with tracer.span("one"):
        pass
    assert len(tracer) == 1
    tracer.clear()
    assert len(tracer) == 0
    with tracer.span("two"):
        pass
    (record,) = tracer.records()
    # epoch restarted: timestamps stay near zero
    assert record.start_ns >= 0


def test_spans_are_thread_local():
    tracer = Tracer(enabled=True)
    done = threading.Event()

    def worker():
        with tracer.span("worker_span"):
            pass
        done.set()

    with tracer.span("main_span"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert done.is_set()
    records = {r.name: r for r in tracer.records()}
    # the worker's span must not see main's stack as its parent
    assert records["worker_span"].depth == 0
    assert records["worker_span"].thread_id != records["main_span"].thread_id


def test_records_returns_snapshot_copy():
    tracer = Tracer(enabled=True)
    with tracer.span("a"):
        pass
    snap = tracer.records()
    snap.append(
        SpanRecord(
            name="fake", category="x", start_ns=0, duration_ns=0,
            self_ns=0, thread_id=0, depth=0,
        )
    )
    assert len(tracer) == 1
