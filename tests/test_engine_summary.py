"""Tests for run-level summaries."""

import pytest

from repro.engine.simulator import Simulator
from repro.engine.summary import amdahl_speedup_limit, summarize_run
from repro.topology.layer import GemmLayer
from repro.topology.network import Network


@pytest.fixture
def run(small_config):
    net = Network("three", [
        GemmLayer("tiny", m=4, k=4, n=4),
        GemmLayer("medium", m=40, k=16, n=24),
        GemmLayer("huge", m=200, k=64, n=200),
    ])
    return Simulator(small_config).run_network(net)


class TestSummarizeRun:
    def test_totals_match_run(self, run):
        summary = summarize_run(run)
        assert summary.total_cycles == run.total_cycles
        assert summary.total_macs == run.total_macs

    def test_hot_spots_sorted(self, run):
        summary = summarize_run(run)
        cycles = [entry[1] for entry in summary.top_cycle_layers]
        assert cycles == sorted(cycles, reverse=True)
        assert summary.top_cycle_layers[0][0] == "huge"

    def test_shares_sum_below_one(self, run):
        summary = summarize_run(run, top_k=2)
        assert sum(entry[2] for entry in summary.top_cycle_layers) <= 1.0 + 1e-9

    def test_top_k_bounds_lists(self, run):
        summary = summarize_run(run, top_k=1)
        assert len(summary.top_cycle_layers) == 1
        assert len(summary.top_traffic_layers) == 1

    def test_worst_utilization_layer(self, run):
        summary = summarize_run(run)
        worst = min(run, key=lambda layer: layer.compute_utilization)
        assert summary.worst_utilization_layer == worst.layer_name

    def test_rejects_bad_top_k(self, run):
        with pytest.raises(ValueError):
            summarize_run(run, top_k=0)

    def test_describe_is_readable(self, run):
        text = summarize_run(run).describe()
        assert "cycle hot spots" in text
        assert "huge" in text


class TestAmdahl:
    def test_dominant_layer_bounds_speedup(self, run):
        limit = amdahl_speedup_limit(run, "huge")
        share = run["huge"].total_cycles / run.total_cycles
        assert limit == pytest.approx(1 / (1 - share))

    def test_tiny_layer_gives_tiny_speedup(self, run):
        assert amdahl_speedup_limit(run, "tiny") < 1.05

    def test_unknown_layer_raises(self, run):
        with pytest.raises(KeyError):
            amdahl_speedup_limit(run, "nope")
