"""The shipped topologies/ CSV files stay loadable and faithful."""

from pathlib import Path

import pytest

from repro.topology.parser import load_topology
from repro.workloads.registry import available_workloads, get_workload

TOPOLOGY_DIR = Path(__file__).resolve().parent.parent / "topologies"


class TestShippedTopologyFiles:
    def test_one_file_per_builtin_workload(self):
        files = {path.stem for path in TOPOLOGY_DIR.glob("*.csv")}
        assert files == set(available_workloads())

    @pytest.mark.parametrize("name", sorted(
        path.stem for path in TOPOLOGY_DIR.glob("*.csv")
    ))
    def test_file_matches_builtin(self, name):
        from_file = load_topology(TOPOLOGY_DIR / f"{name}.csv")
        builtin = get_workload(name)
        assert from_file.layer_names() == builtin.layer_names()
        for layer_name in builtin.layer_names():
            assert from_file[layer_name].gemm_dims() == builtin[layer_name].gemm_dims()

    def test_files_have_table2_header(self):
        for path in TOPOLOGY_DIR.glob("*.csv"):
            first_line = path.read_text().splitlines()[0]
            assert first_line.startswith("Layer name,")
