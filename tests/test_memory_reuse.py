"""Unit tests for the fold-order reuse model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataflow.base import OperandSlice
from repro.memory.buffers import DoubleBuffer
from repro.memory.reuse import operand_dram_traffic


def slices(ids, elements=10, stream="ifmap"):
    return [OperandSlice(stream=stream, slice_id=sid, elements=elements) for sid in ids]


def buffer(working_bytes):
    return DoubleBuffer("test", capacity_bytes=2 * working_bytes)


class TestWholeOperandFits:
    def test_each_slice_fetched_once(self):
        traffic = operand_dram_traffic(
            slices(["a", "b", "a", "b"]), unique_elements=20, buffer=buffer(1000), word_bytes=1
        )
        assert traffic.per_fold_bytes == [10, 10, 0, 0]
        assert traffic.total_bytes == 20

    def test_refetch_factor_is_one(self):
        traffic = operand_dram_traffic(
            slices(["a", "b", "a"]), unique_elements=20, buffer=buffer(1000), word_bytes=1
        )
        assert traffic.refetch_factor == 1.0


class TestOperandDoesNotFit:
    def test_refetch_on_slice_change(self):
        traffic = operand_dram_traffic(
            slices(["a", "b", "a", "b"]), unique_elements=40, buffer=buffer(15), word_bytes=1
        )
        # 40 unique > 15 working; slices (10B) fit individually, so each
        # change of resident slice costs a fetch.
        assert traffic.per_fold_bytes == [10, 10, 10, 10]
        assert traffic.refetch_factor == 1.0  # total 40 == unique 40

    def test_consecutive_same_slice_reuses(self):
        traffic = operand_dram_traffic(
            slices(["a", "a", "b", "b"]), unique_elements=40, buffer=buffer(15), word_bytes=1
        )
        assert traffic.per_fold_bytes == [10, 0, 10, 0]

    def test_streaming_slice_always_refetched(self):
        # A single slice larger than the working half streams every fold.
        traffic = operand_dram_traffic(
            slices(["a", "a"], elements=100),
            unique_elements=200,
            buffer=buffer(50),
            word_bytes=1,
        )
        assert traffic.per_fold_bytes == [100, 100]

    def test_word_bytes_scales_traffic(self):
        traffic = operand_dram_traffic(
            slices(["a", "b"]), unique_elements=100, buffer=buffer(11), word_bytes=2
        )
        assert traffic.per_fold_bytes == [20, 20]
        assert traffic.unique_bytes == 200


class TestValidation:
    def test_rejects_empty_slices(self):
        with pytest.raises(ValueError, match="non-empty"):
            operand_dram_traffic([], unique_elements=10, buffer=buffer(10), word_bytes=1)

    def test_rejects_mixed_streams(self):
        mixed = slices(["a"], stream="ifmap") + slices(["b"], stream="filter")
        with pytest.raises(ValueError, match="mixed operand streams"):
            operand_dram_traffic(mixed, unique_elements=10, buffer=buffer(10), word_bytes=1)

    def test_rejects_zero_word_bytes(self):
        with pytest.raises(ValueError):
            operand_dram_traffic(slices(["a"]), unique_elements=10, buffer=buffer(10), word_bytes=0)


class TestProperties:
    @given(
        st.lists(st.integers(0, 4), min_size=1, max_size=30),
        st.integers(1, 64),
        st.integers(1, 1000),
    )
    def test_traffic_at_least_touches_each_slice_once(self, ids, elements, working):
        pieces = slices(ids, elements=elements)
        unique = elements * len(set(ids))
        traffic = operand_dram_traffic(pieces, unique, buffer(working), word_bytes=1)
        assert traffic.total_bytes >= unique
        assert len(traffic.per_fold_bytes) == len(pieces)

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=30), st.integers(1, 64))
    def test_huge_buffer_gives_perfect_reuse(self, ids, elements):
        pieces = slices(ids, elements=elements)
        unique = elements * len(set(ids))
        traffic = operand_dram_traffic(pieces, unique, buffer(10**9), word_bytes=1)
        assert traffic.total_bytes == unique

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=30), st.integers(1, 64))
    def test_smaller_buffer_never_reduces_traffic(self, ids, elements):
        pieces = slices(ids, elements=elements)
        unique = elements * len(set(ids))
        big = operand_dram_traffic(pieces, unique, buffer(10**9), word_bytes=1)
        small = operand_dram_traffic(pieces, unique, buffer(1), word_bytes=1)
        assert small.total_bytes >= big.total_bytes
