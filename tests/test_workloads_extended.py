"""Tests for the extended workload zoo (VGG-16, MobileNetV1, BERT)."""

import pytest

from repro.config.presets import SMALL_TEST
from repro.engine.simulator import Simulator
from repro.workloads.bert import FFN, HEADS, HIDDEN, bert_encoder
from repro.workloads.mobilenet import mobilenet_v1
from repro.workloads.registry import available_workloads, get_workload
from repro.workloads.vgg16 import vgg16


class TestVgg16:
    def test_layer_count(self):
        assert len(vgg16()) == 13 + 3

    def test_first_conv(self):
        conv = vgg16()["Conv1_1"]
        assert conv.channels == 3
        assert conv.num_filters == 64
        assert conv.ofmap_h == 224  # padding folded into the IFMAP

    def test_channel_plumbing_within_block(self):
        net = vgg16()
        assert net["Conv3_1"].channels == 128
        assert net["Conv3_2"].channels == 256

    def test_fc6_inputs(self):
        assert vgg16()["FC6"].channels == 7 * 7 * 512

    def test_total_macs_in_expected_range(self):
        # VGG-16 is famously ~15.5 GMACs.
        macs = vgg16().total_macs
        assert 14e9 < macs < 18e9


class TestMobilenet:
    def test_layer_count(self):
        # stem + 13 x (dw + pw) + fc
        assert len(mobilenet_v1()) == 1 + 26 + 1

    def test_depthwise_has_no_filter_reuse(self):
        dw = mobilenet_v1()["DW8"]
        assert dw.gemm_n == 1  # one filter per channel slice
        assert dw.batch == 512

    def test_pointwise_shapes(self):
        pw = mobilenet_v1()["PW13"]
        assert pw.filter_h == pw.filter_w == 1
        assert pw.num_filters == 1024

    def test_strided_blocks_shrink_maps(self):
        net = mobilenet_v1()
        assert net["PW3"].ifmap_h == 56
        assert net["PW13"].ifmap_h == 7

    def test_total_macs_in_expected_range(self):
        # MobileNetV1 is ~0.57 GMACs.
        macs = mobilenet_v1().total_macs
        assert 0.4e9 < macs < 0.8e9

    def test_depthwise_layers_map_poorly_onto_wide_arrays(self):
        """The property that makes MobileNet interesting here: depthwise
        layers can't fill array columns (one filter at a time)."""
        result = Simulator(SMALL_TEST).run_layer(mobilenet_v1()["DW8"])
        assert result.mapping_utilization <= 1 / SMALL_TEST.array_cols + 1e-9


class TestBert:
    def test_default_layers(self):
        net = bert_encoder()
        assert len(net) == 8
        assert net.name == "bert-base-s384"

    def test_attention_batched_over_heads(self):
        net = bert_encoder(seq=128)
        score = net["AttnScore"]
        assert score.gemm_m == 128 * HEADS
        assert score.gemm_k == HIDDEN // HEADS
        assert score.gemm_n == 128

    def test_ffn_shapes(self):
        net = bert_encoder(seq=128)
        assert net["FFN_Up"].gemm_n == FFN
        assert net["FFN_Down"].gemm_k == FFN

    def test_macs_scale_with_sequence(self):
        short = bert_encoder(seq=128).total_macs
        long = bert_encoder(seq=256).total_macs
        assert long > 2 * short  # attention grows quadratically

    def test_rejects_bad_seq(self):
        with pytest.raises(ValueError):
            bert_encoder(seq=0)


class TestRegistry:
    def test_new_workloads_registered(self):
        names = available_workloads()
        for name in ("vgg16", "mobilenet-v1", "bert-base"):
            assert name in names

    def test_lookup(self):
        assert get_workload("vgg16").name == "vgg16"
        assert get_workload("bert-base").name.startswith("bert-base")

    def test_all_registered_workloads_simulate(self):
        """Every registry entry runs end to end on a small array."""
        simulator = Simulator(SMALL_TEST)
        for name in available_workloads():
            net = get_workload(name)
            first = net[0]
            result = simulator.run_layer(first)
            assert result.total_cycles > 0
