"""Unit tests for DRAM timing/geometry and address decoding."""

import pytest

from repro.dram.request import DramAccess, decode
from repro.dram.timing import DDR4_2400_LIKE, DramTiming
from repro.errors import DramError


class TestTiming:
    def test_defaults_valid(self):
        assert DDR4_2400_LIKE.lines_per_row == 8192 // 64

    def test_peak_bandwidth(self):
        timing = DramTiming(num_channels=2, line_bytes=64, t_burst=4)
        assert timing.peak_bandwidth == 2 * 64 / 4

    def test_rejects_non_pow2_line(self):
        with pytest.raises(DramError):
            DramTiming(line_bytes=48)

    def test_rejects_row_not_multiple_of_line(self):
        with pytest.raises(DramError):
            DramTiming(row_bytes=100, line_bytes=64)

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            DramTiming(num_channels=0)


class TestRequest:
    def test_rejects_negative_cycle(self):
        with pytest.raises(DramError):
            DramAccess(cycle=-1, address=0)

    def test_rejects_negative_address(self):
        with pytest.raises(DramError):
            DramAccess(cycle=0, address=-4)


class TestDecode:
    def test_line_interleaves_channels(self):
        timing = DramTiming(num_channels=4)
        channels = [decode(i * timing.line_bytes, timing).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_line_same_coordinates(self):
        timing = DramTiming()
        assert decode(0, timing) == decode(63, timing)

    def test_banks_cycle_after_channels(self):
        timing = DramTiming(num_channels=2, banks_per_channel=4)
        banks = [decode(i * timing.line_bytes, timing).bank for i in range(0, 16, 2)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_advances_after_all_banks(self):
        timing = DramTiming(num_channels=1, banks_per_channel=2, row_bytes=128, line_bytes=64)
        # 2 lines per row x 2 banks = 4 lines per row wrap
        rows = [decode(i * 64, timing).row for i in range(8)]
        assert rows == [0, 0, 0, 0, 1, 1, 1, 1]
