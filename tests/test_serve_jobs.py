"""Job vocabulary: canonicalization, keying, execution dispatch."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.serve.jobs import (
    execute_job,
    job_key,
    normalize_request,
    square_grid,
    sweep_measure,
)
from repro.workloads.language import TABLE_IV_DIMS, language_layer


def test_gemm_defaults_are_filled():
    request = normalize_request({"kind": "gemm", "m": 4, "k": 5, "n": 6})
    assert request == {
        "kind": "gemm", "dataflow": "os", "m": 4, "k": 5, "n": 6, "array": "32x32",
    }


def test_sweep_partitions_default_and_filter():
    request = normalize_request({"kind": "sweep", "layer": "GNMT1", "macs": 4096})
    assert request["partitions"] == [1, 4, 16, 64]  # 4**i with >= 64 MACs each
    explicit = normalize_request(
        {"kind": "sweep", "layer": "GNMT1", "macs": 4096, "partitions": [1, 3, 16]}
    )
    assert explicit["partitions"] == [1, 16]  # 3 doesn't divide into a pow2


@pytest.mark.parametrize(
    "payload",
    [
        "not a dict",
        {"kind": "teapot"},
        {"kind": "gemm", "m": 4, "k": 5},  # n missing
        {"kind": "gemm", "m": 4, "k": 5, "n": 0},
        {"kind": "gemm", "m": 4, "k": 5, "n": 6, "array": "axb"},
        {"kind": "gemm", "m": 4, "k": 5, "n": 6, "bogus": 1},
        {"kind": "run", "workload": "no-such-net"},
        {"kind": "sweep", "layer": "GNMT1", "macs": 100},  # not a pow2
        {"kind": "sweep", "layer": "GNMT1", "macs": 4096, "partitions": [3]},
        {"kind": "sweep", "layer": "never-heard-of-it", "macs": 4096},
    ],
)
def test_invalid_requests_raise_service_error(payload):
    with pytest.raises(ServiceError):
        normalize_request(payload)


def test_job_key_is_order_insensitive_and_kind_sensitive():
    a = job_key(normalize_request({"kind": "gemm", "m": 4, "k": 5, "n": 6}))
    b = job_key(normalize_request({"n": 6, "k": 5, "m": 4, "kind": "gemm"}))
    c = job_key(normalize_request({"kind": "gemm", "m": 4, "k": 5, "n": 7}))
    assert a == b != c


def test_execute_run_table_iv_layer():
    request = normalize_request(
        {"kind": "run", "workload": next(iter(TABLE_IV_DIMS)), "array": "8x8"}
    )
    body = execute_job(request)
    assert body["total_cycles"] > 0
    assert len(body["rows"]) == 1


def test_execute_sweep_matches_direct_measure():
    request = normalize_request(
        {"kind": "sweep", "layer": "GNMT1", "macs": 1024, "partitions": [1, 4]}
    )
    body = execute_job(request)
    assert body["points"] == 2
    direct = sweep_measure(4, layer=language_layer("GNMT1"), macs=1024)
    # The report row carries extra sweep columns; the physics must agree.
    assert body["rows"][1]["cycles"] == direct["cycles"]
    assert body["rows"][1]["array"] == direct["array"]


def test_square_grid_prefers_square_factorizations():
    assert square_grid(16) == (4, 4)
    assert square_grid(64) == (8, 8)
    assert square_grid(2) == (1, 2)
