"""Unit tests for the input-stationary engine."""

import numpy as np

from repro.config.hardware import Dataflow
from repro.dataflow.base import AddressLayout
from repro.dataflow.input_stationary import InputStationaryEngine
from repro.dataflow.weight_stationary import WeightStationaryEngine


def engine(m=10, k=5, n=8, rows=4, cols=4) -> InputStationaryEngine:
    return InputStationaryEngine(m, k, n, rows, cols)


def single_fold(eng):
    return next(iter(eng.plan.folds()))


class TestMapping:
    def test_table3_roles(self):
        eng = engine(m=10, k=5, n=8)
        assert eng.mapping.sr == 5  # W_conv on rows
        assert eng.mapping.sc == 10  # N_ofmap on cols
        assert eng.mapping.t == 8  # N_filter in time

    def test_dataflow_tag(self):
        assert engine().dataflow is Dataflow.INPUT_STATIONARY


class TestMirrorOfWS:
    """IS is WS with operand roles swapped; timing must be identical for
    the transposed problem."""

    def test_cycles_match_swapped_ws(self):
        is_engine = engine(m=10, k=5, n=8, rows=4, cols=4)
        # WS with M and N swapped has the same (sr, sc, t) triple.
        ws_engine = WeightStationaryEngine(8, 5, 10, 4, 4)
        assert is_engine.total_cycles() == ws_engine.total_cycles()

    def test_counts_are_ws_with_streams_swapped(self):
        is_engine = engine(m=10, k=5, n=8, rows=4, cols=4)
        ws_engine = WeightStationaryEngine(8, 5, 10, 4, 4)
        for is_fold, ws_fold in zip(is_engine.plan.folds(), ws_engine.plan.folds()):
            is_counts = is_engine.fold_counts(is_fold)
            ws_counts = ws_engine.fold_counts(ws_fold)
            assert is_counts.ifmap_reads == ws_counts.filter_reads
            assert is_counts.filter_reads == ws_counts.ifmap_reads
            assert is_counts.ofmap_writes == ws_counts.ofmap_writes


class TestCounts:
    def test_fold_counts(self):
        eng = engine(m=4, k=4, n=10, rows=4, cols=4)
        counts = eng.fold_counts(single_fold(eng))
        assert counts.ifmap_reads == 4 * 4  # prefill r x c
        assert counts.filter_reads == 4 * 10  # r x T
        assert counts.ofmap_writes == 4 * 10  # c x T

    def test_layer_ifmap_reads_equal_ifmap_matrix(self):
        eng = engine(m=10, k=9, n=7, rows=4, cols=4)
        assert eng.layer_counts().ifmap_reads == 10 * 9


class TestDemandAndTrace:
    def test_prefill_reads_ifmap_only(self):
        eng = engine(m=4, k=4, n=6, rows=4, cols=4)
        demand = eng.fold_demand(single_fold(eng))
        assert np.all(demand.ifmap_reads[:4] == 4)
        assert np.all(demand.filter_reads[:4] == 0)

    def test_filter_addresses_cover_matrix(self):
        eng = engine(m=6, k=9, n=7, rows=4, cols=4)
        layout = AddressLayout(m=6, k=9, n=7)
        seen = set()
        for row in eng.layer_trace(layout):
            seen.update(row.filter_addrs)
        expected = {layout.filter_addr(e, f) for e in range(9) for f in range(7)}
        assert seen == expected

    def test_ifmap_addresses_cover_matrix(self):
        eng = engine(m=6, k=9, n=7, rows=4, cols=4)
        layout = AddressLayout(m=6, k=9, n=7)
        seen = set()
        for row in eng.layer_trace(layout):
            seen.update(row.ifmap_addrs)
        expected = {layout.ifmap_addr(w, e) for w in range(6) for e in range(9)}
        assert seen == expected

    def test_outputs_written_once_per_row_fold(self):
        eng = engine(m=6, k=9, n=7, rows=4, cols=4)
        layout = AddressLayout(m=6, k=9, n=7)
        written = []
        for row in eng.layer_trace(layout):
            written.extend(row.ofmap_addrs)
        assert len(written) == eng.plan.row_folds * 6 * 7


class TestSlices:
    def test_ifmap_slice_unique_per_fold(self):
        eng = engine(m=10, k=9, n=9, rows=4, cols=4)
        ids = [eng.ifmap_slice(f).slice_id for f in eng.plan.folds()]
        assert len(ids) == len(set(ids))

    def test_filter_slice_shared_across_column_folds(self):
        eng = engine(m=10, k=9, n=9, rows=4, cols=4)
        folds = [f for f in eng.plan.folds() if f.row_index == 0]
        ids = {eng.filter_slice(f).slice_id for f in folds}
        assert len(ids) == 1
