"""Unit tests for the fault-tolerant point/batch executor."""

import pytest

from repro.errors import CircuitOpenError, PointTimeoutError
from repro.robust.executor import execute_grid, execute_point
from repro.robust.policy import ExecutionPolicy
from repro.robust.report import exception_chain

NO_SLEEP = lambda _delay: None  # noqa: E731 - keep retry tests instant


class TestExecutePoint:
    def test_success_first_try(self):
        record = execute_point(lambda a: {"x": a + 1}, {"a": 1})
        assert record.status == "ok"
        assert record.attempts == 1
        assert record.rows == ({"x": 2},)

    def test_failure_records_error_chain(self):
        def boom(a):
            try:
                raise KeyError("inner")
            except KeyError as exc:
                raise RuntimeError("outer") from exc

        record = execute_point(boom, {"a": 1})
        assert record.status == "failed"
        assert record.error == "RuntimeError: outer"
        assert record.error_chain == ("RuntimeError: outer", "KeyError: 'inner'")
        assert isinstance(record.exception, RuntimeError)

    def test_retries_until_success(self):
        calls = []

        def flaky(a):
            calls.append(a)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return {"ok": True}

        policy = ExecutionPolicy(max_retries=5)
        record = execute_point(flaky, {"a": 1}, policy=policy, sleep=NO_SLEEP)
        assert record.status == "ok"
        assert record.attempts == 3
        assert len(calls) == 3

    def test_retries_exhausted(self):
        def always(a):
            raise RuntimeError("still broken")

        policy = ExecutionPolicy(max_retries=2)
        record = execute_point(always, {"a": 1}, policy=policy, sleep=NO_SLEEP)
        assert record.status == "failed"
        assert record.attempts == 3

    def test_backoff_schedule_is_deterministic(self):
        slept = []

        def always(a):
            raise RuntimeError("nope")

        policy = ExecutionPolicy(max_retries=2, backoff_base=1.0, jitter=0.5)
        execute_point(always, {"a": 1}, policy=policy, key="k", sleep=slept.append)
        again = []
        execute_point(always, {"a": 1}, policy=policy, key="k", sleep=again.append)
        assert slept == again
        assert len(slept) == 2

    def test_non_retryable_exception_fails_immediately(self):
        calls = []

        def bad(a):
            calls.append(a)
            raise ValueError("config bug")

        policy = ExecutionPolicy(max_retries=5, retry_on=(TimeoutError,))
        record = execute_point(bad, {"a": 1}, policy=policy, sleep=NO_SLEEP)
        assert record.status == "failed"
        assert len(calls) == 1

    def test_wallclock_timeout(self):
        import time

        def hang(a):
            time.sleep(0.8)
            return {"x": a}

        policy = ExecutionPolicy(timeout=0.05)
        record = execute_point(hang, {"a": 1}, policy=policy)
        assert record.status == "failed"
        assert "PointTimeoutError" in record.error
        assert isinstance(record.exception, PointTimeoutError)

    def test_keyboard_interrupt_propagates(self):
        def interrupted(a):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            execute_point(interrupted, {"a": 1})

    def test_non_dict_result_rejected(self):
        record = execute_point(lambda a: 42, {"a": 1})
        assert record.status == "failed"
        assert "TypeError" in record.error


class TestExecuteGrid:
    def test_all_points_accounted(self):
        points = [{"a": i} for i in range(5)]
        report = execute_grid(lambda a: {"sq": a * a}, points)
        assert len(report) == 5
        assert report.ok == 5
        assert [record.params for record in report] == points

    def test_collect_mode_keeps_going(self):
        def sometimes(a):
            if a % 2:
                raise RuntimeError("odd")
            return {"a2": a * 2}

        report = execute_grid(
            sometimes, [{"a": i} for i in range(4)],
            policy=ExecutionPolicy(mode="collect"),
        )
        assert report.ok == 2
        assert report.failed == 2
        assert report.summary() == "2 ok, 2 failed"

    def test_fail_fast_reraises_original(self):
        def boom(a):
            raise ZeroDivisionError("bang")

        with pytest.raises(ZeroDivisionError):
            execute_grid(
                boom, [{"a": 1}], policy=ExecutionPolicy(mode="fail_fast")
            )

    def test_circuit_breaker_skips_remainder(self):
        def always(a):
            raise RuntimeError("down")

        report = execute_grid(
            always,
            [{"a": i} for i in range(6)],
            policy=ExecutionPolicy(mode="collect", max_failures=2),
        )
        assert report.failed == 2
        assert report.skipped == 4
        assert all(r.status == "skipped" for r in list(report)[2:])
        with pytest.raises(CircuitOpenError, match="circuit"):
            report.ensure_complete()

    def test_rows_give_failed_points_status_column(self):
        def sometimes(a):
            if a == 2:
                raise RuntimeError("nope")
            return {"x": a}

        report = execute_grid(
            sometimes, [{"a": i} for i in (1, 2, 3)],
            policy=ExecutionPolicy(mode="collect"),
        )
        rows = report.rows()
        assert rows[0] == {"x": 1}
        assert rows[1]["status"] == "failed"
        assert "RuntimeError" in rows[1]["error"]


class TestExceptionChain:
    def test_implicit_context(self):
        try:
            try:
                raise KeyError("inner")
            except KeyError:
                raise ValueError("outer")
        except ValueError as exc:
            chain = exception_chain(exc)
        assert chain == ["ValueError: outer", "KeyError: 'inner'"]

    def test_cycle_safe(self):
        exc = ValueError("self")
        exc.__cause__ = exc
        assert exception_chain(exc) == ["ValueError: self"]
