"""Unit tests for the INI config parser."""

import pytest

from repro.config.hardware import Dataflow, HardwareConfig
from repro.config.parser import dump_config, load_config, parse_config_text
from repro.errors import ConfigError

VALID = """
[general]
run_name = test-run

[architecture_presets]
ArrayHeight = 16
ArrayWidth = 8
IfmapSramSz = 64
FilterSramSz = 64
OfmapSramSz = 32
IfmapOffset = 0
FilterOffset = 1000000
OfmapOffset = 2000000
Dataflow = ws
"""


class TestParseConfigText:
    def test_parses_all_fields(self):
        config = parse_config_text(VALID)
        assert config.array_rows == 16
        assert config.array_cols == 8
        assert config.ifmap_sram_kb == 64
        assert config.dataflow is Dataflow.WEIGHT_STATIONARY
        assert config.run_name == "test-run"

    def test_keys_are_case_insensitive(self):
        config = parse_config_text("[a]\narrayheight = 4\narraywidth = 4\n")
        assert config.array_rows == 4

    def test_defaults_fill_missing_keys(self):
        config = parse_config_text("[a]\nArrayHeight = 4\n")
        assert config.array_cols == HardwareConfig().array_cols

    def test_partition_keys(self):
        config = parse_config_text("[a]\nPartitionRows = 2\nPartitionCols = 8\n")
        assert config.num_partitions == 16

    def test_rejects_unknown_key(self):
        with pytest.raises(ConfigError, match="unknown config key"):
            parse_config_text("[a]\nFrobnicate = 3\n")

    def test_rejects_non_integer(self):
        with pytest.raises(ConfigError, match="must be an integer"):
            parse_config_text("[a]\nArrayHeight = tall\n")

    def test_rejects_bad_dataflow(self):
        with pytest.raises(ConfigError):
            parse_config_text("[a]\nDataflow = systolic\n")

    def test_rejects_malformed_ini(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_config_text("ArrayHeight = 4\n")  # key outside any section

    def test_rejects_invalid_value_range(self):
        with pytest.raises(ConfigError):
            parse_config_text("[a]\nArrayHeight = 0\n")

    def test_topology_key_tolerated(self):
        config = parse_config_text("[a]\nTopology = ./net.csv\nArrayHeight = 4\n")
        assert config.array_rows == 4


class TestFileRoundtrip:
    def test_dump_then_load(self, tmp_path):
        original = HardwareConfig(
            array_rows=12, array_cols=14, dataflow=Dataflow.INPUT_STATIONARY,
            partition_rows=2, partition_cols=2, run_name="roundtrip",
        )
        path = dump_config(original, tmp_path / "config.cfg")
        assert load_config(path) == original

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_config(tmp_path / "nope.cfg")
