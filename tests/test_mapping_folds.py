"""Unit tests for fold (tiling) arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.errors import MappingError
from repro.mapping.dims import OperandMapping
from repro.mapping.folds import plan_folds


def mapping(sr=20, sc=12, t=5) -> OperandMapping:
    return OperandMapping(sr=sr, sc=sc, t=t, dataflow=Dataflow.OUTPUT_STATIONARY)


class TestFoldCounts:
    def test_exact_division(self):
        plan = plan_folds(mapping(sr=20, sc=12), 5, 4)
        assert plan.row_folds == 4
        assert plan.col_folds == 3
        assert plan.num_folds == 12

    def test_ceiling_division(self):
        plan = plan_folds(mapping(sr=21, sc=13), 5, 4)
        assert plan.row_folds == 5
        assert plan.col_folds == 4

    def test_single_fold_when_array_fits_workload(self):
        plan = plan_folds(mapping(sr=3, sc=2), 8, 8)
        assert plan.num_folds == 1

    def test_fold_rows_full_and_edge(self):
        plan = plan_folds(mapping(sr=21), 5, 4)
        assert plan.fold_rows(0) == 5
        assert plan.fold_rows(4) == 1  # 21 = 4*5 + 1

    def test_fold_cols_edge(self):
        plan = plan_folds(mapping(sc=13), 5, 4)
        assert plan.fold_cols(3) == 1

    def test_fold_rows_out_of_range(self):
        plan = plan_folds(mapping(), 5, 4)
        with pytest.raises(MappingError):
            plan.fold_rows(99)

    def test_fold_cols_out_of_range(self):
        plan = plan_folds(mapping(), 5, 4)
        with pytest.raises(MappingError):
            plan.fold_cols(-1)


class TestFoldIteration:
    def test_row_major_order(self):
        plan = plan_folds(mapping(sr=10, sc=8), 5, 4)
        order = [(fold.row_index, fold.col_index) for fold in plan.folds()]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_offsets(self):
        plan = plan_folds(mapping(sr=10, sc=8), 5, 4)
        last = list(plan.folds())[-1]
        assert last.row_offset == 5
        assert last.col_offset == 4

    def test_mapped_pes(self):
        plan = plan_folds(mapping(sr=6, sc=5), 5, 4)
        shapes = plan.fold_shapes()
        assert shapes == [(5, 4), (5, 1), (1, 4), (1, 1)]

    @given(
        st.integers(1, 200), st.integers(1, 200), st.integers(1, 50),
        st.integers(2, 64), st.integers(2, 64),
    )
    def test_folds_tile_exactly(self, sr, sc, t, rows, cols):
        """Union of fold tiles covers S_R x S_C exactly once."""
        plan = plan_folds(mapping(sr=sr, sc=sc, t=t), rows, cols)
        covered = sum(fold.mapped_pes for fold in plan.folds())
        assert covered == sr * sc
        assert plan.total_mapped_pe_cycles == sr * sc * t

    @given(
        st.integers(1, 400), st.integers(1, 400),
        st.integers(1, 64), st.integers(1, 64),
    )
    def test_fold_dims_bounded_by_array(self, sr, sc, rows, cols):
        plan = plan_folds(mapping(sr=sr, sc=sc), rows, cols)
        for fold in plan.folds():
            assert 1 <= fold.rows <= rows
            assert 1 <= fold.cols <= cols
