"""Vectorized analytical kernels: bit-identity with the scalar model."""

import itertools

import numpy as np
import pytest

from repro.analytical.runtime import (
    fold_runtime,
    mapping_utilization,
    scaleout_runtime,
    scaleup_runtime,
)
from repro.analytical.traffic import estimate_traffic
from repro.analytical.vectorized import (
    _EXACT_INT_BOUND,
    ceil_div_v,
    estimate_traffic_v,
    exact_cycles_v,
    fold_runtime_v,
    mapping_utilization_v,
    scaleout_runtime_v,
    scaleup_runtime_v,
)
from repro.config.hardware import Dataflow, HardwareConfig
from repro.mapping.dims import OperandMapping, map_gemm, map_gemm_batch
from repro.memory.buffers import BufferSet
from repro.utils.mathutils import ceil_div

#: Boundary-heavy workload dims: 1s, divisors, off-by-one remainders.
DIMS = [1, 2, 7, 8, 9, 31, 64, 100]
ARRAYS = [(8, 8), (4, 16), (3, 5), (1, 8)]
GRIDS = [(1, 1), (2, 2), (1, 4), (3, 2)]


def _grid_cases():
    for sr, sc, t in itertools.product(DIMS, DIMS[:5], DIMS[:4]):
        yield sr, sc, t


class TestRuntimeKernels:
    def test_ceil_div_matches_scalar(self):
        n = np.array([0, 1, 7, 8, 9, 63, 64, 65])
        d = np.array([1, 2, 8, 8, 8, 8, 8, 8])
        expected = [ceil_div(int(a), int(b)) for a, b in zip(n, d)]
        assert ceil_div_v(n, d).tolist() == expected

    def test_ceil_div_rejects_nonpositive_denominator(self):
        with pytest.raises(ValueError):
            ceil_div_v(4, 0)

    def test_int64_bound_guard(self):
        with pytest.raises(ValueError):
            ceil_div_v(2**53, 1)

    def test_fold_runtime_elementwise(self):
        rows = np.array([r for r, _ in ARRAYS])
        cols = np.array([c for _, c in ARRAYS])
        got = fold_runtime_v(rows, cols, 7)
        expected = [fold_runtime(r, c, 7) for r, c in ARRAYS]
        assert got.tolist() == expected

    def test_scaleup_runtime_matches_scalar(self):
        for sr, sc, t in _grid_cases():
            mapping = OperandMapping(sr=sr, sc=sc, t=t, dataflow=Dataflow.OUTPUT_STATIONARY)
            for rows, cols in ARRAYS:
                assert int(scaleup_runtime_v(sr, sc, t, rows, cols)) == scaleup_runtime(
                    mapping, rows, cols
                )

    def test_scaleout_runtime_matches_scalar(self):
        for sr, sc, t in _grid_cases():
            mapping = OperandMapping(sr=sr, sc=sc, t=t, dataflow=Dataflow.OUTPUT_STATIONARY)
            for (pr, pc), (rows, cols) in itertools.product(GRIDS, ARRAYS[:2]):
                assert int(
                    scaleout_runtime_v(sr, sc, t, pr, pc, rows, cols)
                ) == scaleout_runtime(mapping, pr, pc, rows, cols)

    def test_mapping_utilization_bit_identical(self):
        for sr, sc, t in _grid_cases():
            mapping = OperandMapping(sr=sr, sc=sc, t=t, dataflow=Dataflow.OUTPUT_STATIONARY)
            for rows, cols in ARRAYS:
                scalar = mapping_utilization(mapping, rows, cols)
                vector = float(mapping_utilization_v(sr, sc, rows, cols))
                assert vector == scalar  # rel_tol 0: same float64 bits

    def test_whole_array_evaluation(self):
        """One call prices a whole column of points at once."""
        sr = np.array([100, 31, 8, 1])
        rows = np.array([8, 4, 8, 3])
        got = scaleup_runtime_v(sr, 64, 9, rows, 16)
        for i in range(len(sr)):
            mapping = OperandMapping(
                sr=int(sr[i]), sc=64, t=9, dataflow=Dataflow.OUTPUT_STATIONARY
            )
            assert int(got[i]) == scaleup_runtime(mapping, int(rows[i]), 16)


class TestTrafficKernels:
    def _buffers(self, kb: int) -> BufferSet:
        config = HardwareConfig(
            array_rows=8,
            array_cols=8,
            ifmap_sram_kb=kb,
            filter_sram_kb=kb,
            ofmap_sram_kb=kb,
        )
        return BufferSet.from_config(config)

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    @pytest.mark.parametrize("kb", [1, 4, 64])
    def test_traffic_matches_scalar(self, dataflow, kb):
        buffers = self._buffers(kb)
        for sr, sc, t in _grid_cases():
            mapping = OperandMapping(sr=sr, sc=sc, t=t, dataflow=dataflow)
            for rows, cols in ARRAYS[:2]:
                for word in (1, 2):
                    scalar = estimate_traffic(mapping, rows, cols, buffers, word)
                    ifmap, filt, ofmap, cycles = estimate_traffic_v(
                        sr,
                        sc,
                        t,
                        dataflow,
                        rows,
                        cols,
                        buffers.ifmap.working_bytes,
                        buffers.filter.working_bytes,
                        word,
                    )
                    assert int(ifmap) == scalar.ifmap_bytes
                    assert int(filt) == scalar.filter_bytes
                    assert int(ofmap) == scalar.ofmap_bytes
                    assert int(cycles) == scalar.total_cycles

    def test_exact_cycles_matches_traffic_closed_form(self):
        buffers = self._buffers(64)
        for sr, sc, t in _grid_cases():
            mapping = OperandMapping(sr=sr, sc=sc, t=t, dataflow=Dataflow.OUTPUT_STATIONARY)
            for rows, cols in ARRAYS:
                scalar = estimate_traffic(mapping, rows, cols, buffers, 1)
                assert int(exact_cycles_v(sr, sc, t, rows, cols)) == scalar.total_cycles


class TestBatchMapping:
    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_map_gemm_batch_matches_scalar(self, dataflow):
        ms = np.array([1, 7, 64, 100])
        ks = np.array([9, 3, 64, 1])
        ns = np.array([17, 8, 64, 5])
        sr, sc, t = map_gemm_batch(ms, ks, ns, dataflow)
        for i in range(len(ms)):
            scalar = map_gemm(int(ms[i]), int(ks[i]), int(ns[i]), dataflow)
            assert (int(sr[i]), int(sc[i]), int(t[i])) == (
                scalar.sr,
                scalar.sc,
                scalar.t,
            )

    def test_map_gemm_batch_rejects_nonpositive(self):
        from repro.errors import MappingError

        with pytest.raises(MappingError):
            map_gemm_batch(np.array([1, 0]), np.array([1, 1]), np.array([1, 1]),
                           Dataflow.OUTPUT_STATIONARY)


def test_exactness_bound_is_documented_power():
    assert _EXACT_INT_BOUND == 2**53
