"""Tests for terminal visualization helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.viz import bar, bar_chart, sparkline, trend_table


class TestBar:
    def test_full_bar(self):
        assert bar(10, 10, width=4) == "####"

    def test_half_bar(self):
        assert bar(5, 10, width=4) == "##"

    def test_zero_value(self):
        assert bar(0, 10, width=4) == ""

    def test_zero_maximum(self):
        assert bar(0, 0, width=4) == ""

    def test_clamps_overflow(self):
        assert bar(100, 10, width=4) == "####"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar(-1, 10)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            bar(1, 1, width=0)

    @given(st.floats(0, 1e6), st.floats(0.001, 1e6), st.integers(1, 100))
    def test_length_bounded_by_width(self, value, maximum, width):
        assert len(bar(value, maximum, width)) <= width


class TestBarChart:
    def test_rows_and_alignment(self):
        chart = bar_chart(["aa", "b"], [2, 4], width=4)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("aa |")
        assert lines[1].startswith(" b |")

    def test_max_fills_width(self):
        chart = bar_chart(["a", "b"], [1, 2], width=4, show_values=False)
        assert "####" in chart.splitlines()[1]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([], [])


class TestSparkline:
    def test_monotone_series_monotone_chars(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert list(line) == sorted(line, key=" .:-=+*#%@".index)

    def test_constant_series(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_length_matches(self):
        assert len(sparkline(list(range(17)))) == 17

    def test_extremes_use_extreme_chars(self):
        line = sparkline([0, 100])
        assert line[0] == " "
        assert line[1] == "@"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sparkline([-1, 2])


class TestTrendTable:
    def test_renders_aligned(self):
        table = trend_table(["x", "long_header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:2])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            trend_table(["a", "b"], [[1]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            trend_table(["a"], [])
