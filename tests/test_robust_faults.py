"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.errors import PointTimeoutError
from repro.robust.faults import Fault, InjectedFault, inject_faults


def healthy(**params):
    return {"cycles": 100 * params.get("a", 1)}


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Fault(kind="gremlin")

    def test_corrupt_requires_mutate(self):
        with pytest.raises(ValueError, match="mutate"):
            Fault(kind="corrupt")

    def test_rejects_zero_times(self):
        with pytest.raises(ValueError, match="times"):
            Fault(kind="transient", times=0)


class TestInjection:
    def test_transient_fires_then_clears(self):
        faulty = inject_faults(healthy, Fault(kind="transient", times=2))
        with pytest.raises(InjectedFault):
            faulty(a=1)
        with pytest.raises(InjectedFault):
            faulty(a=1)
        assert faulty(a=1) == {"cycles": 100}

    def test_when_matches_param_subset(self):
        fault = Fault(kind="transient", when={"a": 2}, times=None)
        faulty = inject_faults(healthy, fault)
        assert faulty(a=1) == {"cycles": 100}
        with pytest.raises(InjectedFault):
            faulty(a=2)
        assert fault.fired == 1

    def test_timeout_kind_raises_timeout_error(self):
        faulty = inject_faults(healthy, Fault(kind="timeout"))
        with pytest.raises(PointTimeoutError, match="injected timeout"):
            faulty(a=1)

    def test_interrupt_kind_raises_keyboard_interrupt(self):
        faulty = inject_faults(healthy, Fault(kind="interrupt"))
        with pytest.raises(KeyboardInterrupt):
            faulty(a=1)

    def test_corrupt_mutates_result(self):
        faulty = inject_faults(
            healthy,
            Fault(kind="corrupt", mutate=lambda row: {**row, "cycles": -1}),
        )
        assert faulty(a=1) == {"cycles": -1}

    def test_corrupt_mutates_each_row_of_list_results(self):
        def multi(**params):
            return [{"i": 0}, {"i": 1}]

        faulty = inject_faults(
            multi, Fault(kind="corrupt", mutate=lambda row: {**row, "bad": True})
        )
        assert faulty() == [{"i": 0, "bad": True}, {"i": 1, "bad": True}]

    def test_custom_exception_factory(self):
        faulty = inject_faults(
            healthy, Fault(kind="transient", exc=lambda: ConnectionError("net"))
        )
        with pytest.raises(ConnectionError):
            faulty(a=1)

    def test_faults_are_deterministic_per_call_sequence(self):
        def build():
            return inject_faults(healthy, Fault(kind="transient", times=1))

        first, second = build(), build()
        outcomes = []
        for fn in (first, second):
            try:
                fn(a=1)
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")
        assert outcomes == ["fault", "fault"]
