"""Invariant guards: analytical cross-checks and trace conservation."""

import dataclasses

import pytest

from repro.config.hardware import Dataflow, HardwareConfig
from repro.config.presets import paper_scaling_config
from repro.engine.scaleout import simulate
from repro.engine.simulator import Simulator
from repro.errors import InvariantError
from repro.robust.invariants import (
    check_cycles,
    check_layer_result,
    check_macs,
    check_trace_conservation,
    expected_cycles,
)
from repro.topology.layer import GemmLayer

ALL_DATAFLOWS = [
    Dataflow.OUTPUT_STATIONARY,
    Dataflow.WEIGHT_STATIONARY,
    Dataflow.INPUT_STATIONARY,
]


@pytest.fixture
def layer():
    return GemmLayer("g", m=40, k=12, n=20)


class TestExpectedCycles:
    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS)
    def test_matches_engine_monolithic(self, small_config, layer, dataflow):
        config = small_config.with_dataflow(dataflow)
        result = Simulator(config).run_layer(layer)
        assert expected_cycles(layer, config) == result.total_cycles

    def test_matches_engine_scaleout(self, layer):
        config = paper_scaling_config(8, 8, 2, 2)
        result = simulate(config, layer)
        assert expected_cycles(layer, config) == result.total_cycles


class TestCycleGuard:
    def test_accepts_honest_result(self, small_config, layer):
        result = Simulator(small_config).run_layer(layer)
        check_cycles(result, layer, small_config)

    def test_catches_corrupted_cycles(self, small_config, layer):
        honest = Simulator(small_config).run_layer(layer)
        corrupted = dataclasses.replace(honest, total_cycles=honest.total_cycles + 999)
        with pytest.raises(InvariantError) as info:
            check_cycles(corrupted, layer, small_config)
        # The message must carry both the measured and the predicted value.
        message = str(info.value)
        assert str(corrupted.total_cycles) in message
        assert str(honest.total_cycles) in message
        assert "analytical" in message

    def test_tolerance_allows_small_divergence(self, small_config, layer):
        honest = Simulator(small_config).run_layer(layer)
        nudged = dataclasses.replace(honest, total_cycles=honest.total_cycles + 1)
        with pytest.raises(InvariantError):
            check_cycles(nudged, layer, small_config)
        check_cycles(nudged, layer, small_config, rel_tol=0.05)


class TestMacGuard:
    def test_catches_corrupted_macs(self, small_config, layer):
        honest = Simulator(small_config).run_layer(layer)
        corrupted = dataclasses.replace(honest, macs=honest.macs * 2)
        with pytest.raises(InvariantError, match="macs"):
            check_macs(corrupted, layer, small_config)


class TestTraceConservation:
    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS)
    def test_engine_conserves_traffic(self, small_config, layer, dataflow):
        config = small_config.with_dataflow(dataflow)
        engine = Simulator(config).engine(layer)
        check_trace_conservation(engine)

    def test_catches_count_demand_mismatch(self, small_config, layer):
        engine = Simulator(small_config).engine(layer)
        honest = engine.layer_counts()

        class Lying:
            plan = engine.plan
            fold_demand = engine.fold_demand

            def layer_counts(self):
                return dataclasses.replace(
                    honest, ifmap_reads=honest.ifmap_reads + 7
                )

        with pytest.raises(InvariantError, match="ifmap_reads") as info:
            check_trace_conservation(Lying())
        assert str(honest.ifmap_reads) in str(info.value)
        assert str(honest.ifmap_reads + 7) in str(info.value)


class TestResultGuard:
    def test_full_guard_accepts_real_runs(self, small_config, layer):
        result = Simulator(small_config).run_layer(layer)
        assert check_layer_result(result, layer, small_config) is result

    def test_simulate_verify_flag(self, small_config, layer):
        result = simulate(small_config, layer, verify=True)
        assert result.total_cycles > 0

    def test_guard_rejects_bad_utilization(self, small_config, layer):
        honest = Simulator(small_config).run_layer(layer)
        corrupted = dataclasses.replace(honest, mapping_utilization=1.7)
        with pytest.raises(InvariantError, match="mapping_utilization"):
            check_layer_result(corrupted, layer, small_config)
