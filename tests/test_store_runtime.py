"""The store runtime: engine wiring, env propagation, byte-identity.

The headline acceptance criterion lives here: a simulation served from
the persistent store is *byte-identical* to a cold run — same
``LayerResult``, same CSV row — and a bit-flipped entry is detected,
quarantined, and transparently recomputed back to the identical value.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.config.presets import paper_scaling_config
from repro.engine.simulator import Simulator
from repro.perf.cache import cache
from repro.store import (
    STORE_ENV_VAR,
    active,
    configure,
    deactivate,
    disable,
    store_key,
)
from repro.store.records import decode_result_pair, encode_result_pair
from repro.store.runtime import probe, record


@pytest.fixture(autouse=True)
def isolated_store():
    """Each test gets a pristine runtime and a pristine LRU."""
    deactivate()
    cache.reset()
    yield
    deactivate()
    cache.reset()


def _simulate(m=24, k=16, n=20):
    return Simulator(paper_scaling_config(8, 8)).run_gemm(m, k, n)


# ----------------------------------------------------------------------
# Configuration & environment propagation
# ----------------------------------------------------------------------

def test_configure_sets_environment_for_workers(tmp_path):
    store = configure(tmp_path / "s")
    assert os.environ[STORE_ENV_VAR] == str(store.root)
    assert active() is store


def test_disable_overrides_inherited_environment(tmp_path):
    configure(tmp_path / "s")
    disable()
    assert active() is None
    assert os.environ[STORE_ENV_VAR] == ""


def test_active_lazily_opens_from_environment(tmp_path):
    configure(tmp_path / "s")
    deactivate()
    os.environ[STORE_ENV_VAR] = str(tmp_path / "s")
    store = active()
    assert store is not None and store.root == tmp_path / "s"


def test_unopenable_environment_store_degrades_quietly(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file, not directory")
    os.environ[STORE_ENV_VAR] = str(blocker)
    assert active() is None  # warned + compute-only, not raised
    assert active() is None  # and the failure is not retried


def test_store_key_is_stable_and_version_stamped():
    key = store_key(("gemm", 8, 8, 8))
    assert key == store_key(("gemm", 8, 8, 8))
    assert key != store_key(("gemm", 8, 8, 16))


# ----------------------------------------------------------------------
# Record encode/decode round trip
# ----------------------------------------------------------------------

def test_result_pair_round_trips_exactly(tmp_path):
    result = _simulate()
    pair = probe_pair_from_simulation()
    payload = encode_result_pair(*pair)
    decoded_result, decoded_traffic = decode_result_pair(payload)
    assert decoded_result == dataclasses.replace(result, layer_name="")
    assert decoded_traffic == pair[1]


def probe_pair_from_simulation():
    """The exact (result, traffic) pair the engine memoizes."""
    cache.reset()
    _simulate()
    (key,) = list(cache._entries)  # single-entry introspection
    return cache.get(key)


def test_decode_rejects_malformed_payloads():
    with pytest.raises(ValueError):
        decode_result_pair({"kind": "something-else"})
    payload = encode_result_pair(*probe_pair_from_simulation())
    del payload["result"]["total_cycles"]
    with pytest.raises(KeyError):
        decode_result_pair(payload)


# ----------------------------------------------------------------------
# Engine integration: byte-identical store hits
# ----------------------------------------------------------------------

def test_store_hit_is_byte_identical_to_cold_run(tmp_path):
    store = configure(tmp_path / "s")
    cold = _simulate()
    cache.reset()  # force the next run past the LRU to the disk store
    warm = _simulate()
    assert warm == cold
    assert warm.as_row() == cold.as_row()
    assert store.status()["hits"] == 1
    assert store.status()["writes"] == 1


def test_bit_flip_recomputes_byte_identical(tmp_path):
    store = configure(tmp_path / "s")
    cold = _simulate()
    (key,) = list(store.keys())
    path = store.entry_path(key)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0x20
    path.write_bytes(bytes(raw))

    cache.reset()
    healed = _simulate()  # detects, quarantines, recomputes, re-publishes
    assert healed == cold
    assert len(store.quarantined()) == 1
    assert store.get(key) is not None  # entry healed on disk
    cache.reset()
    assert _simulate() == cold  # and the healed entry serves hits again


def test_probe_quarantines_undecodable_payload(tmp_path):
    store = configure(tmp_path / "s")
    sim_key = ("gemm", 1, 2, 3)
    # Valid checksum, wrong shape: passes the store, fails the decoder.
    store.put(store_key(sim_key), {"kind": "layer_result_pair", "result": {}})
    assert probe(sim_key) is None
    assert len(store.quarantined()) == 1


def test_record_is_noop_without_a_store():
    assert not record(("gemm", 1, 1, 1), probe_pair_from_simulation())
    assert probe(("gemm", 1, 1, 1)) is None


def test_different_configs_use_different_entries(tmp_path):
    store = configure(tmp_path / "s")
    Simulator(paper_scaling_config(8, 8)).run_gemm(16, 16, 16)
    Simulator(paper_scaling_config(16, 16)).run_gemm(16, 16, 16)
    assert len(store) == 2
