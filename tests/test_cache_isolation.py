"""Cache-key isolation: results must never leak across configurations.

The LRU memo (:mod:`repro.perf.cache`) and the durable result store
(:mod:`repro.store`) both key on :func:`simulation_key`.  Any field
that influences a simulation but is missing from the key silently
aliases two different machines — the worst kind of wrong answer.
These tests pin every discriminating field, including adversarial
near-collisions.
"""

import unittest.mock as mock

import pytest

from repro.config.hardware import Dataflow, HardwareConfig
from repro.engine.simulator import Simulator
from repro.perf.cache import SimulationCache, cache, simulation_key
from repro.resilience.faultmap import FaultMap
from repro.store.runtime import store_key
from repro.topology.layer import GemmLayer


def _key(config, rows=None, cols=None, m=6, k=6, n=6, loop_order="row"):
    return simulation_key(
        config,
        rows if rows is not None else config.effective_array_rows,
        cols if cols is not None else config.effective_array_cols,
        m, k, n, loop_order,
    )


BASE = HardwareConfig(array_rows=8, array_cols=8)


class TestKeyDiscriminatesEveryField:
    @pytest.mark.parametrize(
        "variant",
        [
            BASE.with_dataflow(Dataflow.WEIGHT_STATIONARY),
            BASE.with_dataflow(Dataflow.INPUT_STATIONARY),
            HardwareConfig(array_rows=8, array_cols=8, ifmap_sram_kb=32),
            HardwareConfig(array_rows=8, array_cols=8, filter_sram_kb=32),
            HardwareConfig(array_rows=8, array_cols=8, ofmap_sram_kb=32),
            HardwareConfig(array_rows=8, array_cols=8, word_bytes=2),
        ],
        ids=["ws", "is", "ifmap", "filter", "ofmap", "word_bytes"],
    )
    def test_config_fields(self, variant):
        assert _key(BASE) != _key(variant)

    def test_loop_order(self):
        assert _key(BASE, loop_order="row") != _key(BASE, loop_order="col")

    def test_gemm_dims(self):
        assert _key(BASE, m=6) != _key(BASE, m=7)
        assert _key(BASE, k=6) != _key(BASE, k=7)
        assert _key(BASE, n=6) != _key(BASE, n=7)


class TestFaultMapIsolation:
    def test_fault_map_distinguishes_same_effective_shape(self):
        # 7x8 healthy vs 8x8 with one dead row: identical *effective*
        # dims, different machines — the fault spec must split them.
        healthy = HardwareConfig(array_rows=7, array_cols=8)
        degraded = HardwareConfig(
            array_rows=8, array_cols=8,
            fault_map=FaultMap(dead_pe_rows=frozenset({3})),
        )
        assert healthy.effective_array_rows == degraded.effective_array_rows == 7
        assert _key(healthy) != _key(degraded)

    def test_different_fault_maps_differ(self):
        a = BASE.with_fault_map(FaultMap(dead_pe_rows=frozenset({0})))
        b = BASE.with_fault_map(FaultMap(dead_pe_rows=frozenset({1})))
        assert _key(a, rows=7, cols=8) != _key(b, rows=7, cols=8)

    def test_dead_partitions_differ(self):
        grid = BASE.with_partitions(2, 2)
        a = grid.with_fault_map(FaultMap(dead_partitions=frozenset({(0, 0)})))
        b = grid.with_fault_map(FaultMap(dead_partitions=frozenset({(1, 1)})))
        assert _key(a) != _key(b)

    def test_healthy_fault_map_aliases_no_fault(self):
        # An explicitly-empty FaultMap IS the healthy machine; the two
        # spellings must share an entry rather than split the cache.
        explicit = BASE.with_fault_map(FaultMap())
        assert _key(BASE) == _key(explicit)


class TestNearCollisions:
    def test_transposed_dims_do_not_collide(self):
        assert _key(BASE, m=3, k=8, n=6) != _key(BASE, m=8, k=3, n=6)
        assert _key(BASE, m=3, k=8, n=6) != _key(BASE, m=6, k=8, n=3)

    def test_swapped_sram_banks_do_not_collide(self):
        a = HardwareConfig(array_rows=8, array_cols=8,
                           ifmap_sram_kb=16, filter_sram_kb=64)
        b = HardwareConfig(array_rows=8, array_cols=8,
                           ifmap_sram_kb=64, filter_sram_kb=16)
        assert _key(a) != _key(b)

    def test_lru_respects_distinct_near_keys(self):
        lru = SimulationCache(max_entries=8)
        lru.put(_key(BASE, m=3, k=8, n=6), "a")
        assert lru.get(_key(BASE, m=8, k=3, n=6)) is None
        assert lru.get(_key(BASE, m=3, k=8, n=6)) == "a"


class TestEndToEndIsolation:
    def test_dataflows_do_not_alias_through_the_live_cache(self):
        layer = GemmLayer(name="iso", m=9, k=5, n=7)
        was_enabled = cache.enabled
        try:
            cache.enable()
            cache.clear()
            results = {
                dataflow: Simulator(
                    BASE.with_dataflow(Dataflow.from_string(dataflow))
                ).run_layer(layer)
                for dataflow in ("os", "ws", "is")
            }
            # Cached replay returns each dataflow's own result.
            for dataflow, first in results.items():
                again = Simulator(
                    BASE.with_dataflow(Dataflow.from_string(dataflow))
                ).run_layer(layer)
                assert again == first
        finally:
            if was_enabled:
                cache.enable()
            else:
                cache.disable()
            cache.clear()


class TestStoreKeyIsolation:
    def test_store_key_differs_across_sim_keys(self):
        assert store_key(_key(BASE)) != store_key(_key(BASE, m=7))
        assert store_key(_key(BASE)) != store_key(
            _key(BASE.with_dataflow(Dataflow.WEIGHT_STATIONARY))
        )

    def test_store_key_is_version_scoped(self):
        import repro._version as version_mod

        key = _key(BASE)
        current = store_key(key)
        with mock.patch.object(version_mod, "__version__", "0.0.0-other"):
            other = store_key(key)
        assert current != other

    def test_store_key_is_stable_for_equal_keys(self):
        assert store_key(_key(BASE)) == store_key(_key(BASE))
