"""The simulation daemon: admission control, single-flight, drain, HTTP.

``SimulationService`` is exercised in-process (deterministic gating via
monkeypatched job execution), then the stdlib HTTP layer end-to-end on
an ephemeral TCP port and a unix domain socket.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro._version import __version__
from repro.errors import ServiceUnavailableError
from repro.obs.service import (
    CORRELATION_KEY,
    parse_prometheus_text,
    sample_value,
)
from repro.serve.client import ServiceClient
from repro.serve.daemon import (
    ServicePolicy,
    SimulationService,
    make_server,
)
from repro.serve.jobs import job_key, normalize_request
from repro.store import configure as store_configure, deactivate


@pytest.fixture(autouse=True)
def no_inherited_store():
    deactivate()
    yield
    deactivate()


def gemm(m: int) -> dict:
    return {"kind": "gemm", "m": m, "k": 8, "n": 8, "array": "8x8"}


class Gate:
    """Blocks job execution until the test releases it."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self, request):
        self.entered.set()
        assert self.release.wait(timeout=30), "test never released the gate"
        return {"total_cycles": 1, "m": request["m"]}


def _submit_async(service, payload, client="anonymous"):
    box = {}

    def run():
        box["status"], box["body"] = service.submit(payload, client=client)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.01)


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "overrides",
    [
        {"workers": 0},
        {"max_queue": -1},
        {"client_quota": 0},
        {"request_timeout": 0},
        {"retry_after": 0},
        {"drain_timeout": -1},
    ],
)
def test_policy_rejects_nonsense(overrides):
    with pytest.raises(ValueError):
        ServicePolicy(**overrides)


def test_admission_limit_is_workers_plus_queue():
    assert ServicePolicy(workers=3, max_queue=5).admission_limit == 8


# ----------------------------------------------------------------------
# Core submit path (real simulations)
# ----------------------------------------------------------------------

def test_submit_runs_a_real_gemm():
    service = SimulationService(ServicePolicy(workers=1))
    status, body = service.submit(gemm(16))
    assert status == 200
    assert body["status"] == "ok"
    assert body["kind"] == "gemm"
    assert body["total_cycles"] > 0
    assert body["singleflight"] is False
    service.drain(timeout=5)


def test_invalid_request_is_a_400_not_an_exception():
    service = SimulationService(ServicePolicy(workers=1))
    for payload in (None, [], {"kind": "nope"}, {"kind": "gemm", "m": -1}):
        status, body = service.submit(payload)
        assert status == 400
        assert body["status"] == "invalid"
    assert service.health()["counters"]["bad_requests"] == 4
    service.drain(timeout=5)


def test_identical_requests_share_one_key():
    a = normalize_request({"kind": "gemm", "m": 8, "k": 8, "n": 8})
    b = normalize_request({"kind": "gemm", "m": 8, "k": 8, "n": 8, "array": "32x32"})
    assert job_key(a) == job_key(b)  # 32x32 is the default array


# ----------------------------------------------------------------------
# Single-flight dedup
# ----------------------------------------------------------------------

def test_identical_inflight_requests_execute_once(monkeypatch):
    gate = Gate()
    monkeypatch.setattr("repro.serve.daemon.execute_job", gate)
    service = SimulationService(ServicePolicy(workers=2, client_quota=8))
    first, box1 = _submit_async(service, gemm(8), client="a")
    _wait_for(gate.entered.is_set)
    second, box2 = _submit_async(service, gemm(8), client="b")
    _wait_for(lambda: service.health()["counters"]["singleflight_joined"] == 1)
    gate.release.set()
    first.join(timeout=30)
    second.join(timeout=30)

    assert box1["status"] == box2["status"] == 200
    assert {box1["body"]["singleflight"], box2["body"]["singleflight"]} == {True, False}
    counters = service.health()["counters"]
    assert counters["executed"] == 1  # one simulation, two responses
    assert counters["completed"] == 2
    service.drain(timeout=5)


# ----------------------------------------------------------------------
# Back-pressure: bounded queue and per-client quotas
# ----------------------------------------------------------------------

def test_full_queue_rejects_with_retry_after(monkeypatch):
    gate = Gate()
    monkeypatch.setattr("repro.serve.daemon.execute_job", gate)
    service = SimulationService(
        ServicePolicy(workers=1, max_queue=0, client_quota=8, retry_after=2.5)
    )
    thread, _box = _submit_async(service, gemm(1))
    _wait_for(gate.entered.is_set)

    status, body = service.submit(gemm(2))  # distinct job, no slot left
    assert status == 429
    assert body["status"] == "rejected"
    assert body["retry_after"] == 2.5
    assert service.health()["counters"]["rejected_queue"] == 1

    gate.release.set()
    thread.join(timeout=30)
    service.drain(timeout=5)


def test_client_quota_rejects_the_greedy_client_only(monkeypatch):
    gate = Gate()
    monkeypatch.setattr("repro.serve.daemon.execute_job", gate)
    service = SimulationService(ServicePolicy(workers=2, max_queue=8, client_quota=1))
    thread, _box = _submit_async(service, gemm(1), client="greedy")
    _wait_for(gate.entered.is_set)

    status, body = service.submit(gemm(2), client="greedy")
    assert status == 429
    assert "quota" in body["error"]
    assert service.health()["counters"]["rejected_quota"] == 1

    polite, box = _submit_async(service, gemm(3), client="polite")
    _wait_for(lambda: service.health()["jobs_in_flight"] == 2)
    gate.release.set()
    thread.join(timeout=30)
    polite.join(timeout=30)
    assert box["status"] == 200
    service.drain(timeout=5)


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------

def test_drain_finishes_inflight_then_rejects_new(monkeypatch):
    gate = Gate()
    monkeypatch.setattr("repro.serve.daemon.execute_job", gate)
    service = SimulationService(ServicePolicy(workers=1))
    thread, box = _submit_async(service, gemm(1))
    _wait_for(gate.entered.is_set)

    drainer = threading.Thread(target=service.drain, kwargs={"timeout": 30}, daemon=True)
    drainer.start()
    _wait_for(lambda: service.health()["status"] == "draining")
    status, body = service.submit(gemm(2))
    assert status == 503
    assert service.health()["counters"]["rejected_draining"] == 1

    gate.release.set()
    thread.join(timeout=30)
    drainer.join(timeout=30)
    assert box["status"] == 200  # in-flight work completed, not dropped


def test_health_reports_policy_and_counters():
    service = SimulationService(ServicePolicy(workers=1, max_queue=2, client_quota=3))
    health = service.health()
    assert health["status"] == "ok"
    assert health["policy"] == {
        "workers": 1, "max_queue": 2, "client_quota": 3, "request_timeout": None,
    }
    assert health["jobs_in_flight"] == 0
    assert health["store"] is None  # no store configured in this test
    service.drain(timeout=5)


def test_health_reports_version_uptime_and_store_degradation(tmp_path):
    service = SimulationService(ServicePolicy(workers=1))
    health = service.health()
    assert health["version"] == __version__
    assert health["uptime"] >= 0
    assert health["degraded_store"] is False

    store = store_configure(tmp_path / "store")
    store.degraded_reason = "disk full (test)"
    degraded = service.health()
    assert degraded["degraded_store"] is True
    assert degraded["status"] == "degraded"
    service.drain(timeout=5)


# ----------------------------------------------------------------------
# Correlation IDs: one stitched trace per job
# ----------------------------------------------------------------------

@pytest.fixture
def tracing():
    from repro.perf.cache import cache

    obs.reset()
    cache.reset()  # a warm layer cache would skip the store.probe span
    obs.trace.enable()
    yield obs.trace
    obs.reset()
    cache.reset()


def test_submit_round_trip_is_one_correlated_trace(tmp_path, tracing):
    """The acceptance criterion: queue-wait, execution and store
    segments of one submit all share a single correlation ID."""
    store_configure(tmp_path / "store")
    service = SimulationService(ServicePolicy(workers=1))
    status, body = service.submit(gemm(16))
    assert status == 200
    cid = body["correlation_id"]
    assert cid and len(cid) == 16

    spans = {record.name: record for record in tracing.records()}
    for name in ("serve.request", "serve.queue_wait", "serve.execute",
                 "store.probe", "store.record"):
        assert name in spans, f"missing span {name}"
        assert spans[name].args.get(CORRELATION_KEY) == cid, name
    # queue-wait is synthesized before execution but must nest within
    # the request window
    assert spans["serve.queue_wait"].start_ns >= 0
    assert spans["serve.execute"].duration_ns > 0
    service.drain(timeout=5)


def test_caller_supplied_correlation_id_wins(tracing):
    service = SimulationService(ServicePolicy(workers=1))
    _status, body = service.submit(gemm(8), correlation_id="feedc0dedeadbeef")
    assert body["correlation_id"] == "feedc0dedeadbeef"
    service.drain(timeout=5)


def test_correlation_id_visible_in_daemon_logs(tracing, caplog):
    import logging

    service = SimulationService(ServicePolicy(workers=1))
    # attach directly: an earlier CLI run may have switched the "repro"
    # hierarchy to propagate=False, which starves caplog's root handler
    serve_logger = logging.getLogger("repro.serve")
    serve_logger.addHandler(caplog.handler)
    try:
        with caplog.at_level("INFO", logger="repro.serve"):
            _status, body = service.submit(gemm(24))
    finally:
        serve_logger.removeHandler(caplog.handler)
    cid = body["correlation_id"]
    tagged = [r for r in caplog.records if f"cid={cid}" in r.getMessage()]
    assert tagged, "daemon logs never mention the correlation id"
    service.drain(timeout=5)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------

@pytest.fixture
def live_metrics():
    obs.reset()
    obs.metrics.enable()
    yield obs.metrics
    obs.reset()


def _summary_count(families, family, **labels):
    """The ``<family>_count`` sample of a summary, filtered by labels."""
    for name, sample_labels, value in families[family]["samples"]:
        if name == f"{family}_count" and all(
            sample_labels.get(key) == wanted for key, wanted in labels.items()
        ):
            return value
    return None


def test_metrics_text_is_valid_prometheus(live_metrics):
    service = SimulationService(ServicePolicy(workers=2))
    assert service.submit(gemm(16))[0] == 200

    families = parse_prometheus_text(service.metrics_text())
    # per-job-kind latency series
    job_seconds = families["repro_serve_job_seconds"]
    assert job_seconds["type"] == "summary"
    assert _summary_count(families, "repro_serve_job_seconds", kind="gemm") == 1
    # queue depth + in-flight gauges and admission counters
    assert sample_value(families, "repro_serve_queue_depth") == 0
    assert sample_value(families, "repro_serve_jobs_in_flight") == 0
    assert sample_value(families, "repro_serve_executed_total") == 1
    assert sample_value(families, "repro_serve_completed_total") == 1
    # queue-wait histogram observed once per executed job
    assert _summary_count(families, "repro_serve_queue_wait_seconds") == 1
    # build info + uptime
    assert sample_value(families, "repro_build_info", version=__version__) == 1
    assert sample_value(families, "repro_uptime_seconds") >= 0
    service.drain(timeout=5)


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------

@pytest.fixture
def http_daemon():
    service = SimulationService(ServicePolicy(workers=2))
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield service, server.server_address[1]
    server.shutdown()
    server.server_close()
    service.drain(timeout=5)


def test_http_round_trip(http_daemon):
    _service, port = http_daemon
    client = ServiceClient(port=port, client_id="pytest")
    health = client.health()
    assert health["status"] == "ok"
    body = client.submit(gemm(16))
    assert body["status"] == "ok" and body["total_cycles"] > 0


def test_http_rejection_carries_retry_after(http_daemon, monkeypatch):
    service, port = http_daemon
    monkeypatch.setattr(service, "policy", ServicePolicy(workers=2, retry_after=3.0))
    service._draining = True  # cheapest deterministic rejection
    client = ServiceClient(port=port)
    with pytest.raises(ServiceUnavailableError) as excinfo:
        client.submit(gemm(1))
    assert excinfo.value.retry_after == 3.0
    service._draining = False


def test_http_metrics_scrape_parses(http_daemon):
    _service, port = http_daemon
    client = ServiceClient(port=port, client_id="pytest")
    assert client.submit(gemm(16))["status"] == "ok"
    families = parse_prometheus_text(client.metrics_text())
    # admission counters flow through even without obs.metrics enabled
    assert sample_value(families, "repro_serve_executed_total") >= 1
    assert sample_value(families, "repro_serve_queue_depth") is not None
    assert sample_value(families, "repro_build_info", version=__version__) == 1


def test_http_correlation_header_echoed(http_daemon):
    from repro.obs.service import CORRELATION_HEADER

    _service, port = http_daemon
    client = ServiceClient(port=port)
    status, headers, body = client._request(
        "POST", "/submit", body=gemm(20), correlation_id="cafe0123cafe0123"
    )
    assert status == 200
    assert body["correlation_id"] == "cafe0123cafe0123"
    assert headers.get(CORRELATION_HEADER) == "cafe0123cafe0123"


def test_http_bad_json_and_unknown_routes(http_daemon):
    _service, port = http_daemon
    import http.client

    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    connection.request("POST", "/submit", body=b"{not json", headers={"Content-Length": "9"})
    assert connection.getresponse().status == 400
    connection.close()

    status, _headers, body = ServiceClient(port=port)._request("GET", "/no-such-route")
    assert status == 404 and body["status"] == "invalid"


def test_unix_socket_round_trip(tmp_path):
    socket_path = str(tmp_path / "repro.sock")
    service = SimulationService(ServicePolicy(workers=1))
    server = make_server(service, socket_path=socket_path)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(socket_path=socket_path)
        assert client.health()["status"] == "ok"
        assert client.submit(gemm(12))["total_cycles"] > 0
    finally:
        server.shutdown()
        server.server_close()
        service.drain(timeout=5)
    assert not (tmp_path / "repro.sock").exists()  # socket cleaned up


def test_client_retry_honours_retry_after(monkeypatch):
    calls = []

    def fake_request(self, method, path, body=None, correlation_id=None):
        calls.append(path)
        if len(calls) < 3:
            return 429, {"Retry-After": "0.05"}, {"status": "rejected"}
        return 200, {}, {"status": "ok"}

    monkeypatch.setattr(ServiceClient, "_request", fake_request)
    client = ServiceClient()
    assert client.submit(gemm(1), max_retries=5)["status"] == "ok"
    assert len(calls) == 3

    calls.clear()
    with pytest.raises(ServiceUnavailableError):
        ServiceClient().submit(gemm(1), max_retries=1)
    assert len(calls) == 2
