"""Hardened parser input validation: NaN/inf/absurd values are typed errors."""

import pytest

from repro.config.parser import MAX_INT_VALUE, parse_config_text
from repro.errors import ConfigError, TopologyError
from repro.topology.parser import MAX_DIMENSION, parse_topology_text


class TestTopologyBounds:
    @pytest.mark.parametrize("poison", ["nan", "inf", "-inf", "NaN", "1e9", "3.5"])
    def test_non_integer_dimensions_are_typed_errors(self, poison):
        text = f"layer, {poison}, 2, 3, 3, 4, 8, 1,\n"
        with pytest.raises(TopologyError, match="line 1"):
            parse_topology_text(text)

    def test_absurd_dimension_is_rejected_with_line_number(self):
        huge = MAX_DIMENSION + 1
        text = f"ok, 8, 8, 3, 3, 4, 8, 1,\nbad, {huge}, 8, 3, 3, 4, 8, 1,\n"
        with pytest.raises(TopologyError, match="line 2.*absurdly large"):
            parse_topology_text(text)

    def test_boundary_value_is_still_accepted(self):
        text = f"edge, {MAX_DIMENSION}, 1, 1, 1, 1, 1, 1,\n"
        network = parse_topology_text(text)
        assert next(iter(network)).ifmap_h == MAX_DIMENSION

    def test_zero_and_negative_stay_rejected(self):
        with pytest.raises(TopologyError, match=">= 1"):
            parse_topology_text("l, 0, 2, 3, 3, 4, 8, 1,\n")


class TestConfigBounds:
    @pytest.mark.parametrize("poison", ["nan", "inf", "Infinity", "1e9", "3.5", ""])
    def test_non_integer_values_are_typed_errors(self, poison):
        text = f"[architecture_presets]\nArrayHeight = {poison}\n"
        with pytest.raises(ConfigError, match="integer"):
            parse_config_text(text)

    def test_absurd_value_reports_its_line(self):
        huge = MAX_INT_VALUE + 1
        text = (
            "[architecture_presets]\n"
            "ArrayWidth = 8\n"
            f"ArrayHeight = {huge}\n"
        )
        with pytest.raises(ConfigError, match="config line 3.*absurdly large"):
            parse_config_text(text)

    def test_nan_reports_its_line(self):
        text = "[architecture_presets]\nArrayHeight = nan\n"
        with pytest.raises(ConfigError, match="config line 2"):
            parse_config_text(text)

    def test_absurd_pe_count_product_is_rejected(self):
        side = 2**16  # each side fits, the PE count does not
        text = (
            "[architecture_presets]\n"
            f"ArrayHeight = {side}\n"
            f"ArrayWidth = {side}\n"
        )
        with pytest.raises(ConfigError, match="absurd PE count"):
            parse_config_text(text)

    def test_reasonable_config_still_parses(self):
        text = (
            "[architecture_presets]\n"
            "ArrayHeight = 32\nArrayWidth = 32\n"
            "IfmapSramSz = 64\nFilterSramSz = 64\nOfmapSramSz = 64\n"
            "Dataflow = ws\n"
        )
        config = parse_config_text(text)
        assert config.array_rows == config.array_cols == 32
        assert config.dataflow.value == "ws"


class TestGoldenValidateRelTol:
    def test_default_is_exact(self):
        from repro.golden.validate import ValidationReport
        from repro.config.hardware import Dataflow

        report = ValidationReport(
            m=4, k=4, n=4, dataflow=Dataflow.OUTPUT_STATIONARY,
            array_rows=4, array_cols=4,
            engine_cycles=100, golden_cycles=101, analytical_cycles=100,
            dims_divide=True,
        )
        assert not report.engine_matches_golden
        assert not report.passed

    def test_rel_tol_relaxes_the_comparison(self):
        from repro.golden.validate import ValidationReport
        from repro.config.hardware import Dataflow

        report = ValidationReport(
            m=4, k=4, n=4, dataflow=Dataflow.OUTPUT_STATIONARY,
            array_rows=4, array_cols=4,
            engine_cycles=100, golden_cycles=101, analytical_cycles=100,
            dims_divide=True, rel_tol=0.05,
        )
        assert report.engine_matches_golden
        assert report.passed

    def test_sweep_threads_rel_tol_through(self):
        from repro.golden.validate import validation_sweep

        strict = validation_sweep(seed=0, trials=2)
        relaxed = validation_sweep(seed=0, trials=2, rel_tol=0.1)
        assert all(r.rel_tol == 0.0 for r in strict)
        assert all(r.rel_tol == 0.1 for r in relaxed)
