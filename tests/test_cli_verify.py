"""The ``repro verify`` subcommand and ``validate --rel-tol``."""

import json

import pytest

from repro.cli import EXIT_VERIFICATION, main


class TestVerifyFuzz:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = main([
            "verify", "--budget", "10", "--cases", "10", "--seed", "7",
            "--corpus", str(tmp_path / "corpus"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[PASS]" in out

    def test_props_filter(self, tmp_path, capsys):
        code = main([
            "verify", "--budget", "5", "--cases", "3", "--seed", "0",
            "--props", "shape_classes", "--corpus", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "shape_classes" in out
        assert "monotone_array" not in out

    def test_unknown_prop_exits_16(self, tmp_path, capsys):
        code = main([
            "verify", "--budget", "5", "--props", "bogus",
            "--corpus", str(tmp_path),
        ])
        assert code == EXIT_VERIFICATION
        assert "unknown property" in capsys.readouterr().err

    def test_list_props(self, capsys):
        assert main(["verify", "--list-props"]) == 0
        out = capsys.readouterr().out
        assert "models" in out and "cache_identity" in out


class TestVerifyReplay:
    def test_empty_corpus_replays_clean(self, tmp_path, capsys):
        code = main(["verify", "--replay", "--corpus", str(tmp_path)])
        assert code == 0
        assert "0 regression bundle(s)" in capsys.readouterr().out

    def test_live_bundle_exits_16(self, tmp_path, capsys):
        # A hand-written bundle whose "minimal input" still violates:
        # claim the parser must reject a perfectly valid topology.
        bundle = {
            "prop": "models",
            "case": {"m": 0, "k": 1, "n": 1},  # invalid scenario
        }
        (tmp_path / "models-bad.json").write_text(json.dumps(bundle))
        code = main(["verify", "--replay", "--corpus", str(tmp_path)])
        assert code == EXIT_VERIFICATION


class TestVerifyBaselines:
    def test_bless_without_reason_exits_16(self, tmp_path, capsys):
        code = main([
            "verify", "--bless", "table1", "--baselines", str(tmp_path),
        ])
        assert code == EXIT_VERIFICATION
        assert "reason" in capsys.readouterr().err

    def test_bless_then_check_round_trip(self, tmp_path, capsys):
        assert main([
            "verify", "--bless", "table1", "--reason", "test blessing",
            "--baselines", str(tmp_path),
        ]) == 0
        assert main([
            "verify", "--check-golden", "table1", "--baselines", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "blessed" in out and "[PASS]" in out

    def test_unblessed_check_exits_16(self, tmp_path, capsys):
        code = main([
            "verify", "--check-golden", "--baselines", str(tmp_path / "empty"),
        ])
        assert code == EXIT_VERIFICATION
        assert "--bless" in capsys.readouterr().err


class TestValidateRelTol:
    def test_validate_accepts_rel_tol_flag(self, capsys):
        code = main(["validate", "--trials", "1", "--rel-tol", "0.01"])
        assert code == 0
        assert "agree" in capsys.readouterr().out

    def test_bad_rel_tol_flag_exits_2(self, capsys):
        code = main(["validate", "--trials", "1", "--rel-tol", "1.5"])
        assert code == 2
        assert "rel-tol" in capsys.readouterr().err

    def test_env_fallback(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_VALIDATE_REL_TOL", "0.05")
        assert main(["validate", "--trials", "1"]) == 0

    def test_bad_env_value_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_VALIDATE_REL_TOL", "lots")
        code = main(["validate", "--trials", "1"])
        assert code == 2
        assert "REPRO_VALIDATE_REL_TOL" in capsys.readouterr().err

    def test_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE_REL_TOL", "not-a-number")
        # The env var is broken but the flag short-circuits it.
        assert main(["validate", "--trials", "1", "--rel-tol", "0"]) == 0
