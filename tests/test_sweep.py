"""Tests for the parameter-sweep runner."""

import csv

import pytest

from repro.sweep import pivot, run_sweep, sweep_to_csv


class TestRunSweep:
    def test_cartesian_product(self):
        rows = run_sweep(lambda a, b: {"sum": a + b}, a=[1, 2], b=[10, 20])
        assert len(rows) == 4
        assert {"a": 1, "b": 10, "sum": 11} in rows
        assert {"a": 2, "b": 20, "sum": 22} in rows

    def test_axis_order_is_keyword_order(self):
        rows = run_sweep(lambda a, b: {"x": 0}, a=[1, 2], b=[1, 2])
        assert [(row["a"], row["b"]) for row in rows] == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_list_results_flatten(self):
        rows = run_sweep(lambda a: [{"i": i} for i in range(a)], a=[2, 3])
        assert len(rows) == 5

    def test_key_collision_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            run_sweep(lambda a: {"a": 1}, a=[1])

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(lambda: {})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            run_sweep(lambda a: {"x": a}, a=[])

    def test_errors_propagate_by_default(self):
        def boom(a):
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            run_sweep(boom, a=[1])

    def test_skip_errors_collects(self):
        def sometimes(a):
            if a == 2:
                raise RuntimeError("nope")
            return {"ok": True}

        rows = run_sweep(sometimes, skip_errors=True, a=[1, 2, 3])
        assert len(rows) == 3
        assert "RuntimeError" in rows[1]["error"]

    def test_with_real_simulator(self, small_config):
        from repro.engine.simulator import Simulator
        from repro.topology.layer import GemmLayer

        def measure(m):
            result = Simulator(small_config).run_layer(GemmLayer("g", m=m, k=8, n=8))
            return {"cycles": result.total_cycles}

        rows = run_sweep(measure, m=[8, 16, 32])
        cycles = [row["cycles"] for row in rows]
        assert cycles == sorted(cycles)


class TestCsvAndPivot:
    def test_csv_roundtrip(self, tmp_path):
        rows = run_sweep(lambda a, b: {"sum": a + b}, a=[1, 2], b=[3])
        path = sweep_to_csv(rows, tmp_path / "sweep.csv")
        with path.open() as handle:
            loaded = list(csv.DictReader(handle))
        assert len(loaded) == 2
        assert loaded[0]["sum"] == "4"

    def test_csv_union_header(self, tmp_path):
        rows = [{"a": 1, "x": 2}, {"a": 2, "y": 3}]
        path = sweep_to_csv(rows, tmp_path / "ragged.csv")
        with path.open() as handle:
            header = handle.readline().strip().split(",")
        assert header == ["a", "x", "y"]

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            sweep_to_csv([], tmp_path / "empty.csv")

    def test_pivot(self):
        rows = run_sweep(lambda a, b: {"sum": a + b}, a=[1, 2], b=[10, 20])
        table = pivot(rows, index="a", column="b", value="sum")
        assert table == {1: {10: 11, 20: 21}, 2: {10: 12, 20: 22}}

    def test_pivot_missing_keys_rejected(self):
        with pytest.raises(ValueError):
            pivot([{"a": 1}], index="a", column="b", value="c")
