"""Tests for the parameter-sweep runner."""

import csv

import pytest

from repro.errors import ExecutionError, SweepError
from repro.sweep import (
    grid_points,
    pivot,
    pivot_to_csv,
    run_sweep,
    run_sweep_report,
    sweep_to_csv,
)


def ledger_measure(partitions: int) -> dict:
    return {"cycles": 1000 * partitions, "avg_bw": round(partitions / 3.0, 3)}


def ledger_estimate(partitions: int) -> tuple:
    row = ledger_measure(partitions)
    return row, float(row["cycles"])


class TestRunSweep:
    def test_cartesian_product(self):
        rows = run_sweep(lambda a, b: {"sum": a + b}, a=[1, 2], b=[10, 20])
        assert len(rows) == 4
        assert {"a": 1, "b": 10, "sum": 11} in rows
        assert {"a": 2, "b": 20, "sum": 22} in rows

    def test_axis_order_is_keyword_order(self):
        rows = run_sweep(lambda a, b: {"x": 0}, a=[1, 2], b=[1, 2])
        assert [(row["a"], row["b"]) for row in rows] == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_list_results_flatten(self):
        rows = run_sweep(lambda a: [{"i": i} for i in range(a)], a=[2, 3])
        assert len(rows) == 5

    def test_key_collision_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            run_sweep(lambda a: {"a": 1}, a=[1])

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(lambda: {})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            run_sweep(lambda a: {"x": a}, a=[])

    def test_errors_propagate_by_default(self):
        def boom(a):
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            run_sweep(boom, a=[1])

    def test_skip_errors_collects(self):
        def sometimes(a):
            if a == 2:
                raise RuntimeError("nope")
            return {"ok": True}

        rows = run_sweep(sometimes, skip_errors=True, a=[1, 2, 3])
        assert len(rows) == 3
        assert "RuntimeError" in rows[1]["error"]

    def test_with_real_simulator(self, small_config):
        from repro.engine.simulator import Simulator
        from repro.topology.layer import GemmLayer

        def measure(m):
            result = Simulator(small_config).run_layer(GemmLayer("g", m=m, k=8, n=8))
            return {"cycles": result.total_cycles}

        rows = run_sweep(measure, m=[8, 16, 32])
        cycles = [row["cycles"] for row in rows]
        assert cycles == sorted(cycles)


class TestCsvAndPivot:
    def test_csv_roundtrip(self, tmp_path):
        rows = run_sweep(lambda a, b: {"sum": a + b}, a=[1, 2], b=[3])
        path = sweep_to_csv(rows, tmp_path / "sweep.csv")
        with path.open() as handle:
            loaded = list(csv.DictReader(handle))
        assert len(loaded) == 2
        assert loaded[0]["sum"] == "4"

    def test_csv_union_header(self, tmp_path):
        rows = [{"a": 1, "x": 2}, {"a": 2, "y": 3}]
        path = sweep_to_csv(rows, tmp_path / "ragged.csv")
        with path.open() as handle:
            header = handle.readline().strip().split(",")
        assert header == ["a", "x", "y"]

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            sweep_to_csv([], tmp_path / "empty.csv")

    def test_pivot(self):
        rows = run_sweep(lambda a, b: {"sum": a + b}, a=[1, 2], b=[10, 20])
        table = pivot(rows, index="a", column="b", value="sum")
        assert table == {1: {10: 11, 20: 21}, 2: {10: 12, 20: 22}}

    def test_pivot_missing_keys_rejected(self):
        with pytest.raises(ValueError):
            pivot([{"a": 1}], index="a", column="b", value="c")

    def test_pivot_to_csv_round_trip(self, tmp_path):
        rows = run_sweep(lambda a, b: {"sum": a + b}, a=[1, 2], b=[10, 20])
        table = pivot(rows, index="a", column="b", value="sum")
        path = pivot_to_csv(table, tmp_path / "pivot.csv", index_name="a")
        with path.open() as handle:
            loaded = list(csv.reader(handle))
        assert loaded == [["a", "10", "20"], ["1", "11", "21"], ["2", "12", "22"]]

    def test_pivot_to_csv_missing_cells_empty(self, tmp_path):
        table = {1: {10: 5}, 2: {20: 6}}
        path = pivot_to_csv(table, tmp_path / "ragged.csv")
        with path.open() as handle:
            loaded = list(csv.reader(handle))
        assert loaded == [["index", "10", "20"], ["1", "5", ""], ["2", "", "6"]]

    def test_pivot_to_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            pivot_to_csv({}, tmp_path / "empty.csv")

    def test_exports_leave_no_temp_residue(self, tmp_path):
        # Both exporters publish via atomic temp-file + rename; nothing
        # else may linger next to the result.
        rows = [{"a": 1, "b": 2}]
        sweep_to_csv(rows, tmp_path / "sweep.csv")
        pivot_to_csv({1: {2: 3}}, tmp_path / "pivot.csv")
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "pivot.csv", "sweep.csv",
        ]

    def test_csv_export_failure_preserves_previous_file(self, tmp_path, monkeypatch):
        path = tmp_path / "sweep.csv"
        sweep_to_csv([{"a": 1}], path)
        before = path.read_bytes()

        def explode(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.utils.atomicio.os.replace", explode)
        with pytest.raises(OSError):
            sweep_to_csv([{"a": 2}], path)
        assert path.read_bytes() == before  # never a torn/partial CSV


class TestGridValidation:
    """grid_points raises typed SweepErrors naming the offending axis."""

    def test_sweep_error_is_typed(self):
        assert issubclass(SweepError, ExecutionError)
        assert issubclass(SweepError, ValueError)

    def test_no_axes_raises_sweep_error(self):
        with pytest.raises(SweepError, match="at least one"):
            grid_points()

    def test_empty_axis_names_the_key(self):
        with pytest.raises(SweepError, match="'macs'.*empty"):
            grid_points(array=[1], macs=[])

    def test_string_axis_rejected_with_key(self):
        # A bare string would silently sweep per character.
        with pytest.raises(SweepError, match="'layer'.*sequence"):
            grid_points(layer="TF0")

    def test_non_sequence_axis_rejected_with_key(self):
        with pytest.raises(SweepError, match="'macs'.*int"):
            grid_points(macs=4096)

    def test_generator_axis_rejected(self):
        with pytest.raises(SweepError, match="'a'"):
            grid_points(a=(x for x in range(3)))

    def test_run_sweep_propagates_sweep_error(self):
        with pytest.raises(SweepError):
            run_sweep(lambda macs: {"x": macs}, macs=2048)


class TestLedgerSweep:
    """run_sweep's ledger/incremental contract (details in
    tests/test_ledger_crash.py; this pins the sweep-facing API)."""

    def test_ledger_path_is_opened_and_sealed(self, tmp_path):
        from repro.store.ledger import SweepLedger

        rows = run_sweep(
            ledger_measure, ledger=tmp_path / "led", partitions=[1, 2, 4]
        )
        assert len(rows) == 3
        reopened = SweepLedger(tmp_path / "led")
        assert reopened.completed_count == 3
        assert len(reopened.segments()) == 1  # tail sealed at close
        reopened.close()

    def test_checkpoint_and_ledger_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            run_sweep(
                ledger_measure,
                checkpoint=tmp_path / "ck.jsonl",
                ledger=tmp_path / "led",
                partitions=[1],
            )

    def test_incremental_needs_a_ledger(self):
        with pytest.raises(ValueError, match="ledger"):
            run_sweep(ledger_measure, incremental=True, partitions=[1])

    def test_incremental_simulates_only_new_points(self, tmp_path):
        run_sweep(ledger_measure, ledger=tmp_path / "led",
                  incremental=True, partitions=[1, 2])
        calls = []

        def counting(partitions):
            calls.append(partitions)
            return ledger_measure(partitions)

        rows = run_sweep(counting, ledger=tmp_path / "led",
                         incremental=True, partitions=[1, 2, 4, 8])
        assert calls == [4, 8]
        assert [row["cycles"] for row in rows] == [1000, 2000, 4000, 8000]

    def test_compiler_reused_counter_accounts_replays(self, tmp_path):
        from repro import obs

        obs.metrics.enable()
        run_sweep_report(
            ledger_measure, estimator=ledger_estimate, top_k=2,
            ledger=tmp_path / "led", incremental=True,
            partitions=[1, 2, 4, 8, 16, 32],
        )
        before = dict(obs.metrics.snapshot()["counters"])
        run_sweep_report(
            ledger_measure, estimator=ledger_estimate, top_k=2,
            ledger=tmp_path / "led", incremental=True,
            partitions=[1, 2, 4, 8, 16, 32],
        )
        after = obs.metrics.snapshot()["counters"]

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        # Second run: the whole frontier replays from the ledger.
        assert delta("perf.compiler.simulated") == 0
        assert delta("perf.compiler.reused") == delta("perf.compiler.points") - delta(
            "perf.compiler.pruned"
        ) > 0
