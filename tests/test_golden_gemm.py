"""Unit + property tests for the folded register-level GEMM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.errors import SimulationError
from repro.golden.gemm import golden_gemm

DIM = st.integers(1, 14)
ARR = st.integers(1, 6)


class TestGoldenGemm:
    def test_single_fold_result(self, rng, dataflow):
        a = rng.integers(-9, 9, (4, 5))
        b = rng.integers(-9, 9, (5, 3))
        result = golden_gemm(a, b, dataflow, 16, 16)
        assert np.array_equal(result.output, a @ b)
        assert result.num_folds == 1

    def test_folded_result(self, rng, dataflow):
        a = rng.integers(-9, 9, (10, 7))
        b = rng.integers(-9, 9, (7, 9))
        result = golden_gemm(a, b, dataflow, 4, 4)
        assert np.array_equal(result.output, a @ b)
        assert result.num_folds > 1

    def test_total_macs(self, rng, dataflow):
        a = rng.integers(-3, 3, (6, 5))
        b = rng.integers(-3, 3, (5, 7))
        result = golden_gemm(a, b, dataflow, 4, 4)
        assert result.macs == 6 * 5 * 7

    def test_rejects_shape_mismatch(self, dataflow):
        with pytest.raises(SimulationError):
            golden_gemm(np.ones((2, 3)), np.ones((4, 5)), dataflow, 4, 4)

    @settings(max_examples=25)
    @given(DIM, DIM, DIM, ARR, ARR, st.sampled_from(list(Dataflow)))
    def test_always_equals_numpy_matmul(self, m, k, n, rows, cols, dataflow):
        rng = np.random.default_rng(m * 10007 + k * 101 + n)
        a = rng.integers(-9, 9, (m, k))
        b = rng.integers(-9, 9, (k, n))
        result = golden_gemm(a, b, dataflow, rows, cols)
        assert np.array_equal(result.output, a @ b)
