"""Unit tests for the Table II topology CSV parser."""

import pytest

from repro.errors import TopologyError
from repro.topology.layer import GemmLayer
from repro.topology.network import Network
from repro.topology.parser import (
    TOPOLOGY_HEADER,
    dump_topology,
    load_topology,
    parse_topology_text,
)

SAMPLE = """Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,
Conv1, 224, 224, 7, 7, 3, 64, 2,
Conv2, 56, 56, 3, 3, 64, 64, 1,
"""


class TestParse:
    def test_parses_layers(self):
        net = parse_topology_text(SAMPLE)
        assert len(net) == 2
        assert net["Conv1"].stride == 2
        assert net["Conv2"].channels == 64

    def test_header_is_optional(self):
        headerless = "Conv1, 224, 224, 7, 7, 3, 64, 2,\n"
        net = parse_topology_text(headerless)
        assert len(net) == 1

    def test_trailing_comma_tolerated(self):
        no_trailing = "Conv1, 224, 224, 7, 7, 3, 64, 2"
        assert len(parse_topology_text(no_trailing)) == 1

    def test_blank_lines_skipped(self):
        net = parse_topology_text("\n\nConv1, 8, 8, 3, 3, 1, 1, 1,\n\n")
        assert len(net) == 1

    def test_network_named(self):
        assert parse_topology_text(SAMPLE, name="resnet").name == "resnet"

    def test_rejects_empty_file(self):
        with pytest.raises(TopologyError, match="no layers"):
            parse_topology_text("")

    def test_rejects_header_only(self):
        with pytest.raises(TopologyError, match="no layers"):
            parse_topology_text(",".join(TOPOLOGY_HEADER) + ",\n")

    def test_rejects_short_row(self):
        with pytest.raises(TopologyError, match="expected 8 fields"):
            parse_topology_text("Conv1, 224, 224,\n")

    def test_rejects_non_numeric_dimension(self):
        with pytest.raises(TopologyError, match="non-integer"):
            parse_topology_text("Conv1, big, 224, 7, 7, 3, 64, 2,\n")

    def test_rejects_invalid_layer(self):
        # filter larger than ifmap
        with pytest.raises(TopologyError):
            parse_topology_text("Conv1, 4, 4, 7, 7, 3, 64, 1,\n")

    def test_error_reports_line_number(self):
        bad = "Conv1, 8, 8, 3, 3, 1, 1, 1,\nConv2, 8, 8,\n"
        with pytest.raises(TopologyError, match="line 2"):
            parse_topology_text(bad)


class TestHardening:
    def test_utf8_bom_tolerated(self):
        net = parse_topology_text("\ufeff" + SAMPLE)
        assert len(net) == 2

    def test_bom_file_loads(self, tmp_path):
        path = tmp_path / "bom.csv"
        path.write_bytes(b"\xef\xbb\xbf" + SAMPLE.encode("utf-8"))
        assert len(load_topology(path)) == 2

    def test_whitespace_only_lines_skipped(self):
        text = "   \n\t\nConv1, 8, 8, 3, 3, 1, 1, 1,\n  ,  , \n"
        assert len(parse_topology_text(text)) == 1

    @pytest.mark.parametrize(
        "row, column",
        [
            ("Conv1, -224, 224, 7, 7, 3, 64, 2,", "IFMAP Height"),
            ("Conv1, 224, 0, 7, 7, 3, 64, 2,", "IFMAP Width"),
            ("Conv1, 224, 224, 7, 7, -3, 64, 2,", "Channels"),
            ("Conv1, 224, 224, 7, 7, 3, 0, 2,", "Num Filter"),
            ("Conv1, 224, 224, 7, 7, 3, 64, -1,", "Strides"),
            ("Conv1, 224, 224, 7, 7, 3, 64, 0,", "Strides"),
        ],
    )
    def test_non_positive_dimension_rejected(self, row, column):
        good = "Conv0, 8, 8, 3, 3, 1, 1, 1,"
        with pytest.raises(TopologyError) as info:
            parse_topology_text(good + "\n" + row + "\n")
        message = str(info.value)
        assert "line 2" in message
        assert column in message

    def test_non_positive_raises_topology_error_not_valueerror(self):
        try:
            parse_topology_text("Conv1, 8, 8, 3, 3, 1, 1, -2,\n")
        except TopologyError:
            pass  # the contract: library error, with row context
        else:  # pragma: no cover
            pytest.fail("negative stride accepted")


class TestFileRoundtrip:
    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "net.csv"
        path.write_text(SAMPLE)
        net = load_topology(path)
        assert net.name == "net"
        assert len(net) == 2

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TopologyError, match="not found"):
            load_topology(tmp_path / "missing.csv")

    def test_dump_then_load(self, tmp_path):
        original = parse_topology_text(SAMPLE, name="original")
        path = dump_topology(original, tmp_path / "out.csv")
        restored = load_topology(path)
        assert restored.layer_names() == original.layer_names()
        for name in original.layer_names():
            assert restored[name] == original[name]

    def test_dump_lowers_gemm_layers(self, tmp_path):
        net = Network("g", [GemmLayer("g0", m=5, k=7, n=3)])
        path = dump_topology(net, tmp_path / "g.csv")
        restored = load_topology(path)
        assert restored["g0"].gemm_dims() == (5, 7, 3)
