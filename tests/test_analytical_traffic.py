"""The closed-form traffic model must equal the engine exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.traffic import estimate_traffic
from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.factory import engine_for_gemm
from repro.mapping.dims import map_gemm
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet

DIM = st.integers(1, 120)
ARR = st.integers(1, 16)
KB = st.sampled_from([1, 2, 4, 64, 1024])
DATAFLOWS = st.sampled_from(list(Dataflow))


def config_for(rows, cols, kb, dataflow):
    return HardwareConfig(
        array_rows=rows, array_cols=cols,
        ifmap_sram_kb=kb, filter_sram_kb=kb, ofmap_sram_kb=kb,
        dataflow=dataflow,
    )


@settings(max_examples=150)
@given(DIM, DIM, DIM, ARR, ARR, KB, DATAFLOWS)
def test_closed_form_equals_engine(m, k, n, rows, cols, kb, dataflow):
    config = config_for(rows, cols, kb, dataflow)
    buffers = BufferSet.from_config(config)
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    truth = compute_dram_traffic(engine, buffers, 2)
    estimate = estimate_traffic(map_gemm(m, k, n, dataflow), rows, cols, buffers, 2)
    assert estimate.ifmap_bytes == truth.ifmap.total_bytes
    assert estimate.filter_bytes == truth.filter.total_bytes
    assert estimate.ofmap_bytes == truth.write_bytes
    assert estimate.total_cycles == truth.total_cycles


@settings(max_examples=60)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_avg_bandwidths_match_engine(m, k, n, rows, cols, dataflow):
    config = config_for(rows, cols, 4, dataflow)
    buffers = BufferSet.from_config(config)
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    truth = compute_dram_traffic(engine, buffers, 1)
    estimate = estimate_traffic(map_gemm(m, k, n, dataflow), rows, cols, buffers, 1)
    assert estimate.avg_read_bw == pytest.approx(truth.bandwidth.avg_read_bw)
    assert estimate.avg_write_bw == pytest.approx(truth.bandwidth.avg_write_bw)


class TestClosedFormBehaviour:
    def huge_buffers(self):
        return BufferSet.from_config(config_for(8, 8, 10**6, Dataflow.OUTPUT_STATIONARY))

    def tiny_buffers(self):
        return BufferSet.from_config(config_for(8, 8, 1, Dataflow.OUTPUT_STATIONARY))

    def test_perfect_reuse_when_everything_fits(self):
        mapping = map_gemm(64, 32, 64, Dataflow.OUTPUT_STATIONARY)
        estimate = estimate_traffic(mapping, 8, 8, self.huge_buffers())
        assert estimate.ifmap_bytes == 64 * 32
        assert estimate.filter_bytes == 32 * 64
        assert estimate.ofmap_bytes == 64 * 64

    def test_small_buffers_cost_more(self):
        mapping = map_gemm(256, 512, 256, Dataflow.OUTPUT_STATIONARY)
        big = estimate_traffic(mapping, 8, 8, self.huge_buffers())
        small = estimate_traffic(mapping, 8, 8, self.tiny_buffers())
        assert small.read_bytes > big.read_bytes
        assert small.ofmap_bytes == big.ofmap_bytes

    def test_word_bytes_scales_linearly(self):
        mapping = map_gemm(64, 32, 64, Dataflow.OUTPUT_STATIONARY)
        one = estimate_traffic(mapping, 8, 8, self.huge_buffers(), word_bytes=1)
        four = estimate_traffic(mapping, 8, 8, self.huge_buffers(), word_bytes=4)
        assert four.total_bytes == 4 * one.total_bytes

    def test_rejects_bad_array(self):
        mapping = map_gemm(8, 8, 8, Dataflow.OUTPUT_STATIONARY)
        with pytest.raises(ValueError):
            estimate_traffic(mapping, 0, 8, self.huge_buffers())
