"""CLI observability: --version, --trace/--metrics, stats, flight, bench."""

import json
import logging

import pytest

from repro import obs
from repro._version import __version__
from repro.cli import (
    EXIT_CODES,
    EXIT_FAILURE,
    EXIT_INCOMPLETE,
    EXIT_PERF_REGRESSION,
    main,
)
from repro.obs import flight


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    flight.disarm()
    yield
    obs.reset()
    flight.disarm()
    logging.getLogger("repro").setLevel(logging.WARNING)


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_dunder_version(self):
        import repro

        assert repro.__version__ == __version__


class TestTraceAndMetricsFlags:
    def test_run_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        code = main([
            "--trace", str(trace_path),
            "run", "--workload", "NCF0", "--array", "8x8",
        ])
        assert code == 0
        doc = json.loads(trace_path.read_text())
        assert "traceEvents" in doc
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans, "trace must contain at least one complete event"
        for event in spans:
            assert {"name", "ph", "ts", "dur"} <= set(event)
        names = {e["name"] for e in spans}
        assert "engine.run_layer" in names
        # header attributes the run
        assert doc["metadata"]["version"] == __version__
        assert doc["metadata"]["config_hash"]
        assert doc["metadata"]["command"] == "run"

    def test_run_writes_metrics_snapshot(self, tmp_path, capsys):
        metrics_path = tmp_path / "run.metrics.json"
        code = main([
            "--metrics", str(metrics_path),
            "run", "--workload", "NCF0", "--array", "8x8",
        ])
        assert code == 0
        doc = json.loads(metrics_path.read_text())
        assert doc["counters"]["sim.layers"] == 1
        assert doc["counters"]["sim.cycles"] > 0
        assert doc["metadata"]["config_hash"]

    def test_events_jsonl(self, tmp_path, capsys):
        events_path = tmp_path / "run.events.jsonl"
        code = main([
            "--events", str(events_path),
            "run", "--workload", "NCF0", "--array", "8x8",
        ])
        assert code == 0
        lines = [json.loads(line) for line in events_path.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert any(line["type"] == "span" for line in lines[1:])

    def test_flags_off_leaves_singletons_disabled(self, capsys):
        assert main(["run", "--workload", "NCF0", "--array", "8x8"]) == 0
        assert not obs.trace.enabled
        assert not obs.metrics.enabled
        assert len(obs.trace.records()) == 0

    def test_trace_written_even_when_command_fails(self, tmp_path, capsys):
        trace_path = tmp_path / "fail.trace.json"
        code = main([
            "--trace", str(trace_path),
            "run", "--workload", "NCF0", "--array", "8x8",
            "--faults", "partition:0",  # 1x1 grid: killing it is fatal
        ])
        assert code != 0
        assert trace_path.exists()
        json.loads(trace_path.read_text())


class TestStatsCommand:
    def test_stats_on_recorded_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert main([
            "--trace", str(trace_path),
            "run", "--workload", "NCF0", "--array", "8x8",
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "engine.run_layer" in out
        assert "self" in out  # ranked by self-time

    def test_stats_on_recorded_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        assert main([
            "--metrics", str(metrics_path),
            "run", "--workload", "NCF0", "--array", "8x8",
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "sim.cycles" in out

    def test_stats_missing_file_is_config_error(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.json")])
        assert code == 2  # ConfigError
        assert "error:" in capsys.readouterr().err

    def test_stats_wrong_format_is_config_error(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"rows": []}))
        assert main(["stats", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestFlightFlag:
    def test_failure_with_flight_leaves_a_dump(self, tmp_path, capsys):
        flight_dir = tmp_path / "flight"
        code = main([
            "--flight", str(flight_dir),
            "run", "--workload", "NCF0", "--array", "8x8",
            "--faults", "partition:0",  # ResilienceError, exit 11
        ])
        assert code >= 10
        dumps = list(flight_dir.glob("flight-*.json"))
        assert len(dumps) == 1
        doc = json.loads(dumps[0].read_text())
        assert doc["exit_code"] == code
        assert "flight recorder dump" in capsys.readouterr().err

    def test_success_with_flight_leaves_nothing(self, tmp_path, capsys):
        flight_dir = tmp_path / "flight"
        assert main([
            "--flight", str(flight_dir),
            "run", "--workload", "NCF0", "--array", "8x8",
        ]) == 0
        assert not list(flight_dir.glob("flight-*.json")) if flight_dir.exists() else True

    def test_low_exit_codes_do_not_dump(self, tmp_path, capsys):
        # ConfigError (2) is a user mistake, not an infrastructure crash
        flight_dir = tmp_path / "flight"
        assert main([
            "--flight", str(flight_dir), "stats", str(tmp_path / "nope.json"),
        ]) == 2
        assert not flight_dir.exists() or not list(flight_dir.glob("flight-*.json"))

    def test_env_var_arms_the_recorder(self, tmp_path, capsys, monkeypatch):
        flight_dir = tmp_path / "from-env"
        monkeypatch.setenv(flight.FLIGHT_DIR_ENV, str(flight_dir))
        code = main([
            "run", "--workload", "NCF0", "--array", "8x8",
            "--faults", "partition:0",
        ])
        assert code >= 10
        assert list(flight_dir.glob("flight-*.json"))

    def test_stats_renders_a_flight_dump(self, tmp_path, capsys):
        # an incomplete sweep (exit 12) executes real points before
        # failing, so the dump carries engine spans worth rendering
        from repro.perf.cache import cache

        cache.reset()  # a warm layer cache would skip the engine spans
        flight_dir = tmp_path / "flight"
        code = main([
            "--flight", str(flight_dir),
            "resilience", "--layer", "TF0", "--macs", "1024",
            "--partitions", "4", "--dead", "0,99", "--max-failures", "2",
        ])
        assert code == EXIT_INCOMPLETE
        dump = next(flight_dir.glob("flight-*.json"))
        capsys.readouterr()
        flight.disarm()  # the reader must not depend on the armed writer
        assert main(["stats", "--from-flight", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "flight recorder dump" in out
        assert "robust.grid_point" in out
        assert "sweep incomplete" in out  # the log tail tells the story

    def test_stats_rejects_both_or_neither_input(self, tmp_path, capsys):
        assert main(["stats"]) == 2
        assert "exactly one" in capsys.readouterr().err
        path = tmp_path / "x.json"
        path.write_text("{}")
        assert main(["stats", str(path), "--from-flight", str(path)]) == 2

    def test_stats_rejects_non_flight_file(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "else/1"}))
        assert main(["stats", "--from-flight", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestBenchCommand:
    def test_record_then_clean_compare_exits_zero(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        argv_tail = ["--history", str(history), "--benches", "gemm_256",
                     "--repeats", "1"]
        assert main(["bench", "record"] + argv_tail + ["--note", "seed"]) == 0
        assert "recorded" in capsys.readouterr().out
        assert main(["bench", "compare"] + argv_tail) == 0
        assert "ok" in capsys.readouterr().out

    @staticmethod
    def _tiny_baseline(path):
        # a synthetic near-zero baseline: any real measurement regresses
        # against it, so the verdict never depends on wall-clock noise
        entry = {"schema": "repro.bench/1",
                 "benches": {"gemm_256": {"wall_time_s": 1e-9, "counters": {}}}}
        path.write_text(json.dumps(entry) + "\n")

    def test_injected_regression_exits_17(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        self._tiny_baseline(history)
        code = main(
            ["bench", "compare", "--history", str(history),
             "--benches", "gemm_256", "--repeats", "1",
             "--threshold", "0.5", "--inject-slowdown", "5.0",
             "--noise-floor", "0"]
        )
        assert code == EXIT_PERF_REGRESSION == 17
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "performance regression" in captured.err

    def test_compare_record_appends_only_passing_runs(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        argv_tail = ["--history", str(history), "--benches", "gemm_256",
                     "--repeats", "1"]
        assert main(["bench", "record"] + argv_tail) == 0
        assert main(["bench", "compare", "--record"] + argv_tail) == 0
        assert len(history.read_text().splitlines()) == 2

        poisoned = tmp_path / "tiny.jsonl"
        self._tiny_baseline(poisoned)
        code = main(["bench", "compare", "--record",
                     "--history", str(poisoned),
                     "--benches", "gemm_256", "--repeats", "1",
                     "--noise-floor", "0"])
        assert code == EXIT_PERF_REGRESSION
        assert len(poisoned.read_text().splitlines()) == 1  # not recorded

    def test_unknown_bench_is_config_error(self, tmp_path, capsys):
        code = main(["bench", "record", "--history",
                     str(tmp_path / "h.jsonl"), "--benches", "nope"])
        assert code == 2
        assert "unknown bench" in capsys.readouterr().err


class TestIncompleteExit:
    def test_incomplete_sweep_returns_distinct_code(self, capsys):
        code = main([
            "resilience", "--layer", "TF0", "--macs", "1024",
            "--partitions", "4", "--dead", "0,99", "--max-failures", "2",
        ])
        assert code == EXIT_INCOMPLETE
        assert EXIT_INCOMPLETE not in (0, EXIT_FAILURE)
        # 12 is shared deliberately: a graceful SweepInterrupted drain
        # *is* an incomplete sweep. No other error class may claim it.
        from repro.errors import SweepInterrupted

        claimants = {exc for exc, c in EXIT_CODES if c == EXIT_INCOMPLETE}
        assert claimants == {SweepInterrupted}

    def test_complete_sweep_returns_zero(self, capsys):
        assert main([
            "resilience", "--layer", "TF0", "--macs", "1024",
            "--partitions", "4", "--dead", "0,1",
        ]) == 0


class TestLoggingFlags:
    def test_warning_is_default_threshold(self, capsys):
        assert main(["workloads"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_verbose_enables_progress_logs(self, capsys):
        code = main([
            "-v", "resilience", "--layer", "TF0", "--macs", "1024",
            "--partitions", "4", "--dead", "0,1",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "sweep 1/2" in err
        assert "sweep 2/2" in err

    def test_log_level_flag_overrides(self, capsys):
        assert main(["--log-level", "debug", "workloads"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_tables_stay_on_stdout(self, capsys):
        assert main([
            "-v", "resilience", "--layer", "TF0", "--macs", "1024",
            "--partitions", "4", "--dead", "0",
        ]) == 0
        captured = capsys.readouterr()
        assert "slowdown" in captured.out
        assert "slowdown" not in captured.err

    def test_validate_keeps_its_own_verbose_flag(self, capsys):
        assert main(["validate", "--trials", "1", "-v"]) == 0
        # the subcommand's own -v (print every comparison) still works
        assert "[PASS]" in capsys.readouterr().out
