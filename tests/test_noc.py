"""Unit + property tests for the mesh NoC cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.config.presets import paper_scaling_config
from repro.energy.model import EnergyBreakdown
from repro.errors import ReproError
from repro.noc.cost import layer_noc_cost
from repro.noc.mesh import MeshNoc, NocConfig
from repro.topology.layer import GemmLayer

LAYER = GemmLayer("g", m=256, k=64, n=256)


class TestMeshGeometry:
    def test_unicast_hops(self):
        mesh = MeshNoc(4, 4)
        assert mesh.unicast_hops(0, 0) == 1  # just the port link
        assert mesh.unicast_hops(2, 3) == 6

    def test_row_multicast_covers_row(self):
        mesh = MeshNoc(4, 4)
        assert mesh.row_multicast_hops(0) == 1 + 0 + 3
        assert mesh.row_multicast_hops(3) == 1 + 3 + 3

    def test_col_multicast_covers_column(self):
        mesh = MeshNoc(4, 4)
        assert mesh.col_multicast_hops(2) == 1 + 2 + 3

    def test_diameter(self):
        assert MeshNoc(4, 8).diameter == 1 + 3 + 7

    def test_mean_unicast_between_min_and_diameter(self):
        mesh = MeshNoc(3, 5)
        assert 1 <= mesh.mean_unicast_hops() <= mesh.diameter

    def test_out_of_grid_rejected(self):
        with pytest.raises(ReproError):
            MeshNoc(2, 2).unicast_hops(2, 0)

    @given(st.integers(1, 8), st.integers(1, 8))
    def test_multicast_cheaper_than_all_unicasts(self, rows, cols):
        """One multicast traversal never exceeds the sum of unicasts."""
        mesh = MeshNoc(rows, cols)
        for row in range(rows):
            unicast_sum = sum(mesh.unicast_hops(row, col) for col in range(cols))
            assert mesh.row_multicast_hops(row) <= unicast_sum


class TestNocConfig:
    def test_defaults_valid(self):
        NocConfig()

    def test_rejects_zero_link(self):
        with pytest.raises(ReproError):
            NocConfig(link_bytes_per_cycle=0)

    def test_rejects_negative_energy(self):
        with pytest.raises(ReproError):
            NocConfig(energy_per_byte_hop=-1)


class TestLayerNocCost:
    def test_monolithic_costs_one_hop_per_byte(self):
        config = paper_scaling_config(32, 32)
        cost = layer_noc_cost(LAYER, config)
        assert cost.total_byte_hops == cost.port_bytes  # every hop count is 1

    def test_bigger_grids_cost_more_hops_per_byte(self):
        small = layer_noc_cost(LAYER, paper_scaling_config(16, 16, 2, 2))
        large = layer_noc_cost(LAYER, paper_scaling_config(8, 8, 4, 4))
        small_rate = small.total_byte_hops / small.port_bytes
        large_rate = large.total_byte_hops / large.port_bytes
        assert large_rate > small_rate

    def test_energy_scales_with_parameter(self):
        config = paper_scaling_config(16, 16, 2, 2)
        cost = layer_noc_cost(LAYER, config)
        cheap = cost.energy(NocConfig(energy_per_byte_hop=0.01))
        pricey = cost.energy(NocConfig(energy_per_byte_hop=0.10))
        assert pricey == pytest.approx(10 * cheap)

    def test_port_bandwidth_feasibility(self):
        config = paper_scaling_config(8, 8, 8, 8)
        cost = layer_noc_cost(LAYER, config)
        assert cost.port_feasible(NocConfig(link_bytes_per_cycle=1e9))
        assert not cost.port_feasible(NocConfig(link_bytes_per_cycle=1e-9))

    @settings(max_examples=25)
    @given(
        st.sampled_from([(1, 1), (1, 4), (2, 2), (4, 1), (4, 4)]),
        st.sampled_from(list(Dataflow)),
    )
    def test_cost_defined_for_all_dataflows(self, grid, dataflow):
        config = paper_scaling_config(8, 8, grid[0], grid[1], dataflow=dataflow)
        cost = layer_noc_cost(LAYER, config)
        assert cost.total_byte_hops > 0
        assert cost.runtime_cycles > 0
        assert cost.port_bandwidth > 0


class TestEnergyIntegration:
    def test_with_noc_adds_component(self):
        base = EnergyBreakdown(mac=1, sram=2, dram=3, idle=4)
        extended = base.with_noc(5)
        assert extended.total == base.total + 5
        assert base.noc == 0.0

    def test_with_noc_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(1, 2, 3, 4).with_noc(-1)

    def test_addition_carries_noc(self):
        a = EnergyBreakdown(1, 1, 1, 1, noc=2)
        b = EnergyBreakdown(1, 1, 1, 1, noc=3)
        assert (a + b).noc == 5
