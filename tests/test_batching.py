"""Tests for batch support (SCALE-Sim v2-style extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow, HardwareConfig
from repro.engine.simulator import Simulator
from repro.topology.layer import ConvLayer, GemmLayer
from repro.topology.lowering import TensorAddressLayout
from repro.topology.network import Network
from repro.workloads.alexnet import alexnet


def conv(batch=1) -> ConvLayer:
    return ConvLayer(
        name="c", ifmap_h=6, ifmap_w=6, filter_h=3, filter_w=3,
        channels=2, num_filters=4, stride=1, batch=batch,
    )


class TestLayerBatching:
    def test_batch_multiplies_gemm_m(self):
        assert conv(batch=4).gemm_m == 4 * conv().gemm_m

    def test_batch_leaves_k_and_n(self):
        assert conv(batch=4).gemm_k == conv().gemm_k
        assert conv(batch=4).gemm_n == conv().gemm_n

    def test_macs_scale_linearly(self):
        assert conv(batch=8).macs == 8 * conv().macs

    def test_with_batch_is_a_copy(self):
        base = conv()
        batched = base.with_batch(16)
        assert base.batch == 1
        assert batched.batch == 16

    def test_raw_ifmap_scales(self):
        assert conv(batch=3).raw_ifmap_elements == 3 * conv().raw_ifmap_elements

    def test_gemm_layer_with_batch(self):
        layer = GemmLayer("g", m=5, k=7, n=3)
        assert layer.with_batch(4).gemm_m == 20

    def test_rejects_zero_batch(self):
        with pytest.raises(Exception):
            conv(batch=0)


class TestNetworkBatching:
    def test_network_with_batch(self):
        net = alexnet().with_batch(8)
        assert net.name == "alexnet-b8"
        assert net.total_macs == 8 * alexnet().total_macs

    def test_mixed_layer_types(self):
        net = Network("mix", [conv(), GemmLayer("g", m=5, k=7, n=3)])
        batched = net.with_batch(2)
        assert batched["c"].gemm_m == 2 * conv().gemm_m
        assert batched["g"].gemm_m == 10


class TestBatchedSimulation:
    def test_cycles_grow_sublinearly(self, small_config):
        """Batching amortizes partial folds: a single image whose OFMAP
        leaves a remainder row-fold wastes array rows every pass, while
        the batched GEMM packs windows from the next image into them."""
        ragged = ConvLayer(
            name="c", ifmap_h=7, ifmap_w=7, filter_h=3, filter_w=3,
            channels=2, num_filters=4, stride=1,
        )  # 25 OFMAP pixels: 8x8 rows leave a 1-row edge fold
        single = Simulator(small_config).run_layer(ragged)
        batched = Simulator(small_config).run_layer(ragged.with_batch(8))
        assert batched.macs == 8 * single.macs
        assert batched.total_cycles < 8 * single.total_cycles

    def test_cycles_exactly_linear_when_folds_divide(self, small_config):
        """With no partial folds there is nothing to amortize: SCALE-Sim
        v1 serializes folds, so runtime scales exactly with the batch."""
        single = Simulator(small_config).run_layer(conv())  # 16 = 2x8 rows
        batched = Simulator(small_config).run_layer(conv(batch=8))
        assert batched.total_cycles == 8 * single.total_cycles

    @settings(max_examples=20)
    @given(st.integers(1, 8), st.sampled_from(list(Dataflow)))
    def test_utilization_never_degrades_much(self, batch, dataflow):
        config = HardwareConfig(
            array_rows=8, array_cols=8,
            ifmap_sram_kb=16, filter_sram_kb=16, ofmap_sram_kb=8,
            dataflow=dataflow,
        )
        result = Simulator(config).run_layer(conv(batch=batch))
        assert 0 < result.compute_utilization <= 1


class TestBatchedTensorAddresses:
    def test_images_occupy_disjoint_regions(self):
        layer = conv(batch=2)
        layout = TensorAddressLayout(layer)
        pixels_per_image = layer.ofmap_h * layer.ofmap_w
        image0 = {
            layout.ifmap_addr(w, e)
            for w in range(pixels_per_image)
            for e in range(layer.gemm_k)
        }
        image1 = {
            layout.ifmap_addr(w + pixels_per_image, e)
            for w in range(pixels_per_image)
            for e in range(layer.gemm_k)
        }
        assert not image0 & image1

    def test_unique_pixels_scale_with_batch(self):
        layer = conv(batch=3)
        layout = TensorAddressLayout(layer)
        assert layout.unique_ifmap_pixels() == 3 * TensorAddressLayout(conv()).unique_ifmap_pixels()

    def test_window_image_assignment(self):
        layer = conv(batch=2)
        layout = TensorAddressLayout(layer)
        pixels = layer.ofmap_h * layer.ofmap_w
        assert layout.window_image(0) == 0
        assert layout.window_image(pixels) == 1

    def test_reuse_factor_independent_of_batch(self):
        base = TensorAddressLayout(conv()).ifmap_reuse_factor()
        batched = TensorAddressLayout(conv(batch=4)).ifmap_reuse_factor()
        assert batched == pytest.approx(base)
