"""Cross-model integration: trace engine vs analytical model vs golden array.

These are the paper's Fig. 4 validation story, generalized: three
independently implemented models of the same machine must agree on
cycle counts wherever their assumptions coincide.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.runtime import scaleup_runtime
from repro.config.hardware import Dataflow
from repro.dataflow.factory import engine_for_gemm
from repro.golden.gemm import golden_gemm
from repro.mapping.dims import map_gemm

DIM = st.integers(1, 16)
ARR = st.integers(1, 6)
DATAFLOWS = st.sampled_from(list(Dataflow))


@settings(max_examples=30)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_engine_matches_golden_exactly(m, k, n, rows, cols, dataflow):
    """The trace-based engine and the register-level array agree on the
    total cycle count for every geometry and dataflow."""
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    rng = np.random.default_rng(42)
    a = rng.integers(-5, 5, (m, k))
    b = rng.integers(-5, 5, (k, n))
    golden = golden_gemm(a, b, dataflow, rows, cols)
    assert engine.total_cycles() == golden.cycles


@settings(max_examples=50)
@given(DIM, DIM, DIM, ARR, ARR, DATAFLOWS)
def test_engine_bounded_by_analytical(m, k, n, rows, cols, dataflow):
    """Eq. 4 charges full-array latency to edge folds, so the exact
    engine is never slower and matches when dims divide."""
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    mapping = map_gemm(m, k, n, dataflow)
    analytical = scaleup_runtime(mapping, rows, cols)
    assert engine.total_cycles() <= analytical


@settings(max_examples=50)
@given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8), ARR, ARR, DATAFLOWS)
def test_engine_equals_analytical_when_dims_divide(sr_f, sc_f, t, rows, cols, dataflow):
    """Exact equality on workloads whose mapped dims divide the array."""
    from repro.mapping.dims import gemm_from_mapping

    sr, sc = sr_f * rows, sc_f * cols
    m, k, n = gemm_from_mapping(sr, sc, t, dataflow)
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    mapping = map_gemm(m, k, n, dataflow)
    assert engine.total_cycles() == scaleup_runtime(mapping, rows, cols)


@settings(max_examples=30)
@given(DIM, DIM, DIM, DATAFLOWS)
def test_fig4_full_utilization_square_arrays(m, k, n, dataflow):
    """Fig. 4's setting: matmuls that exactly fill square arrays produce
    identical cycles from simulator and 'RTL' (golden) model."""
    mapping = map_gemm(m, k, n, dataflow)
    rows, cols = mapping.sr, mapping.sc
    engine = engine_for_gemm(m, k, n, dataflow, rows, cols)
    rng = np.random.default_rng(7)
    a = rng.integers(-4, 4, (m, k))
    b = rng.integers(-4, 4, (k, n))
    golden = golden_gemm(a, b, dataflow, rows, cols)
    assert engine.total_cycles() == golden.cycles == 2 * rows + cols + mapping.t - 2


@pytest.mark.parametrize("size", [4, 8, 16, 32])
def test_fig4_series_square_os(size):
    """The literal Fig. 4 sweep: square matmul on a square array, OS."""
    engine = engine_for_gemm(size, size, size, Dataflow.OUTPUT_STATIONARY, size, size)
    rng = np.random.default_rng(size)
    a = rng.integers(-4, 4, (size, size))
    b = rng.integers(-4, 4, (size, size))
    golden = golden_gemm(a, b, Dataflow.OUTPUT_STATIONARY, size, size)
    assert engine.total_cycles() == golden.cycles == 4 * size - 2
