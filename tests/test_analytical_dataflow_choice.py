"""Tests for per-layer dataflow selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.dataflow_choice import (
    best_dataflow,
    plan_network_dataflows,
    plan_savings,
    score_dataflows,
)
from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.factory import engine_for
from repro.topology.layer import GemmLayer
from repro.topology.network import Network

CONFIG = HardwareConfig(
    array_rows=16, array_cols=16,
    ifmap_sram_kb=64, filter_sram_kb=64, ofmap_sram_kb=32,
)


class TestScores:
    def test_all_three_scored(self):
        scores = score_dataflows(GemmLayer("g", m=64, k=32, n=64), CONFIG)
        assert {score.dataflow for score in scores} == set(Dataflow)

    def test_scores_match_engine_runtime(self):
        layer = GemmLayer("g", m=64, k=32, n=64)  # dims divide 16x16 under OS
        scores = {s.dataflow: s for s in score_dataflows(layer, CONFIG)}
        for dataflow in Dataflow:
            engine = engine_for(layer, dataflow, 16, 16)
            # Eq. 4 >= engine, equal when mapped dims divide the array.
            assert scores[dataflow].runtime >= engine.total_cycles()


class TestBestDataflow:
    def test_picks_the_minimum(self):
        choice = best_dataflow(GemmLayer("g", m=500, k=16, n=24), CONFIG)
        values = [score.runtime for score in choice.scores]
        assert choice.best.runtime == min(values)

    def test_short_k_prefers_weight_stationary(self):
        """Tiny reduction depth: under OS the huge M x N output plane
        folds hundreds of times, each fold paying the fill/drain tax
        for only K=4 useful cycles.  WS/IS map the short K spatially
        (few folds) and amortize M in time instead."""
        layer = GemmLayer("g", m=512, k=4, n=512)
        choice = best_dataflow(layer, CONFIG, objective="runtime")
        assert choice.dataflow is not Dataflow.OUTPUT_STATIONARY

    def test_long_k_small_output_prefers_os(self):
        """The mirror case: a deep reduction over a tiny output plane
        fits the whole OS array in one fold with K in time, while WS/IS
        fold the K dimension over the 16 array rows hundreds of times."""
        layer = GemmLayer("g", m=8, k=5000, n=8)
        choice = best_dataflow(layer, CONFIG, objective="runtime")
        assert choice.dataflow is Dataflow.OUTPUT_STATIONARY

    def test_objective_changes_choice_possible(self):
        layer = GemmLayer("g", m=300, k=300, n=300)
        runtime_choice = best_dataflow(layer, CONFIG, "runtime")
        dram_choice = best_dataflow(layer, CONFIG, "dram")
        # Either they agree or each minimizes its own metric.
        r = {s.dataflow: s for s in runtime_choice.scores}
        assert dram_choice.best.dram_bytes == min(s.dram_bytes for s in r.values())

    def test_advantage_at_least_one(self):
        choice = best_dataflow(GemmLayer("g", m=64, k=32, n=64), CONFIG)
        assert choice.advantage() >= 1.0

    def test_bad_objective_rejected(self):
        with pytest.raises(ValueError):
            best_dataflow(GemmLayer("g", m=4, k=4, n=4), CONFIG, "vibes")


class TestNetworkPlanning:
    def net(self):
        return Network("mix", [
            GemmLayer("short_k", m=512, k=4, n=128),
            GemmLayer("long_k", m=32, k=4096, n=32),
            GemmLayer("square", m=256, k=256, n=256),
        ])

    def test_plan_covers_all_layers(self):
        plan = plan_network_dataflows(self.net(), CONFIG)
        assert set(plan) == {"short_k", "long_k", "square"}

    def test_savings_never_negative(self):
        for objective in ("runtime", "dram", "sram"):
            fixed, best = plan_savings(self.net(), CONFIG, objective)
            assert best <= fixed

    def test_fixed_equals_best_when_one_dataflow_dominates(self):
        """If the config's dataflow is per-layer optimal everywhere,
        fixed == best."""
        plan = plan_network_dataflows(self.net(), CONFIG, "runtime")
        if all(choice.dataflow is CONFIG.dataflow for choice in plan.values()):
            fixed, best = plan_savings(self.net(), CONFIG, "runtime")
            assert fixed == best

    @settings(max_examples=20)
    @given(st.integers(1, 400), st.integers(1, 400), st.integers(1, 400))
    def test_best_total_is_sum_of_minima(self, m, k, n):
        layer = GemmLayer("g", m=m, k=k, n=n)
        net = Network("one", [layer])
        fixed, best = plan_savings(net, CONFIG, "runtime")
        scores = score_dataflows(layer, CONFIG)
        assert best == min(score.runtime for score in scores)
