"""Unit tests for the register-level fold simulators."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.golden.array import (
    run_output_stationary_fold,
    run_weight_stationary_fold,
)


class TestOutputStationaryFold:
    def test_computes_the_product(self, rng):
        a = rng.integers(-9, 9, (5, 7))
        b = rng.integers(-9, 9, (7, 4))
        result = run_output_stationary_fold(a, b)
        assert np.array_equal(result.output, a @ b)

    def test_cycle_count_matches_eq3(self, rng):
        for r, c, t in [(1, 1, 1), (4, 4, 4), (3, 7, 5), (8, 2, 11)]:
            a = rng.integers(-3, 3, (r, t))
            b = rng.integers(-3, 3, (t, c))
            result = run_output_stationary_fold(a, b)
            assert result.cycles == 2 * r + c + t - 2

    def test_mac_count_exact(self, rng):
        a = rng.integers(-3, 3, (5, 6))
        b = rng.integers(-3, 3, (6, 4))
        assert run_output_stationary_fold(a, b).macs == 5 * 6 * 4

    def test_rejects_mismatched_inner(self):
        with pytest.raises(SimulationError, match="inner dimensions"):
            run_output_stationary_fold(np.ones((2, 3)), np.ones((4, 2)))

    def test_rejects_1d_input(self):
        with pytest.raises(SimulationError):
            run_output_stationary_fold(np.ones(3), np.ones((3, 2)))

    def test_identity_matrix(self):
        eye = np.eye(4, dtype=np.int64)
        result = run_output_stationary_fold(eye, eye)
        assert np.array_equal(result.output, eye)


class TestWeightStationaryFold:
    def test_computes_stream_times_stationary(self, rng):
        stream = rng.integers(-9, 9, (6, 5))  # T x r
        stationary = rng.integers(-9, 9, (5, 3))  # r x c
        result = run_weight_stationary_fold(stream, stationary)
        assert np.array_equal(result.output, stream @ stationary)

    def test_cycle_count_matches_eq3(self, rng):
        for r, c, t in [(1, 1, 1), (4, 4, 4), (3, 7, 5), (8, 2, 11)]:
            stream = rng.integers(-3, 3, (t, r))
            stationary = rng.integers(-3, 3, (r, c))
            result = run_weight_stationary_fold(stream, stationary)
            assert result.cycles == 2 * r + c + t - 2

    def test_mac_count_counts_pass_through(self, rng):
        stream = rng.integers(-3, 3, (6, 5))
        stationary = rng.integers(-3, 3, (5, 3))
        assert run_weight_stationary_fold(stream, stationary).macs == 6 * 5 * 3

    def test_rejects_mismatched_rows(self):
        with pytest.raises(SimulationError, match="row dimensions"):
            run_weight_stationary_fold(np.ones((6, 5)), np.ones((4, 3)))

    def test_single_pe(self):
        result = run_weight_stationary_fold(np.array([[3]]), np.array([[4]]))
        assert result.output[0, 0] == 12
        assert result.cycles == 2  # 2*1 + 1 + 1 - 2
