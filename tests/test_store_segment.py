"""The columnar segment codec: round-trips, zero-copy reads, corruption.

A sealed segment must reconstruct its journal entries byte-identically
(key order and all — the ledger's equivalence with the JSONL checkpoint
rests on it), serve numeric columns as zero-copy views over the mmap,
and refuse to parse when truncated, bit-flipped or mislabeled.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.errors import LedgerCorruptionError
from repro.store.segment import (
    FORMAT_VERSION,
    MAGIC,
    Segment,
    encode_segment,
    write_segment,
)


def entry(index, rows, status="ok", **extra):
    return {
        "key": f"key-{index:04d}",
        "version": "test",
        "params": {"partitions": index},
        "status": status,
        "rows": rows,
        "attempts": 1,
        "duration": 0.0,
        "error": None,
        **extra,
    }


MIXED = [
    entry(0, [{"partitions": 1, "cycles": 100, "avg_bw": 1.5, "array": "8x8"}]),
    entry(1, [{"partitions": 4, "cycles": 90, "avg_bw": 2.5, "array": "4x4"},
              {"partitions": 4, "cycles": 80, "avg_bw": 0.5, "array": "2x2"}]),
    entry(2, [], status="failed", error="boom"),
    entry(3, [{"partitions": 16, "cycles": 70, "flag": True,
               "shape": [2, 8], "note": None}]),
]


@pytest.fixture
def segment(tmp_path):
    write_segment(tmp_path / "s.seg", MIXED)
    with Segment(tmp_path / "s.seg") as seg:
        yield seg


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------

def test_entries_round_trip_exactly(segment):
    assert segment.entries() == MIXED


def test_round_trip_is_byte_identical_json(segment):
    # The ledger's byte-identity with the checkpoint journal depends on
    # reconstructed entries serializing to the very same JSON.
    for original, loaded in zip(MIXED, segment.entries()):
        assert json.dumps(loaded, default=repr) == json.dumps(
            original, default=repr
        )


def test_row_key_order_survives(segment):
    rows = segment.entries()[3]["rows"]
    assert list(rows[0]) == ["partitions", "cycles", "flag", "shape", "note"]


def test_keys_and_metas(segment):
    assert segment.keys() == [e["key"] for e in MIXED]
    metas = segment.entry_metas()
    assert [m["status"] for m in metas] == ["ok", "ok", "failed", "ok"]
    assert len(segment) == 4  # entries, not rows
    assert segment.rows == 4


# ----------------------------------------------------------------------
# Columns
# ----------------------------------------------------------------------

def test_int_column_is_int64_view(segment):
    column = segment.column("cycles")
    assert column.dtype == np.dtype("<i8")
    assert list(column) == [100, 90, 80, 70]
    assert segment.dtype("cycles") == "i8"


def test_float_column(segment):
    assert segment.dtype("avg_bw") == "f8"
    values = segment.values("avg_bw")
    assert values[:3] == [1.5, 2.5, 0.5]
    assert math.isnan(values[3])  # dead slot; presence() masks it


def test_presence_mask(segment):
    assert list(segment.presence("avg_bw")) == [True, True, True, False]
    assert list(segment.presence("flag")) == [False, False, False, True]


def test_string_dictionary_column(segment):
    assert segment.dtype("array") == "sd"
    assert segment.values("array") == ["8x8", "4x4", "2x2", None]
    assert set(segment.dictionary("array")) == {"8x8", "4x4", "2x2"}


def test_json_fallback_column(segment):
    # bools, lists and None don't fit a numeric column.
    assert segment.dtype("flag") == "js"
    assert segment.values("flag") == [None, None, None, True]
    assert segment.values("shape") == [None, None, None, [2, 8]]


def test_out_of_range_int_falls_back_to_json(tmp_path):
    big = 2**70
    write_segment(tmp_path / "b.seg", [entry(0, [{"huge": big}])])
    with Segment(tmp_path / "b.seg") as seg:
        assert seg.dtype("huge") == "js"
        assert seg.values("huge") == [big]


def test_write_segment_info(tmp_path):
    info = write_segment(tmp_path / "s.seg", MIXED)
    assert info.entries == 4
    assert info.rows == 4
    assert info.size_bytes == (tmp_path / "s.seg").stat().st_size
    assert len(info.sha256) == 64


def test_empty_rows_only_segment(tmp_path):
    write_segment(tmp_path / "e.seg", [entry(0, [], status="failed")])
    with Segment(tmp_path / "e.seg") as seg:
        assert seg.entries()[0]["rows"] == []
        assert seg.rows == 0


# ----------------------------------------------------------------------
# Corruption detection
# ----------------------------------------------------------------------

def test_single_bit_flip_detected(tmp_path):
    path = tmp_path / "s.seg"
    write_segment(path, MIXED)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    path.write_bytes(bytes(raw))
    with pytest.raises(LedgerCorruptionError, match="checksum"):
        Segment(path)


def test_truncation_detected(tmp_path):
    path = tmp_path / "s.seg"
    write_segment(path, MIXED)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(LedgerCorruptionError):
        Segment(path)


def test_bad_magic_detected(tmp_path):
    path = tmp_path / "s.seg"
    write_segment(path, MIXED)
    raw = bytearray(path.read_bytes())
    raw[:4] = b"NOPE"
    path.write_bytes(bytes(raw))
    with pytest.raises(LedgerCorruptionError, match="magic"):
        Segment(path)


def test_future_format_version_detected(tmp_path):
    path = tmp_path / "s.seg"
    write_segment(path, MIXED)
    raw = bytearray(path.read_bytes())
    raw[4] = FORMAT_VERSION + 1  # little-endian u16 after the magic
    path.write_bytes(bytes(raw))
    with pytest.raises(LedgerCorruptionError, match="version"):
        Segment(path)


def test_empty_file_detected(tmp_path):
    path = tmp_path / "s.seg"
    path.write_bytes(b"")
    with pytest.raises(LedgerCorruptionError):
        Segment(path)


def test_encode_starts_with_magic():
    assert encode_segment(MIXED).startswith(MAGIC)
