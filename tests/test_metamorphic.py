"""Metamorphic invariants: transformations with predictable effects.

Each test applies a transformation to a workload or configuration whose
effect on the simulator's outputs is known exactly, and checks the
relation holds — a class of bugs unit tests on single inputs miss.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.factory import engine_for_gemm
from repro.energy.model import energy_of_result
from repro.energy.params import EnergyParams
from repro.engine.simulator import Simulator
from repro.topology.layer import ConvLayer, GemmLayer

DIM = st.integers(1, 30)
ARR = st.integers(1, 8)
DATAFLOWS = st.sampled_from(list(Dataflow))


class TestTransposition:
    @settings(max_examples=40)
    @given(DIM, DIM, DIM, ARR, ARR)
    def test_os_transpose_symmetry(self, m, k, n, rows, cols):
        """Under OS, computing A@B on RxC behaves like computing
        (A@B)^T = B^T @ A^T on CxR: the mapped (S_R, S_C) swap with the
        array dims, and fold latency 2r+c+T-2 is *not* symmetric — but
        SRAM totals and output counts are."""
        forward = engine_for_gemm(m, k, n, Dataflow.OUTPUT_STATIONARY, rows, cols)
        transposed = engine_for_gemm(n, k, m, Dataflow.OUTPUT_STATIONARY, cols, rows)
        fwd = forward.layer_counts()
        t = transposed.layer_counts()
        assert fwd.ifmap_reads == t.filter_reads
        assert fwd.filter_reads == t.ifmap_reads
        assert fwd.ofmap_writes == t.ofmap_writes

    @settings(max_examples=40)
    @given(DIM, DIM, DIM, ARR, ARR)
    def test_ws_is_duality(self, m, k, n, rows, cols):
        """IS is WS on the transposed problem: identical cycle counts."""
        ws = engine_for_gemm(m, k, n, Dataflow.WEIGHT_STATIONARY, rows, cols)
        is_ = engine_for_gemm(n, k, m, Dataflow.INPUT_STATIONARY, rows, cols)
        assert ws.total_cycles() == is_.total_cycles()


class TestTemporalScaling:
    @settings(max_examples=40)
    @given(DIM, st.integers(1, 20), DIM, ARR, ARR, st.integers(1, 10))
    def test_os_cycles_linear_in_k(self, m, k, n, rows, cols, delta):
        """OS maps K to time: adding dK adds exactly folds x dK cycles."""
        base = engine_for_gemm(m, k, n, Dataflow.OUTPUT_STATIONARY, rows, cols)
        longer = engine_for_gemm(m, k + delta, n, Dataflow.OUTPUT_STATIONARY, rows, cols)
        folds = base.plan.num_folds
        assert longer.total_cycles() - base.total_cycles() == folds * delta

    @settings(max_examples=40)
    @given(st.integers(1, 20), DIM, DIM, ARR, ARR, st.integers(1, 10))
    def test_ws_cycles_linear_in_m(self, m, k, n, rows, cols, delta):
        """WS maps M (N_ofmap) to time."""
        base = engine_for_gemm(m, k, n, Dataflow.WEIGHT_STATIONARY, rows, cols)
        longer = engine_for_gemm(m + delta, k, n, Dataflow.WEIGHT_STATIONARY, rows, cols)
        folds = base.plan.num_folds
        assert longer.total_cycles() - base.total_cycles() == folds * delta


class TestBatchEquivalence:
    @settings(max_examples=30)
    @given(DIM, DIM, DIM, st.integers(1, 6))
    def test_batched_gemm_is_stacked_gemm(self, m, k, n, batch):
        """GemmLayer.with_batch(b) is exactly the (b*m, k, n) GEMM."""
        config = HardwareConfig(array_rows=8, array_cols=8,
                                ifmap_sram_kb=16, filter_sram_kb=16, ofmap_sram_kb=8)
        simulator = Simulator(config)
        batched = simulator.run_layer(GemmLayer("g", m=m, k=k, n=n).with_batch(batch))
        stacked = simulator.run_layer(GemmLayer("g", m=m * batch, k=k, n=n))
        assert batched.total_cycles == stacked.total_cycles
        assert batched.dram_read_bytes == stacked.dram_read_bytes
        assert batched.sram == stacked.sram


class TestWordSizeScaling:
    @settings(max_examples=20)
    @given(DIM, DIM, DIM, st.sampled_from([2, 4]))
    def test_traffic_scales_with_word_when_buffers_scale_too(self, m, k, n, factor):
        """Doubling the word size AND the SRAM leaves the fold-level
        reuse decisions unchanged, so byte traffic scales exactly."""
        one = HardwareConfig(array_rows=8, array_cols=8, word_bytes=1,
                             ifmap_sram_kb=4, filter_sram_kb=4, ofmap_sram_kb=4)
        wide = HardwareConfig(array_rows=8, array_cols=8, word_bytes=factor,
                              ifmap_sram_kb=4 * factor, filter_sram_kb=4 * factor,
                              ofmap_sram_kb=4 * factor)
        layer = GemmLayer("g", m=m, k=k, n=n)
        base = Simulator(one).run_layer(layer)
        scaled = Simulator(wide).run_layer(layer)
        assert scaled.dram_read_bytes == factor * base.dram_read_bytes
        assert scaled.dram_write_bytes == factor * base.dram_write_bytes
        assert scaled.total_cycles == base.total_cycles


class TestEnergyLinearity:
    def test_energy_linear_in_each_parameter(self, small_config):
        result = Simulator(small_config).run_layer(GemmLayer("g", m=40, k=16, n=24))
        base = energy_of_result(result, EnergyParams(mac=0, sram_access=0,
                                                     dram_access=0, pe_idle=0))
        assert base.total == 0
        for field, attr in [("mac", "mac"), ("sram_access", "sram"),
                            ("dram_access", "dram"), ("pe_idle", "idle")]:
            single = energy_of_result(
                result,
                EnergyParams(**{**dict(mac=0, sram_access=0, dram_access=0, pe_idle=0),
                                field: 1.0}),
            )
            double = energy_of_result(
                result,
                EnergyParams(**{**dict(mac=0, sram_access=0, dram_access=0, pe_idle=0),
                                field: 2.0}),
            )
            assert getattr(double, attr) == pytest.approx(2 * getattr(single, attr))


class TestStrideEquivalence:
    @settings(max_examples=20)
    @given(st.integers(2, 5))
    def test_stride_equal_kernel_is_tiling(self, kernel):
        """stride == kernel partitions the IFMAP: the lowered GEMM is
        identical to a 1x1 conv over rearranged channels."""
        size = kernel * 4
        conv = ConvLayer(
            name="c", ifmap_h=size, ifmap_w=size, filter_h=kernel, filter_w=kernel,
            channels=3, num_filters=5, stride=kernel,
        )
        pixels = (size // kernel) ** 2
        assert conv.gemm_m == pixels
        assert conv.gemm_k == kernel * kernel * 3
