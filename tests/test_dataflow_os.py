"""Unit tests for the output-stationary engine."""

import numpy as np

from repro.config.hardware import Dataflow
from repro.dataflow.base import AddressLayout
from repro.dataflow.output_stationary import OutputStationaryEngine


def engine(m=10, k=5, n=8, rows=4, cols=4) -> OutputStationaryEngine:
    return OutputStationaryEngine(m, k, n, rows, cols)


def single_fold(eng):
    folds = list(eng.plan.folds())
    assert len(folds) >= 1
    return folds[0]


class TestMapping:
    def test_table3_roles(self):
        eng = engine(m=10, k=5, n=8)
        assert eng.mapping.sr == 10  # N_ofmap on rows
        assert eng.mapping.sc == 8  # N_filter on cols
        assert eng.mapping.t == 5  # W_conv in time

    def test_dataflow_tag(self):
        assert engine().dataflow is Dataflow.OUTPUT_STATIONARY


class TestCounts:
    def test_full_fold_counts(self):
        eng = engine(m=8, k=5, n=8, rows=4, cols=4)
        fold = single_fold(eng)
        counts = eng.fold_counts(fold)
        assert counts.ifmap_reads == 4 * 5  # r x T
        assert counts.filter_reads == 4 * 5  # c x T
        assert counts.ofmap_writes == 4 * 4  # r x c

    def test_layer_counts_totals(self):
        eng = engine(m=10, k=5, n=8, rows=4, cols=4)
        counts = eng.layer_counts()
        # Each row fold streams r*T ifmap elements once per column fold.
        assert counts.ifmap_reads == 10 * 5 * eng.plan.col_folds
        assert counts.filter_reads == 8 * 5 * eng.plan.row_folds
        assert counts.ofmap_writes == 10 * 8  # every output exactly once


class TestDemand:
    def test_demand_length_is_fold_cycles(self):
        eng = engine()
        fold = single_fold(eng)
        demand = eng.fold_demand(fold)
        assert demand.cycles == eng.fold_cycles(fold)
        assert len(demand.ifmap_reads) == demand.cycles

    def test_writes_confined_to_drain_phase(self):
        eng = engine(m=4, k=5, n=4, rows=4, cols=4)
        fold = single_fold(eng)
        demand = eng.fold_demand(fold)
        drain = fold.rows
        assert np.all(demand.ofmap_writes[:-drain] == 0)
        assert np.all(demand.ofmap_writes[-drain:] == fold.cols)

    def test_read_peak_is_mapped_rows(self):
        eng = engine(m=4, k=10, n=4, rows=4, cols=4)
        demand = eng.fold_demand(single_fold(eng))
        assert demand.ifmap_reads.max() == 4
        assert demand.filter_reads.max() == 4

    def test_first_cycle_single_read_each(self):
        demand = engine().fold_demand(single_fold(engine()))
        assert demand.ifmap_reads[0] == 1  # only row 0 active at cycle 0
        assert demand.filter_reads[0] == 1


class TestTrace:
    def test_skew_structure(self):
        eng = engine(m=4, k=3, n=4, rows=4, cols=4)
        layout = AddressLayout(m=4, k=3, n=4)
        rows = list(eng.fold_trace(single_fold(eng), layout))
        # Cycle 0: row 0 reads ifmap(0,0); col 0 reads filter(0,0).
        assert rows[0].ifmap_addrs == (layout.ifmap_addr(0, 0),)
        assert rows[0].filter_addrs == (layout.filter_addr(0, 0),)
        # Cycle 1: rows 0 (element 1) and 1 (element 0).
        assert rows[1].ifmap_addrs == (
            layout.ifmap_addr(0, 1),
            layout.ifmap_addr(1, 0),
        )

    def test_drain_emits_bottom_row_first(self):
        eng = engine(m=4, k=3, n=4, rows=4, cols=4)
        layout = AddressLayout(m=4, k=3, n=4)
        rows = list(eng.fold_trace(single_fold(eng), layout))
        drain = [row for row in rows if row.ofmap_addrs]
        assert len(drain) == 4
        first = drain[0].ofmap_addrs
        assert first == tuple(layout.ofmap_addr(3, j) for j in range(4))

    def test_every_output_written_once(self):
        eng = engine(m=10, k=4, n=7, rows=4, cols=4)
        layout = AddressLayout(m=10, k=4, n=7)
        written = []
        for row in eng.layer_trace(layout):
            written.extend(row.ofmap_addrs)
        assert len(written) == len(set(written)) == 10 * 7


class TestSlices:
    def test_ifmap_slice_keyed_by_row_fold(self):
        eng = engine(m=10, k=5, n=8, rows=4, cols=4)
        folds = list(eng.plan.folds())
        same_row = [f for f in folds if f.row_index == 0]
        ids = {eng.ifmap_slice(f).slice_id for f in same_row}
        assert len(ids) == 1

    def test_filter_slice_keyed_by_col_fold(self):
        eng = engine(m=10, k=5, n=8, rows=4, cols=4)
        folds = list(eng.plan.folds())
        sids = [eng.filter_slice(f).slice_id for f in folds if f.row_index == 0]
        assert len(set(sids)) == eng.plan.col_folds

    def test_slice_sizes(self):
        eng = engine(m=10, k=5, n=8, rows=4, cols=4)
        fold = single_fold(eng)
        assert eng.ifmap_slice(fold).elements == fold.rows * 5
        assert eng.filter_slice(fold).elements == fold.cols * 5

    def test_ofmap_elements(self):
        eng = engine(rows=4, cols=4)
        fold = single_fold(eng)
        assert eng.fold_ofmap_elements(fold) == fold.rows * fold.cols
