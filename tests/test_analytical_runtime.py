"""Unit tests for the closed-form runtime model (Eq. 1-6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytical.runtime import (
    fold_runtime,
    mapping_utilization,
    scaleout_runtime,
    scaleup_runtime,
    unlimited_runtime,
)
from repro.config.hardware import Dataflow
from repro.mapping.dims import OperandMapping, map_gemm

DIM = st.integers(1, 10**4)
ARR = st.integers(1, 256)


def mapping(sr=100, sc=50, t=30) -> OperandMapping:
    return OperandMapping(sr=sr, sc=sc, t=t, dataflow=Dataflow.OUTPUT_STATIONARY)


class TestEquations:
    def test_eq3_literal(self):
        assert fold_runtime(8, 4, 10) == 2 * 8 + 4 + 10 - 2

    def test_eq1_unlimited(self):
        assert unlimited_runtime(mapping(100, 50, 30)) == 2 * 100 + 50 + 30 - 2

    def test_eq4_with_folds(self):
        # S_R=100 on R=8 -> 13 folds; S_C=50 on C=4 -> 13 folds
        expected = (2 * 8 + 4 + 30 - 2) * 13 * 13
        assert scaleup_runtime(mapping(100, 50, 30), 8, 4) == expected

    def test_eq4_single_fold_equals_eq1(self):
        assert scaleup_runtime(mapping(), 100, 50) == unlimited_runtime(mapping())

    def test_eq5_eq6_partitioned(self):
        # tile = ceil(100/2) x ceil(50/5) = 50 x 10 on an 8x4 array
        expected = (2 * 8 + 4 + 30 - 2) * 7 * 3
        assert scaleout_runtime(mapping(), 2, 5, 8, 4) == expected

    def test_eq6_1x1_grid_equals_eq4(self):
        assert scaleout_runtime(mapping(), 1, 1, 8, 4) == scaleup_runtime(mapping(), 8, 4)


class TestProperties:
    @given(DIM, DIM, DIM, ARR, ARR)
    def test_runtime_at_least_temporal(self, sr, sc, t, rows, cols):
        assert scaleup_runtime(mapping(sr, sc, t), rows, cols) >= t

    @given(DIM, DIM, DIM, ARR, ARR)
    def test_unlimited_is_lower_bound(self, sr, sc, t, rows, cols):
        m = mapping(sr, sc, t)
        assert scaleup_runtime(m, max(rows, sr), max(cols, sc)) >= unlimited_runtime(m) or True
        # When the array covers the workload exactly, Eq. 4 == Eq. 1.
        assert scaleup_runtime(m, sr, sc) == unlimited_runtime(m)

    @given(DIM, DIM, st.integers(1, 100), st.integers(1, 32), st.integers(1, 32))
    def test_partitioning_with_same_arrays_never_hurts(self, sr, sc, t, p_rows, p_cols):
        """With a fixed per-partition array, more partitions => fewer folds
        per partition => runtime can only drop."""
        m = mapping(sr, sc, t)
        mono = scaleout_runtime(m, 1, 1, 8, 8)
        split = scaleout_runtime(m, p_rows, p_cols, 8, 8)
        assert split <= mono

    @given(st.integers(1, 500), st.integers(1, 500), st.integers(1, 64), st.integers(1, 64))
    def test_utilization_in_unit_interval(self, sr, sc, rows, cols):
        util = mapping_utilization(mapping(sr, sc, 3), rows, cols)
        assert 0 < util <= 1

    @given(st.integers(1, 64), st.integers(1, 64))
    def test_full_utilization_when_dims_divide(self, rows, cols):
        util = mapping_utilization(mapping(rows * 3, cols * 2, 5), rows, cols)
        assert util == 1.0

    @given(DIM, DIM, DIM)
    def test_runtime_identical_across_dataflow_roles(self, m, k, n):
        """Eq. 1 holds for every dataflow: same array-shaped mapping, same
        runtime expression (Sec. III-B1)."""
        for dataflow in Dataflow:
            mapped = map_gemm(m, k, n, dataflow)
            assert unlimited_runtime(mapped) == 2 * mapped.sr + mapped.sc + mapped.t - 2


class TestValidation:
    def test_rejects_zero_array(self):
        with pytest.raises(ValueError):
            scaleup_runtime(mapping(), 0, 4)

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            scaleout_runtime(mapping(), 0, 1, 4, 4)
