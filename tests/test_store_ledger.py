"""The columnar sweep ledger: durability, recovery, queries, degradation.

The contract under test: a recorded point survives any crash once
``record`` returns; reopening recovers sealed segments, quarantines
corrupt ones (their points re-simulate) and dedups the unsealed tail;
storage failures degrade the ledger instead of failing the sweep; and
the ledger is byte-for-byte interchangeable with the JSONL checkpoint
journal as an ``execute_grid`` sink.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import StorageError, StoreCorruptionError
from repro.robust.checkpoint import CheckpointStore, point_key
from repro.store.ledger import MODE_JOURNAL, MODE_MEMORY, LedgerDiff, SweepLedger


def fill(ledger, count, start=0):
    for index in range(start, start + count):
        ledger.record(
            {"partitions": index},
            "ok",
            rows=[{"partitions": index, "cycles": 1000 - index,
                   "avg_bw": float(index % 3)}],
        )


@pytest.fixture
def ledger(tmp_path):
    led = SweepLedger(tmp_path / "ledger", version="test", segment_entries=4)
    yield led
    led.close()


# ----------------------------------------------------------------------
# PointJournal contract
# ----------------------------------------------------------------------

def test_record_get_completed(ledger):
    entry = ledger.record({"partitions": 1}, "ok", rows=[{"cycles": 5}])
    assert ledger.key({"partitions": 1}) == point_key({"partitions": 1}, "test")
    assert ledger.get({"partitions": 1}) == entry
    assert ledger.completed({"partitions": 1})
    assert not ledger.completed({"partitions": 2})
    assert len(ledger) == 1


def test_failed_entries_are_not_completed(ledger):
    ledger.record({"partitions": 1}, "failed", error="boom")
    assert ledger.get({"partitions": 1})["error"] == "boom"
    assert not ledger.completed({"partitions": 1})
    assert ledger.completed_count == 0


def test_estimated_entries_are_not_completed(ledger):
    # --exact resume must re-simulate analytically settled points.
    ledger.record({"partitions": 1}, "estimated", rows=[{"cycles": 5}])
    assert not ledger.completed({"partitions": 1})


def test_entry_matches_checkpoint_journal_bytes(ledger, tmp_path):
    checkpoint = CheckpointStore(tmp_path / "ck.jsonl", version="test")
    for journal in (ledger, checkpoint):
        journal.record(
            {"partitions": 4}, "ok",
            rows=[{"partitions": 4, "cycles": 7, "array": "2x2"}],
            attempts=2, duration=0.5,
        )
    assert json.dumps(ledger.get({"partitions": 4}), default=repr) == json.dumps(
        checkpoint.get({"partitions": 4}), default=repr
    )


# ----------------------------------------------------------------------
# Sealing + reopen
# ----------------------------------------------------------------------

def test_seals_at_threshold(ledger):
    fill(ledger, 3)
    assert ledger.segments() == []  # below threshold: journalled only
    fill(ledger, 1, start=3)
    assert len(ledger.segments()) == 1
    assert ledger.active_path.read_text() == ""  # tail truncated


def test_reopen_replays_sealed_and_unsealed(ledger, tmp_path):
    fill(ledger, 6)  # one sealed segment + 2 unsealed entries
    reopened = SweepLedger(tmp_path / "ledger", version="test")
    assert reopened.completed_count == 6
    for index in range(6):
        assert reopened.completed({"partitions": index})
    # Reconstructed entries are byte-identical to the originals.
    original = ledger.get({"partitions": 0})
    assert json.dumps(reopened.get({"partitions": 0}), default=repr) == (
        json.dumps(original, default=repr)
    )
    reopened.close()


def test_close_seals_the_tail(tmp_path):
    with SweepLedger(tmp_path / "led", version="test") as led:
        fill(led, 3)
    reopened = SweepLedger(tmp_path / "led", version="test")
    assert len(reopened.segments()) == 1
    assert reopened.completed_count == 3
    reopened.close()


def test_version_change_invalidates_points(tmp_path):
    with SweepLedger(tmp_path / "led", version="v1") as led:
        fill(led, 2)
    upgraded = SweepLedger(tmp_path / "led", version="v2")
    assert not upgraded.completed({"partitions": 0})
    assert upgraded.diff_grid([{"partitions": 0}]).pending
    upgraded.close()


def test_read_only_open_rejects_writes(ledger, tmp_path):
    fill(ledger, 4)
    view = SweepLedger(tmp_path / "ledger", version="test", writable=False)
    assert view.completed_count == 4
    with pytest.raises(StoreCorruptionError, match="read-only"):
        view.record({"partitions": 9}, "ok")
    view.close()


def test_root_must_be_directory(tmp_path):
    (tmp_path / "file").write_text("x")
    with pytest.raises(StoreCorruptionError):
        SweepLedger(tmp_path / "file")


def test_reused_counter_counts_cross_run_replays(ledger, tmp_path):
    fill(ledger, 2)
    assert ledger.status()["counters"]["reused"] == 0  # same-run gets
    reopened = SweepLedger(tmp_path / "ledger", version="test")
    assert reopened.get({"partitions": 0}) is not None
    assert reopened.status()["counters"]["reused"] == 1
    reopened.close()


# ----------------------------------------------------------------------
# Incremental diff
# ----------------------------------------------------------------------

def test_diff_grid_partitions_reused_and_pending(ledger):
    fill(ledger, 3)
    diff = ledger.diff_grid([{"partitions": i} for i in range(5)])
    assert [p["partitions"] for p in diff.reused] == [0, 1, 2]
    assert [p["partitions"] for p in diff.pending] == [3, 4]
    assert diff.total == 5
    assert "3/5" in diff.describe()


def test_diff_grid_empty():
    diff = LedgerDiff()
    assert diff.total == 0


# ----------------------------------------------------------------------
# Corruption recovery
# ----------------------------------------------------------------------

def test_bit_flip_quarantines_exactly_that_segment(tmp_path):
    with SweepLedger(tmp_path / "led", version="test", segment_entries=4) as led:
        fill(led, 8)  # two sealed segments
    victim = sorted((tmp_path / "led" / "segments").glob("seg-*.seg"))[0]
    raw = bytearray(victim.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    victim.write_bytes(bytes(raw))

    recovered = SweepLedger(tmp_path / "led", version="test")
    assert recovered.completed_count == 4  # only the torn segment's points lost
    assert len(recovered.quarantined()) == 1
    assert recovered.status()["counters"]["quarantined"] == 1
    # The surviving points are exactly segment 2's.
    pending = recovered.diff_grid([{"partitions": i} for i in range(8)]).pending
    assert [p["partitions"] for p in pending] == [0, 1, 2, 3]
    recovered.close()


def test_quarantined_points_recompute_byte_identically(tmp_path):
    with SweepLedger(tmp_path / "led", version="test", segment_entries=4) as led:
        fill(led, 4)
        before = json.dumps(led.get({"partitions": 2}), default=repr)
    victim = next((tmp_path / "led" / "segments").glob("seg-*.seg"))
    raw = bytearray(victim.read_bytes())
    raw[-40] ^= 0x10
    victim.write_bytes(bytes(raw))

    with SweepLedger(tmp_path / "led", version="test", segment_entries=4) as led:
        assert not led.completed({"partitions": 2})
        fill(led, 4)  # re-simulate the lost points
        assert json.dumps(led.get({"partitions": 2}), default=repr) == before


def test_orphan_temp_files_are_removed(tmp_path):
    with SweepLedger(tmp_path / "led", version="test") as led:
        fill(led, 1)
    orphan = tmp_path / "led" / "segments" / ".seg-000007.seg.abc.tmp"
    orphan.write_bytes(b"half a segment")
    SweepLedger(tmp_path / "led", version="test").close()
    assert not orphan.exists()


def test_unjournalled_segment_is_rejournalled(tmp_path):
    with SweepLedger(tmp_path / "led", version="test", segment_entries=2) as led:
        fill(led, 2)
    (tmp_path / "led" / "manifest.wal").unlink()
    reopened = SweepLedger(tmp_path / "led", version="test")
    assert reopened.completed_count == 2
    ops = reopened._manifest_segments()
    assert ops == {"seg-000000.seg": "seal"}
    reopened.close()


def test_manifest_tolerates_torn_final_line(tmp_path):
    with SweepLedger(tmp_path / "led", version="test", segment_entries=2) as led:
        fill(led, 2)
        with led.manifest_path.open("a") as handle:
            handle.write('{"op": "seal", "segment": "seg-trunc')
    reopened = SweepLedger(tmp_path / "led", version="test")
    assert reopened.completed_count == 2
    reopened.close()


def test_stale_tail_dedups_against_sealed_copy(tmp_path):
    # Crash between manifest append and active truncate: the sealed
    # entries linger in active.jsonl; reopen must not double-count.
    with SweepLedger(tmp_path / "led", version="test", segment_entries=2) as led:
        fill(led, 2)
        sealed_lines = [
            json.dumps(led.get({"partitions": i}), default=repr) for i in range(2)
        ]
    active = tmp_path / "led" / "active.jsonl"
    active.write_text("".join(line + "\n" for line in sealed_lines))
    reopened = SweepLedger(tmp_path / "led", version="test")
    assert reopened.completed_count == 2
    assert reopened.status()["pending"] == 0  # nothing re-buffered
    reopened.close()


def test_quarantine_names_never_collide(tmp_path):
    for _round in range(2):
        with SweepLedger(tmp_path / "led", version="test",
                         segment_entries=2) as led:
            fill(led, 2)
        victim = next((tmp_path / "led" / "segments").glob("seg-*.seg"))
        victim.write_bytes(b"garbage")
        SweepLedger(tmp_path / "led", version="test").close()
    quarantined = SweepLedger(tmp_path / "led", version="test").quarantined()
    assert len(quarantined) == 2
    assert len({p.name for p in quarantined}) == 2


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------

def test_seal_failure_degrades_to_journal_only(ledger, monkeypatch):
    def explode(path, payload):
        error = StorageError(f"cannot write {path}: no space left on device")
        error.errno = 28  # ENOSPC
        raise error

    monkeypatch.setattr("repro.store.ledger.atomic_write_bytes", explode)
    fill(ledger, 4)  # crosses the threshold -> seal fails
    assert ledger.mode == MODE_JOURNAL
    assert "no space left" in ledger.degraded_reason
    assert ledger.segments() == []
    assert ledger.completed_count == 4  # sweep data intact
    monkeypatch.undo()
    fill(ledger, 4, start=4)  # degraded mode sticks; no seal attempts
    assert ledger.mode == MODE_JOURNAL

    # Every entry stayed durable in the fsynced active journal.
    reopened = SweepLedger(ledger.root, version="test")
    assert reopened.completed_count == 8
    reopened.close()


def test_active_append_failure_degrades_to_memory(ledger, monkeypatch):
    def explode(self, entry):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(SweepLedger, "_append_active", explode)
    # record() still succeeds: the sweep completes, durability is gone.
    monkeypatch.undo()
    real_open = ledger.active_path.open

    def no_space(*args, **kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(type(ledger.active_path), "open", no_space)
    entry = ledger.record({"partitions": 0}, "ok", rows=[{"cycles": 1}])
    monkeypatch.undo()
    assert entry["status"] == "ok"
    assert ledger.mode == MODE_MEMORY
    assert ledger.completed({"partitions": 0})


def test_degraded_gauge_and_errors_counter(ledger, monkeypatch):
    monkeypatch.setattr(
        "repro.store.ledger.atomic_write_bytes",
        lambda path, payload: (_ for _ in ()).throw(StorageError("disk gone")),
    )
    fill(ledger, 4)
    status = ledger.status()
    assert status["mode"] == MODE_JOURNAL
    assert status["counters"]["errors"] == 1


# ----------------------------------------------------------------------
# Column queries
# ----------------------------------------------------------------------

def test_numeric_column_spans_sealed_and_tail(ledger):
    fill(ledger, 6)  # 4 sealed + 2 in the tail
    cycles = ledger.numeric_column("cycles")
    assert cycles.dtype == np.dtype("<f8")
    assert list(cycles) == [1000.0, 999.0, 998.0, 997.0, 996.0, 995.0]


def test_numeric_column_nan_for_missing(ledger):
    ledger.record({"partitions": 0}, "ok", rows=[{"cycles": 10}])
    ledger.record({"partitions": 1}, "ok", rows=[{"other": 3}])
    column = ledger.numeric_column("cycles")
    assert column[0] == 10.0
    assert np.isnan(column[1])


def test_rows_align_with_columns(ledger):
    fill(ledger, 5)
    rows = ledger.rows()
    cycles = ledger.numeric_column("cycles")
    assert [row["cycles"] for row in rows] == list(cycles.astype(int))


def test_failed_rows_are_excluded_by_default(ledger):
    fill(ledger, 2)
    ledger.record({"partitions": 99}, "failed", error="boom")
    assert len(ledger.rows()) == 2
    assert len(ledger.numeric_column("cycles")) == 2


def test_pareto_front_query(ledger):
    for partitions, cycles, avg_bw in ((0, 10, 5.0), (1, 20, 1.0), (2, 30, 6.0)):
        ledger.record(
            {"partitions": partitions}, "ok",
            rows=[{"partitions": partitions, "cycles": cycles, "avg_bw": avg_bw}],
        )
    front = ledger.pareto(minimize=("cycles", "avg_bw"))
    assert [row["partitions"] for row in front] == [0, 1]  # row 2 dominated


def test_pareto_needs_objectives(ledger):
    with pytest.raises(ValueError, match="objective"):
        ledger.pareto()


def test_group_by(ledger):
    fill(ledger, 6)
    groups = ledger.group_by("avg_bw", "cycles", agg="min")
    # avg_bw cycles index % 3; min cycles in each class is the last.
    assert groups == {0.0: 997.0, 1.0: 996.0, 2.0: 995.0}
    counts = ledger.group_by("avg_bw", "cycles", agg="count")
    assert counts == {0.0: 2, 1.0: 2, 2.0: 2}


def test_group_by_rejects_unknown_aggregate(ledger):
    with pytest.raises(ValueError, match="aggregate"):
        ledger.group_by("a", "b", agg="median")


def test_queries_work_after_reopen_zero_copy(tmp_path):
    with SweepLedger(tmp_path / "led", version="test", segment_entries=4) as led:
        fill(led, 8)
    reopened = SweepLedger(tmp_path / "led", version="test")
    assert list(reopened.numeric_column("cycles").astype(int)) == [
        1000 - i for i in range(8)
    ]
    reopened.close()


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

def test_segment_entries_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="segment_entries"):
        SweepLedger(tmp_path / "led", segment_entries=0)


def test_status_snapshot_shape(ledger):
    fill(ledger, 4)
    status = ledger.status()
    assert status["entries"] == 4
    assert status["completed"] == 4
    assert status["segments"] == 1
    assert status["corrupt"] == 0
    assert status["pending"] == 0
    assert status["mode"] == "columnar"
    assert status["counters"]["sealed"] == 1
    assert status["counters"]["rows"] == 4
