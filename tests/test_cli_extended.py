"""Tests for the extended CLI subcommands (analyze, dram, new run flags)."""

import pytest

from repro.cli import main


class TestAnalyzeCommand:
    def test_analyze_builtin(self, capsys):
        assert main(["analyze", "--workload", "alexnet", "--array", "32x32"]) == 0
        out = capsys.readouterr().out
        assert "eq4_cycles" in out
        assert "total Eq.4 cycles" in out

    def test_analyze_table_iv_layer(self, capsys):
        assert main(["analyze", "--workload", "TF1", "--array", "16x16"]) == 0
        assert "TF1" in capsys.readouterr().out

    def test_analyze_dataflow_flag(self, capsys):
        assert main(["analyze", "--workload", "TF1", "--array", "16x16", "--dataflow", "ws"]) == 0
        assert "ws" in capsys.readouterr().out

    def test_analyze_matches_run_on_divisible_layer(self, capsys):
        """Eq. 4 equals the simulator when mapped dims divide the array."""
        main(["analyze", "--workload", "NCF1", "--array", "16x16"])
        analyze_out = capsys.readouterr().out
        main(["run", "--workload", "NCF1", "--array", "16x16"])
        run_out = capsys.readouterr().out
        analyze_cycles = int(analyze_out.splitlines()[2].split()[1])
        run_cycles = int(
            [line for line in run_out.splitlines() if line.startswith("NCF1")][0].split()[3]
        )
        assert analyze_cycles == run_cycles


class TestDramCommand:
    def test_dram_replay(self, capsys):
        assert main(["dram", "--workload", "TF1", "--array", "16x16", "--channels", "4"]) == 0
        out = capsys.readouterr().out
        assert "achieved" in out
        assert "keeps up" in out or "falls behind" in out

    def test_single_channel_often_falls_behind(self, capsys):
        assert main(["dram", "--workload", "GNMT0", "--array", "64x64", "--channels", "1"]) == 0
        assert "falls behind" in capsys.readouterr().out


class TestRunFlags:
    def test_batch_flag_scales_macs(self, capsys):
        main(["run", "--workload", "NCF1", "--array", "16x16"])
        single = capsys.readouterr().out
        main(["run", "--workload", "NCF1", "--array", "16x16", "--batch", "4"])
        batched = capsys.readouterr().out

        def macs(text):
            return int(text.split("total MACs: ")[1].split()[0])

        assert macs(batched) == 4 * macs(single)

    def test_loop_order_flag(self, capsys):
        assert main(["run", "--workload", "DB1", "--array", "32x32", "--loop-order", "col"]) == 0
        col = capsys.readouterr().out
        assert main(["run", "--workload", "DB1", "--array", "32x32"]) == 0
        row = capsys.readouterr().out

        def read_bytes(text):
            return text.split("DRAM rd/wr bytes: ")[1].split("/")[0]

        assert read_bytes(col) != read_bytes(row)
