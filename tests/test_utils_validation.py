"""Unit tests for repro.utils.validation."""

import pytest

from repro.utils.validation import check_choice, check_non_negative_int, check_positive_int


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int(1, "x") == 1

    def test_accepts_large(self):
        assert check_positive_int(2**40, "x") == 2**40

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be >= 1"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "x")

    def test_rejects_float(self):
        with pytest.raises(ValueError, match="must be an integer"):
            check_positive_int(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_positive_int(True, "x")

    def test_rejects_string(self):
        with pytest.raises(ValueError):
            check_positive_int("4", "x")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_non_negative_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_non_negative_int(False, "x")


class TestCheckChoice:
    def test_accepts_member(self):
        assert check_choice("a", "x", ["a", "b"]) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="x must be one of"):
            check_choice("c", "x", ["a", "b"])

    def test_works_with_generators(self):
        assert check_choice(2, "x", (i for i in range(3))) == 2
