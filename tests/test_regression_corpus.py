"""Replay the permanent regression corpus in ``tests/regressions/``.

Every bundle the verification harness ever wrote is re-executed here on
every test run: a violation that was fixed must stay fixed, and a
freshly-committed bundle fails this module until the underlying defect
is repaired.  An empty corpus simply parametrizes to nothing.
"""

from pathlib import Path

import pytest

from repro.verify.corpus import load_bundle, load_corpus, replay_bundle

CORPUS = Path(__file__).resolve().parent / "regressions"

BUNDLES = load_corpus(CORPUS)


def test_corpus_directory_is_tracked():
    # The directory (with its README) must exist even when no bundle
    # has ever been committed, so the harness always has a target.
    assert CORPUS.is_dir()
    assert (CORPUS / "README.md").is_file()


@pytest.mark.parametrize(
    "path", BUNDLES, ids=[path.name for path in BUNDLES]
)
def test_regression_stays_fixed(path):
    bundle = load_bundle(path)
    live = replay_bundle(bundle)
    details = "; ".join(v.describe() for v in live)
    assert live == [], (
        f"regression {path.name} reproduces again ({bundle['message']}): {details}"
    )
