"""End-to-end integration: the full user journeys, files to reports."""

import csv
import json

import pytest

from repro.cli import main
from repro.config.hardware import Dataflow, HardwareConfig
from repro.config.parser import dump_config, load_config
from repro.config.presets import paper_scaling_config
from repro.engine.persistence import load_run_result, save_run_result
from repro.engine.scaleout import ScaleOutSimulator
from repro.engine.simulator import Simulator
from repro.topology.parser import dump_topology, load_topology
from repro.workloads.alexnet import alexnet
from repro.workloads.language import language_layer


class TestFileJourney:
    """config INI + topology CSV -> CLI -> report CSV, all on disk."""

    def test_full_file_pipeline(self, tmp_path):
        config = HardwareConfig(
            array_rows=16, array_cols=16,
            ifmap_sram_kb=128, filter_sram_kb=128, ofmap_sram_kb=64,
            run_name="journey",
        )
        config_path = dump_config(config, tmp_path / "hw.cfg")
        topo_path = dump_topology(alexnet(), tmp_path / "net.csv")

        code = main([
            "run", "-c", str(config_path), "-t", str(topo_path),
            "-o", str(tmp_path / "out"),
        ])
        assert code == 0

        report_path = tmp_path / "out" / "net_report.csv"
        with report_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert [row["layer"] for row in rows] == alexnet().layer_names()

        # The CSV numbers equal a direct library run on the same inputs.
        direct = Simulator(load_config(config_path)).run_network(load_topology(topo_path))
        for row, result in zip(rows, direct):
            assert int(row["cycles"]) == result.total_cycles
            assert int(row["dram_read_bytes"]) == result.dram_read_bytes


class TestPersistenceJourney:
    def test_simulate_save_reload_summarize(self, tmp_path, small_config):
        from repro.engine.summary import summarize_run

        run = Simulator(small_config).run_network(alexnet())
        path = save_run_result(run, tmp_path / "alexnet.json")
        restored = load_run_result(path)
        original = summarize_run(run)
        again = summarize_run(restored)
        assert original == again

    def test_saved_file_is_plain_json(self, tmp_path, small_config):
        run = Simulator(small_config).run_network(alexnet())
        path = save_run_result(run, tmp_path / "alexnet.json")
        data = json.loads(path.read_text())
        assert data["network_name"] == "alexnet"
        assert len(data["layers"]) == len(alexnet())


class TestScaleConsistency:
    """Cross-checks the paper's figures rely on, at integration level."""

    def test_scaleout_macs_equal_monolithic(self):
        layer = language_layer("TF1")
        mono = Simulator(paper_scaling_config(32, 32)).run_layer(layer)
        grid = ScaleOutSimulator(paper_scaling_config(16, 16, 2, 2)).run_layer(layer)
        assert mono.macs == grid.macs == layer.macs

    def test_equal_budget_partitioning_never_slower_by_much(self):
        """The Fig. 10 property on the cycle-accurate engine, across
        several budgets."""
        layer = language_layer("GNMT1")
        for shape, grid in [((32, 32), (16, 16, 2, 2)), ((64, 64), (16, 16, 4, 4))]:
            mono = Simulator(paper_scaling_config(*shape)).run_layer(layer)
            parts = ScaleOutSimulator(paper_scaling_config(*grid)).run_layer(layer)
            assert parts.total_cycles <= mono.total_cycles * 1.05

    def test_every_dataflow_runs_the_same_network(self, small_config):
        """All three dataflows agree on MAC counts for a whole network."""
        totals = {}
        for dataflow in Dataflow:
            run = Simulator(small_config.with_dataflow(dataflow)).run_network(alexnet())
            totals[dataflow] = run.total_macs
        assert len(set(totals.values())) == 1


class TestExperimentsRegression:
    """Pin a few cheap, fully deterministic experiment outputs."""

    def test_fig4_values(self):
        from repro.experiments.fig04 import fig04_validation

        rows = fig04_validation(sizes=(4, 8, 16))
        assert [row["sim_cycles"] for row in rows] == [14, 30, 62]

    def test_table4_tf0(self):
        from repro.experiments.tables import table4_language_dims

        tf0 = next(row for row in table4_language_dims() if row["name"] == "TF0")
        assert (tf0["S_R"], tf0["T"], tf0["S_C"]) == (31999, 84, 1024)

    def test_fig11_small_budget_is_deterministic(self):
        from repro.experiments.fig11 import partition_sweep

        layer = language_layer("TF1")
        first = partition_sweep(layer, 2**12, partition_counts=(1, 4))
        second = partition_sweep(layer, 2**12, partition_counts=(1, 4))
        assert first == second
