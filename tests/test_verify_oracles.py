"""Differential oracles: clean cases pass, seeded defects are caught."""

import unittest.mock as mock

import pytest

import repro.analytical.runtime as analytical_runtime
from repro.verify.cases import VerifyCase
from repro.verify.oracles import (
    golden_applies,
    oracle_golden,
    oracle_models,
    oracle_shape_classes,
    simulate_case,
)

CLEAN_CASES = [
    VerifyCase(m=8, k=8, n=8, array_rows=4, array_cols=4),          # divides
    VerifyCase(m=7, k=5, n=3, dataflow="ws", array_rows=4, array_cols=4),
    VerifyCase(m=9, k=2, n=6, dataflow="is", array_rows=3, array_cols=5),
    VerifyCase(m=6, k=6, n=6, array_rows=4, array_cols=4, dead_pe_rows=(1,)),
    VerifyCase(m=12, k=4, n=8, partition_rows=2, partition_cols=2),
    VerifyCase(
        m=12, k=4, n=8, partition_rows=2, partition_cols=2,
        dead_partitions=((0, 0),),
    ),
]


class TestCleanCases:
    @pytest.mark.parametrize("case", CLEAN_CASES, ids=lambda c: c.describe())
    def test_models_oracle_is_silent(self, case):
        assert oracle_models(case) == []

    @pytest.mark.parametrize("case", CLEAN_CASES, ids=lambda c: c.describe())
    def test_shape_class_oracle_is_silent(self, case):
        assert oracle_shape_classes(case) == []

    def test_golden_oracle_is_silent_on_small_case(self):
        case = VerifyCase(m=4, k=4, n=4, array_rows=4, array_cols=4)
        assert golden_applies(case)
        assert oracle_golden(case) == []

    def test_golden_oracle_skips_big_and_degraded_cases(self):
        big = VerifyCase(m=100, k=100, n=100)
        degraded = VerifyCase(m=4, k=4, n=4, dead_pe_rows=(0,))
        assert not golden_applies(big)
        assert not golden_applies(degraded)
        assert oracle_golden(big) == []


class TestSeededDefects:
    def test_fold_runtime_off_by_one_breaks_exactness(self):
        case = VerifyCase(m=8, k=8, n=8, array_rows=4, array_cols=4)
        real = analytical_runtime.fold_runtime
        with mock.patch.object(
            analytical_runtime, "fold_runtime",
            lambda r, c, t: real(r, c, t) + 1,
        ):
            violations = oracle_models(case)
        assert violations
        assert any("exact" in v.message for v in violations)

    def test_shape_class_drop_is_caught(self):
        from repro.mapping.folds import FoldPlan

        case = VerifyCase(m=9, k=5, n=7, array_rows=4, array_cols=4)
        real = FoldPlan.shape_classes
        with mock.patch.object(
            FoldPlan, "shape_classes", lambda self: real(self)[:-1]
        ):
            violations = oracle_shape_classes(case)
        assert violations
        assert violations[0].prop == "shape_classes"

    def test_violation_carries_the_case_for_replay(self):
        case = VerifyCase(m=8, k=8, n=8, array_rows=4, array_cols=4)
        real = analytical_runtime.fold_runtime
        with mock.patch.object(
            analytical_runtime, "fold_runtime",
            lambda r, c, t: real(r, c, t) + 1,
        ):
            violations = oracle_models(case)
        assert violations[0].case == case


class TestSimulateCase:
    def test_monolithic_and_grid_routes(self):
        mono = simulate_case(VerifyCase(m=4, k=4, n=4))
        grid = simulate_case(
            VerifyCase(m=8, k=4, n=4, partition_rows=2, partition_cols=1)
        )
        assert mono.total_cycles > 0
        assert grid.macs == 8 * 4 * 4
