"""CLI exit-code hygiene and the robust batch flags."""

import json

import pytest

from repro.cli import EXIT_CODES, EXIT_INCOMPLETE, EXIT_POOL_LOSS, exit_code_for, main
from repro.errors import (
    CheckpointError,
    ConfigError,
    InvariantError,
    PerfRegressionError,
    PointTimeoutError,
    ReproError,
    ResilienceError,
    SimulationError,
    SupervisorExhaustedError,
    SweepInterrupted,
    TopologyError,
    VerificationError,
    WorkerCrashError,
)


class TestExitCodeMapping:
    def test_codes_are_distinct_and_nonzero(self):
        codes = [code for _, code in EXIT_CODES]
        assert len(set(codes)) == len(codes)
        assert all(code not in (0, 1) for code in codes)

    @pytest.mark.parametrize(
        "exc, code",
        [
            (ConfigError("x"), 2),
            (TopologyError("x"), 3),
            (SimulationError("x"), 4),
            (CheckpointError("x"), 8),
            (InvariantError("x"), 9),
            (PointTimeoutError("x"), 10),  # via the ExecutionError base
            (ResilienceError("x"), 11),
            (SweepInterrupted("x"), 12),
            (WorkerCrashError("x"), 13),
            (SupervisorExhaustedError("x"), 13),  # via the WorkerCrashError base
            (VerificationError("x"), 16),
            (PerfRegressionError("x"), 17),
            (ReproError("x"), 1),  # no dedicated code -> generic failure
        ],
    )
    def test_mapping(self, exc, code):
        assert exit_code_for(exc) == code

    def test_interrupt_and_pool_loss_reuse_documented_constants(self):
        assert exit_code_for(SweepInterrupted("x")) == EXIT_INCOMPLETE
        assert exit_code_for(SupervisorExhaustedError("x")) == EXIT_POOL_LOSS

    def test_verification_error_uses_documented_constant(self):
        from repro.cli import EXIT_VERIFICATION

        assert EXIT_VERIFICATION == 16
        assert exit_code_for(VerificationError("x")) == EXIT_VERIFICATION

    def test_perf_regression_uses_documented_constant(self):
        from repro.cli import EXIT_PERF_REGRESSION

        assert EXIT_PERF_REGRESSION == 17
        assert exit_code_for(PerfRegressionError("x")) == EXIT_PERF_REGRESSION


class TestCliErrorPaths:
    def test_topology_error_exits_3(self, tmp_path, capsys):
        missing = tmp_path / "nope.csv"
        code = main(["run", "--topology", str(missing)])
        captured = capsys.readouterr()
        assert code == 3
        assert "error:" in captured.err
        assert "error:" not in captured.out

    def test_config_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.cfg"
        bad.write_text("[general]\nrun_name = x\n\n[architecture_presets\n")
        code = main(["run", "--config", str(bad), "--workload", "TF0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_without_checkpoint_exits_8(self, capsys):
        code = main(["sweep", "--layer", "TF0", "--macs", "1024", "--resume"])
        assert code == 8
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_existing_checkpoint_without_resume_exits_8(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        journal.write_text("")
        code = main(
            ["sweep", "--layer", "TF0", "--macs", "1024",
             "--checkpoint", str(journal)]
        )
        assert code == 8
        assert "already exists" in capsys.readouterr().err


class TestResilienceCli:
    def test_bad_fault_spec_exits_11(self, capsys):
        code = main(["run", "--workload", "TF0", "--faults", "partition:zzz"])
        assert code == 11
        assert "error:" in capsys.readouterr().err

    def test_faults_and_fault_map_are_exclusive(self, tmp_path, capsys):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"partitions": [[0, 0]]}))
        code = main(
            ["run", "--workload", "TF0",
             "--faults", "partition:0,0", "--fault-map", str(path)]
        )
        assert code == 11
        assert "mutually exclusive" in capsys.readouterr().err

    def test_run_with_faults_shows_degraded_columns(self, capsys):
        assert main(
            ["run", "--workload", "TF0", "--partitions", "2x2",
             "--faults", "partition:1,1"]
        ) == 0
        out = capsys.readouterr().out
        assert "failed_parts" in out
        assert "remapped_tiles" in out

    def test_resilience_happy_path(self, capsys):
        code = main(
            ["resilience", "--layer", "TF0", "--macs", "16384",
             "--dead", "0,1,2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "slowdown" in out
        assert "bound" in out

    def test_resilience_with_explicit_fault_map(self, tmp_path, capsys):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"partitions": [[0, 0], [1, 1]]}))
        code = main(
            ["resilience", "--layer", "TF0", "--macs", "16384",
             "--fault-map", str(path)]
        )
        assert code == 0
        assert "slowdown" in capsys.readouterr().out

    def test_resilience_checkpoint_resume(self, tmp_path, capsys):
        journal = tmp_path / "res.jsonl"
        argv = ["resilience", "--layer", "TF0", "--macs", "16384",
                "--dead", "0,1", "--checkpoint", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first


class TestWorkersValidation:
    def test_workers_zero_exits_2(self, capsys):
        code = main(["sweep", "--layer", "TF0", "--macs", "1024", "--workers", "0"])
        assert code == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_workers_negative_exits_2(self, capsys):
        code = main(["sweep", "--layer", "TF0", "--macs", "1024", "--workers", "-3"])
        assert code == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_workers_above_cpu_count_warn_and_cap(self, caplog):
        import logging
        import os

        from repro.cli import _robust_workers, build_parser

        huge = (os.cpu_count() or 1) * 64
        args = build_parser().parse_args(
            ["sweep", "--layer", "TF0", "--macs", "1024", "--workers", str(huge)]
        )
        cli_logger = logging.getLogger("repro.cli")
        cli_logger.addHandler(caplog.handler)
        try:
            with caplog.at_level(logging.WARNING, logger="repro.cli"):
                capped = _robust_workers(args)
        finally:
            cli_logger.removeHandler(caplog.handler)
        assert capped == (os.cpu_count() or 1)
        assert any("capping" in record.message for record in caplog.records)

    def test_bad_quarantine_exits_2(self, capsys):
        code = main(
            ["sweep", "--layer", "TF0", "--macs", "1024", "--quarantine", "0"]
        )
        assert code == 2
        assert "quarantine_after" in capsys.readouterr().err

    def test_bad_point_timeout_exits_2(self, capsys):
        code = main(
            ["sweep", "--layer", "TF0", "--macs", "1024", "--point-timeout", "-1"]
        )
        assert code == 2
        assert "point_timeout" in capsys.readouterr().err


class TestSweepRobustFlags:
    def test_checkpoint_written_and_resumed(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        argv = ["sweep", "--layer", "TF0", "--macs", "1024",
                "--checkpoint", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        entries = [json.loads(line) for line in journal.read_text().splitlines()]
        assert entries and all(entry["status"] == "ok" for entry in entries)

        # Resuming replays the journal: identical table, same journal size.
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert len(journal.read_text().splitlines()) == len(entries)

    def test_sweep_output_format_unchanged(self, capsys):
        assert main(["sweep", "--layer", "TF0", "--macs", "1024"]) == 0
        out = capsys.readouterr().out
        assert "partitions" in out
        assert "avg_bw" in out


class TestReproduceRobustFlags:
    def test_reproduce_with_checkpoint_resumes(self, tmp_path, capsys):
        journal = tmp_path / "exp.jsonl"
        argv = ["reproduce", "table4", "--checkpoint", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "TF0" in first

        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_unknown_experiment_still_systemexits(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["reproduce", "fig99"])


class TestValidateExitCode:
    def test_validate_passing_run_exits_zero(self, capsys):
        assert main(["validate", "--trials", "2"]) == 0
