"""Regression bundles: write, load, replay, corruption handling."""

import json

import pytest

from repro.errors import VerificationError
from repro.verify.cases import VerifyCase
from repro.verify.corpus import (
    bundle_from_violation,
    bundle_name,
    load_bundle,
    load_corpus,
    replay_bundle,
    replay_corpus,
    write_bundle,
)
from repro.verify.oracles import Violation


def _case_violation():
    return Violation(
        prop="models",
        message="synthetic",
        expected=10,
        actual=11,
        case=VerifyCase(m=4, k=4, n=4),
    )


def _text_violation():
    return Violation(
        prop="parser_topology",
        message="synthetic leak",
        text="x, 1, 1, 1, 1, 1, 1, 1,\n",
    )


class TestBundleLifecycle:
    def test_case_bundle_round_trip(self, tmp_path):
        bundle = bundle_from_violation(_case_violation(), seed=7)
        path = write_bundle(tmp_path, bundle)
        loaded = load_bundle(path)
        assert loaded["prop"] == "models"
        assert loaded["seed"] == 7
        assert VerifyCase.from_dict(loaded["case"]) == VerifyCase(m=4, k=4, n=4)

    def test_text_bundle_round_trip(self, tmp_path):
        bundle = bundle_from_violation(_text_violation(), seed=0)
        path = write_bundle(tmp_path, bundle)
        assert load_bundle(path)["text"].startswith("x,")

    def test_bundle_name_is_content_addressed(self):
        a = bundle_from_violation(_case_violation(), seed=7)
        b = bundle_from_violation(_case_violation(), seed=7)
        assert bundle_name(a) == bundle_name(b)
        other = bundle_from_violation(_text_violation(), seed=7)
        assert bundle_name(a) != bundle_name(other)

    def test_rewriting_the_same_violation_does_not_duplicate(self, tmp_path):
        bundle = bundle_from_violation(_case_violation(), seed=7)
        write_bundle(tmp_path, bundle)
        write_bundle(tmp_path, bundle)
        assert len(load_corpus(tmp_path)) == 1


class TestReplay:
    def test_replaying_a_fixed_defect_returns_no_violations(self, tmp_path):
        # The synthetic violation describes a healthy case, so on
        # healthy code the replay comes back clean — exactly the
        # regression-test semantics.
        bundle = bundle_from_violation(_case_violation(), seed=7)
        assert replay_bundle(bundle) == []

    def test_replay_corpus_walks_every_bundle(self, tmp_path):
        write_bundle(tmp_path, bundle_from_violation(_case_violation(), seed=1))
        write_bundle(tmp_path, bundle_from_violation(_text_violation(), seed=1))
        outcomes = replay_corpus(tmp_path)
        assert len(outcomes) == 2
        assert all(violations == [] for violations in outcomes.values())

    def test_empty_corpus_is_fine(self, tmp_path):
        assert load_corpus(tmp_path / "missing") == []
        assert replay_corpus(tmp_path / "missing") == {}

    def test_unknown_property_is_rejected(self):
        with pytest.raises(VerificationError, match="unknown property"):
            replay_bundle({"prop": "not-a-prop", "case": {"m": 1, "k": 1, "n": 1}})

    def test_invalid_case_is_rejected(self):
        with pytest.raises(VerificationError, match="not a valid scenario"):
            replay_bundle({"prop": "models", "case": {"m": 0, "k": 1, "n": 1}})


class TestCorruption:
    def test_unparsable_json_raises(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{ not json")
        with pytest.raises(VerificationError, match="unreadable"):
            load_bundle(bad)

    def test_missing_prop_raises(self, tmp_path):
        bad = tmp_path / "no-prop.json"
        bad.write_text(json.dumps({"case": {"m": 1, "k": 1, "n": 1}}))
        with pytest.raises(VerificationError, match="prop"):
            load_bundle(bad)

    def test_missing_input_raises(self, tmp_path):
        bad = tmp_path / "no-input.json"
        bad.write_text(json.dumps({"prop": "models"}))
        with pytest.raises(VerificationError, match="neither a case nor a text"):
            load_bundle(bad)
