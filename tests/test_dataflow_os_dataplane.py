"""Tests for the OS dedicated-output-data-plane variant (Sec. II-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.dataflow.base import AddressLayout
from repro.dataflow.factory import engine_for_gemm
from repro.dataflow.output_stationary import OutputStationaryEngine
from repro.dataflow.output_stationary_dataplane import OutputStationaryDataPlaneEngine
from repro.errors import MappingError

DIM = st.integers(1, 24)
ARR = st.integers(1, 9)


def engines(m=10, k=5, n=8, rows=4, cols=4):
    baseline = OutputStationaryEngine(m, k, n, rows, cols)
    dataplane = OutputStationaryDataPlaneEngine(m, k, n, rows, cols)
    return baseline, dataplane


class TestCycleModel:
    def test_fold_saves_exactly_the_drain(self):
        baseline, dataplane = engines()
        for base_fold, dp_fold in zip(baseline.plan.folds(), dataplane.plan.folds()):
            assert baseline.fold_cycles(base_fold) - dataplane.fold_cycles(dp_fold) == base_fold.rows

    def test_layer_saving_is_sum_of_row_mappings(self):
        baseline, dataplane = engines(m=21, k=5, n=8, rows=4, cols=4)
        saved = baseline.total_cycles() - dataplane.total_cycles()
        expected = sum(fold.rows for fold in baseline.plan.folds())
        assert saved == expected

    @given(DIM, DIM, DIM, ARR, ARR)
    @settings(max_examples=40)
    def test_always_faster_never_changes_work(self, m, k, n, rows, cols):
        baseline, dataplane = engines(m, k, n, rows, cols)
        assert dataplane.total_cycles() < baseline.total_cycles()
        assert dataplane.layer_counts() == baseline.layer_counts()


class TestTraceConsistency:
    @given(DIM, DIM, DIM, ARR, ARR)
    @settings(max_examples=30)
    def test_three_views_agree(self, m, k, n, rows, cols):
        engine = OutputStationaryDataPlaneEngine(m, k, n, rows, cols)
        layout = AddressLayout(m=m, k=k, n=n)
        for fold in engine.plan.folds():
            demand = engine.fold_demand(fold)
            assert demand.totals() == engine.fold_counts(fold)
            trace = list(engine.fold_trace(fold, layout))
            assert len(trace) == demand.cycles
            for row in trace:
                assert len(row.ifmap_addrs) == demand.ifmap_reads[row.cycle]
                assert len(row.filter_addrs) == demand.filter_reads[row.cycle]
                assert len(row.ofmap_addrs) == demand.ofmap_writes[row.cycle]

    def test_outputs_leave_as_antidiagonals(self):
        engine = OutputStationaryDataPlaneEngine(4, 3, 4, 4, 4)
        layout = AddressLayout(m=4, k=3, n=4)
        rows = list(engine.fold_trace(next(iter(engine.plan.folds())), layout))
        # First write the cycle PE (0,0) finishes: T-1 = 2.
        assert rows[2].ofmap_addrs == (layout.ofmap_addr(0, 0),)
        # Next cycle: PEs (0,1) and (1,0).
        assert set(rows[3].ofmap_addrs) == {layout.ofmap_addr(0, 1), layout.ofmap_addr(1, 0)}

    @given(DIM, DIM, DIM, ARR, ARR)
    @settings(max_examples=30)
    def test_every_output_written_once(self, m, k, n, rows, cols):
        engine = OutputStationaryDataPlaneEngine(m, k, n, rows, cols)
        layout = AddressLayout(m=m, k=k, n=n)
        written = []
        for row in engine.layer_trace(layout):
            written.extend(row.ofmap_addrs)
        assert len(written) == len(set(written)) == m * n


class TestFactory:
    def test_variant_via_factory(self):
        engine = engine_for_gemm(8, 4, 8, Dataflow.OUTPUT_STATIONARY, 4, 4,
                                 output_dataplane=True)
        assert isinstance(engine, OutputStationaryDataPlaneEngine)

    def test_variant_rejected_for_other_dataflows(self):
        with pytest.raises(MappingError, match="OS variant"):
            engine_for_gemm(8, 4, 8, Dataflow.WEIGHT_STATIONARY, 4, 4,
                            output_dataplane=True)
