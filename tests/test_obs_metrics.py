"""Metrics registry: counters, gauges, histogram percentiles, no-op path."""

import pytest

from repro.errors import InstrumentKindError, ReproError
from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


def test_disabled_registry_returns_null_singletons():
    registry = MetricsRegistry()
    assert registry.counter("a") is NULL_COUNTER
    assert registry.gauge("b") is NULL_GAUGE
    assert registry.histogram("c") is NULL_HISTOGRAM
    # nulls absorb writes without creating instruments
    registry.counter("a").add(5)
    registry.gauge("b").set(1)
    registry.histogram("c").observe(2.0)
    snap = registry.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_counter_accumulates_and_defaults_to_one():
    registry = MetricsRegistry(enabled=True)
    registry.counter("hits").add()
    registry.counter("hits").add(41)
    assert registry.snapshot()["counters"]["hits"] == 42


def test_gauge_last_write_wins():
    registry = MetricsRegistry(enabled=True)
    registry.gauge("done").set(3)
    registry.gauge("done").set(7)
    assert registry.snapshot()["gauges"]["done"] == 7


def test_instruments_are_get_or_create_by_name():
    registry = MetricsRegistry(enabled=True)
    assert registry.counter("x") is registry.counter("x")
    assert registry.counter("x") is not registry.counter("y")


def test_histogram_exact_moments():
    hist = Histogram("lat")
    for value in [1, 2, 3, 4, 5]:
        hist.observe(value)
    assert hist.count == 5
    assert hist.total == 15
    assert hist.min == 1
    assert hist.max == 5
    assert hist.mean == 3.0


def test_histogram_percentiles_interpolate():
    hist = Histogram("lat")
    for value in range(1, 101):  # 1..100
        hist.observe(value)
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 100.0
    assert hist.percentile(50) == pytest.approx(50.5)
    assert hist.percentile(90) == pytest.approx(90.1)


def test_histogram_percentile_validation():
    hist = Histogram("lat")
    assert hist.percentile(50) is None  # empty
    hist.observe(1)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_thinning_bounds_memory():
    hist = Histogram("lat")
    for value in range(3 * HISTOGRAM_SAMPLE_CAP):
        hist.observe(value)
    assert hist.count == 3 * HISTOGRAM_SAMPLE_CAP
    assert len(hist._sample) < HISTOGRAM_SAMPLE_CAP
    # sample spans the stream, not just its head
    assert max(hist._sample) > 2 * HISTOGRAM_SAMPLE_CAP
    # moments stay exact despite sampling
    assert hist.max == 3 * HISTOGRAM_SAMPLE_CAP - 1
    p50 = hist.percentile(50)
    assert p50 == pytest.approx(1.5 * HISTOGRAM_SAMPLE_CAP, rel=0.05)


def test_histogram_snapshot_keys():
    hist = Histogram("lat")
    hist.observe(10)
    snap = hist.snapshot()
    assert set(snap) == {"count", "sum", "min", "max", "mean", "p50", "p90", "p99"}
    assert snap["count"] == 1
    assert snap["p50"] == 10.0


def test_registry_snapshot_is_sorted_and_json_shaped():
    registry = MetricsRegistry(enabled=True)
    registry.counter("b").add()
    registry.counter("a").add()
    registry.histogram("h").observe(1.0)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["histograms"]["h"]["count"] == 1


def test_clear_resets_instruments():
    registry = MetricsRegistry(enabled=True)
    registry.counter("x").add(9)
    registry.clear()
    assert registry.snapshot()["counters"] == {}


@pytest.mark.parametrize("first,second", [
    ("gauge", "counter"),
    ("counter", "gauge"),
    ("counter", "histogram"),
    ("histogram", "gauge"),
])
def test_kind_collision_raises_typed_error(first, second):
    registry = MetricsRegistry(enabled=True)
    getattr(registry, first)("x")
    with pytest.raises(InstrumentKindError) as excinfo:
        getattr(registry, second)("x")
    assert first in str(excinfo.value) and second in str(excinfo.value)
    # the typed error is both a library error and a TypeError
    assert isinstance(excinfo.value, ReproError)
    assert isinstance(excinfo.value, TypeError)


def test_kind_collision_ignored_while_disabled():
    registry = MetricsRegistry()
    registry.gauge("x")
    assert registry.counter("x") is NULL_COUNTER  # no registration, no clash


def test_same_kind_reuse_never_raises():
    registry = MetricsRegistry(enabled=True)
    assert registry.gauge("x") is registry.gauge("x")


def test_handles_must_not_cache_across_enable_boundary():
    registry = MetricsRegistry()
    stale = registry.counter("x")
    registry.enable()
    assert stale is NULL_COUNTER
    registry.counter("x").add()
    assert registry.snapshot()["counters"]["x"] == 1
