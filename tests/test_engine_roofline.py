"""Tests for roofline analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import HardwareConfig
from repro.engine.roofline import roofline_point
from repro.engine.simulator import Simulator
from repro.topology.layer import GemmLayer


@pytest.fixture
def result(small_config):
    return Simulator(small_config).run_layer(GemmLayer("g", m=64, k=32, n=64))


class TestRooflinePoint:
    def test_intensity_definition(self, result):
        point = roofline_point(result, bandwidth=8.0)
        assert point.operational_intensity == pytest.approx(
            result.macs / result.dram_total_bytes
        )

    def test_achieved_definition(self, result):
        point = roofline_point(result, bandwidth=8.0)
        assert point.achieved_macs_per_cycle == pytest.approx(
            result.macs / result.total_cycles
        )

    def test_attainable_is_min_of_roofs(self, result):
        point = roofline_point(result, bandwidth=8.0)
        assert point.attainable == min(point.compute_roof, point.bandwidth_roof)

    def test_compute_roof_is_pe_count(self, result):
        point = roofline_point(result, bandwidth=8.0)
        assert point.compute_roof == result.total_pes

    def test_bound_classification_flips_with_bandwidth(self, result):
        starved = roofline_point(result, bandwidth=1e-3)
        fed = roofline_point(result, bandwidth=1e6)
        assert not starved.compute_bound
        assert fed.compute_bound

    def test_ridge_point(self, result):
        point = roofline_point(result, bandwidth=8.0)
        assert point.ridge_intensity == pytest.approx(point.compute_roof / 8.0)

    def test_rejects_bad_bandwidth(self, result):
        with pytest.raises(ValueError):
            roofline_point(result, bandwidth=0)

    @settings(max_examples=20)
    @given(st.floats(0.01, 10**6))
    def test_achieved_below_compute_roof_always(self, bandwidth):
        config = HardwareConfig(array_rows=8, array_cols=8,
                                ifmap_sram_kb=16, filter_sram_kb=16, ofmap_sram_kb=8)
        result = Simulator(config).run_layer(GemmLayer("g", m=40, k=16, n=24))
        point = roofline_point(result, bandwidth)
        # The stall-free simulator can exceed the *bandwidth* roof (it
        # assumed enough bandwidth) but never the compute roof.
        assert point.achieved_macs_per_cycle <= point.compute_roof + 1e-9
