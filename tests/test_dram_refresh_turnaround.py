"""Tests for DRAM refresh blackouts and write-to-read turnaround."""

import pytest

from repro.dram.channel import Channel
from repro.dram.request import DramAccess
from repro.dram.simulator import DramSimulator
from repro.dram.timing import DramTiming
from repro.errors import DramError

BASE = dict(num_channels=1, banks_per_channel=2, row_bytes=256, line_bytes=64)


def timing(**overrides):
    params = dict(BASE)
    params.update(overrides)
    return DramTiming(**params)


class TestTimingValidation:
    def test_refresh_disabled_by_zero(self):
        timing(t_refi=0)  # no error

    def test_rfc_must_fit_interval(self):
        with pytest.raises(DramError):
            timing(t_refi=100, t_rfc=100)

    def test_negative_wtr_rejected(self):
        with pytest.raises(DramError):
            timing(t_wtr=-1)


class TestRefresh:
    def test_request_in_blackout_is_delayed(self):
        t = timing(t_refi=1000, t_rfc=200)
        channel = Channel(t)
        # Arrives right at the refresh boundary: must wait out tRFC.
        done = channel.service([DramAccess(1000, 0)])
        assert done[0].start_cycle >= 1200

    def test_request_before_blackout_unaffected(self):
        with_refresh = Channel(timing(t_refi=10_000, t_rfc=200))
        without = Channel(timing(t_refi=0))
        a = with_refresh.service([DramAccess(5, 0)])[0]
        b = without.service([DramAccess(5, 0)])[0]
        assert a.finish_cycle == b.finish_cycle

    def test_refresh_reduces_long_stream_bandwidth(self):
        trace = [DramAccess(i * 4, i * 64) for i in range(3000)]
        busy = DramSimulator(timing(t_refi=500, t_rfc=200)).run(trace)
        idle = DramSimulator(timing(t_refi=0)).run(trace)
        assert busy.achieved_bandwidth < idle.achieved_bandwidth

    def test_skip_refresh_identity_when_disabled(self):
        channel = Channel(timing(t_refi=0))
        assert channel._skip_refresh(123456) == 123456


class TestWriteToReadTurnaround:
    def test_write_then_read_pays_penalty(self):
        base = Channel(timing(t_wtr=0, t_refi=0))
        penalized = Channel(timing(t_wtr=50, t_refi=0))
        trace = [DramAccess(0, 0, is_write=True), DramAccess(0, 128)]
        fast = base.service(list(trace))
        slow = penalized.service(list(trace))
        # The read is delayed by up to tWTR (less when another timing
        # constraint was already binding), never accelerated.
        assert fast[1].finish_cycle < slow[1].finish_cycle <= fast[1].finish_cycle + 50

    def test_read_then_read_pays_nothing(self):
        trace = [DramAccess(0, 0), DramAccess(0, 128)]
        with_wtr = Channel(timing(t_wtr=50, t_refi=0)).service(list(trace))
        without = Channel(timing(t_wtr=0, t_refi=0)).service(list(trace))
        assert with_wtr[1].finish_cycle == without[1].finish_cycle

    def test_write_then_write_pays_nothing(self):
        trace = [DramAccess(0, 0, is_write=True), DramAccess(0, 128, is_write=True)]
        with_wtr = Channel(timing(t_wtr=50, t_refi=0)).service(list(trace))
        without = Channel(timing(t_wtr=0, t_refi=0)).service(list(trace))
        assert with_wtr[1].finish_cycle == without[1].finish_cycle

    def test_interleaved_trace_slower_than_grouped(self):
        """Alternating read/write bursts pay tWTR repeatedly; the same
        requests grouped by type pay it once.  All accesses stay within
        one DRAM row so row locality is identical in both orders."""
        t = timing(t_wtr=30, t_refi=0, row_bytes=8192)
        same_row = [i * 128 for i in range(20)]  # bank 0, row 0 lines
        interleaved = [
            DramAccess(0, addr, is_write=bool(i % 2))
            for i, addr in enumerate(same_row)
        ]
        writes = [DramAccess(0, addr, is_write=True) for addr in same_row[1::2]]
        reads = [DramAccess(0, addr) for addr in same_row[0::2]]
        inter_done = Channel(t, window=1).service(interleaved)
        group_done = Channel(t, window=1).service(writes + reads)
        assert max(r.finish_cycle for r in inter_done) > max(
            r.finish_cycle for r in group_done
        )
