"""Progress telemetry with an injected clock: throughput, ETA, describe."""

import pytest

from repro.obs.progress import ProgressSnapshot, ProgressTracker


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_validation():
    with pytest.raises(ValueError):
        ProgressTracker(-1)
    with pytest.raises(ValueError):
        ProgressTracker(10, window=1)


def test_initial_snapshot_is_empty():
    clock = FakeClock()
    tracker = ProgressTracker(10, clock=clock)
    snap = tracker.snapshot()
    assert snap.done == 0
    assert snap.total == 10
    assert snap.throughput is None
    assert snap.eta is None
    assert snap.fraction == 0.0


def test_steady_rate_throughput_and_eta():
    clock = FakeClock()
    tracker = ProgressTracker(10, clock=clock)
    for _ in range(4):  # one point every 2 s
        clock.advance(2.0)
        snap = tracker.update()
    assert snap.done == 4
    assert snap.throughput == pytest.approx(0.5)
    assert snap.eta == pytest.approx(12.0)  # 6 remaining / 0.5 pt/s
    assert snap.elapsed == pytest.approx(8.0)


def test_rolling_window_tracks_recent_rate():
    clock = FakeClock()
    tracker = ProgressTracker(100, clock=clock, window=4)
    for _ in range(4):  # slow phase: 10 s per point
        clock.advance(10.0)
        tracker.update()
    for _ in range(4):  # fast phase: 1 s per point
        clock.advance(1.0)
        snap = tracker.update()
    # the window only sees the fast phase
    assert snap.throughput == pytest.approx(1.0)


def test_single_point_falls_back_to_overall_rate():
    clock = FakeClock()
    tracker = ProgressTracker(4, clock=clock)
    clock.advance(2.0)
    snap = tracker.update()
    assert snap.throughput == pytest.approx(0.5)
    assert snap.eta == pytest.approx(6.0)


def test_fraction_complete_and_empty_batch():
    clock = FakeClock()
    tracker = ProgressTracker(2, clock=clock)
    clock.advance(1.0)
    tracker.update()
    clock.advance(1.0)
    snap = tracker.update()
    assert snap.fraction == 1.0
    assert snap.eta == pytest.approx(0.0)
    assert ProgressSnapshot(0, 0, 0.0, None, None).fraction == 1.0


def test_describe_format():
    snap = ProgressSnapshot(done=12, total=100, elapsed=3.5,
                            throughput=3.4, eta=25.9)
    text = snap.describe()
    assert "12/100" in text
    assert "12.0%" in text
    assert "3.40 pt/s" in text
    assert "eta 26s" in text
    # unknown throughput omits the rate and eta parts
    bare = ProgressSnapshot(0, 100, 0.0, None, None).describe()
    assert "pt/s" not in bare and "eta" not in bare


def test_batch_update_counts_n():
    clock = FakeClock()
    tracker = ProgressTracker(10, clock=clock)
    clock.advance(1.0)
    snap = tracker.update(n=3)
    assert snap.done == 3
