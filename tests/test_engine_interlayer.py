"""Tests for inter-layer on-chip reuse."""

import pytest

from repro.config.hardware import HardwareConfig
from repro.engine.interlayer import (
    chainable,
    interlayer_savings,
    run_network_with_interlayer_reuse,
)
from repro.engine.simulator import Simulator
from repro.topology.layer import ConvLayer, GemmLayer
from repro.topology.network import Network


def chained_net() -> Network:
    """Two convs whose tensors chain exactly: 8x8x4 -> 6x6x8 -> 4x4x8."""
    first = ConvLayer(
        name="a", ifmap_h=8, ifmap_w=8, filter_h=3, filter_w=3,
        channels=4, num_filters=8, stride=1,
    )
    second = ConvLayer(
        name="b", ifmap_h=6, ifmap_w=6, filter_h=3, filter_w=3,
        channels=8, num_filters=8, stride=1,
    )
    assert first.ofmap_elements == second.raw_ifmap_elements
    return Network("chained", [first, second])


def big_config(ofmap_kb=64) -> HardwareConfig:
    return HardwareConfig(
        array_rows=8, array_cols=8,
        ifmap_sram_kb=64, filter_sram_kb=64, ofmap_sram_kb=ofmap_kb,
    )


class TestChainable:
    def test_matching_convs_chain(self):
        net = chained_net()
        assert chainable(net["a"], net["b"])

    def test_mismatched_convs_do_not_chain(self):
        first = chained_net()["a"]
        other = ConvLayer(
            name="c", ifmap_h=10, ifmap_w=10, filter_h=3, filter_w=3,
            channels=4, num_filters=8, stride=1,
        )
        assert not chainable(first, other)

    def test_gemm_chain(self):
        a = GemmLayer("a", m=8, k=16, n=32)
        b = GemmLayer("b", m=8, k=32, n=4)  # ifmap 8*32 == a's output 8*32
        assert chainable(a, b)

    def test_gemm_mismatch(self):
        a = GemmLayer("a", m=8, k=16, n=32)
        b = GemmLayer("b", m=16, k=32, n=4)
        assert not chainable(a, b)


class TestInterlayerRun:
    def test_consumer_reads_drop(self):
        simulator = Simulator(big_config())
        net = chained_net()
        plain = simulator.run_network(net)
        fused = run_network_with_interlayer_reuse(simulator, net)
        assert fused["b"].dram_read_bytes < plain["b"].dram_read_bytes

    def test_producer_writes_drop(self):
        simulator = Simulator(big_config())
        net = chained_net()
        fused = run_network_with_interlayer_reuse(simulator, net)
        assert fused["a"].dram_write_bytes == 0

    def test_last_layer_still_writes_out(self):
        simulator = Simulator(big_config())
        fused = run_network_with_interlayer_reuse(simulator, chained_net())
        assert fused["b"].dram_write_bytes > 0

    def test_cycles_untouched(self):
        simulator = Simulator(big_config())
        net = chained_net()
        plain = simulator.run_network(net)
        fused = run_network_with_interlayer_reuse(simulator, net)
        assert fused.total_cycles == plain.total_cycles

    def test_overflowing_ofmap_disables_forwarding(self):
        simulator = Simulator(big_config(ofmap_kb=1))  # working half = 512 B
        net = chained_net()  # OFMAP of layer a = 288 elements... still fits
        # Shrink further: use a layer with a big OFMAP.
        big = ConvLayer(
            name="a", ifmap_h=34, ifmap_w=34, filter_h=3, filter_w=3,
            channels=1, num_filters=8, stride=1,
        )
        consumer = ConvLayer(
            name="b", ifmap_h=32, ifmap_w=32, filter_h=3, filter_w=3,
            channels=8, num_filters=2, stride=1,
        )
        net = Network("big", [big, consumer])
        assert chainable(big, consumer)
        plain = simulator.run_network(net)
        fused = run_network_with_interlayer_reuse(simulator, net)
        assert fused["a"].dram_write_bytes == plain["a"].dram_write_bytes
        assert fused["b"].dram_read_bytes == plain["b"].dram_read_bytes

    def test_unchained_network_is_unchanged(self):
        simulator = Simulator(big_config())
        net = Network("loose", [
            GemmLayer("a", m=8, k=16, n=32),
            GemmLayer("b", m=50, k=20, n=10),
        ])
        plain = simulator.run_network(net)
        fused = run_network_with_interlayer_reuse(simulator, net)
        for name in ("a", "b"):
            assert fused[name].dram_read_bytes == plain[name].dram_read_bytes
            assert fused[name].dram_write_bytes == plain[name].dram_write_bytes


class TestSavings:
    def test_savings_fraction_in_unit_interval(self):
        simulator = Simulator(big_config())
        saving = interlayer_savings(simulator, chained_net())
        assert 0 < saving < 1

    def test_no_savings_without_chains(self):
        simulator = Simulator(big_config())
        net = Network("loose", [
            GemmLayer("a", m=8, k=16, n=32),
            GemmLayer("b", m=50, k=20, n=10),
        ])
        assert interlayer_savings(simulator, net) == pytest.approx(0.0)
