"""Export round-trips: Chrome trace-event JSON, metrics JSON, JSONL log."""

import json

import pytest

from repro._version import __version__
from repro.obs.export import (
    chrome_trace_events,
    config_hash,
    load_metrics,
    load_trace,
    run_metadata,
    write_chrome_trace,
    write_event_jsonl,
    write_metrics_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _traced() -> Tracer:
    tracer = Tracer(enabled=True)
    with tracer.span("outer", layer="TF0"):
        with tracer.span("inner"):
            pass
        tracer.event("mark", attempt=1)
    return tracer


def test_config_hash_is_deterministic_and_order_insensitive():
    a = config_hash({"x": 1, "y": 2})
    b = config_hash({"y": 2, "x": 1})
    assert a == b
    assert len(a) == 16
    assert a != config_hash({"x": 1, "y": 3})


def test_run_metadata_carries_version_and_digest():
    meta = run_metadata(config_digest="abc123", extra={"command": "run"})
    assert meta["tool"] == "scalesim-repro"
    assert meta["version"] == __version__
    assert meta["config_hash"] == "abc123"
    assert meta["command"] == "run"
    assert meta["created_unix"] > 0


def test_chrome_trace_events_schema():
    events = chrome_trace_events(_traced())
    assert len(events) == 3
    # time-ordered
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(spans) == 2 and len(instants) == 1
    for event in spans:
        assert {"name", "cat", "ph", "ts", "pid", "tid", "dur", "args"} <= set(event)
        assert event["dur"] >= 0
        assert "self_us" in event["args"]
    assert instants[0]["s"] == "t"
    assert instants[0]["args"]["attempt"] == 1


def test_write_chrome_trace_round_trip(tmp_path):
    path = write_chrome_trace(
        _traced(), tmp_path / "trace.json",
        metadata=run_metadata(config_digest="deadbeef"),
    )
    doc = json.loads(path.read_text())  # plain json.load must work
    assert doc["displayTimeUnit"] == "ms"
    assert doc["metadata"]["version"] == __version__
    assert doc["metadata"]["config_hash"] == "deadbeef"
    loaded = load_trace(path)
    assert len(loaded["traceEvents"]) == 3


def test_write_metrics_json_round_trip(tmp_path):
    registry = MetricsRegistry(enabled=True)
    registry.counter("sim.cycles").add(100)
    registry.gauge("sweep.points_done").set(3)
    registry.histogram("lat").observe(2.5)
    path = write_metrics_json(registry, tmp_path / "metrics.json")
    doc = load_metrics(path)
    assert doc["counters"]["sim.cycles"] == 100
    assert doc["gauges"]["sweep.points_done"] == 3
    assert doc["histograms"]["lat"]["count"] == 1
    assert doc["metadata"]["version"] == __version__


def test_write_event_jsonl_header_first(tmp_path):
    path = write_event_jsonl(
        _traced(), tmp_path / "events.jsonl",
        metadata=run_metadata(config_digest="cafe"),
    )
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["type"] == "header"
    assert lines[0]["config_hash"] == "cafe"
    kinds = [line["type"] for line in lines[1:]]
    assert sorted(kinds) == ["event", "span", "span"]
    span = next(line for line in lines[1:] if line["name"] == "outer")
    assert span["args"]["layer"] == "TF0"
    assert span["dur_us"] >= span["self_us"] >= 0


def test_load_trace_rejects_wrong_shape(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"counters": {}}))
    with pytest.raises(ValueError, match="traceEvents"):
        load_trace(bad)


def test_load_metrics_rejects_wrong_shape(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": []}))
    with pytest.raises(ValueError, match="counters"):
        load_metrics(bad)


def test_non_json_serializable_args_fall_back_to_repr(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("work", shape=(8, 8), obj=object()):
        pass
    path = write_chrome_trace(tracer, tmp_path / "trace.json")
    doc = load_trace(path)  # must still be valid JSON
    args = doc["traceEvents"][0]["args"]
    assert args["shape"] == [8, 8]
    assert "object" in args["obj"]


def test_exports_are_atomic_and_leave_no_temp_files(tmp_path):
    """A successful export replaces the file wholesale: valid JSON on
    disk, no stray temp files beside it."""
    tracer = _traced()
    registry = MetricsRegistry(enabled=True)
    registry.counter("sim.cycles").add(5)
    trace_path = write_chrome_trace(tracer, tmp_path / "run.trace.json")
    metrics_path = write_metrics_json(registry, tmp_path / "run.metrics.json")
    events_path = write_event_jsonl(tracer, tmp_path / "run.events.jsonl")
    load_trace(trace_path)
    load_metrics(metrics_path)
    for line in events_path.read_text().splitlines():
        json.loads(line)
    leftovers = [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []


def test_export_overwrite_is_all_or_nothing(tmp_path):
    """Re-exporting over an existing file swaps it atomically; a failed
    write never clobbers the previous complete artifact."""
    from repro.utils.atomicio import atomic_write_json, atomic_write_text

    target = tmp_path / "artifact.json"
    atomic_write_json(target, {"generation": 1})
    assert json.loads(target.read_text()) == {"generation": 1}
    atomic_write_json(target, {"generation": 2})
    assert json.loads(target.read_text()) == {"generation": 2}

    # Serialization failure happens before any bytes hit the disk: the
    # old artifact survives untouched and no temp files are left over.
    with pytest.raises(TypeError):
        atomic_write_json(target, {"bad": object()})
    assert json.loads(target.read_text()) == {"generation": 2}

    # A write failure (unwritable destination directory) leaves no
    # temp debris either.
    atomic_write_text(target, "still generation 2? no - plain text now")
    assert target.read_text().startswith("still")
    leftovers = [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
