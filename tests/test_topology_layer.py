"""Unit tests for ConvLayer and GemmLayer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology.layer import ConvLayer, GemmLayer


def conv(**overrides) -> ConvLayer:
    defaults = dict(
        name="conv", ifmap_h=8, ifmap_w=8, filter_h=3, filter_w=3,
        channels=4, num_filters=6, stride=1,
    )
    defaults.update(overrides)
    return ConvLayer(**defaults)


class TestConvGeometry:
    def test_ofmap_dims_no_stride(self):
        layer = conv()
        assert layer.ofmap_h == 6
        assert layer.ofmap_w == 6

    def test_ofmap_dims_with_stride(self):
        layer = conv(ifmap_h=9, ifmap_w=9, stride=2)
        assert layer.ofmap_h == 4  # (9-3)//2 + 1

    def test_window_size(self):
        assert conv().window_size == 3 * 3 * 4

    def test_ofmap_pixels_per_filter(self):
        assert conv().ofmap_pixels_per_filter == 36

    def test_gemm_view(self):
        layer = conv()
        assert layer.gemm_dims() == (36, 36, 6)

    def test_macs(self):
        layer = conv()
        assert layer.macs == 36 * 36 * 6

    def test_operand_element_counts(self):
        layer = conv()
        assert layer.ifmap_elements == 36 * 36
        assert layer.filter_elements == 36 * 6
        assert layer.ofmap_elements == 36 * 6

    def test_raw_tensor_footprints(self):
        layer = conv()
        assert layer.raw_ifmap_elements == 8 * 8 * 4
        assert layer.raw_filter_elements == 3 * 3 * 4 * 6

    def test_1x1_conv(self):
        layer = conv(filter_h=1, filter_w=1)
        assert layer.gemm_dims() == (64, 4, 6)

    def test_stride_larger_than_kernel(self):
        layer = conv(ifmap_h=10, ifmap_w=10, filter_h=2, filter_w=2, stride=4)
        assert layer.ofmap_h == 3  # (10-2)//4 + 1


class TestConvValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(TopologyError):
            conv(name="")

    def test_rejects_zero_channels(self):
        with pytest.raises(TopologyError):
            conv(channels=0)

    def test_rejects_filter_larger_than_ifmap(self):
        with pytest.raises(TopologyError, match="larger than IFMAP"):
            conv(filter_h=9)

    def test_rejects_non_integer(self):
        with pytest.raises(TopologyError):
            conv(stride=1.5)

    def test_error_names_the_layer(self):
        with pytest.raises(TopologyError, match="'conv'"):
            conv(num_filters=-1)


class TestFullyConnected:
    def test_fc_shape(self):
        layer = ConvLayer.fully_connected("fc", inputs=100, outputs=10)
        assert layer.is_fully_connected
        assert layer.gemm_dims() == (1, 100, 10)

    def test_fc_is_matrix_vector(self):
        layer = ConvLayer.fully_connected("fc", 100, 10)
        assert layer.macs == 1000

    def test_conv_is_not_fc(self):
        assert not conv().is_fully_connected

    def test_filter_covering_ifmap_is_fc(self):
        layer = conv(filter_h=8, filter_w=8)
        assert layer.is_fully_connected
        assert layer.gemm_m == 1


class TestGemmLayer:
    def test_dims(self):
        layer = GemmLayer("g", m=5, k=7, n=3)
        assert layer.gemm_dims() == (5, 7, 3)
        assert layer.macs == 105

    def test_rejects_zero_dim(self):
        with pytest.raises(TopologyError):
            GemmLayer("g", m=0, k=1, n=1)

    def test_rejects_empty_name(self):
        with pytest.raises(TopologyError):
            GemmLayer("", m=1, k=1, n=1)

    def test_as_conv_preserves_gemm_dims(self):
        layer = GemmLayer("g", m=5, k=7, n=3)
        assert layer.as_conv().gemm_dims() == layer.gemm_dims()

    @given(st.integers(1, 300), st.integers(1, 300), st.integers(1, 300))
    def test_as_conv_always_equivalent(self, m, k, n):
        layer = GemmLayer("g", m=m, k=k, n=n)
        lowered = layer.as_conv()
        assert lowered.gemm_dims() == (m, k, n)
        assert lowered.macs == layer.macs
