"""Unit tests for the top-level DRAM simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.request import DramAccess
from repro.dram.simulator import DramSimulator, DramStats
from repro.dram.timing import DramTiming
from repro.errors import DramError


def sequential_trace(count, line=64, start_cycle=0, stride=None):
    stride = stride or line
    return [DramAccess(start_cycle + i, i * stride) for i in range(count)]


class TestRun:
    def test_counts(self):
        sim = DramSimulator()
        stats = sim.run(sequential_trace(10))
        assert stats.num_requests == 10
        assert stats.num_reads == 10
        assert stats.num_writes == 0

    def test_write_accounting(self):
        sim = DramSimulator()
        trace = [DramAccess(0, 0, is_write=True), DramAccess(1, 64)]
        stats = sim.run(trace)
        assert stats.num_writes == 1
        assert stats.num_reads == 1

    def test_bytes_moved(self):
        sim = DramSimulator()
        assert sim.run(sequential_trace(10)).bytes_moved == 10 * 64

    def test_empty_trace_rejected(self):
        with pytest.raises(DramError):
            DramSimulator().run([])

    def test_sequential_stream_has_high_hit_rate(self):
        timing = DramTiming(num_channels=1, banks_per_channel=1)
        stats = DramSimulator(timing).run(sequential_trace(200))
        assert stats.row_hit_rate > 0.9

    def test_random_stream_has_lower_hit_rate(self, rng):
        timing = DramTiming(num_channels=1, banks_per_channel=1)
        addrs = rng.integers(0, 2**26, 200) * 64
        trace = [DramAccess(i, int(a)) for i, a in enumerate(addrs)]
        random_stats = DramSimulator(timing).run(trace)
        seq_stats = DramSimulator(timing).run(sequential_trace(200))
        assert random_stats.row_hit_rate < seq_stats.row_hit_rate

    def test_bandwidth_bounded_by_peak(self):
        timing = DramTiming()
        stats = DramSimulator(timing).run(sequential_trace(500))
        assert stats.achieved_bandwidth <= timing.peak_bandwidth + 1e-9

    def test_more_channels_more_bandwidth(self):
        one = DramSimulator(DramTiming(num_channels=1)).run(sequential_trace(400))
        four = DramSimulator(DramTiming(num_channels=4)).run(sequential_trace(400))
        assert four.achieved_bandwidth > one.achieved_bandwidth

    def test_sustainable_check(self):
        sim = DramSimulator(DramTiming())
        assert sim.sustainable(1.0)
        assert not sim.sustainable(10**6)


class TestStats:
    def test_span_never_zero(self):
        stats = DramStats(
            num_requests=1, num_reads=1, num_writes=0, first_cycle=5,
            last_finish_cycle=5, total_latency=0, row_hits=0, bytes_moved=64,
        )
        assert stats.span_cycles == 1

    def test_avg_latency(self):
        stats = DramStats(
            num_requests=2, num_reads=2, num_writes=0, first_cycle=0,
            last_finish_cycle=100, total_latency=60, row_hits=1, bytes_moved=128,
        )
        assert stats.avg_latency == 30
        assert stats.row_hit_rate == 0.5

    @settings(max_examples=20)
    @given(st.integers(1, 300), st.integers(0, 1000))
    def test_latency_positive_for_any_arrival_pattern(self, count, start):
        stats = DramSimulator().run(sequential_trace(count, start_cycle=start))
        assert stats.avg_latency > 0
        assert stats.last_finish_cycle > start
