"""Sweep compiler: bit-identity with the scalar search and pruned sweeps."""

import functools
import itertools

import pytest

from repro import obs
from repro.analytical.search import best_scaleout, best_scaleup, search_space
from repro.config.hardware import Dataflow
from repro.config.presets import paper_scaling_config
from repro.engine.scaleout import simulate
from repro.perf.compiler import (
    DEFAULT_PRUNE_BAND,
    DEFAULT_TOP_K,
    best_scaleout_compiled,
    best_scaleup_compiled,
    compile_search_space,
    frontier_indices,
    simulate_candidates,
)
from repro.serve.jobs import sweep_estimate, sweep_measure
from repro.sweep import run_sweep, run_sweep_report
from repro.workloads.language import language_layer
from repro.workloads.registry import get_workload

BUDGETS = (2**10, 2**12)


@pytest.fixture
def tf0():
    return language_layer("TF0")


@pytest.fixture
def resnet_layer():
    return get_workload("resnet50")["CB2a_3"]


class TestBitIdentity:
    """The compiled space materializes the scalar search exactly."""

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_candidates_equal_scalar_search_space(self, tf0, dataflow):
        for budget in BUDGETS:
            scalar = search_space(tf0, budget, dataflow=dataflow)
            compiled = compile_search_space(
                tf0, budget, dataflow=dataflow
            ).candidates()
            assert compiled == scalar

    def test_candidates_equal_scalar_on_conv(self, resnet_layer):
        for budget in BUDGETS:
            scalar = search_space(resnet_layer, budget)
            compiled = compile_search_space(resnet_layer, budget).candidates()
            assert compiled == scalar

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_best_scaleup_identical(self, tf0, dataflow):
        for budget in BUDGETS:
            assert best_scaleup_compiled(
                tf0, budget, dataflow=dataflow
            ) == best_scaleup(tf0, budget, dataflow=dataflow)

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_best_scaleout_identical(self, tf0, resnet_layer, dataflow):
        for layer in (tf0, resnet_layer):
            for budget in BUDGETS:
                assert best_scaleout_compiled(
                    layer, budget, dataflow=dataflow
                ) == best_scaleout(layer, budget, dataflow=dataflow)

    def test_points_counter_accounts_space(self, tf0):
        obs.metrics.enable()
        before = obs.metrics.snapshot()["counters"].get("perf.compiler.points", 0)
        space = compile_search_space(tf0, 2**10)
        after = obs.metrics.snapshot()["counters"]["perf.compiler.points"]
        assert after - before == len(space)


class TestScaleoutTraffic:
    """Per-grid shape-class traffic matches the engine exactly."""

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_traffic_and_cycles_match_engine(self, tf0, dataflow):
        space = compile_search_space(tf0, 2**10, dataflow=dataflow)
        traffic = space.scaleout_traffic()
        for index in range(len(space)):
            cand = space.candidate(index)
            config = paper_scaling_config(
                cand.array_rows,
                cand.array_cols,
                cand.partition_rows,
                cand.partition_cols,
                dataflow=dataflow,
            )
            result = simulate(config, tf0)
            assert int(traffic.cycles[index]) == result.total_cycles
            assert int(traffic.read_bytes[index]) == result.dram_read_bytes
            assert int(traffic.write_bytes[index]) == result.dram_write_bytes


class TestFrontier:
    def test_zero_band_keeps_all_optima(self):
        # Ties with the best score always survive, even beyond top_k.
        assert frontier_indices([5.0, 1.0, 3.0, 1.0], top_k=1, prune_band=0.0) == [1, 3]

    def test_top_k_keeps_stable_smallest(self):
        assert frontier_indices([5.0, 1.0, 3.0, 2.0], top_k=1, prune_band=0.0) == [1]

    def test_band_keeps_near_ties(self):
        keep = frontier_indices([100.0, 109.0, 111.0], top_k=1, prune_band=0.1)
        assert keep == [0, 1]

    def test_union_of_top_k_and_band(self):
        keep = frontier_indices([10.0, 1.0, 2.0, 50.0], top_k=3, prune_band=0.0)
        assert keep == [0, 1, 2]

    def test_empty_scores(self):
        assert frontier_indices([], top_k=4, prune_band=0.5) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            frontier_indices([1.0], top_k=-1)
        with pytest.raises(ValueError):
            frontier_indices([1.0], prune_band=-0.1)

    @pytest.mark.parametrize("dataflow", list(Dataflow))
    def test_frontier_contains_engine_optimum(self, tf0, resnet_layer, dataflow):
        """Default band keeps the engine-optimal config for the paper's
        workloads (TF0 and a ResNet-50 slice) at every tested budget."""
        for layer in (tf0, resnet_layer):
            for budget in BUDGETS:
                space = compile_search_space(layer, budget, dataflow=dataflow)
                frontier = space.frontier(
                    top_k=DEFAULT_TOP_K, prune_band=DEFAULT_PRUNE_BAND
                )
                results = simulate_candidates(layer, space, frontier)
                best_frontier = min(cycles for _, cycles in results)
                exact_best = min(
                    simulate(
                        paper_scaling_config(
                            cand.array_rows,
                            cand.array_cols,
                            cand.partition_rows,
                            cand.partition_cols,
                            dataflow=dataflow,
                        ),
                        layer,
                    ).total_cycles
                    for cand in space.candidates()
                )
                assert best_frontier == exact_best

    def test_simulate_candidates_counters(self, tf0):
        obs.metrics.enable()
        space = compile_search_space(tf0, 2**10)
        before = dict(obs.metrics.snapshot()["counters"])
        results = simulate_candidates(tf0, space, [0, 1])
        after = obs.metrics.snapshot()["counters"]
        assert len(results) == 2
        assert after["perf.compiler.simulated"] - before.get(
            "perf.compiler.simulated", 0
        ) == 2
        assert after["perf.compiler.pruned"] - before.get(
            "perf.compiler.pruned", 0
        ) == len(space) - 2


class TestPrunedSweep:
    """run_sweep's estimator contract: schema, exactness, resume."""

    MACS = 2**12
    PARTITIONS = [1, 4, 16, 64]

    def _measure(self, layer):
        return functools.partial(sweep_measure, layer=layer, macs=self.MACS)

    def _estimate(self, layer):
        return functools.partial(sweep_estimate, layer=layer, macs=self.MACS)

    def test_estimator_is_exact_on_cycles(self, tf0):
        for partitions in self.PARTITIONS:
            exact = sweep_measure(partitions, layer=tf0, macs=self.MACS)
            row, score = sweep_estimate(partitions, layer=tf0, macs=self.MACS)
            assert row["cycles"] == exact["cycles"]
            assert row["avg_bw"] == exact["avg_bw"]
            assert score == float(exact["cycles"])

    def test_pruned_rows_keep_grid_shape(self, tf0):
        rows, report = run_sweep_report(
            self._measure(tf0),
            estimator=self._estimate(tf0),
            top_k=1,
            prune_band=0.0,
            partitions=self.PARTITIONS,
        )
        assert [row["partitions"] for row in rows] == self.PARTITIONS
        estimated = [row for row in rows if row.get("status") == "estimated"]
        simulated = [row for row in rows if "status" not in row]
        assert len(estimated) == 3 and len(simulated) == 1
        assert report.estimated == 3
        # The simulated survivor is the analytically fastest point.
        scores = {
            p: sweep_estimate(p, layer=tf0, macs=self.MACS)[1]
            for p in self.PARTITIONS
        }
        assert simulated[0]["partitions"] == min(scores, key=scores.get)
        # Estimated rows still carry the full measurement schema.
        for row in estimated:
            assert {"array", "cycles", "avg_bw", "peak_bw"} <= set(row)

    def test_exact_flag_is_byte_identical_to_no_estimator(self, tf0):
        plain = run_sweep(self._measure(tf0), partitions=self.PARTITIONS)
        exact = run_sweep(
            self._measure(tf0),
            estimator=self._estimate(tf0),
            top_k=1,
            prune_band=0.0,
            exact=True,
            partitions=self.PARTITIONS,
        )
        assert exact == plain

    def test_knobs_without_estimator_rejected(self, tf0):
        with pytest.raises(ValueError, match="estimator"):
            run_sweep(self._measure(tf0), top_k=2, partitions=self.PARTITIONS)

    def test_estimated_points_reexecute_under_exact_resume(self, tf0, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        pruned = run_sweep(
            self._measure(tf0),
            estimator=self._estimate(tf0),
            top_k=1,
            prune_band=0.0,
            checkpoint=journal,
            partitions=self.PARTITIONS,
        )
        assert sum(1 for row in pruned if row.get("status") == "estimated") == 3
        # Estimated journal entries are not "completed": an --exact
        # resume re-executes them, replaying only the exact frontier
        # point, and the final rows match a from-scratch exact sweep.
        resumed, report = run_sweep_report(
            self._measure(tf0),
            exact=True,
            checkpoint=journal,
            partitions=self.PARTITIONS,
        )
        assert resumed == run_sweep(self._measure(tf0), partitions=self.PARTITIONS)
        assert report.cached == 1

    def test_estimate_misalignment_rejected(self, tf0):
        from repro.robust.executor import execute_grid

        with pytest.raises(ValueError, match="align"):
            execute_grid(
                lambda **kw: [kw],
                [{"partitions": 1}, {"partitions": 4}],
                estimates=[None],
            )


class TestCliSweepFlags:
    def test_pruned_sweep_marks_analytical_rows(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep",
                    "--layer",
                    "TF0",
                    "--macs",
                    "4096",
                    "--top-k",
                    "1",
                    "--prune-band",
                    "0.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "~ analytical" in out

    def test_exact_sweep_output_identical_to_default(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--layer", "TF0", "--macs", "4096"]) == 0
        default_out = capsys.readouterr().out
        assert (
            main(["sweep", "--layer", "TF0", "--macs", "4096", "--exact"]) == 0
        )
        exact_out = capsys.readouterr().out
        assert exact_out == default_out
        assert "~ analytical" not in exact_out
