"""The supervised worker pool: crash recovery, guards, graceful stop.

The contract under test is the PR-4 determinism guarantee *under
chaos*: a 2-worker sweep whose workers are killed, frozen or starved by
injected process-level faults must still produce rows, CSVs, reports
and checkpoint journals identical to a clean serial run (journals
modulo wall-clock durations), and an operator interrupt must drain +
flush so ``--resume`` continues exactly.

All point callables live at module level so they pickle by reference.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro import obs
from repro.errors import SupervisorExhaustedError, WorkerCrashError
from repro.robust.checkpoint import CheckpointStore
from repro.robust.faults import WorkerFault, inject_worker_faults
from repro.robust.policy import ExecutionPolicy
from repro.robust.report import STATUS_FAILED, STATUS_OK, STATUS_SKIPPED
from repro.robust.supervisor import SupervisorPolicy, process_rss_mb
from repro.sweep import run_sweep, run_sweep_report, sweep_to_csv

WORKERS = 2

#: A quick supervisor for crash tests: fast polls, few restarts.
FAST = SupervisorPolicy(poll_interval=0.02)


def square(x: int) -> dict:
    return {"sq": x * x, "cube": x * x * x}


def crash_always(x: int) -> dict:
    if x == 2:
        os._exit(1)
    return {"sq": x * x, "cube": x * x * x}


def _journal_entries(path):
    entries = [json.loads(line) for line in path.read_text().splitlines()]
    # Durations are wall-clock and legitimately differ run to run;
    # everything else must match exactly.
    for entry in entries:
        entry.pop("duration", None)
    return entries


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------

class TestCrashRecovery:
    def test_killed_worker_sweep_matches_serial_byte_for_byte(self, tmp_path):
        xs = list(range(10))
        serial_journal = tmp_path / "serial.jsonl"
        chaos_journal = tmp_path / "chaos.jsonl"
        serial = run_sweep(square, checkpoint=serial_journal, x=xs)

        faulty = inject_worker_faults(
            square,
            WorkerFault(kind="kill", marker_dir=str(tmp_path), when={"x": 4}),
        )
        chaos = run_sweep(
            faulty, checkpoint=chaos_journal, x=xs, workers=WORKERS, supervisor=FAST
        )
        assert chaos == serial
        serial_csv = sweep_to_csv(serial, tmp_path / "serial.csv")
        chaos_csv = sweep_to_csv(chaos, tmp_path / "chaos.csv")
        assert chaos_csv.read_bytes() == serial_csv.read_bytes()
        assert _journal_entries(chaos_journal) == _journal_entries(serial_journal)

    def test_two_distinct_crashes_recovered(self, tmp_path):
        xs = list(range(8))
        serial = run_sweep(square, x=xs)
        faulty = inject_worker_faults(
            square,
            WorkerFault(kind="kill", marker_dir=str(tmp_path), when={"x": 1}),
            WorkerFault(kind="kill", marker_dir=str(tmp_path), when={"x": 6}),
        )
        chaos = run_sweep(faulty, x=xs, workers=WORKERS, supervisor=FAST)
        assert chaos == serial

    def test_restart_counters_accounted(self, tmp_path):
        obs.reset()
        obs.metrics.enable()
        try:
            faulty = inject_worker_faults(
                square,
                WorkerFault(kind="kill", marker_dir=str(tmp_path), when={"x": 1}),
            )
            run_sweep(faulty, x=[1, 2, 3], workers=WORKERS, supervisor=FAST)
            counters = obs.metrics.snapshot()["counters"]
            assert counters.get("supervisor.restarts", 0) >= 1
            assert counters.get("supervisor.crashes", 0) >= 1
        finally:
            obs.reset()


# ----------------------------------------------------------------------
# Chaos telemetry: a killed worker must still leave coherent evidence
# ----------------------------------------------------------------------

class TestChaosTelemetry:
    def test_killed_worker_leaves_valid_trace_and_flight_dump(self, tmp_path):
        from repro.obs.export import write_chrome_trace
        from repro.obs.flight import FlightRecorder

        obs.reset()
        recorder = FlightRecorder(tmp_path / "flight")
        recorder.arm(obs.trace, obs.metrics)
        obs.metrics.enable()
        try:
            faulty = inject_worker_faults(
                square,
                WorkerFault(kind="kill", marker_dir=str(tmp_path), when={"x": 3}),
            )
            rows = run_sweep(
                faulty, x=list(range(6)), workers=WORKERS, supervisor=FAST
            )
            assert [row["sq"] for row in rows] == [x * x for x in range(6)]

            # the killed point's breadcrumb was attributed in the trace
            crashes = [
                record for record in obs.trace.records()
                if record.name == "supervisor.worker_crash"
            ]
            assert crashes, "no worker_crash breadcrumb recorded"
            assert any("3" in str(c.args.get("key")) for c in crashes)

            # the exported Chrome trace is valid JSON with the breadcrumb
            trace_path = write_chrome_trace(obs.trace, tmp_path / "chaos.json")
            exported = json.loads(trace_path.read_text())
            names = {event["name"] for event in exported["traceEvents"]}
            assert "supervisor.worker_crash" in names
            assert "robust.grid_point" in names
            for event in exported["traceEvents"]:
                assert {"name", "ph", "ts"} <= set(event)

            # the flight dump carries the same story, sorted and loadable
            dump_path = recorder.dump("chaos drill", exit_code=13)
            doc = json.loads(dump_path.read_text())
            events = doc["traceEvents"]
            assert events == sorted(events, key=lambda event: event["ts"])
            crash = next(
                event for event in events
                if event["name"] == "supervisor.worker_crash"
            )
            assert "3" in str(crash["args"]["key"])
            assert doc["counters"].get("supervisor.crashes", 0) >= 1
            assert any(
                "worker crash" in record["message"] for record in doc["logs"]
            )
        finally:
            recorder.disarm()
            obs.reset()


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------

class TestQuarantine:
    def test_deterministic_crasher_quarantined_in_collect_mode(self):
        rows, report = run_sweep_report(
            crash_always,
            policy=ExecutionPolicy(mode="collect"),
            x=[1, 2, 3],
            workers=WORKERS,
            supervisor=FAST,
        )
        assert [r.status for r in report.records] == [
            STATUS_OK, STATUS_FAILED, STATUS_OK,
        ]
        failed = report.records[1]
        assert "quarantined" in failed.error
        assert isinstance(failed.exception, WorkerCrashError)
        assert rows[0] == {"x": 1, "sq": 1, "cube": 1}
        assert rows[2] == {"x": 3, "sq": 9, "cube": 27}

    def test_quarantine_counts_against_max_failures(self):
        _, report = run_sweep_report(
            crash_always,
            policy=ExecutionPolicy(mode="collect", max_failures=1),
            x=[1, 2, 3, 4],
            workers=WORKERS,
            supervisor=FAST,
        )
        statuses = [r.status for r in report.records]
        assert statuses[1] == STATUS_FAILED
        assert STATUS_SKIPPED in statuses[2:]

    def test_fail_fast_raises_worker_crash_error(self):
        with pytest.raises(WorkerCrashError, match="quarantined"):
            run_sweep(
                crash_always,
                policy=ExecutionPolicy(mode="fail_fast"),
                x=[1, 2, 3],
                workers=WORKERS,
                supervisor=SupervisorPolicy(quarantine_after=1, poll_interval=0.02),
            )

    def test_exhausted_supervisor_aborts(self):
        with pytest.raises(SupervisorExhaustedError, match="max_restarts"):
            run_sweep(
                crash_always,
                x=[2],
                workers=WORKERS,
                supervisor=SupervisorPolicy(max_restarts=0, poll_interval=0.02),
            )


# ----------------------------------------------------------------------
# Resource guards (enforced inside the worker)
# ----------------------------------------------------------------------

class TestResourceGuards:
    def test_wall_clock_ceiling_kills_runaway_point(self, tmp_path):
        slow = inject_worker_faults(
            square,
            WorkerFault(
                kind="sleep", marker_dir=str(tmp_path), when={"x": 1},
                times=10, hold_seconds=30.0,
            ),
        )
        start = time.monotonic()
        _, report = run_sweep_report(
            slow,
            policy=ExecutionPolicy(mode="collect"),
            x=[1, 2],
            workers=WORKERS,
            supervisor=SupervisorPolicy(point_timeout=0.4, poll_interval=0.02),
        )
        assert time.monotonic() - start < 20.0  # killed, not waited out
        assert [r.status for r in report.records] == [STATUS_FAILED, STATUS_OK]
        assert "wall_clock" in report.records[0].error

    def test_rss_ceiling_kills_memory_hog(self, tmp_path):
        ceiling = process_rss_mb() + 150.0
        hog = inject_worker_faults(
            square,
            WorkerFault(
                kind="hog", marker_dir=str(tmp_path), when={"x": 1},
                times=10, hog_mb=500, hold_seconds=30.0,
            ),
        )
        _, report = run_sweep_report(
            hog,
            policy=ExecutionPolicy(mode="collect"),
            x=[1, 2],
            workers=WORKERS,
            supervisor=SupervisorPolicy(point_rss_mb=ceiling, poll_interval=0.02),
        )
        assert [r.status for r in report.records] == [STATUS_FAILED, STATUS_OK]
        assert "rss" in report.records[0].error

    def test_unguarded_points_pay_no_watchdog(self):
        # No ceilings configured -> no watchdog thread, plain execution.
        serial = run_sweep(square, x=[1, 2, 3])
        assert run_sweep(square, x=[1, 2, 3], workers=WORKERS) == serial


# ----------------------------------------------------------------------
# Hung-worker heartbeats
# ----------------------------------------------------------------------

class TestHeartbeat:
    def test_frozen_worker_detected_and_sweep_completes(self, tmp_path):
        serial = run_sweep(square, x=[1, 2, 3, 4])
        frozen = inject_worker_faults(
            square,
            WorkerFault(
                kind="freeze", marker_dir=str(tmp_path), when={"x": 2},
                hold_seconds=60.0,
            ),
        )
        start = time.monotonic()
        rows = run_sweep(
            frozen,
            x=[1, 2, 3, 4],
            workers=WORKERS,
            supervisor=SupervisorPolicy(heartbeat_timeout=0.6, poll_interval=0.05),
        )
        assert rows == serial
        assert time.monotonic() - start < 30.0  # killed the frozen worker


# ----------------------------------------------------------------------
# Graceful shutdown (SIGINT -> drain + flush + exit 12 + exact resume)
# ----------------------------------------------------------------------

INTERRUPT_SCRIPT = textwrap.dedent(
    """
    import sys

    from repro.cli import exit_code_for
    from repro.errors import ReproError
    from repro.robust.supervisor import SupervisorPolicy
    from repro.sweep import run_sweep


    def slow_square(x):
        import time
        time.sleep(0.4)
        return {"sq": x * x, "cube": x * x * x}


    if __name__ == "__main__":
        journal = sys.argv[1]
        try:
            run_sweep(
                slow_square,
                checkpoint=journal,
                workers=2,
                supervisor=SupervisorPolicy(poll_interval=0.02),
                x=list(range(10)),
            )
        except ReproError as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            sys.exit(exit_code_for(exc))
        sys.exit(0)
    """
)


class TestGracefulShutdown:
    def test_sigint_flushes_journal_exits_12_and_resumes_exactly(self, tmp_path):
        script = tmp_path / "interruptible_sweep.py"
        script.write_text(INTERRUPT_SCRIPT)
        journal = tmp_path / "sweep.jsonl"
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, str(script), str(journal)],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        # Let a couple of points land in the journal, then interrupt.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if journal.exists() and len(journal.read_text().splitlines()) >= 2:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("journal never accumulated entries")
        proc.send_signal(signal.SIGINT)
        stderr = proc.communicate(timeout=30)[1]

        assert proc.returncode == 12, stderr
        assert "interrupted" in stderr
        # The flushed journal is valid JSONL with only completed points.
        entries = [json.loads(line) for line in journal.read_text().splitlines()]
        assert entries and all(entry["status"] == "ok" for entry in entries)
        assert len(entries) < 10  # genuinely interrupted mid-sweep

        # --resume semantics: the journal replays, the sweep completes,
        # and the rows equal a clean uninterrupted run.
        def slow_square(x):
            return {"sq": x * x, "cube": x * x * x}

        store = CheckpointStore(journal)
        rows, report = run_sweep_report(
            slow_square, checkpoint=store, x=list(range(10))
        )
        assert rows == [{"x": x, "sq": x * x, "cube": x * x * x} for x in range(10)]
        cached = [r for r in report.records if r.status == "cached"]
        assert len(cached) == len(entries)


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------

class TestSupervisorPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"point_timeout": 0},
            {"point_timeout": -1.0},
            {"point_rss_mb": 0},
            {"quarantine_after": 0},
            {"max_restarts": -1},
            {"heartbeat_timeout": 0},
            {"poll_interval": 0},
        ],
        ids=lambda kw: next(iter(kw)),
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kwargs)

    def test_defaults_are_valid_and_unguarded(self):
        sup = SupervisorPolicy()
        assert not sup.guards_worker
        assert SupervisorPolicy(point_timeout=1.0).guards_worker
        assert SupervisorPolicy(point_rss_mb=64.0).guards_worker
        assert SupervisorPolicy(heartbeat_timeout=1.0).guards_worker

    def test_policy_is_picklable(self):
        import pickle

        sup = SupervisorPolicy(point_timeout=2.0, point_rss_mb=512.0)
        assert pickle.loads(pickle.dumps(sup)) == sup


class TestWorkerFaultValidation:
    def test_bad_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="kind"):
            WorkerFault(kind="explode", marker_dir=str(tmp_path))

    def test_markers_survive_worker_restarts(self, tmp_path):
        fault = WorkerFault(kind="kill", marker_dir=str(tmp_path), when={"x": 1})
        assert fault.claim({"x": 1}) is True   # first firing claims the marker
        assert fault.claim({"x": 1}) is False  # any later process sees it spent
        assert fault.matches({"x": 2}) is False


class TestScratchReaping:
    """Startup hygiene: abandoned breadcrumb dirs are aged out."""

    def _aged_dir(self, root, name, age_seconds):
        scratch = root / name
        scratch.mkdir()
        (scratch / "started-0.json").write_text("{}")
        stamp = time.time() - age_seconds
        for path in (scratch / "started-0.json", scratch):
            os.utime(path, (stamp, stamp))
        return scratch

    def test_stale_dirs_reaped_fresh_kept(self, tmp_path):
        from repro.robust.supervisor import SCRATCH_PREFIX, reap_stale_scratch

        stale = self._aged_dir(tmp_path, f"{SCRATCH_PREFIX}dead", 7200)
        fresh = self._aged_dir(tmp_path, f"{SCRATCH_PREFIX}live", 10)
        unrelated = self._aged_dir(tmp_path, "someone-elses-dir", 7200)

        assert reap_stale_scratch(max_age_seconds=3600, root=tmp_path) == 1
        assert not stale.exists()
        assert fresh.exists()
        assert unrelated.exists()

    def test_live_run_with_fresh_heartbeat_survives(self, tmp_path):
        from repro.robust.supervisor import SCRATCH_PREFIX, reap_stale_scratch

        # The dir itself is old, but a worker heartbeat just refreshed.
        scratch = self._aged_dir(tmp_path, f"{SCRATCH_PREFIX}busy", 7200)
        (scratch / "hb-0.json").write_text("{}")  # fresh mtime

        assert reap_stale_scratch(max_age_seconds=3600, root=tmp_path) == 0
        assert scratch.exists()

    def test_reaping_is_counted(self, tmp_path):
        from repro.robust.supervisor import SCRATCH_PREFIX, reap_stale_scratch

        self._aged_dir(tmp_path, f"{SCRATCH_PREFIX}one", 7200)
        self._aged_dir(tmp_path, f"{SCRATCH_PREFIX}two", 7200)
        obs.reset()
        obs.metrics.enable()
        try:
            reap_stale_scratch(max_age_seconds=3600, root=tmp_path)
            counters = obs.metrics.snapshot()["counters"]
        finally:
            obs.reset()
        assert counters.get("supervisor.scratch_reaped") == 2

    def test_supervised_run_sweeps_siblings(self, tmp_path, monkeypatch):
        from repro.robust.supervisor import SCRATCH_PREFIX

        monkeypatch.setattr("tempfile.tempdir", str(tmp_path))
        stale = self._aged_dir(tmp_path, f"{SCRATCH_PREFIX}crashed", 2 * 86400)
        rows = run_sweep(square, x=[1, 2], workers=WORKERS, supervisor=FAST)
        assert len(rows) == 2
        assert not stale.exists()
        assert not list(tmp_path.glob(f"{SCRATCH_PREFIX}*"))  # own dir removed
