"""Direct unit tests for LayerResult / RunResult records."""

import pytest

from repro.config.hardware import Dataflow
from repro.dataflow.base import SramCounts
from repro.engine.results import LayerResult, RunResult


def make_layer(name="l", cycles=100, macs=5000, parts=(1, 1)) -> LayerResult:
    return LayerResult(
        layer_name=name,
        dataflow=Dataflow.OUTPUT_STATIONARY,
        array_rows=8,
        array_cols=8,
        partition_rows=parts[0],
        partition_cols=parts[1],
        total_cycles=cycles,
        macs=macs,
        mapping_utilization=0.9,
        compute_utilization=0.8,
        sram=SramCounts(ifmap_reads=10, filter_reads=20, ofmap_writes=5),
        dram_read_bytes=1000,
        dram_write_bytes=200,
        cold_start_bytes=50,
        avg_read_bw=10.0,
        avg_write_bw=2.0,
        peak_read_bw=20.0,
        peak_write_bw=4.0,
        word_bytes=1,
        row_folds=2,
        col_folds=3,
    )


class TestLayerResult:
    def test_total_pes_includes_partitions(self):
        assert make_layer(parts=(2, 4)).total_pes == 8 * 8 * 8

    def test_dram_total(self):
        assert make_layer().dram_total_bytes == 1200

    def test_bw_aggregates(self):
        result = make_layer()
        assert result.avg_total_bw == 12.0
        assert result.peak_total_bw == 24.0

    def test_as_row_fields(self):
        row = make_layer(parts=(2, 2)).as_row()
        assert row["layer"] == "l"
        assert row["partitions"] == "2x2"
        assert row["folds"] == 6
        assert row["dataflow"] == "os"

    def test_frozen(self):
        with pytest.raises(Exception):
            make_layer().total_cycles = 0


class TestRunResult:
    def run(self):
        return RunResult(
            network_name="net",
            config_description="cfg",
            layers=[make_layer("a", cycles=100, macs=5000),
                    make_layer("b", cycles=50, macs=2500)],
        )

    def test_len_iter_index(self):
        run = self.run()
        assert len(run) == 2
        assert [layer.layer_name for layer in run] == ["a", "b"]
        assert run[1].layer_name == "b"
        assert run["a"].total_cycles == 100

    def test_unknown_layer(self):
        with pytest.raises(KeyError, match="no result"):
            self.run()["zzz"]

    def test_totals(self):
        run = self.run()
        assert run.total_cycles == 150
        assert run.total_macs == 7500
        assert run.total_dram_read_bytes == 2000
        assert run.total_dram_write_bytes == 400

    def test_total_sram(self):
        assert self.run().total_sram == SramCounts(20, 40, 10)

    def test_overall_utilization(self):
        run = self.run()
        assert run.overall_compute_utilization == pytest.approx(7500 / (64 * 150))

    def test_empty_run_utilization(self):
        empty = RunResult(network_name="n", config_description="c", layers=[])
        assert empty.overall_compute_utilization == 0.0

    def test_layers_stored_as_tuple(self):
        assert isinstance(self.run().layers, tuple)
