"""CLI tests for the recommend, validate and reproduce subcommands."""

import pytest

from repro.cli import main


class TestRecommendCommand:
    def test_runtime_objective(self, capsys):
        code = main(["recommend", "--workload", "language-models", "--macs", "4096"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen:" in out and "<==" in out

    def test_objective_flag(self, capsys):
        code = main([
            "recommend", "--workload", "language-models", "--macs", "4096",
            "--objective", "energy",
        ])
        assert code == 0
        assert "best energy" in capsys.readouterr().out

    def test_bandwidth_budget_reported(self, capsys):
        code = main([
            "recommend", "--workload", "language-models", "--macs", "4096",
            "--bandwidth", "1000000",
        ])
        assert code == 0
        assert "within" in capsys.readouterr().out

    def test_requires_macs(self):
        with pytest.raises(SystemExit):
            main(["recommend", "--workload", "alexnet"])


class TestValidateCommand:
    def test_sweep_passes(self, capsys):
        assert main(["validate", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "9/9 configurations agree" in out

    def test_verbose_prints_reports(self, capsys):
        assert main(["validate", "--trials", "2", "-v"]) == 0
        out = capsys.readouterr().out
        assert out.count("[PASS]") == 6

    def test_seed_flag(self, capsys):
        main(["validate", "--trials", "2", "--seed", "9", "-v"])
        first = capsys.readouterr().out
        main(["validate", "--trials", "2", "--seed", "9", "-v"])
        second = capsys.readouterr().out
        assert first == second


class TestReproduceCommand:
    def test_list(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        assert "fig4" in capsys.readouterr().out

    def test_no_argument_lists(self, capsys):
        assert main(["reproduce"]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_runs_table(self, capsys):
        assert main(["reproduce", "table4"]) == 0
        assert "TF0" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["reproduce", "fig99"])
