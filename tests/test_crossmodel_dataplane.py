"""Cross-model validation of the OS output-data-plane variant.

The trace-based variant engine and the register-level golden array were
changed independently (one drops the drain phase from the schedule, the
other captures accumulators at completion); their cycle counts must
still agree everywhere, and the analytical ranking built on the
baseline model must stay consistent with the engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.hardware import Dataflow
from repro.dataflow.factory import engine_for_gemm
from repro.golden.array import run_output_stationary_fold
from repro.mapping.dims import map_gemm
from repro.mapping.folds import plan_folds

DIM = st.integers(1, 16)
ARR = st.integers(1, 6)


def golden_dataplane_cycles(a, b, rows, cols):
    """Fold-serialized golden execution with the dedicated plane."""
    m, k = a.shape
    _, n = b.shape
    mapping = map_gemm(m, k, n, Dataflow.OUTPUT_STATIONARY)
    plan = plan_folds(mapping, rows, cols)
    output = np.zeros((m, n), dtype=np.int64)
    cycles = 0
    for fold in plan.folds():
        ro, co = fold.row_offset, fold.col_offset
        result = run_output_stationary_fold(
            a[ro : ro + fold.rows, :],
            b[:, co : co + fold.cols],
            dedicated_output_plane=True,
        )
        output[ro : ro + fold.rows, co : co + fold.cols] = result.output
        cycles += result.cycles
    assert np.array_equal(output, a @ b)
    return cycles


class TestGoldenDataPlane:
    def test_single_fold_result_and_cycles(self, rng):
        a = rng.integers(-8, 8, (4, 5))
        b = rng.integers(-8, 8, (5, 3))
        result = run_output_stationary_fold(a, b, dedicated_output_plane=True)
        assert np.array_equal(result.output, a @ b)
        assert result.cycles == 4 + 3 + 5 - 2  # r + c + T - 2

    def test_saves_exactly_r_over_baseline(self, rng):
        a = rng.integers(-8, 8, (6, 4))
        b = rng.integers(-8, 8, (4, 7))
        base = run_output_stationary_fold(a, b)
        plane = run_output_stationary_fold(a, b, dedicated_output_plane=True)
        assert base.cycles - plane.cycles == 6
        assert np.array_equal(base.output, plane.output)

    @settings(max_examples=30)
    @given(DIM, DIM, DIM, ARR, ARR)
    def test_variant_engine_matches_golden(self, m, k, n, rows, cols):
        engine = engine_for_gemm(
            m, k, n, Dataflow.OUTPUT_STATIONARY, rows, cols, output_dataplane=True
        )
        rng = np.random.default_rng(99)
        a = rng.integers(-6, 6, (m, k))
        b = rng.integers(-6, 6, (k, n))
        assert engine.total_cycles() == golden_dataplane_cycles(a, b, rows, cols)


class TestAnalyticalRankingConsistency:
    def test_engine_agrees_with_analytical_ordering(self):
        """The analytical best/worst aspect ratios for a layer must stay
        best/worst when re-measured by the cycle-accurate engine."""
        from repro.analytical.search import search_space
        from repro.workloads.language import language_layer

        layer = language_layer("TF1")
        space = [c for c in search_space(layer, 2**12, min_array_dim=8) if c.is_monolithic]
        best = min(space, key=lambda c: c.runtime)
        worst = max(space, key=lambda c: c.runtime)
        m, k, n = layer.gemm_dims()
        best_engine = engine_for_gemm(
            m, k, n, Dataflow.OUTPUT_STATIONARY, best.array_rows, best.array_cols
        ).total_cycles()
        worst_engine = engine_for_gemm(
            m, k, n, Dataflow.OUTPUT_STATIONARY, worst.array_rows, worst.array_cols
        ).total_cycles()
        assert best_engine < worst_engine
