"""Unit tests for SRAM trace files and DRAM request streams."""

import pytest

from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.base import AddressLayout
from repro.dataflow.factory import engine_for_gemm
from repro.engine.tracefiles import dram_request_stream, write_sram_trace_csv
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet


def small_engine(dataflow=Dataflow.OUTPUT_STATIONARY):
    return engine_for_gemm(12, 6, 10, dataflow, 4, 4)


LAYOUT = AddressLayout(m=12, k=6, n=10)


class TestSramTraceCsv:
    def test_files_created(self, tmp_path, dataflow):
        engine = small_engine(dataflow)
        read_path, write_path = write_sram_trace_csv(engine, LAYOUT, tmp_path, prefix="t")
        assert read_path.name == "t_sram_read.csv"
        assert read_path.exists() and write_path.exists()

    def test_read_rows_match_counts(self, tmp_path):
        engine = small_engine()
        read_path, _ = write_sram_trace_csv(engine, LAYOUT, tmp_path)
        total_addresses = 0
        for line in read_path.read_text().splitlines():
            cells = [cell for cell in line.split(",") if cell]
            int(cells[0])  # cycle parses
            total_addresses += len(cells) - 1
        assert total_addresses == engine.layer_counts().total_reads

    def test_write_rows_match_counts(self, tmp_path):
        engine = small_engine()
        _, write_path = write_sram_trace_csv(engine, LAYOUT, tmp_path)
        total = sum(
            len([cell for cell in line.split(",") if cell]) - 1
            for line in write_path.read_text().splitlines()
        )
        assert total == engine.layer_counts().ofmap_writes


class TestDramRequestStream:
    def traffic(self):
        engine = engine_for_gemm(64, 32, 48, Dataflow.OUTPUT_STATIONARY, 8, 8)
        config = HardwareConfig(ifmap_sram_kb=4, filter_sram_kb=4, ofmap_sram_kb=4)
        return engine, compute_dram_traffic(engine, BufferSet.from_config(config), 1)

    def test_byte_volume_preserved(self):
        engine, traffic = self.traffic()
        requests = list(dram_request_stream(traffic, AddressLayout(m=64, k=32, n=48), line_bytes=64))
        reads = sum(1 for req in requests if not req.is_write)
        writes = sum(1 for req in requests if req.is_write)
        assert reads * 64 >= traffic.read_bytes
        assert reads * 64 < traffic.read_bytes + 64 * len(traffic.fold_cycles) * 2
        assert writes * 64 >= traffic.write_bytes

    def test_requests_sorted_by_cycle(self):
        engine, traffic = self.traffic()
        requests = list(dram_request_stream(traffic, AddressLayout(m=64, k=32, n=48)))
        cycles = [req.cycle for req in requests]
        assert cycles == sorted(cycles)

    def test_cycles_within_schedule_span(self):
        engine, traffic = self.traffic()
        requests = list(dram_request_stream(traffic, AddressLayout(m=64, k=32, n=48)))
        assert min(req.cycle for req in requests) >= 0
        assert max(req.cycle for req in requests) <= 2 * traffic.total_cycles

    def test_rejects_bad_line_bytes(self):
        _, traffic = self.traffic()
        with pytest.raises(ValueError):
            list(dram_request_stream(traffic, LAYOUT, line_bytes=0))

    def test_addresses_advance_monotonically_per_stream(self):
        engine, traffic = self.traffic()
        requests = list(dram_request_stream(traffic, AddressLayout(m=64, k=32, n=48)))
        write_addrs = [req.address for req in requests if req.is_write]
        assert write_addrs == sorted(write_addrs)
