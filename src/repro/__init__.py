"""repro — a reproduction of SCALE-Sim and its scalability methodology.

Paper: "A Systematic Methodology for Characterizing Scalability of DNN
Accelerators using SCALE-Sim" (Samajdar et al., ISPASS 2020).

The public API re-exports the main entry points of each subsystem:

* Describe hardware with :class:`HardwareConfig` and workloads with
  :class:`ConvLayer` / :class:`GemmLayer` / :class:`Network` (or load
  SCALE-Sim config/topology files).
* Simulate cycle-accurately with :class:`Simulator` (scale-up) or
  :class:`ScaleOutSimulator` (partitioned grids).
* Sweep design spaces with the analytical model
  (:func:`scaleup_runtime`, :func:`best_scaleup`, :func:`best_scaleout`,
  :func:`pareto_search`).
* Estimate energy with :func:`energy_of_result`, validate cycle counts
  against the register-level :func:`golden_gemm`, and replay DRAM
  traces through :class:`DramSimulator`.
"""

from repro.config import (
    Dataflow,
    HardwareConfig,
    load_config,
    paper_scaling_config,
    preset,
)
from repro.topology import (
    ConvLayer,
    GemmLayer,
    Layer,
    Network,
    load_topology,
)
from repro.topology.lowering import TensorAddressLayout
from repro.mapping import OperandMapping, map_layer, map_gemm, plan_folds
from repro.engine import (
    LayerResult,
    RunResult,
    ScaleOutSimulator,
    Simulator,
    StalledRuntime,
    bandwidth_limited_runtime,
    render_report,
    sweet_spot_bandwidth,
    write_report_csv,
)
from repro.engine.scaleout import simulate
from repro.analytical import (
    CandidateConfig,
    Recommendation,
    TrafficEstimate,
    WorkloadSet,
    best_scaleout,
    best_scaleup,
    candidate_costs,
    estimate_traffic,
    fold_runtime,
    pareto_search,
    recommend_configuration,
    scaleout_runtime,
    scaleup_runtime,
    search_space,
    unlimited_runtime,
)
from repro.noc import DegradedMeshNoc, MeshNoc, NocConfig, NocCost, layer_noc_cost
from repro.resilience import (
    FaultMap,
    RemapPlan,
    load_fault_map,
    predict_layer_cycles,
    random_fault_map,
    remap_layer,
)
from repro.analytical.runtime import degraded_scaleout_runtime, degraded_scaleup_runtime
from repro.energy import DEFAULT_ENERGY, EnergyParams, energy_of_result, energy_of_run
from repro.golden import golden_gemm
from repro.dram import DDR4_2400_LIKE, DramAccess, DramSimulator, DramTiming
from repro.workloads import (
    language_layer,
    language_models,
    resnet50,
)
from repro.sweep import pivot_to_csv, run_sweep, run_sweep_report, sweep_to_csv
from repro.robust import (
    CheckpointStore,
    ExecutionPolicy,
    Fault,
    PointRecord,
    RunReport,
    SupervisorPolicy,
    WorkerFault,
    check_layer_result,
    check_trace_conservation,
    execute_grid,
    execute_point,
    inject_faults,
    inject_worker_faults,
)
from repro.traceanalysis import reuse_profile, stream_stats
from repro.obs import (
    MetricsRegistry,
    ProgressTracker,
    Tracer,
    metrics,
    trace,
)
from repro.errors import (
    CheckpointError,
    CircuitOpenError,
    ConfigError,
    DramError,
    ExecutionError,
    InvariantError,
    LedgerCorruptionError,
    MappingError,
    PointTimeoutError,
    ReproError,
    ResilienceError,
    SearchError,
    SimulationError,
    StorageError,
    SupervisorExhaustedError,
    SweepError,
    SweepInterrupted,
    TopologyError,
    WorkerCrashError,
)
from repro.store.ledger import LedgerDiff, SweepLedger

from repro._version import __version__

__all__ = [
    # configuration
    "Dataflow",
    "HardwareConfig",
    "load_config",
    "paper_scaling_config",
    "preset",
    # topology
    "ConvLayer",
    "GemmLayer",
    "Layer",
    "Network",
    "load_topology",
    # mapping
    "OperandMapping",
    "map_layer",
    "map_gemm",
    "plan_folds",
    "TensorAddressLayout",
    # engines
    "LayerResult",
    "RunResult",
    "Simulator",
    "ScaleOutSimulator",
    "simulate",
    "render_report",
    "write_report_csv",
    # analytical
    "CandidateConfig",
    "WorkloadSet",
    "best_scaleout",
    "best_scaleup",
    "candidate_costs",
    "fold_runtime",
    "pareto_search",
    "scaleout_runtime",
    "scaleup_runtime",
    "search_space",
    "unlimited_runtime",
    "TrafficEstimate",
    "estimate_traffic",
    "Recommendation",
    "recommend_configuration",
    # stalls + noc
    "StalledRuntime",
    "bandwidth_limited_runtime",
    "sweet_spot_bandwidth",
    "DegradedMeshNoc",
    "MeshNoc",
    "NocConfig",
    "NocCost",
    "layer_noc_cost",
    # resilience (degraded-mode simulation)
    "FaultMap",
    "RemapPlan",
    "load_fault_map",
    "predict_layer_cycles",
    "random_fault_map",
    "remap_layer",
    "degraded_scaleout_runtime",
    "degraded_scaleup_runtime",
    # energy
    "DEFAULT_ENERGY",
    "EnergyParams",
    "energy_of_result",
    "energy_of_run",
    # golden + dram
    "golden_gemm",
    "DDR4_2400_LIKE",
    "DramAccess",
    "DramSimulator",
    "DramTiming",
    # workloads
    "language_layer",
    "language_models",
    "resnet50",
    # tooling
    "run_sweep",
    "run_sweep_report",
    "sweep_to_csv",
    "pivot_to_csv",
    "SweepLedger",
    "LedgerDiff",
    "reuse_profile",
    "stream_stats",
    # observability
    "trace",
    "metrics",
    "Tracer",
    "MetricsRegistry",
    "ProgressTracker",
    # robust execution
    "CheckpointStore",
    "ExecutionPolicy",
    "Fault",
    "PointRecord",
    "RunReport",
    "SupervisorPolicy",
    "WorkerFault",
    "check_layer_result",
    "check_trace_conservation",
    "execute_grid",
    "execute_point",
    "inject_faults",
    "inject_worker_faults",
    # errors
    "ReproError",
    "ConfigError",
    "TopologyError",
    "MappingError",
    "SimulationError",
    "SearchError",
    "DramError",
    "ExecutionError",
    "PointTimeoutError",
    "CircuitOpenError",
    "WorkerCrashError",
    "SupervisorExhaustedError",
    "SweepError",
    "SweepInterrupted",
    "CheckpointError",
    "StorageError",
    "LedgerCorruptionError",
    "InvariantError",
    "ResilienceError",
    "__version__",
]
