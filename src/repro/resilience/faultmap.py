"""Fault maps: which pieces of a degraded accelerator are dead.

A :class:`FaultMap` describes hardware degradation at three granularities:

* **PE rows/columns** of the systolic array (``dead_pe_rows`` /
  ``dead_pe_cols``) — a manufacturing defect or harvested die disables
  whole rows/columns, which systolic arrays bypass so the machine keeps
  operating as a smaller ``R' x C'`` array;
* **partitions** of a scale-out grid (``dead_partitions``) — a pod that
  stopped serving; its share of the workload must be re-mapped onto the
  survivors (:mod:`repro.resilience.remap`);
* **NoC links** between adjacent partitions (``dead_links``) — traffic
  is rerouted around the gap over longer (penalized) paths
  (:class:`repro.noc.mesh.DegradedMeshNoc`).

Fault maps are frozen and hashable, so they ride inside
:class:`~repro.config.hardware.HardwareConfig` unchanged.  Two textual
formats round-trip: the compact spec string
(``"pe_row:3;partition:1,2;link:0,0-0,1"``) used on the command line
and in checkpoint keys, and a JSON file for larger scenarios.  All
parse and validation failures raise
:class:`~repro.errors.ResilienceError`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.errors import ResilienceError

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


def _coerce_indices(values: Iterable, what: str) -> FrozenSet[int]:
    indices = set()
    for value in values:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ResilienceError(f"{what} must be non-negative integers, got {value!r}")
        indices.add(value)
    return frozenset(indices)


def _coerce_coord(value, what: str) -> Coord:
    try:
        p, q = value
    except (TypeError, ValueError):
        raise ResilienceError(f"{what} must be a (row, col) pair, got {value!r}") from None
    for axis in (p, q):
        if not isinstance(axis, int) or isinstance(axis, bool) or axis < 0:
            raise ResilienceError(f"{what} must be non-negative integers, got {value!r}")
    return (p, q)


def _normalize_link(value, what: str = "link") -> Link:
    try:
        a, b = value
    except (TypeError, ValueError):
        raise ResilienceError(f"{what} must join two partitions, got {value!r}") from None
    a = _coerce_coord(a, f"{what} endpoint")
    b = _coerce_coord(b, f"{what} endpoint")
    if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
        raise ResilienceError(
            f"{what} must join two adjacent partitions, got {a} - {b}"
        )
    return (min(a, b), max(a, b))


@dataclass(frozen=True)
class FaultMap:
    """Immutable description of which hardware components are dead."""

    dead_pe_rows: FrozenSet[int] = frozenset()
    dead_pe_cols: FrozenSet[int] = frozenset()
    dead_partitions: FrozenSet[Coord] = frozenset()
    dead_links: FrozenSet[Link] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "dead_pe_rows", _coerce_indices(self.dead_pe_rows, "dead_pe_rows")
        )
        object.__setattr__(
            self, "dead_pe_cols", _coerce_indices(self.dead_pe_cols, "dead_pe_cols")
        )
        object.__setattr__(
            self,
            "dead_partitions",
            frozenset(_coerce_coord(c, "dead partition") for c in self.dead_partitions),
        )
        object.__setattr__(
            self,
            "dead_links",
            frozenset(_normalize_link(link) for link in self.dead_links),
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_healthy(self) -> bool:
        """True when nothing at all is dead."""
        return not (
            self.dead_pe_rows or self.dead_pe_cols
            or self.dead_partitions or self.dead_links
        )

    @property
    def affects_array(self) -> bool:
        """True when PE rows or columns are disabled."""
        return bool(self.dead_pe_rows or self.dead_pe_cols)

    @property
    def affects_grid(self) -> bool:
        """True when partitions or NoC links are down."""
        return bool(self.dead_partitions or self.dead_links)

    def pe_only(self) -> Optional["FaultMap"]:
        """The per-partition view: array faults without grid faults.

        Used by :meth:`HardwareConfig.partition_config` — every
        partition of a scale-out grid inherits the PE row/column
        defects, while partition and link faults belong to the grid.
        Returns ``None`` when no PE faults exist.
        """
        if not self.affects_array:
            return None
        return FaultMap(dead_pe_rows=self.dead_pe_rows, dead_pe_cols=self.dead_pe_cols)

    # ------------------------------------------------------------------
    # Validation against a concrete machine
    # ------------------------------------------------------------------
    def validate_for(
        self,
        array_rows: int,
        array_cols: int,
        partition_rows: int,
        partition_cols: int,
    ) -> "FaultMap":
        """Check this map against a machine's dimensions.

        Raises :class:`ResilienceError` when an index is out of range,
        every PE row/column is dead, or no partition survives.  Returns
        ``self`` for chaining.
        """
        for index in self.dead_pe_rows:
            if index >= array_rows:
                raise ResilienceError(
                    f"dead PE row {index} outside a {array_rows}-row array"
                )
        for index in self.dead_pe_cols:
            if index >= array_cols:
                raise ResilienceError(
                    f"dead PE column {index} outside a {array_cols}-column array"
                )
        if len(self.dead_pe_rows) >= array_rows:
            raise ResilienceError(f"all {array_rows} PE rows dead; nothing to compute on")
        if len(self.dead_pe_cols) >= array_cols:
            raise ResilienceError(
                f"all {array_cols} PE columns dead; nothing to compute on"
            )
        for p, q in self.dead_partitions:
            if p >= partition_rows or q >= partition_cols:
                raise ResilienceError(
                    f"dead partition ({p}, {q}) outside a "
                    f"{partition_rows}x{partition_cols} grid"
                )
        if len(self.dead_partitions) >= partition_rows * partition_cols:
            raise ResilienceError(
                f"all {partition_rows * partition_cols} partitions dead; "
                "no surviving hardware to re-map onto"
            )
        for a, b in self.dead_links:
            for p, q in (a, b):
                if p >= partition_rows or q >= partition_cols:
                    raise ResilienceError(
                        f"dead link {a}-{b} outside a "
                        f"{partition_rows}x{partition_cols} grid"
                    )
        return self

    # ------------------------------------------------------------------
    # Spec string round-trip
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, text: str) -> "FaultMap":
        """Parse the compact spec format.

        Semicolon-separated tokens: ``pe_row:R``, ``pe_col:C``,
        ``partition:P,Q`` and ``link:P,Q-P,Q``.  An empty string is the
        all-healthy map.

        >>> FaultMap.from_spec("pe_row:3;partition:1,2;link:0,0-0,1")
        ... # doctest: +SKIP
        """
        pe_rows: List[int] = []
        pe_cols: List[int] = []
        partitions: List[Coord] = []
        links: List[Link] = []
        for token in str(text).split(";"):
            token = token.strip()
            if not token:
                continue
            kind, _, value = token.partition(":")
            kind = kind.strip().lower()
            try:
                if kind == "pe_row":
                    pe_rows.append(int(value))
                elif kind == "pe_col":
                    pe_cols.append(int(value))
                elif kind == "partition":
                    p, q = value.split(",")
                    partitions.append((int(p), int(q)))
                elif kind == "link":
                    a, b = value.split("-")
                    links.append(
                        (tuple(int(x) for x in a.split(",")),
                         tuple(int(x) for x in b.split(",")))
                    )
                else:
                    raise ResilienceError(
                        f"unknown fault kind {kind!r} in token {token!r}; legal "
                        "kinds are pe_row, pe_col, partition, link"
                    )
            except (ValueError, TypeError) as exc:
                raise ResilienceError(f"malformed fault token {token!r}: {exc}") from exc
        return cls(
            dead_pe_rows=frozenset(pe_rows),
            dead_pe_cols=frozenset(pe_cols),
            dead_partitions=frozenset(partitions),
            dead_links=frozenset(links),
        )

    def to_spec(self) -> str:
        """The compact spec string; ``from_spec`` inverts it."""
        tokens: List[str] = []
        tokens.extend(f"pe_row:{r}" for r in sorted(self.dead_pe_rows))
        tokens.extend(f"pe_col:{c}" for c in sorted(self.dead_pe_cols))
        tokens.extend(f"partition:{p},{q}" for p, q in sorted(self.dead_partitions))
        tokens.extend(
            f"link:{a[0]},{a[1]}-{b[0]},{b[1]}" for a, b in sorted(self.dead_links)
        )
        return ";".join(tokens)

    def describe(self) -> str:
        """Human-readable one-liner used by config descriptions."""
        if self.is_healthy:
            return "healthy"
        parts = []
        if self.dead_pe_rows:
            parts.append(f"{len(self.dead_pe_rows)} PE row(s)")
        if self.dead_pe_cols:
            parts.append(f"{len(self.dead_pe_cols)} PE col(s)")
        if self.dead_partitions:
            parts.append(f"{len(self.dead_partitions)} partition(s)")
        if self.dead_links:
            parts.append(f"{len(self.dead_links)} link(s)")
        return "dead: " + ", ".join(parts)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe representation; :func:`fault_map_from_dict` inverts."""
        return {
            "pe_rows": sorted(self.dead_pe_rows),
            "pe_cols": sorted(self.dead_pe_cols),
            "partitions": [list(c) for c in sorted(self.dead_partitions)],
            "links": [[list(a), list(b)] for a, b in sorted(self.dead_links)],
        }


#: The canonical all-healthy map (degraded-mode code paths treat it and
#: ``None`` identically).
HEALTHY = FaultMap()


def fault_map_from_dict(data: Dict) -> FaultMap:
    """Build a :class:`FaultMap` from the JSON schema of :meth:`as_dict`."""
    if not isinstance(data, dict):
        raise ResilienceError(f"fault map must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - {"pe_rows", "pe_cols", "partitions", "links"}
    if unknown:
        raise ResilienceError(f"unknown fault-map keys {sorted(unknown)}")
    try:
        return FaultMap(
            dead_pe_rows=frozenset(data.get("pe_rows", ())),
            dead_pe_cols=frozenset(data.get("pe_cols", ())),
            dead_partitions=frozenset(tuple(c) for c in data.get("partitions", ())),
            dead_links=frozenset(
                (tuple(a), tuple(b)) for a, b in data.get("links", ())
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ResilienceError(f"malformed fault map: {exc}") from exc


def load_fault_map(path: Union[str, Path]) -> FaultMap:
    """Load a fault map from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ResilienceError(f"fault-map file not found: {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ResilienceError(f"cannot read fault map {path}: {exc}") from exc
    return fault_map_from_dict(data)


def random_fault_map(
    partition_rows: int,
    partition_cols: int,
    dead_partitions: int = 0,
    dead_links: int = 0,
    seed: int = 0,
) -> FaultMap:
    """A reproducible random fault scenario for a partition grid.

    Sampling uses a private :class:`random.Random` seeded with ``seed``,
    so identical arguments always produce identical maps — fault
    scenarios in sweeps and checkpoints are exactly replayable.  At
    least one partition always survives.
    """
    total = partition_rows * partition_cols
    if dead_partitions < 0 or dead_links < 0:
        raise ResilienceError("fault counts must be non-negative")
    if dead_partitions >= total:
        raise ResilienceError(
            f"cannot kill {dead_partitions} of {total} partitions; "
            "at least one must survive"
        )
    rng = random.Random(seed)
    cells = [(p, q) for p in range(partition_rows) for q in range(partition_cols)]
    dead_cells = frozenset(rng.sample(cells, dead_partitions))
    links: List[Link] = []
    for p in range(partition_rows):
        for q in range(partition_cols):
            if q + 1 < partition_cols:
                links.append(((p, q), (p, q + 1)))
            if p + 1 < partition_rows:
                links.append(((p, q), (p + 1, q)))
    if dead_links > len(links):
        raise ResilienceError(
            f"grid has only {len(links)} links; cannot kill {dead_links}"
        )
    dead_link_set = frozenset(rng.sample(links, dead_links))
    return FaultMap(dead_partitions=dead_cells, dead_links=dead_link_set)
