"""repro.resilience — degraded-mode accelerator simulation.

Real multi-pod deployments keep serving when hardware fails.  This
package models that: :class:`FaultMap` describes what is dead (PE
rows/columns, partitions, NoC links), :func:`remap_layer` redistributes
the mapped workload over the survivors with a deterministic
longest-processing-time greedy, and :func:`predict_layer_cycles` gives
the exact degraded analytical runtime the invariant guards hold the
cycle-accurate engine to.

The fault map rides inside :class:`~repro.config.hardware
.HardwareConfig` (``fault_map=``), so every downstream consumer — the
simulators, the NoC cost model, the energy model, reports — sees the
same degradation.  See ``docs/robustness.md`` ("Degraded-mode
simulation") for the full story.
"""

from repro.resilience.faultmap import (
    HEALTHY,
    FaultMap,
    fault_map_from_dict,
    load_fault_map,
    random_fault_map,
)
from repro.resilience.remap import (
    RemapPlan,
    TileAssignment,
    check_remap_conservation,
    predict_layer_cycles,
    remap_layer,
    tile_cycles,
)

__all__ = [
    "FaultMap",
    "HEALTHY",
    "fault_map_from_dict",
    "load_fault_map",
    "random_fault_map",
    "RemapPlan",
    "TileAssignment",
    "check_remap_conservation",
    "predict_layer_cycles",
    "remap_layer",
    "tile_cycles",
]
