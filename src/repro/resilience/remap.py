"""Re-map a partitioned workload over the surviving partitions.

Healthy scale-out tiles the mapped workload ``S_R x S_C`` over the
``P_R x P_C`` grid (paper Eq. 5) and the slowest partition sets the
runtime (Eq. 6).  When partitions die, their tiles become *orphans*;
this module redistributes them so the grid keeps computing the full
layer instead of crashing or silently under-computing:

* every surviving partition keeps its own tile;
* orphan tiles are adopted one at a time, largest first, by the
  survivor with the least total assigned work (ties broken by hop
  distance to the orphan's home partition, then coordinates) — a
  deterministic longest-processing-time greedy, so the same fault map
  always yields the same plan;
* a survivor with multiple tiles runs them serially, so the degraded
  runtime is ``max over survivors of the sum of their tile runtimes``.

Tile runtimes are the *exact* edge-fold analytical cycles (Eq. 3 summed
over the fold grid), which the cycle-accurate engine reproduces
exactly.  Both the engine (:class:`~repro.engine.scaleout
.ScaleOutSimulator`) and the invariant guards build the same plan from
the same fault map, so degraded results are cross-checked bit-for-bit
just like healthy ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analytical.runtime import fold_runtime
from repro.errors import InvariantError, ResilienceError
from repro.mapping.dims import OperandMapping
from repro.obs import metrics, trace
from repro.resilience.faultmap import Coord, FaultMap, HEALTHY
from repro.utils.mathutils import split_evenly


def _fold_sizes(extent: int, array_dim: int) -> List[int]:
    """Sizes of the folds covering ``extent`` on one ``array_dim`` axis."""
    full, rem = divmod(extent, array_dim)
    return [array_dim] * full + ([rem] if rem else [])


def tile_cycles(sr: int, sc: int, t: int, array_rows: int, array_cols: int) -> int:
    """Exact stall-free cycles of one ``sr x sc`` tile on one array.

    Sums Eq. 3 over the fold grid with edge folds at their true size,
    so it *equals* the cycle-accurate engine (unlike the Eq. 4 bound,
    which charges every fold the full-array latency).
    """
    return sum(
        fold_runtime(rows, cols, t)
        for rows in _fold_sizes(sr, array_rows)
        for cols in _fold_sizes(sc, array_cols)
    )


@dataclass(frozen=True)
class TileAssignment:
    """One workload tile and the partition that now computes it."""

    origin: Coord  # grid cell the tile belonged to under Eq. 5
    owner: Coord   # surviving partition that computes it
    sr: int
    sc: int
    cycles: int    # exact analytical runtime of this tile

    @property
    def native(self) -> bool:
        """True when the tile still runs on its home partition."""
        return self.origin == self.owner


@dataclass(frozen=True)
class RemapPlan:
    """Deterministic assignment of every workload tile to a survivor."""

    grid_rows: int
    grid_cols: int
    t: int
    survivors: Tuple[Coord, ...]
    assignments: Tuple[TileAssignment, ...]

    @property
    def failed_partitions(self) -> int:
        return self.grid_rows * self.grid_cols - len(self.survivors)

    @property
    def remapped_tiles(self) -> int:
        """Tiles adopted by a partition other than their home."""
        return sum(1 for a in self.assignments if not a.native)

    @property
    def idle_partitions(self) -> int:
        """Surviving partitions with no work assigned."""
        working = {a.owner for a in self.assignments}
        return len(self.survivors) - len(working)

    @property
    def total_macs(self) -> int:
        return sum(a.sr * a.sc * self.t for a in self.assignments)

    def per_owner(self) -> Dict[Coord, List[TileAssignment]]:
        """Assignments grouped by owning partition (workers only)."""
        grouped: Dict[Coord, List[TileAssignment]] = {}
        for assignment in self.assignments:
            grouped.setdefault(assignment.owner, []).append(assignment)
        return grouped

    @property
    def predicted_cycles(self) -> int:
        """Degraded Eq. 6: the slowest survivor's serial tile runtime."""
        loads = self.owner_cycles()
        return max(loads.values()) if loads else 0

    def owner_cycles(self) -> Dict[Coord, int]:
        """Total assigned analytical cycles per working survivor."""
        loads: Dict[Coord, int] = {}
        for assignment in self.assignments:
            loads[assignment.owner] = loads.get(assignment.owner, 0) + assignment.cycles
        return loads


def remap_layer(
    mapping: OperandMapping,
    grid_rows: int,
    grid_cols: int,
    array_rows: int,
    array_cols: int,
    fault_map: Optional[FaultMap] = None,
) -> RemapPlan:
    """Tile ``mapping`` over the grid and re-map around dead partitions.

    ``array_rows`` / ``array_cols`` are the *effective* (post-PE-fault)
    per-partition array dimensions, used to cost tiles exactly.  With a
    healthy map every tile stays native and the plan reduces to Eq. 5.
    """
    fault_map = fault_map if fault_map is not None else HEALTHY
    for p, q in fault_map.dead_partitions:
        if p >= grid_rows or q >= grid_cols:
            raise ResilienceError(
                f"dead partition ({p}, {q}) outside a {grid_rows}x{grid_cols} grid"
            )
    dead = fault_map.dead_partitions
    survivors = tuple(
        (p, q)
        for p in range(grid_rows)
        for q in range(grid_cols)
        if (p, q) not in dead
    )
    if not survivors:
        raise ResilienceError(
            f"no surviving partitions on a {grid_rows}x{grid_cols} grid"
        )

    row_shares = split_evenly(mapping.sr, grid_rows)
    col_shares = split_evenly(mapping.sc, grid_cols)

    assignments: List[TileAssignment] = []
    load: Dict[Coord, int] = {coord: 0 for coord in survivors}
    orphans: List[Tuple[int, int, int, Coord]] = []  # (cycles, sr, sc, origin)
    for p, tile_sr in enumerate(row_shares):
        for q, tile_sc in enumerate(col_shares):
            if tile_sr == 0 or tile_sc == 0:
                continue
            cycles = tile_cycles(tile_sr, tile_sc, mapping.t, array_rows, array_cols)
            if (p, q) in dead:
                orphans.append((cycles, tile_sr, tile_sc, (p, q)))
            else:
                assignments.append(
                    TileAssignment(
                        origin=(p, q), owner=(p, q),
                        sr=tile_sr, sc=tile_sc, cycles=cycles,
                    )
                )
                load[(p, q)] += cycles

    # Longest-processing-time greedy: adopt the costliest orphan first,
    # always onto the least-loaded survivor.  Every tie-break is total,
    # so the plan is a pure function of (mapping, grid, fault map).
    orphans.sort(key=lambda item: (-item[0], item[3]))
    for cycles, tile_sr, tile_sc, origin in orphans:
        owner = min(
            survivors,
            key=lambda s: (
                load[s],
                abs(s[0] - origin[0]) + abs(s[1] - origin[1]),
                s,
            ),
        )
        assignments.append(
            TileAssignment(origin=origin, owner=owner,
                           sr=tile_sr, sc=tile_sc, cycles=cycles)
        )
        load[owner] += cycles

    plan = RemapPlan(
        grid_rows=grid_rows,
        grid_cols=grid_cols,
        t=mapping.t,
        survivors=survivors,
        assignments=tuple(assignments),
    )
    check_remap_conservation(plan, mapping)
    if metrics.enabled:
        metrics.counter("resilience.remap_plans").add()
        metrics.counter("resilience.remapped_tiles").add(plan.remapped_tiles)
    if orphans:
        trace.event(
            "resilience.remap",
            grid=f"{grid_rows}x{grid_cols}",
            dead=len(dead),
            remapped_tiles=plan.remapped_tiles,
        )
    return plan


def check_remap_conservation(plan: RemapPlan, mapping: OperandMapping) -> RemapPlan:
    """Every MAC of the layer must land on exactly one survivor.

    Raises :class:`~repro.errors.InvariantError` when the re-mapped
    tiles do not sum back to the layer's workload — the guard against
    silently under- (or double-) computing under faults.
    """
    if plan.total_macs != mapping.macs:
        raise InvariantError(
            f"re-mapped work not conserved: assigned tiles sum to "
            f"{plan.total_macs} MACs but the layer has {mapping.macs} "
            f"(S_R={mapping.sr}, S_C={mapping.sc}, T={mapping.t})"
        )
    return plan


def predict_layer_cycles(mapping: OperandMapping, config) -> int:
    """Exact analytical runtime of ``mapping`` on ``config`` (degraded-aware).

    The single entry point the invariant guards use: builds the same
    remap plan as the engine (healthy maps reduce to the Eq. 5/6
    tiling) and returns the slowest survivor's serial runtime.
    """
    return remap_layer(
        mapping,
        config.partition_rows,
        config.partition_cols,
        config.effective_array_rows,
        config.effective_array_cols,
        config.fault_map,
    ).predicted_cycles
