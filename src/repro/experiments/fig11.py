"""Fig. 11: cycle-accurate runtime + DRAM bandwidth vs partition count."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    PARTITION_SWEEP,
    paper_partitioned_config,
    simulate_on,
    square_grid,
)
from repro.topology.layer import Layer
from repro.workloads.language import language_layer
from repro.workloads.resnet50 import PAPER_CBA3_LAYER, resnet50

DEFAULT_BUDGETS = (2**14, 2**16, 2**18)


def partition_sweep(
    layer: Layer,
    total_macs: int,
    partition_counts: Sequence[int] = tuple(PARTITION_SWEEP),
) -> List[Dict]:
    """Runtime/bandwidth series for one layer at one MAC budget."""
    rows: List[Dict] = []
    for count in partition_counts:
        if total_macs % count:
            continue
        config = paper_partitioned_config(total_macs, count)
        result = simulate_on(config, layer)
        shape = square_grid(total_macs // count)
        rows.append(
            {
                "layer": layer.name,
                "macs": total_macs,
                "partitions": count,
                "array": f"{shape[0]}x{shape[1]}",
                "cycles": result.total_cycles,
                "avg_bw_B_per_cyc": round(result.avg_total_bw, 2),
                "peak_bw_B_per_cyc": round(result.peak_total_bw, 2),
                "dram_rd_bytes": result.dram_read_bytes,
                "dram_wr_bytes": result.dram_write_bytes,
            }
        )
    return rows


def fig11_resnet_cba3(budgets: Sequence[int] = DEFAULT_BUDGETS) -> List[Dict]:
    """Fig. 11(a-c): the CBa_3 ResNet-50 layer."""
    layer = resnet50()[PAPER_CBA3_LAYER]
    return [row for macs in budgets for row in partition_sweep(layer, macs)]


def fig11_transformer_tf0(budgets: Sequence[int] = DEFAULT_BUDGETS) -> List[Dict]:
    """Fig. 11(d-f): the TF0 Transformer layer."""
    layer = language_layer("TF0")
    return [row for macs in budgets for row in partition_sweep(layer, macs)]
