"""Fig. 12: energy vs partition count."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.energy.model import energy_of_result
from repro.energy.params import DEFAULT_ENERGY, EnergyParams
from repro.experiments.common import paper_partitioned_config, simulate_on
from repro.topology.layer import Layer
from repro.workloads.resnet50 import PAPER_CBA3_LAYER, resnet50

DEFAULT_BUDGETS = (256, 1024, 4096, 2**14, 2**16, 2**18)
DEFAULT_PARTITIONS = (1, 4, 16, 64)


def energy_sweep(
    layer: Layer,
    total_macs: int,
    partition_counts: Sequence[int] = DEFAULT_PARTITIONS,
    params: EnergyParams = DEFAULT_ENERGY,
) -> List[Dict]:
    """Energy breakdown per partition count, one MAC budget."""
    rows: List[Dict] = []
    for count in partition_counts:
        if total_macs % count or total_macs // count < 64:
            continue
        config = paper_partitioned_config(total_macs, count)
        result = simulate_on(config, layer)
        breakdown = energy_of_result(result, params)
        rows.append(
            {
                "macs": total_macs,
                "partitions": count,
                "cycles": result.total_cycles,
                "e_mac": round(breakdown.mac, 1),
                "e_sram": round(breakdown.sram, 1),
                "e_dram": round(breakdown.dram, 1),
                "e_idle": round(breakdown.idle, 1),
                "e_total": round(breakdown.total, 1),
            }
        )
    return rows


def fig12_energy(
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    layer: Optional[Layer] = None,
    params: EnergyParams = DEFAULT_ENERGY,
) -> List[Dict]:
    """The full Fig. 12 sweep on the CBa_3 layer."""
    layer = layer or resnet50()[PAPER_CBA3_LAYER]
    return [row for macs in budgets for row in energy_sweep(layer, macs, params=params)]


def energy_optimal_partitions(rows: Sequence[Dict]) -> Dict[int, int]:
    """Map each MAC budget to its minimum-energy partition count."""
    optima: Dict[int, int] = {}
    best: Dict[int, float] = {}
    for row in rows:
        macs, energy = row["macs"], row["e_total"]
        if macs not in best or energy < best[macs]:
            best[macs] = energy
            optima[macs] = row["partitions"]
    return optima
