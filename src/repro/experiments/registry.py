"""Name-based dispatch over the paper's experiments."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import fig04, fig09, fig10, fig11, fig12, fig13, resilience, tables

_EXPERIMENTS: Dict[str, Callable[[], List[Dict]]] = {
    "table1": tables.table1_config_schema,
    "table2": tables.table2_topology_schema,
    "table3": tables.table3_mapping,
    "table4": tables.table4_language_dims,
    "fig4": fig04.fig04_validation,
    "fig9a": fig09.fig09a_search_space,
    "fig9b": lambda: fig09.fig09bc_aspect_sweep(2**14),
    "fig9c": lambda: fig09.fig09bc_aspect_sweep(2**16),
    "fig10a": fig10.fig10a_resnet,
    "fig10b": fig10.fig10b_language,
    "fig11abc": fig11.fig11_resnet_cba3,
    "fig11def": fig11.fig11_transformer_tf0,
    "fig12": fig12.fig12_energy,
    "fig13-resnet": fig13.fig13_resnet,
    "fig13-language": fig13.fig13_language,
    "fig14-resnet": fig13.fig14_resnet,
    "fig14-language": fig13.fig14_language,
    "resilience": resilience.resilience_experiment,
}


def available_experiments() -> List[str]:
    """Experiment ids accepted by :func:`run_experiment`, sorted."""
    return sorted(_EXPERIMENTS)


def run_experiment(name: str) -> List[Dict]:
    """Regenerate one paper table/figure; returns its data rows."""
    try:
        builder = _EXPERIMENTS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        ) from None
    return builder()
