"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Tuple

from repro.config.hardware import HardwareConfig
from repro.config.presets import paper_scaling_config
from repro.engine.results import LayerResult
from repro.engine.scaleout import ScaleOutSimulator
from repro.engine.simulator import Simulator
from repro.topology.layer import Layer

#: MAC budgets the paper sweeps across its figures.
PAPER_MAC_BUDGETS = [2**10, 2**12, 2**14, 2**16, 2**18]

#: Partition counts used by the Fig. 11/12 sweeps.
PARTITION_SWEEP = [1, 4, 16, 64, 256, 1024]


def square_grid(count: int) -> Tuple[int, int]:
    """Most-square power-of-two factorization of ``count`` (rows <= cols)."""
    rows = 1
    while rows * rows < count:
        rows <<= 1
    return (count // rows, rows)


def paper_partitioned_config(total_macs: int, partitions: int) -> HardwareConfig:
    """The Fig. 11/12 configuration: paper SRAM budget, square-ish
    arrays and grid for the given MAC budget and partition count."""
    array_shape = square_grid(total_macs // partitions)
    grid = square_grid(partitions)
    return paper_scaling_config(array_shape[0], array_shape[1], grid[0], grid[1])


def simulate_on(config: HardwareConfig, layer: Layer) -> LayerResult:
    """Route to the right cycle-accurate simulator for ``config``."""
    if config.is_monolithic:
        return Simulator(config).run_layer(layer)
    return ScaleOutSimulator(config).run_layer(layer)
