"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.config.hardware import HardwareConfig
from repro.config.presets import paper_scaling_config
from repro.engine.results import LayerResult
from repro.engine.scaleout import ScaleOutSimulator
from repro.engine.simulator import Simulator
from repro.errors import SimulationError
from repro.obs import trace
from repro.robust.executor import execute_point
from repro.robust.policy import ExecutionPolicy
from repro.topology.layer import Layer

#: MAC budgets the paper sweeps across its figures.
PAPER_MAC_BUDGETS = [2**10, 2**12, 2**14, 2**16, 2**18]

#: Partition counts used by the Fig. 11/12 sweeps.
PARTITION_SWEEP = [1, 4, 16, 64, 256, 1024]


def square_grid(count: int) -> Tuple[int, int]:
    """Most-square power-of-two factorization of ``count`` (rows <= cols)."""
    rows = 1
    while rows * rows < count:
        rows <<= 1
    return (count // rows, rows)


def paper_partitioned_config(total_macs: int, partitions: int) -> HardwareConfig:
    """The Fig. 11/12 configuration: paper SRAM budget, square-ish
    arrays and grid for the given MAC budget and partition count."""
    array_shape = square_grid(total_macs // partitions)
    grid = square_grid(partitions)
    return paper_scaling_config(array_shape[0], array_shape[1], grid[0], grid[1])


def simulate_on(
    config: HardwareConfig,
    layer: Layer,
    policy: Optional[ExecutionPolicy] = None,
    verify: bool = False,
    rel_tol: float = 0.0,
) -> LayerResult:
    """Route to the right cycle-accurate simulator for ``config``.

    ``policy`` runs the simulation through the fault-tolerant executor
    (retries + timeout); ``verify=True`` cross-checks the result against
    the analytical model and raises
    :class:`~repro.errors.InvariantError` on divergence.
    """

    def _run(**_params) -> dict:
        with trace.span(
            "experiment.simulate_on", layer=layer.name, config=config.describe()
        ):
            if config.is_monolithic:
                result = Simulator(config).run_layer(layer)
            else:
                result = ScaleOutSimulator(config).run_layer(layer)
        return {"result": result}

    if policy is None:
        result = _run()["result"]
    else:
        record = execute_point(
            _run, {}, policy=policy, key=f"{config.describe()}|{layer.name}"
        )
        if not record.succeeded:
            if record.exception is not None:
                raise record.exception
            raise SimulationError(
                f"layer {layer.name!r} failed after {record.attempts} "
                f"attempt(s): {record.error}"
            )
        result = record.rows[0]["result"]
    if verify:
        from repro.robust.invariants import check_layer_result

        check_layer_result(result, layer, config, rel_tol=rel_tol)
    return result
