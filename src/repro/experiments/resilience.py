"""Degraded-mode characterization: runtime vs dead partitions.

Not a paper figure — a scalability question the paper's methodology
makes easy to ask: how gracefully does a scale-out configuration
degrade as partitions fail?  For each fault count ``k`` the sweep kills
``k`` partitions (reproducibly, via :func:`repro.resilience
.random_fault_map`), re-maps the orphaned work onto the survivors, and
reports measured cycles against the closed-form degraded bound
(:func:`repro.analytical.runtime.degraded_scaleout_runtime`), plus the
NoC and energy cost of the re-routed traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analytical.runtime import degraded_scaleout_runtime
from repro.energy.model import energy_of_result
from repro.energy.params import DEFAULT_ENERGY, EnergyParams
from repro.errors import ResilienceError
from repro.experiments.common import paper_partitioned_config, simulate_on
from repro.mapping.dims import map_layer
from repro.noc.cost import layer_noc_cost
from repro.noc.mesh import NocConfig
from repro.resilience.faultmap import FaultMap, random_fault_map
from repro.topology.layer import Layer
from repro.workloads.resnet50 import PAPER_CBA3_LAYER, resnet50

DEFAULT_DEAD_COUNTS = (0, 1, 2, 4)


def degradation_sweep(
    layer: Layer,
    total_macs: int = 2**14,
    partitions: int = 16,
    dead_counts: Sequence[int] = DEFAULT_DEAD_COUNTS,
    seed: int = 0,
    fault_map: Optional[FaultMap] = None,
    params: EnergyParams = DEFAULT_ENERGY,
    verify: bool = True,
) -> List[Dict]:
    """Measure graceful degradation of one scale-out configuration.

    With ``fault_map`` given, exactly that scenario runs (one row);
    otherwise each ``k`` in ``dead_counts`` draws a reproducible
    scenario from ``seed``.  Every degraded result is cross-checked
    against the exact remap-plan prediction (``verify``).
    """
    healthy_config = paper_partitioned_config(total_macs, partitions)
    mapping = map_layer(layer, healthy_config.dataflow)
    baseline = simulate_on(healthy_config, layer, verify=verify)

    if fault_map is not None:
        scenarios = [fault_map]
    else:
        scenarios = [
            random_fault_map(
                healthy_config.partition_rows,
                healthy_config.partition_cols,
                dead_partitions=k,
                seed=seed,
            )
            for k in dead_counts
        ]

    rows: List[Dict] = []
    for scenario in scenarios:
        config = healthy_config.with_fault_map(None if scenario.is_healthy else scenario)
        result = simulate_on(config, layer, verify=verify)
        noc = layer_noc_cost(layer, config)
        energy = energy_of_result(result, params).with_noc(noc.energy(NocConfig())).total
        bound = degraded_scaleout_runtime(
            mapping,
            config.partition_rows,
            config.partition_cols,
            config.effective_array_rows,
            config.effective_array_cols,
            dead_partitions=len(scenario.dead_partitions),
        )
        rows.append(
            {
                "macs": total_macs,
                "partitions": partitions,
                "dead": len(scenario.dead_partitions),
                "dead_links": len(scenario.dead_links),
                "cycles": result.total_cycles,
                "slowdown": round(result.total_cycles / baseline.total_cycles, 4),
                "bound_cycles": bound,
                "remapped_tiles": result.remapped_tiles,
                "idle_parts": result.idle_partitions,
                "noc_byte_hops": noc.total_byte_hops,
                "port_bw": round(noc.port_bandwidth, 4),
                "e_total": round(energy, 1),
                "faults": scenario.to_spec(),
            }
        )
    return rows


def resilience_experiment(
    total_macs: int = 2**14,
    partitions: int = 16,
    dead_counts: Sequence[int] = DEFAULT_DEAD_COUNTS,
    seed: int = 0,
    layer: Optional[Layer] = None,
) -> List[Dict]:
    """The registry entry point: CBa_3 degradation on the default grid."""
    layer = layer or resnet50()[PAPER_CBA3_LAYER]
    return degradation_sweep(
        layer,
        total_macs=total_macs,
        partitions=partitions,
        dead_counts=dead_counts,
        seed=seed,
    )
