"""Paper experiments as library functions.

Each module regenerates one table or figure of the paper and returns
its data as a list of row dicts — the benchmarks assert on these, the
CLI ``reproduce`` subcommand prints them, and downstream users can call
them directly (e.g. to re-plot with different budgets).

``run_experiment(name)`` dispatches by the paper's figure/table id.
"""

from repro.experiments.registry import available_experiments, run_experiment

__all__ = ["available_experiments", "run_experiment"]
