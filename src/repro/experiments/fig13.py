"""Figs. 13/14: multi-workload performance-loss rankings."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analytical.multiworkload import WorkloadSet, pareto_search
from repro.workloads.language import TABLE_IV_DIMS, language_layer
from repro.workloads.resnet50 import resnet50

SCALEUP_BUDGETS = (2**8, 2**10, 2**12, 2**14, 2**16)
SCALEOUT_BUDGETS = (2**12, 2**14, 2**16)


def loss_rows(
    workloads: WorkloadSet,
    budgets: Sequence[int],
    scaleout: bool,
) -> List[Dict]:
    """Candidate losses normalized to the pareto-optimal config."""
    rows: List[Dict] = []
    for budget in budgets:
        _, ranking = pareto_search(workloads, budget, scaleout=scaleout)
        for rank, (cand, loss) in enumerate(ranking, start=1):
            rows.append(
                {
                    "macs": budget,
                    "rank": rank,
                    "config": cand.label(),
                    "perf_loss": round(loss, 4),
                }
            )
    return rows


def resnet_workloads() -> WorkloadSet:
    return WorkloadSet(name="resnet50", layers=tuple(resnet50()))


def language_workloads() -> WorkloadSet:
    return WorkloadSet(
        name="language", layers=tuple(language_layer(name) for name in TABLE_IV_DIMS)
    )


def fig13_resnet(budgets: Sequence[int] = SCALEUP_BUDGETS) -> List[Dict]:
    """Fig. 13, ResNet-50, monolithic candidates."""
    return loss_rows(resnet_workloads(), budgets, scaleout=False)


def fig13_language(budgets: Sequence[int] = SCALEUP_BUDGETS) -> List[Dict]:
    """Fig. 13, language models, monolithic candidates."""
    return loss_rows(language_workloads(), budgets, scaleout=False)


def fig14_resnet(budgets: Sequence[int] = SCALEOUT_BUDGETS) -> List[Dict]:
    """Fig. 14, ResNet-50, partitioned candidates."""
    return loss_rows(resnet_workloads(), budgets, scaleout=True)


def fig14_language(budgets: Sequence[int] = SCALEOUT_BUDGETS) -> List[Dict]:
    """Fig. 14, language models, partitioned candidates."""
    return loss_rows(language_workloads(), budgets, scaleout=True)
