"""Fig. 9: the scale-up/scale-out design space for one layer.

Both figures evaluate through the vectorized sweep compiler
(:func:`repro.perf.compiler.compile_search_space`), whose materialized
candidates are bit-identical to the scalar
:func:`repro.analytical.search.search_space` — the blessed golden rows
do not move.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.perf.compiler import compile_search_space
from repro.experiments.common import PAPER_MAC_BUDGETS
from repro.topology.layer import Layer
from repro.workloads.language import language_layer


def fig09a_search_space(
    layer: Optional[Layer] = None,
    budgets: Sequence[int] = tuple(PAPER_MAC_BUDGETS),
    min_array_dim: int = 8,
) -> List[Dict]:
    """Every (grid, array shape) point with normalized runtime (Fig. 9a)."""
    layer = layer or language_layer("TF0")
    rows: List[Dict] = []
    for budget in budgets:
        space = compile_search_space(
            layer, budget, min_array_dim=min_array_dim
        ).candidates()
        worst = max(cand.runtime for cand in space)
        for cand in space:
            rows.append(
                {
                    "macs": budget,
                    "partitions": f"{cand.partition_rows}x{cand.partition_cols}",
                    "num_partitions": cand.num_partitions,
                    "array": f"{cand.array_rows}x{cand.array_cols}",
                    "runtime": cand.runtime,
                    "normalized": cand.runtime / worst,
                }
            )
    return rows


def fig09bc_aspect_sweep(
    budget: int,
    layer: Optional[Layer] = None,
    min_array_dim: int = 8,
) -> List[Dict]:
    """Monolithic aspect-ratio sweep with utilization (Fig. 9b/c)."""
    layer = layer or language_layer("TF0")
    space = compile_search_space(
        layer, budget, min_array_dim=min_array_dim
    ).candidates()
    mono = [cand for cand in space if cand.is_monolithic]
    return [
        {
            "macs": budget,
            "array": f"{cand.array_rows}x{cand.array_cols}",
            "aspect_R:C": round(cand.aspect_ratio, 6),
            "runtime": cand.runtime,
            "utilization": round(cand.utilization, 4),
        }
        for cand in sorted(mono, key=lambda cand: cand.aspect_ratio)
    ]
