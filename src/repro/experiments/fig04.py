"""Fig. 4: simulator vs RTL-stand-in cycle validation."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analytical.runtime import unlimited_runtime
from repro.config.hardware import Dataflow
from repro.dataflow.factory import engine_for_gemm
from repro.golden.gemm import golden_gemm
from repro.mapping.dims import map_gemm

DEFAULT_SIZES = (4, 8, 16, 24, 32, 48, 64)


def fig04_validation(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 2020) -> List[Dict]:
    """Square GEMMs filling square arrays, full utilization, OS dataflow.

    Returns one row per array size with the trace-based simulator's
    cycles, the register-level golden model's cycles (the RTL stand-in)
    and the closed-form Eq. 1 value.
    """
    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    for size in sizes:
        engine = engine_for_gemm(size, size, size, Dataflow.OUTPUT_STATIONARY, size, size)
        a = rng.integers(-8, 8, (size, size))
        b = rng.integers(-8, 8, (size, size))
        golden = golden_gemm(a, b, Dataflow.OUTPUT_STATIONARY, size, size)
        analytical = unlimited_runtime(map_gemm(size, size, size, Dataflow.OUTPUT_STATIONARY))
        rows.append(
            {
                "array": f"{size}x{size}",
                "sim_cycles": engine.total_cycles(),
                "rtl_cycles": golden.cycles,
                "eq1_cycles": analytical,
            }
        )
    return rows
