"""Fig. 10: best scale-up vs best scale-out runtime ratios.

The optima come from the vectorized compiler selectors, which
reproduce the scalar tie-breaking exactly (equivalence is pinned by
tests), so every row matches the pre-compiler output bit for bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.perf.compiler import (
    best_scaleout_compiled as best_scaleout,
    best_scaleup_compiled as best_scaleup,
)
from repro.topology.layer import Layer
from repro.workloads.language import TABLE_IV_DIMS, language_layer
from repro.workloads.resnet50 import fig10_resnet_layers

DEFAULT_BUDGETS = (2**10, 2**12, 2**14, 2**16)


def ratio_rows(
    layers: Iterable[Layer],
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    min_array_dim: int = 8,
) -> List[Dict]:
    """One row per (layer, budget) with the monolithic/partitioned ratio."""
    rows: List[Dict] = []
    for layer in layers:
        for budget in budgets:
            up = best_scaleup(layer, budget)
            out = best_scaleout(layer, budget, min_array_dim=min_array_dim)
            rows.append(
                {
                    "layer": layer.name,
                    "degenerate": layer.gemm_m == 1,
                    "macs": budget,
                    "scaleup_cycles": up.runtime,
                    "scaleup_array": f"{up.array_rows}x{up.array_cols}",
                    "scaleout_cycles": out.runtime,
                    "scaleout_config": out.label(),
                    "ratio": round(up.runtime / out.runtime, 3),
                }
            )
    return rows


def fig10a_resnet(budgets: Sequence[int] = DEFAULT_BUDGETS) -> List[Dict]:
    """First and last five ResNet-50 layers (Fig. 10a)."""
    return ratio_rows(list(fig10_resnet_layers()), budgets)


def fig10b_language(budgets: Sequence[int] = DEFAULT_BUDGETS) -> List[Dict]:
    """The Table IV language layers (Fig. 10b)."""
    return ratio_rows([language_layer(name) for name in TABLE_IV_DIMS], budgets)
