"""Tables I-IV as data."""

from __future__ import annotations

from typing import Dict, List

from repro.config.hardware import Dataflow, HardwareConfig
from repro.mapping.dims import map_layer
from repro.topology.parser import TOPOLOGY_HEADER
from repro.workloads.language import TABLE_IV_DIMS, language_layer
from repro.workloads.resnet50 import resnet50

CONFIG_KEY_DESCRIPTIONS = {
    "ArrayHeight": "Number of rows of the MAC systolic array",
    "ArrayWidth": "Number of columns of the MAC systolic array",
    "IfmapSramSz": "Size of the working set SRAM for IFMAP in KB",
    "FilterSramSz": "Size of the working set SRAM for filters in KB",
    "OfmapSramSz": "Size of the working set SRAM for OFMAP in KB",
    "IfmapOffset": "Offset to the generated addresses for IFMAP px",
    "FilterOffset": "Offset to the generated addresses for filter px",
    "OfmapOffset": "Offset to the generated addresses for OFMAP px",
    "Dataflow": "Dataflow for this run: 'os', 'ws' or 'is'",
    "PartitionRows": "Rows of the scale-out partition grid",
    "PartitionCols": "Columns of the scale-out partition grid",
    "WordBytes": "Bytes per operand element",
    "RunName": "User defined tag",
}


def table1_config_schema() -> List[Dict]:
    """Table I: the hardware configuration keys with example values."""
    config = HardwareConfig()
    return [
        {
            "parameter": key,
            "example": value,
            "description": CONFIG_KEY_DESCRIPTIONS[key],
        }
        for key, value in config.as_dict().items()
    ]


def table2_topology_schema() -> List[Dict]:
    """Table II: the topology CSV columns, instantiated on Conv1."""
    example = resnet50()["Conv1"].as_row()
    return [{"column": key, "example": example[key]} for key in TOPOLOGY_HEADER]


def table3_mapping(layer_name: str = "CB2a_2") -> List[Dict]:
    """Table III: S_R/S_C/T per dataflow, on a concrete conv layer."""
    layer = resnet50()[layer_name]
    rows = []
    for dataflow in Dataflow:
        mapping = map_layer(layer, dataflow)
        rows.append(
            {
                "dataflow": dataflow.value,
                "S_R": mapping.sr,
                "S_C": mapping.sc,
                "T": mapping.t,
            }
        )
    return rows


def table4_language_dims() -> List[Dict]:
    """Table IV: the language-model GEMM dimensions."""
    return [
        {
            "name": name,
            "S_R": language_layer(name).gemm_m,
            "T": language_layer(name).gemm_k,
            "S_C": language_layer(name).gemm_n,
        }
        for name in TABLE_IV_DIMS
    ]
