"""Table III: spatio-temporal allocation of DNN dimensions per dataflow.

A layer lowers to a GEMM with dimensions

* ``N_ofmap`` — OFMAP pixels generated per filter (``gemm_m``),
* ``W_conv`` — partial sums per output pixel, i.e. window size (``gemm_k``),
* ``N_filter`` — number of filters (``gemm_n``).

Each dataflow assigns these to spatial rows ``S_R``, spatial columns
``S_C`` and the temporal dimension ``T`` (Table III):

================== ========= ========= =========
Dataflow            S_R       S_C       T
================== ========= ========= =========
Output stationary   N_ofmap   N_filter  W_conv
Weight stationary   W_conv    N_filter  N_ofmap
Input stationary    W_conv    N_ofmap   N_filter
================== ========= ========= =========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.hardware import Dataflow
from repro.errors import MappingError
from repro.topology.layer import Layer
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class OperandMapping:
    """The ``(S_R, S_C, T)`` triple a dataflow induces for one layer.

    ``sr`` counts rows of the spatial mapping, ``sc`` columns, and ``t``
    the temporal depth: the number of operands streamed through (or
    accumulated into) each mapped PE.
    """

    sr: int
    sc: int
    t: int
    dataflow: Dataflow

    def __post_init__(self) -> None:
        for field_name in ("sr", "sc", "t"):
            try:
                check_positive_int(getattr(self, field_name), field_name)
            except ValueError as exc:
                raise MappingError(str(exc)) from exc

    @property
    def macs(self) -> int:
        """Total MAC operations: S_R * S_C * T for every dataflow."""
        return self.sr * self.sc * self.t

    @property
    def max_parallelism(self) -> int:
        """PEs usable simultaneously: the full spatial extent S_R * S_C."""
        return self.sr * self.sc

    def transpose(self) -> "OperandMapping":
        """Swap rows and columns (used when mirroring aspect ratios)."""
        return OperandMapping(sr=self.sc, sc=self.sr, t=self.t, dataflow=self.dataflow)


def map_gemm(m: int, k: int, n: int, dataflow: Dataflow) -> OperandMapping:
    """Map a bare (M x K) @ (K x N) GEMM under ``dataflow`` per Table III.

    ``M`` = N_ofmap, ``K`` = W_conv, ``N`` = N_filter.
    """
    check_positive_int(m, "m")
    check_positive_int(k, "k")
    check_positive_int(n, "n")
    if dataflow is Dataflow.OUTPUT_STATIONARY:
        return OperandMapping(sr=m, sc=n, t=k, dataflow=dataflow)
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        return OperandMapping(sr=k, sc=n, t=m, dataflow=dataflow)
    if dataflow is Dataflow.INPUT_STATIONARY:
        return OperandMapping(sr=k, sc=m, t=n, dataflow=dataflow)
    raise MappingError(f"unsupported dataflow: {dataflow!r}")


def map_layer(layer: Layer, dataflow: Dataflow) -> OperandMapping:
    """Map ``layer`` onto a systolic array under ``dataflow`` per Table III."""
    return map_gemm(layer.gemm_m, layer.gemm_k, layer.gemm_n, dataflow)


def map_gemm_batch(m, k, n, dataflow: Dataflow) -> tuple:
    """Batched Table III: map whole arrays of GEMMs in one pass.

    ``m``/``k``/``n`` are array-likes of equal length; the return value
    is the ``(sr, sc, t)`` triple of int64 numpy arrays that
    :func:`map_gemm` would produce per element.  The permutation is a
    pure relabeling, so one call covers any batch sharing a dataflow
    (the sweep compiler's per-grid case).
    """
    import numpy as np

    m = np.asarray(m, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    n = np.asarray(n, dtype=np.int64)
    for name, dim in (("m", m), ("k", k), ("n", n)):
        if dim.size and dim.min() < 1:
            raise MappingError(f"{name} must be positive, got {dim.min()}")
    if dataflow is Dataflow.OUTPUT_STATIONARY:
        return m, n, k
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        return k, n, m
    if dataflow is Dataflow.INPUT_STATIONARY:
        return k, m, n
    raise MappingError(f"unsupported dataflow: {dataflow!r}")


def gemm_from_mapping(sr: int, sc: int, t: int, dataflow: Dataflow) -> tuple:
    """Invert Table III: recover ``(M, K, N)`` from a mapped ``(S_R, S_C, T)``.

    Used by the scale-out engine, which partitions workloads in mapped
    space (Eq. 5) and then needs a GEMM to hand each partition's
    single-array engine.  ``map_gemm(*gemm_from_mapping(...))`` is the
    identity on ``(sr, sc, t)``.
    """
    check_positive_int(sr, "sr")
    check_positive_int(sc, "sc")
    check_positive_int(t, "t")
    if dataflow is Dataflow.OUTPUT_STATIONARY:
        return (sr, t, sc)
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        return (t, sr, sc)
    if dataflow is Dataflow.INPUT_STATIONARY:
        return (sc, sr, t)
    raise MappingError(f"unsupported dataflow: {dataflow!r}")
