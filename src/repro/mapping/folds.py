"""Fold (tiling) arithmetic — Sec. III-B2 of the paper.

When ``S_R x S_C`` exceeds the physical ``R x C`` array, the workload is
sliced into *folds*: ``F_R = ceil(S_R / R)`` row folds by
``F_C = ceil(S_C / C)`` column folds (Eq. 2).  SCALE-Sim v1 executes
folds back to back; each fold maps ``r <= R`` rows and ``c <= C``
columns, with edge folds mapping the remainders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import MappingError
from repro.mapping.dims import OperandMapping
from repro.utils.mathutils import ceil_div
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class Fold:
    """One tile of the spatial mapping.

    ``row_index`` / ``col_index`` locate the fold in the F_R x F_C fold
    grid; ``rows`` / ``cols`` give how many array rows/columns carry
    valid mappings in this fold; ``row_offset`` / ``col_offset`` give
    the starting coordinates of the tile inside the S_R x S_C space.
    """

    row_index: int
    col_index: int
    rows: int
    cols: int
    row_offset: int
    col_offset: int

    @property
    def mapped_pes(self) -> int:
        """PEs with valid work in this fold."""
        return self.rows * self.cols


@dataclass(frozen=True)
class FoldPlan:
    """The complete tiling of one mapped layer onto one array."""

    mapping: OperandMapping
    array_rows: int
    array_cols: int

    def __post_init__(self) -> None:
        check_positive_int(self.array_rows, "array_rows")
        check_positive_int(self.array_cols, "array_cols")

    @property
    def row_folds(self) -> int:
        """F_R = ceil(S_R / R)  (Eq. 2)."""
        return ceil_div(self.mapping.sr, self.array_rows)

    @property
    def col_folds(self) -> int:
        """F_C = ceil(S_C / C)  (Eq. 2)."""
        return ceil_div(self.mapping.sc, self.array_cols)

    @property
    def num_folds(self) -> int:
        return self.row_folds * self.col_folds

    def fold_rows(self, row_index: int) -> int:
        """Array rows mapped in row-fold ``row_index`` (remainder on the edge)."""
        if not 0 <= row_index < self.row_folds:
            raise MappingError(f"row_index {row_index} out of range [0, {self.row_folds})")
        if row_index < self.row_folds - 1:
            return self.array_rows
        return self.mapping.sr - self.array_rows * (self.row_folds - 1)

    def fold_cols(self, col_index: int) -> int:
        """Array columns mapped in col-fold ``col_index``."""
        if not 0 <= col_index < self.col_folds:
            raise MappingError(f"col_index {col_index} out of range [0, {self.col_folds})")
        if col_index < self.col_folds - 1:
            return self.array_cols
        return self.mapping.sc - self.array_cols * (self.col_folds - 1)

    def folds(self, order: str = "row") -> Iterator[Fold]:
        """Yield folds in execution order over the fold grid.

        ``order="row"`` is SCALE-Sim's default: for each row fold, all
        column folds are visited before moving on.  ``order="col"``
        transposes the loop nest.  The order does not change runtime
        (the same folds execute back to back) but decides which operand
        slice stays resident between consecutive folds, and therefore
        the DRAM traffic of the reuse model.
        """
        if order not in ("row", "col"):
            raise MappingError(f"order must be 'row' or 'col', got {order!r}")
        if order == "row":
            index_pairs = (
                (fr, fc)
                for fr in range(self.row_folds)
                for fc in range(self.col_folds)
            )
        else:
            index_pairs = (
                (fr, fc)
                for fc in range(self.col_folds)
                for fr in range(self.row_folds)
            )
        for fr, fc in index_pairs:
            yield Fold(
                row_index=fr,
                col_index=fc,
                rows=self.fold_rows(fr),
                cols=self.fold_cols(fc),
                row_offset=fr * self.array_rows,
                col_offset=fc * self.array_cols,
            )

    def fold_shapes(self) -> List[Tuple[int, int]]:
        """Return the (rows, cols) of every fold, in execution order."""
        return [(fold.rows, fold.cols) for fold in self.folds()]

    # ------------------------------------------------------------------
    # Shape classes (closed-form aggregation)
    # ------------------------------------------------------------------
    #
    # The fold grid has at most two distinct row extents (full rows and
    # one remainder edge) and two distinct column extents, so every fold
    # belongs to one of at most four *shape classes* (interior,
    # edge-row, edge-col, corner).  Quantities that depend only on a
    # fold's shape — latency, SRAM counts, mapped PEs — can therefore be
    # aggregated from class multiplicities in O(1) instead of iterating
    # all F_R x F_C folds.

    def row_classes(self) -> List[Tuple[int, int, int]]:
        """Distinct row-fold extents, in execution order.

        Each entry is ``(rows, count, first_index)``: the mapped row
        extent, how many row folds share it, and the fold-grid row index
        of a representative.  Full rows come first, the remainder edge
        last; the two entries collapse to one when F_R == 1.
        """
        folds = self.row_folds
        edge = self.mapping.sr - self.array_rows * (folds - 1)
        if folds == 1:
            return [(edge, 1, 0)]
        return [(self.array_rows, folds - 1, 0), (edge, 1, folds - 1)]

    def col_classes(self) -> List[Tuple[int, int, int]]:
        """Distinct col-fold extents: ``(cols, count, first_index)``."""
        folds = self.col_folds
        edge = self.mapping.sc - self.array_cols * (folds - 1)
        if folds == 1:
            return [(edge, 1, 0)]
        return [(self.array_cols, folds - 1, 0), (edge, 1, folds - 1)]

    def fold_at(self, row_index: int, col_index: int) -> Fold:
        """Build the fold at one position of the fold grid."""
        return Fold(
            row_index=row_index,
            col_index=col_index,
            rows=self.fold_rows(row_index),
            cols=self.fold_cols(col_index),
            row_offset=row_index * self.array_rows,
            col_offset=col_index * self.array_cols,
        )

    def shape_classes(self) -> List[Tuple[Fold, int]]:
        """The at-most-four fold shape classes with their multiplicities.

        Each entry pairs a representative :class:`Fold` (with genuine
        grid indices and offsets) with the number of folds sharing its
        ``(rows, cols)`` position class.  The multiplicities sum to
        :attr:`num_folds`.
        """
        return [
            (self.fold_at(ri, ci), r_count * c_count)
            for _, r_count, ri in self.row_classes()
            for _, c_count, ci in self.col_classes()
        ]

    @property
    def total_mapped_pe_cycles(self) -> int:
        """Sum over folds of mapped PEs x T: the MAC-active cycle count.

        Every mapped PE performs exactly T useful MACs per fold in each
        of the three dataflows, so this equals the layer's MAC count.
        Computed from shape-class multiplicities (the per-fold mapped-PE
        sum telescopes to S_R x S_C).
        """
        return self.mapping.t * sum(
            count * fold.mapped_pes for fold, count in self.shape_classes()
        )


def plan_folds(mapping: OperandMapping, array_rows: int, array_cols: int) -> FoldPlan:
    """Build the fold plan for ``mapping`` on an ``array_rows x array_cols`` array."""
    return FoldPlan(mapping=mapping, array_rows=array_rows, array_cols=array_cols)
