"""Spatio-temporal mapping of layers onto systolic arrays (Table III)."""

from repro.mapping.dims import OperandMapping, gemm_from_mapping, map_layer, map_gemm
from repro.mapping.folds import Fold, FoldPlan, plan_folds

__all__ = [
    "OperandMapping",
    "gemm_from_mapping",
    "map_layer",
    "map_gemm",
    "Fold",
    "FoldPlan",
    "plan_folds",
]
