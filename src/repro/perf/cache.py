"""Process-wide LRU cache for simulated layer results.

The cycle-accurate simulator is a pure function of the GEMM shape and
the hardware configuration: ``(m, k, n, dataflow, R, C, SRAM sizes,
word_bytes, loop_order, fault state)`` fully determine the
:class:`~repro.engine.results.LayerResult` and
:class:`~repro.memory.bandwidth.DramTraffic`.  Sweeps hit the same key
constantly — ResNet-50 repeats conv shapes, every scale-out layer
collapses to at most four distinct tile GEMMs, and pareto searches
revisit whole configurations — so memoizing the pair is a large win at
zero accuracy cost.

The cache is bounded (LRU eviction), thread-safe (the retry/timeout
executor runs attempts on worker threads), disabled at a flip of a
switch, and observable: hits/misses/evictions are mirrored into
``repro.obs.metrics`` (as ``perf.cache.*`` counters) whenever metrics
are enabled, and always available locally via :meth:`SimulationCache.info`.

Cached results are keyed on everything the simulator reads; the fault
spec is part of the key so degraded configurations can never alias
healthy ones.  Layer names are *not* part of the key — a hit is
re-labelled for the requesting layer via ``dataclasses.replace``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable, Optional, Tuple

from repro.obs import metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.hardware import HardwareConfig
    from repro.engine.results import LayerResult
    from repro.memory.bandwidth import DramTraffic

#: Default bound: at ~1 KiB per entry this caps the cache near 4 MiB.
DEFAULT_MAX_ENTRIES = 4096

CacheValue = Tuple["LayerResult", "DramTraffic"]


def simulation_key(
    config: "HardwareConfig",
    array_rows: int,
    array_cols: int,
    m: int,
    k: int,
    n: int,
    loop_order: str,
) -> Hashable:
    """The memoization key for one GEMM on one array configuration.

    ``array_rows`` / ``array_cols`` are the *effective* dimensions the
    engine was built with (dead PE rows/columns already subtracted);
    the fault spec is still included so fault-dependent behaviour can
    never alias a healthy configuration with the same effective shape.
    """
    fault = config.fault_map
    fault_spec = None if fault is None or fault.is_healthy else fault.to_spec()
    return (
        m,
        k,
        n,
        config.dataflow.value,
        array_rows,
        array_cols,
        config.ifmap_sram_kb,
        config.filter_sram_kb,
        config.ofmap_sram_kb,
        config.word_bytes,
        loop_order,
        fault_spec,
    )


class SimulationCache:
    """Bounded, thread-safe LRU map from simulation key to result pair."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, CacheValue]" = OrderedDict()
        self._enabled = True
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Switches
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        """Escape hatch: stop memoizing and drop all entries."""
        with self._lock:
            self._enabled = False
            self._entries.clear()

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def reset(self) -> None:
        """Restore the pristine state: empty, enabled, zeroed counters."""
        with self._lock:
            self._entries.clear()
            self._enabled = True
            self._hits = self._misses = self._evictions = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[CacheValue]:
        """Return the cached pair for ``key``, or None; counts the probe."""
        if not self._enabled:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
        if metrics.enabled:
            metrics.counter("perf.cache.hits" if value is not None else "perf.cache.misses").add()
        return value

    def put(self, key: Hashable, value: CacheValue) -> None:
        """Insert ``key``; evicts least-recently-used entries past the bound."""
        if not self._enabled:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted and metrics.enabled:
            metrics.counter("perf.cache.evictions").add(evicted)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> dict:
        """Local counter snapshot (independent of ``repro.obs.metrics``)."""
        with self._lock:
            probes = self._hits + self._misses
            return {
                "enabled": self._enabled,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / probes if probes else 0.0,
            }


#: The process-wide cache instance the simulators consult.
cache = SimulationCache()
