"""Multiprocess grid execution with serial-identical semantics.

:func:`execute_grid_parallel` is the ``workers > 1`` backend of
:func:`repro.robust.executor.execute_grid`.  Grid points are submitted
to a :class:`concurrent.futures.ProcessPoolExecutor` up front, but
their outcomes are *drained strictly in points order* through the same
:class:`~repro.robust.executor._GridRun` bookkeeping the serial loop
uses.  That single design decision buys exact serial equivalence:

* records (and therefore sweep rows and CSVs) appear in points order;
* failures are counted in points order, so the circuit breaker trips
  after the same point as a serial run — results already computed for
  later points are discarded, never settled or journalled;
* the checkpoint journal is written only from the parent process, in
  points order, so an interrupted parallel sweep resumes exactly like
  an interrupted serial one;
* progress snapshots fire once per settled point, in order.

Worker processes execute :func:`repro.robust.executor.execute_point`
with the full retry/backoff/timeout policy and return the record plus
the delta of every ``repro.obs`` counter the point moved (simulated
cycles, cache hits, retries, ...); the parent merges those deltas so
metrics accounting matches a serial run.  Worker-side trace spans are
process-local and are not forwarded.
"""

from __future__ import annotations

import concurrent.futures
import logging
import pickle
from dataclasses import replace
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.obs import metrics, trace
from repro.obs.progress import ProgressSnapshot
from repro.robust.checkpoint import CheckpointStore
from repro.robust.policy import ExecutionPolicy
from repro.robust.report import PointRecord, RunReport

logger = logging.getLogger("repro.perf.parallel")


def pickle_problem(
    fn: Callable[..., object],
    points: Sequence[Dict],
    policy: ExecutionPolicy,
) -> Optional[str]:
    """Why this grid cannot cross a process boundary, or ``None`` if it can."""
    for label, obj in (("the point callable", fn), ("the policy", policy)):
        try:
            pickle.dumps(obj)
        except Exception as exc:  # noqa: BLE001 - any failure means fallback
            return f"{label} is not picklable ({type(exc).__name__}: {exc})"
    try:
        pickle.dumps(list(points))
    except Exception as exc:  # noqa: BLE001
        return f"the grid points are not picklable ({type(exc).__name__}: {exc})"
    return None


def _counter_snapshot() -> Dict[str, int]:
    if not metrics.enabled:
        return {}
    return dict(metrics.snapshot().get("counters", {}))


def _run_point_task(
    fn: Callable[..., object],
    params: Dict,
    policy: ExecutionPolicy,
    key: str,
) -> Tuple[PointRecord, Dict[str, int]]:
    """Worker-side execution of one grid point.

    Returns the point's record plus the delta of every counter the
    point moved in this worker process, so the parent can merge the
    accounting.  The record's live exception object is dropped when it
    cannot be pickled back (the error string and chain always survive).
    """
    from repro.robust.executor import execute_point

    before = _counter_snapshot()
    record = execute_point(fn, params, policy=policy, key=key)
    after = _counter_snapshot()
    deltas = {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] != before.get(name, 0)
    }
    if record.exception is not None:
        try:
            pickle.dumps(record.exception)
        except Exception:  # noqa: BLE001 - exotic exceptions stay worker-side
            record = replace(record, exception=None)
    return record, deltas


def _merge_counter_deltas(deltas: Dict[str, int]) -> None:
    if not deltas or not metrics.enabled:
        return
    for name, delta in deltas.items():
        metrics.counter(name).add(delta)


def execute_grid_parallel(
    fn: Callable[..., object],
    points: Sequence[Dict],
    policy: ExecutionPolicy,
    checkpoint: Optional[CheckpointStore],
    clock: Callable[[], float],
    on_progress: Optional[Callable[[ProgressSnapshot], None]],
    workers: int,
) -> RunReport:
    """Drain a process-pool grid in points order through ``_GridRun``.

    Call through :func:`repro.robust.executor.execute_grid` — it owns
    the picklability and clock checks that make the fallback safe.
    """
    from repro.robust.executor import _GridRun

    run = _GridRun(points, policy, checkpoint, clock, on_progress)
    futures: Dict[int, concurrent.futures.Future] = {}
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        try:
            for index, params in enumerate(points):
                if checkpoint is not None and checkpoint.completed(params):
                    continue  # will be replayed as `cached` at its drain turn
                futures[index] = pool.submit(
                    _run_point_task, fn, params, policy, run.key(index, params)
                )
            for index, params in enumerate(points):
                if run.tripped:
                    future = futures.pop(index, None)
                    if future is not None:
                        future.cancel()
                    run.settle_skipped(params)
                    continue
                if run.try_replay(params):
                    # Journalled before the run, or by an earlier
                    # duplicate point during this drain.
                    future = futures.pop(index, None)
                    if future is not None:
                        future.cancel()
                    continue
                future = futures.pop(index)
                with trace.span("robust.grid_point", key=run.key(index, params)):
                    record, deltas = future.result()
                _merge_counter_deltas(deltas)
                run.finish_executed(record, params)
        except BaseException:
            for future in futures.values():
                future.cancel()
            raise
    return run.report()
