"""Multiprocess grid execution with serial-identical semantics.

:func:`execute_grid_parallel` is the ``workers > 1`` backend of
:func:`repro.robust.executor.execute_grid`.  Since the supervised pool
landed it is a thin front door over
:func:`repro.robust.supervisor.execute_grid_supervised`, which drains a
:class:`concurrent.futures.ProcessPoolExecutor` *strictly in points
order* through the same :class:`~repro.robust.executor._GridRun`
bookkeeping the serial loop uses.  That single design decision buys
exact serial equivalence:

* records (and therefore sweep rows and CSVs) appear in points order;
* failures are counted in points order, so the circuit breaker trips
  after the same point as a serial run — results already computed for
  later points are discarded, never settled or journalled;
* the checkpoint journal is written only from the parent process, in
  points order, so an interrupted parallel sweep resumes exactly like
  an interrupted serial one;
* progress snapshots fire once per settled point, in order.

Worker processes execute :func:`repro.robust.executor.execute_point`
with the full retry/backoff/timeout policy and return the record plus
the delta of every ``repro.obs`` counter the point moved (simulated
cycles, cache hits, retries, ...); the parent merges those deltas so
metrics accounting matches a serial run.  Worker-side trace spans are
process-local and are not forwarded.

On top of that contract the supervisor adds crash recovery, per-point
resource ceilings, hung-worker detection and graceful SIGINT/SIGTERM
shutdown — see :mod:`repro.robust.supervisor` for the failure-mode
semantics.
"""

from __future__ import annotations

import logging
import pickle
from typing import Callable, Dict, Optional, Sequence

from repro.obs.progress import ProgressSnapshot
from repro.robust.checkpoint import PointJournal
from repro.robust.policy import ExecutionPolicy
from repro.robust.report import RunReport
from repro.robust.supervisor import SupervisorPolicy, execute_grid_supervised

logger = logging.getLogger("repro.perf.parallel")


def pickle_problem(
    fn: Callable[..., object],
    points: Sequence[Dict],
    policy: ExecutionPolicy,
) -> Optional[str]:
    """Why this grid cannot cross a process boundary, or ``None`` if it can."""
    for label, obj in (("the point callable", fn), ("the policy", policy)):
        try:
            pickle.dumps(obj)
        except Exception as exc:  # noqa: BLE001 - any failure means fallback
            return f"{label} is not picklable ({type(exc).__name__}: {exc})"
    try:
        pickle.dumps(list(points))
    except Exception as exc:  # noqa: BLE001
        return f"the grid points are not picklable ({type(exc).__name__}: {exc})"
    return None


def execute_grid_parallel(
    fn: Callable[..., object],
    points: Sequence[Dict],
    policy: ExecutionPolicy,
    checkpoint: Optional[PointJournal],
    clock: Callable[[], float],
    on_progress: Optional[Callable[[ProgressSnapshot], None]],
    workers: int,
    supervisor: Optional[SupervisorPolicy] = None,
) -> RunReport:
    """Drain a supervised process-pool grid in points order.

    Call through :func:`repro.robust.executor.execute_grid` — it owns
    the picklability and clock checks that make the fallback safe.
    """
    return execute_grid_supervised(
        fn,
        points,
        policy=policy,
        checkpoint=checkpoint,
        clock=clock,
        on_progress=on_progress,
        workers=workers,
        supervisor=supervisor,
    )
