"""Sweep compiler: whole design-space grids as a few numpy passes.

``repro.analytical.search.search_space`` prices one candidate per
Python-level call; this module *compiles* the identical enumeration —
(partition grid x array shape) for one (layer, dataflow, MAC budget) —
into columnar int64 arrays and evaluates Eq. 1-6 runtime, mapping
utilization, the exact engine cycle count and the per-operand
closed-form DRAM traffic for every point in a handful of vectorized
kernels (:mod:`repro.analytical.vectorized`).  The shape-class
aggregation the fold planner applies per layer (at most two distinct
tile sizes per axis under ``split_evenly``) is lifted to the whole
grid: exact scale-out totals cost four vectorized passes, not
``P_R * P_C`` per point.

On top of the compiled arrays sits *analytical pruning* (the paper's
own Sec. III methodology, industrialized): the cycle-accurate engine
runs only on the frontier — the ``top_k`` analytically fastest points
plus everything within ``prune_band`` of the analytical optimum — and
the rest of the grid keeps its closed-form estimate.  Observability
counters account for every decision:

* ``perf.compiler.points`` — grid points compiled,
* ``perf.compiler.pruned`` — points settled analytically,
* ``perf.compiler.simulated`` — points handed to the engine,
* ``perf.compiler.reused`` — frontier points replayed from a journal
  or sweep ledger instead of re-simulated (incremental re-sweep).

Everything here is bit-identical to the scalar reference:
``CompiledSpace.candidates()`` equals ``search_space(...)`` element for
element, and the compiled best-config selectors reproduce the scalar
tie-breaking exactly (first minimum for scale-up, ``(runtime,
num_partitions)`` lexicographic first-minimum for scale-out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - hint-only import
    from repro.robust.checkpoint import PointJournal

from repro.analytical.search import (
    CandidateConfig,
    _as_mapping,
    _partition_counts,
    _shapes,
    partition_grids,
)
from repro.analytical.vectorized import (
    ceil_div_v,
    estimate_traffic_v,
    exact_cycles_v,
    mapping_utilization_v,
    scaleup_runtime_v,
)
from repro.config.hardware import Dataflow, HardwareConfig
from repro.errors import SearchError
from repro.mapping.dims import OperandMapping
from repro.obs import metrics
from repro.topology.layer import Layer
from repro.utils.validation import check_positive_int

#: Default engine budget of the pruned frontier: the k analytically
#: fastest points always simulate ...
DEFAULT_TOP_K = 8

#: ... plus every point within this relative band of the analytical
#: optimum.  Eq. 4 charges edge folds the full-array latency, so the
#: engine can only be faster; a generous band keeps the true engine
#: optimum inside the simulated set (property-tested on the paper's
#: workloads).
DEFAULT_PRUNE_BAND = 0.25


@dataclass(frozen=True)
class CompiledSpace:
    """One design space, columnar: arrays over all candidate points."""

    mapping: OperandMapping
    total_macs: int
    min_array_dim: int
    partition_rows: np.ndarray
    partition_cols: np.ndarray
    array_rows: np.ndarray
    array_cols: np.ndarray
    runtime: np.ndarray
    utilization: np.ndarray

    def __len__(self) -> int:
        return int(self.runtime.shape[0])

    @property
    def dataflow(self) -> Dataflow:
        return self.mapping.dataflow

    @property
    def num_partitions(self) -> np.ndarray:
        return self.partition_rows * self.partition_cols

    # ------------------------------------------------------------------
    # Materialization (bit-identical to the scalar search)
    # ------------------------------------------------------------------
    def candidate(self, index: int) -> CandidateConfig:
        return CandidateConfig(
            partition_rows=int(self.partition_rows[index]),
            partition_cols=int(self.partition_cols[index]),
            array_rows=int(self.array_rows[index]),
            array_cols=int(self.array_cols[index]),
            runtime=int(self.runtime[index]),
            utilization=float(self.utilization[index]),
            dataflow=self.dataflow,
        )

    def candidates(self) -> List[CandidateConfig]:
        """Materialize every point, in scalar enumeration order."""
        return [self.candidate(i) for i in range(len(self))]

    # ------------------------------------------------------------------
    # Optima (scalar tie-breaking, vectorized selection)
    # ------------------------------------------------------------------
    def best_index(self, include_monolithic: bool = True) -> int:
        """Index of the scalar-identical best point.

        ``np.lexsort`` is stable, so the first row of the ``(runtime,
        num_partitions)`` ordering is exactly what
        ``min(pool, key=lambda c: (c.runtime, c.num_partitions))``
        picks in enumeration order.
        """
        parts = self.num_partitions
        eligible = np.ones(len(self), dtype=bool)
        if not include_monolithic:
            eligible = parts > 1
            if not eligible.any():
                raise SearchError(
                    f"no partitioned configuration exists for {self.total_macs} "
                    f"MACs with arrays at least "
                    f"{self.min_array_dim}x{self.min_array_dim}"
                )
        pool = np.nonzero(eligible)[0]
        order = np.lexsort((parts[pool], self.runtime[pool]))
        return int(pool[order[0]])

    # ------------------------------------------------------------------
    # Frontier selection
    # ------------------------------------------------------------------
    def frontier(
        self,
        top_k: int = DEFAULT_TOP_K,
        prune_band: float = DEFAULT_PRUNE_BAND,
    ) -> List[int]:
        """Indices worth cycle-accurate simulation (ascending)."""
        return frontier_indices(self.runtime, top_k=top_k, prune_band=prune_band)

    # ------------------------------------------------------------------
    # Exact scale-out traffic: shape classes per grid, four passes
    # ------------------------------------------------------------------
    def scaleout_traffic(
        self, config: Optional[HardwareConfig] = None
    ) -> "CompiledTraffic":
        """Exact per-point DRAM totals and engine cycles, vectorized.

        ``split_evenly`` hands each partition one of at most two tile
        sizes per axis, so every grid point decomposes into <= 4 shape
        classes.  Evaluating each class across *all* points at once (the
        per-grid lift of ``FoldPlan.shape_classes``) yields totals that
        match the engine's summed per-partition traffic and max-share
        cycle count exactly, with partition-divided SRAM working sets.
        """
        if config is None:
            from repro.config.presets import paper_scaling_config

            config = paper_scaling_config(8, 8)
        sr, sc, t = self.mapping.sr, self.mapping.sc, self.mapping.t
        pr = self.partition_rows
        pc = self.partition_cols
        parts = pr * pc
        # Partition-divided SRAM, exactly as HardwareConfig.partition_config.
        ifmap_working = (np.maximum(1, config.ifmap_sram_kb // parts) * 1024) // 2
        filter_working = (np.maximum(1, config.filter_sram_kb // parts) * 1024) // 2

        hi_r, lo_r = ceil_div_v(sr, pr), sr // pr
        hi_c, lo_c = ceil_div_v(sc, pc), sc // pc
        n_hi_r = sr % pr
        n_hi_c = sc % pc
        n_lo_r = pr - n_hi_r
        n_lo_c = pc - n_hi_c
        # When the split is even, hi == lo: the "hi" class count is zero
        # and the lo class carries every partition.
        even_r = n_hi_r == 0
        even_c = n_hi_c == 0
        n_hi_r = np.where(even_r, 0, n_hi_r)
        n_lo_r = np.where(even_r, pr, n_lo_r)
        n_hi_c = np.where(even_c, 0, n_hi_c)
        n_lo_c = np.where(even_c, pc, n_lo_c)

        read = np.zeros(len(self), dtype=np.int64)
        write = np.zeros(len(self), dtype=np.int64)
        for tile_sr, count_r in ((hi_r, n_hi_r), (lo_r, n_lo_r)):
            for tile_sc, count_c in ((hi_c, n_hi_c), (lo_c, n_lo_c)):
                # Zero-extent tiles are idle partitions: no traffic.
                count = np.where(
                    (tile_sr > 0) & (tile_sc > 0), count_r * count_c, 0
                )
                ifmap, filt, ofmap, _ = estimate_traffic_v(
                    tile_sr,
                    tile_sc,
                    t,
                    self.dataflow,
                    self.array_rows,
                    self.array_cols,
                    ifmap_working,
                    filter_working,
                    config.word_bytes,
                )
                read = read + count * (ifmap + filt)
                write = write + count * ofmap
        cycles = exact_cycles_v(hi_r, hi_c, t, self.array_rows, self.array_cols)
        return CompiledTraffic(read_bytes=read, write_bytes=write, cycles=cycles)


@dataclass(frozen=True)
class CompiledTraffic:
    """Exact per-point scale-out totals from the compiled shape classes."""

    read_bytes: np.ndarray
    write_bytes: np.ndarray
    #: Exact engine cycle count of the slowest (ceil-tile) partition.
    cycles: np.ndarray

    @property
    def total_bytes(self) -> np.ndarray:
        return self.read_bytes + self.write_bytes

    @property
    def avg_total_bw(self) -> np.ndarray:
        return self.total_bytes / self.cycles


def compile_search_space(
    workload: Union[Layer, OperandMapping],
    total_macs: int,
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY,
    min_array_dim: int = 8,
) -> CompiledSpace:
    """Compile the full scale-up + scale-out space into columnar arrays.

    The enumeration loops mirror
    :func:`repro.analytical.search.search_space` exactly (same order,
    same dimension floors); only the per-point Eq. 5/6 evaluation is
    replaced by vectorized kernels, so ``.candidates()`` is
    element-for-element equal to the scalar result.
    """
    check_positive_int(total_macs, "total_macs")
    mapping = _as_mapping(workload, dataflow)
    pr_list: List[int] = []
    pc_list: List[int] = []
    rows_list: List[int] = []
    cols_list: List[int] = []
    for num_partitions in _partition_counts(total_macs, min_array_dim):
        macs_per_array = total_macs // num_partitions
        dim_floor = 1 if num_partitions == 1 else min_array_dim
        shapes = _shapes(macs_per_array, dim_floor)
        for grid_rows, grid_cols in partition_grids(num_partitions):
            for rows, cols in shapes:
                pr_list.append(grid_rows)
                pc_list.append(grid_cols)
                rows_list.append(rows)
                cols_list.append(cols)
    if not pr_list:
        raise SearchError(
            f"empty design space for {total_macs} MACs with min dim {min_array_dim}"
        )
    pr = np.array(pr_list, dtype=np.int64)
    pc = np.array(pc_list, dtype=np.int64)
    rows = np.array(rows_list, dtype=np.int64)
    cols = np.array(cols_list, dtype=np.int64)
    tile_sr = ceil_div_v(mapping.sr, pr)
    tile_sc = ceil_div_v(mapping.sc, pc)
    runtime = scaleup_runtime_v(tile_sr, tile_sc, mapping.t, rows, cols)
    utilization = mapping_utilization_v(tile_sr, tile_sc, rows, cols)
    metrics.counter("perf.compiler.points").add(len(pr_list))
    return CompiledSpace(
        mapping=mapping,
        total_macs=total_macs,
        min_array_dim=min_array_dim,
        partition_rows=pr,
        partition_cols=pc,
        array_rows=rows,
        array_cols=cols,
        runtime=runtime,
        utilization=utilization,
    )


def best_scaleup_compiled(
    workload: Union[Layer, OperandMapping],
    num_macs: int,
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY,
    min_dim: int = 1,
) -> CandidateConfig:
    """Vectorized :func:`repro.analytical.search.best_scaleup`.

    ``np.argmin`` returns the first minimum, matching the scalar
    strict-``<`` scan over the same shape enumeration.
    """
    from repro.analytical.search import array_shapes

    mapping = _as_mapping(workload, dataflow)
    shapes = array_shapes(num_macs, min_dim)
    rows = np.array([shape[0] for shape in shapes], dtype=np.int64)
    cols = np.array([shape[1] for shape in shapes], dtype=np.int64)
    runtime = scaleup_runtime_v(mapping.sr, mapping.sc, mapping.t, rows, cols)
    best = int(np.argmin(runtime))
    return CandidateConfig(
        partition_rows=1,
        partition_cols=1,
        array_rows=int(rows[best]),
        array_cols=int(cols[best]),
        runtime=int(runtime[best]),
        utilization=float(
            mapping_utilization_v(
                mapping.sr, mapping.sc, rows[best], cols[best]
            )
        ),
        dataflow=dataflow,
    )


def best_scaleout_compiled(
    workload: Union[Layer, OperandMapping],
    total_macs: int,
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY,
    min_array_dim: int = 8,
    include_monolithic: bool = False,
) -> CandidateConfig:
    """Vectorized :func:`repro.analytical.search.best_scaleout`."""
    space = compile_search_space(workload, total_macs, dataflow, min_array_dim)
    return space.candidate(space.best_index(include_monolithic=include_monolithic))


def frontier_indices(
    scores: Sequence[float],
    top_k: int = DEFAULT_TOP_K,
    prune_band: float = DEFAULT_PRUNE_BAND,
) -> List[int]:
    """Indices of the analytically interesting frontier, ascending.

    Keeps the ``top_k`` lowest scores (stable order on ties) plus every
    point with ``score <= best * (1 + prune_band)``.  ``top_k=0`` with
    ``prune_band=0`` keeps only the exact analytical optima.
    """
    if top_k < 0:
        raise ValueError(f"top_k must be >= 0, got {top_k}")
    if prune_band < 0:
        raise ValueError(f"prune_band must be >= 0, got {prune_band}")
    values = np.asarray(scores)
    if values.size == 0:
        return []
    order = np.argsort(values, kind="stable")
    keep = set(int(i) for i in order[:top_k])
    best = values[order[0]]
    keep |= set(int(i) for i in np.nonzero(values <= best * (1.0 + prune_band))[0])
    return sorted(keep)


def plan_estimates(
    estimator: Callable[..., Tuple[dict, float]],
    points: Sequence[dict],
    top_k: Optional[int] = None,
    prune_band: Optional[float] = None,
    journal: Optional["PointJournal"] = None,
) -> List[Optional[List[dict]]]:
    """Score every point analytically and keep only the frontier exact.

    Returns the ``estimates`` sequence
    :func:`repro.robust.executor.execute_grid` consumes: ``None`` for
    frontier points (simulate), param-prefixed ``estimated`` rows for
    the pruned rest.  Every point is scored and the frontier is chosen
    over the full grid regardless of ``journal``, so the plan — and
    therefore the rows — is byte-identical whether or not a sweep
    resumes or re-sweeps incrementally.

    ``journal`` (a checkpoint store or sweep ledger) only refines the
    accounting: points it has already completed will be replayed, not
    executed, so they move from ``perf.compiler.simulated`` to
    ``perf.compiler.reused`` — which is what lets an incremental
    re-sweep assert "only the changed points simulated" from counters.
    """
    scored: List[Tuple[dict, float]] = []
    for params in points:
        row, score = estimator(**params)
        overlap = set(params) & set(row)
        if overlap:
            raise ValueError(
                f"estimator keys {sorted(overlap)} collide with parameter names"
            )
        scored.append((row, float(score)))
    frontier = set(
        frontier_indices(
            [score for _, score in scored],
            top_k=DEFAULT_TOP_K if top_k is None else top_k,
            prune_band=DEFAULT_PRUNE_BAND if prune_band is None else prune_band,
        )
    )
    estimates: List[Optional[List[dict]]] = []
    for index, (params, (row, _)) in enumerate(zip(points, scored)):
        if index in frontier:
            estimates.append(None)
        else:
            estimates.append([{**params, "status": "estimated", **row}])
    reused = 0
    if journal is not None:
        reused = sum(
            1
            for index, params in enumerate(points)
            if index in frontier and journal.completed(params)
        )
    metrics.counter("perf.compiler.points").add(len(points))
    metrics.counter("perf.compiler.simulated").add(len(frontier) - reused)
    metrics.counter("perf.compiler.reused").add(reused)
    metrics.counter("perf.compiler.pruned").add(len(points) - len(frontier))
    return estimates


def simulate_candidates(
    layer: Layer,
    space: CompiledSpace,
    indices: Sequence[int],
) -> List[Tuple[int, int]]:
    """Run the cycle-accurate engine on the chosen frontier points.

    Returns ``(index, engine_cycles)`` pairs and maintains the
    ``perf.compiler.simulated`` / ``perf.compiler.pruned`` accounting
    for the whole space.
    """
    from repro.config.presets import paper_scaling_config
    from repro.engine.scaleout import simulate

    results: List[Tuple[int, int]] = []
    for index in indices:
        cand = space.candidate(index)
        config = paper_scaling_config(
            cand.array_rows,
            cand.array_cols,
            cand.partition_rows,
            cand.partition_cols,
            dataflow=space.dataflow,
        )
        result = simulate(config, layer)
        results.append((int(index), int(result.total_cycles)))
    metrics.counter("perf.compiler.simulated").add(len(results))
    metrics.counter("perf.compiler.pruned").add(len(space) - len(results))
    return results
