"""Performance layer: memoization and parallel sweep execution.

``repro.perf`` holds the machinery that makes design-space sweeps fast
without changing what they compute:

* :data:`cache` — a process-wide bounded LRU memoizing simulated
  ``(LayerResult, DramTraffic)`` pairs across layers, tiles and grid
  points (ResNet-50 repeats conv shapes; scale-out grids collapse to
  <= 4 distinct GEMMs per layer).
* :func:`~repro.perf.parallel.execute_grid_parallel` — the
  multiprocess grid backend behind ``execute_grid(workers=N)``,
  preserving serial semantics exactly (row order, retries, circuit
  breaker, checkpointing from the parent).
* :mod:`~repro.perf.compiler` — the sweep compiler: an entire
  (grid x array shape) design space evaluated as numpy arrays in a few
  vectorized passes, with frontier selection so the cycle-accurate
  engine only runs on analytically interesting points.

Every speed-up in this package is exactness-preserving and covered by
equivalence tests against the serial/uncached reference paths.
"""

from repro.perf.cache import SimulationCache, cache, simulation_key
from repro.perf.compiler import (
    DEFAULT_PRUNE_BAND,
    DEFAULT_TOP_K,
    CompiledSpace,
    CompiledTraffic,
    best_scaleout_compiled,
    best_scaleup_compiled,
    compile_search_space,
    frontier_indices,
    simulate_candidates,
)

__all__ = [
    "SimulationCache",
    "cache",
    "simulation_key",
    "DEFAULT_PRUNE_BAND",
    "DEFAULT_TOP_K",
    "CompiledSpace",
    "CompiledTraffic",
    "best_scaleout_compiled",
    "best_scaleup_compiled",
    "compile_search_space",
    "frontier_indices",
    "simulate_candidates",
]
