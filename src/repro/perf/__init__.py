"""Performance layer: memoization and parallel sweep execution.

``repro.perf`` holds the machinery that makes design-space sweeps fast
without changing what they compute:

* :data:`cache` — a process-wide bounded LRU memoizing simulated
  ``(LayerResult, DramTraffic)`` pairs across layers, tiles and grid
  points (ResNet-50 repeats conv shapes; scale-out grids collapse to
  <= 4 distinct GEMMs per layer).
* :func:`~repro.perf.parallel.execute_grid_parallel` — the
  multiprocess grid backend behind ``execute_grid(workers=N)``,
  preserving serial semantics exactly (row order, retries, circuit
  breaker, checkpointing from the parent).

Every speed-up in this package is exactness-preserving and covered by
equivalence tests against the serial/uncached reference paths.
"""

from repro.perf.cache import SimulationCache, cache, simulation_key

__all__ = [
    "SimulationCache",
    "cache",
    "simulation_key",
]
