"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a hardware configuration is invalid or unparsable."""


class TopologyError(ReproError):
    """Raised when a network topology or layer specification is invalid."""


class MappingError(ReproError):
    """Raised when a workload cannot be mapped onto the requested array."""


class SimulationError(ReproError):
    """Raised when the cycle-accurate engine encounters an invalid state."""


class SearchError(ReproError):
    """Raised when a design-space search is given an empty or invalid space."""


class DramError(ReproError):
    """Raised by the DRAM back-end for invalid traces or timing configs."""


class ExecutionError(ReproError):
    """Raised by the fault-tolerant execution layer (``repro.robust``)."""


class PointTimeoutError(ExecutionError):
    """Raised when one grid point exceeds its per-point wall-clock timeout."""


class CircuitOpenError(ExecutionError):
    """Raised when a batch run trips its ``max_failures`` circuit breaker."""


class WorkerCrashError(ExecutionError):
    """Raised when a worker process dies (signal, segfault, OOM kill) and
    the supervised pool quarantines the point that kept crashing it."""


class SupervisorExhaustedError(WorkerCrashError):
    """Raised when the supervised pool has been rebuilt ``max_restarts``
    times and the workers keep dying — the sweep cannot make progress."""


class SweepInterrupted(ExecutionError):
    """Raised when SIGINT/SIGTERM stops a supervised sweep: completed
    futures were drained and the checkpoint journal flushed first."""

    def __init__(self, message: str, signum: int = 0):
        super().__init__(message)
        self.signum = signum


class SweepError(ExecutionError, ValueError):
    """Raised when a sweep grid is malformed: a missing, empty or
    non-sequence axis that would otherwise silently produce an empty (or
    nonsensical, e.g. a string iterated per character) sweep.  Subclasses
    ``ValueError`` so callers that guarded grid construction with
    ``except ValueError`` keep working."""


class CheckpointError(ReproError):
    """Raised for unreadable, conflicting or misused checkpoint journals."""


class StorageError(ReproError, OSError):
    """Raised when a durable write cannot complete (``ENOSPC``, ``EIO``,
    vanished directories).  Subclasses ``OSError`` so existing callers
    that guard filesystem writes with ``except OSError`` keep working,
    while carrying the library's typed exit-code contract."""


class StoreCorruptionError(StorageError):
    """Raised when the result store itself (not one entry) is unusable:
    the root is not a store, the manifest directory cannot be created,
    or quarantine repeatedly fails.  Individual corrupted entries never
    raise — they are quarantined and recomputed transparently."""


class LedgerCorruptionError(StorageError):
    """Raised when a columnar sweep-ledger segment fails validation:
    bad magic, truncated payload, checksum mismatch, or an inconsistent
    header.  The ledger catches this internally — corrupt segments are
    quarantined to ``corrupt/`` and their grid points marked incomplete
    so the executor transparently re-simulates them; it only escapes to
    callers opening a segment file directly."""


class ServiceError(ReproError):
    """Raised by the ``repro.serve`` daemon/client layer: malformed
    requests, transport failures, or a server-side job error."""


class ServiceUnavailableError(ServiceError):
    """Raised client-side when the daemon rejects a request with
    back-pressure (full queue or an exhausted per-client quota); carries
    the server's suggested ``retry_after`` delay in seconds."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class VerificationError(ReproError):
    """Raised when the differential-verification harness finds (or fails
    to find, for mutation smoke) a violation: an oracle disagreement, a
    broken metamorphic property, a blessed golden baseline that drifted,
    or a seeded mutant the harness could not catch."""


class InstrumentKindError(ReproError, TypeError):
    """Raised when one metric name is requested as two different
    instrument kinds (e.g. ``counter("x")`` after ``gauge("x")``).
    Subclasses ``TypeError`` because it is a type confusion at the
    instrumentation site, not a runtime condition."""


class PerfRegressionError(ReproError):
    """Raised by ``repro bench compare`` when a tracked benchmark
    metric regresses beyond its noise band against the rolling
    baseline in ``benchmarks/results/history.jsonl``."""


class InvariantError(ReproError):
    """Raised when cycle-accurate results diverge from the analytical
    model (Eq. 1-6) or the demand/trace views stop agreeing."""


class ResilienceError(ReproError):
    """Raised for invalid fault maps or degraded hardware that cannot
    serve the workload (no surviving partitions, unreachable pods)."""
