"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a hardware configuration is invalid or unparsable."""


class TopologyError(ReproError):
    """Raised when a network topology or layer specification is invalid."""


class MappingError(ReproError):
    """Raised when a workload cannot be mapped onto the requested array."""


class SimulationError(ReproError):
    """Raised when the cycle-accurate engine encounters an invalid state."""


class SearchError(ReproError):
    """Raised when a design-space search is given an empty or invalid space."""


class DramError(ReproError):
    """Raised by the DRAM back-end for invalid traces or timing configs."""
