"""Multi-workload optimization (paper Sec. IV-B).

A hardware accelerator must serve many layers.  The paper's method:

1. For each workload ``w_l``, find its locally runtime-optimal
   configuration ``a_k`` (via the analytical model).
2. The candidate set is the union of those local optima.
3. Runtime is additive across workloads, so the globally chosen
   configuration is ``A = argmin_{a_k} sum_l T_r(w_l, a_k)``.

Because the candidate set has at most one entry per workload,
exhaustive search over it is cheap.  :func:`candidate_costs` also
exposes the whole cost matrix so Fig. 13/14 (performance loss of the
fastest/2nd/.../slowest candidate) can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analytical.runtime import scaleout_runtime
from repro.analytical.search import CandidateConfig, best_scaleout, best_scaleup
from repro.config.hardware import Dataflow
from repro.errors import SearchError
from repro.mapping.dims import OperandMapping, map_layer
from repro.topology.layer import Layer


@dataclass(frozen=True)
class WorkloadSet:
    """A named collection of workloads sharing one dataflow."""

    name: str
    layers: Tuple[Layer, ...]
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY

    def __post_init__(self) -> None:
        if not self.layers:
            raise SearchError(f"workload set {self.name!r} is empty")
        object.__setattr__(self, "layers", tuple(self.layers))

    def mappings(self) -> List[OperandMapping]:
        return [map_layer(layer, self.dataflow) for layer in self.layers]

    def __len__(self) -> int:
        return len(self.layers)


def _local_optima(
    workloads: WorkloadSet,
    total_macs: int,
    scaleout: bool,
    min_array_dim: int,
) -> List[CandidateConfig]:
    """Step 1-2: per-workload optimal configs, deduplicated."""
    seen = set()
    candidates: List[CandidateConfig] = []
    for layer in workloads.layers:
        if scaleout:
            cand = best_scaleout(
                layer,
                total_macs,
                dataflow=workloads.dataflow,
                min_array_dim=min_array_dim,
                include_monolithic=False,
            )
        else:
            cand = best_scaleup(layer, total_macs, dataflow=workloads.dataflow)
        key = (cand.partition_rows, cand.partition_cols, cand.array_rows, cand.array_cols)
        if key not in seen:
            seen.add(key)
            candidates.append(cand)
    return candidates


def _total_cost(
    workloads: WorkloadSet,
    candidate: CandidateConfig,
    mappings: Optional[Sequence[OperandMapping]] = None,
) -> int:
    """Step 3: additive total runtime of all workloads on one candidate."""
    total = 0
    for mapping in (workloads.mappings() if mappings is None else mappings):
        total += scaleout_runtime(
            mapping,
            candidate.partition_rows,
            candidate.partition_cols,
            candidate.array_rows,
            candidate.array_cols,
        )
    return total


def candidate_costs(
    workloads: WorkloadSet,
    total_macs: int,
    scaleout: bool = False,
    min_array_dim: int = 8,
) -> List[Tuple[CandidateConfig, int]]:
    """Return every candidate with its total cost, sorted fastest first.

    The whole candidates-by-workloads cost matrix evaluates in one
    vectorized Eq. 5/6 pass (Table III mappings hoisted out of the
    candidate loop — they depend only on the workload set).
    """
    import numpy as np

    from repro.analytical.vectorized import scaleout_runtime_v

    candidates = _local_optima(workloads, total_macs, scaleout, min_array_dim)
    mappings = workloads.mappings()
    sr = np.array([m.sr for m in mappings], dtype=np.int64)
    sc = np.array([m.sc for m in mappings], dtype=np.int64)
    t = np.array([m.t for m in mappings], dtype=np.int64)
    costed = [
        (
            cand,
            int(
                scaleout_runtime_v(
                    sr,
                    sc,
                    t,
                    cand.partition_rows,
                    cand.partition_cols,
                    cand.array_rows,
                    cand.array_cols,
                ).sum()
            ),
        )
        for cand in candidates
    ]
    costed.sort(key=lambda pair: pair[1])
    return costed


def pareto_search(
    workloads: WorkloadSet,
    total_macs: int,
    scaleout: bool = False,
    min_array_dim: int = 8,
) -> Tuple[CandidateConfig, List[Tuple[CandidateConfig, float]]]:
    """Find the globally optimized configuration A and the loss ranking.

    Returns ``(best, ranking)`` where ``ranking`` lists every candidate
    with its total runtime normalized to the best candidate's (the
    "perf. loss" axis of Fig. 13/14; 1.0 is the optimum).
    """
    costed = candidate_costs(workloads, total_macs, scaleout, min_array_dim)
    best, best_cost = costed[0]
    ranking = [(cand, cost / best_cost) for cand, cost in costed]
    return best, ranking


def per_workload_losses(
    workloads: WorkloadSet,
    candidate: CandidateConfig,
) -> Dict[str, float]:
    """Per-workload runtime of ``candidate`` normalized to that workload's
    own local optimum — how much each layer pays for the shared choice."""
    losses: Dict[str, float] = {}
    for layer in workloads.layers:
        local = (
            best_scaleout(
                layer,
                candidate.total_macs,
                dataflow=workloads.dataflow,
                include_monolithic=True,
            )
            if not candidate.is_monolithic
            else best_scaleup(layer, candidate.total_macs, dataflow=workloads.dataflow)
        )
        mapping = map_layer(layer, workloads.dataflow)
        actual = scaleout_runtime(
            mapping,
            candidate.partition_rows,
            candidate.partition_cols,
            candidate.array_rows,
            candidate.array_cols,
        )
        losses[layer.name] = actual / local.runtime
    return losses
