"""Design-space enumeration and optimal-configuration search (Sec. III-B/C).

The paper's search space for a fixed MAC budget ``N`` consists of

* every monolithic array shape ``R x C`` with ``R * C = N``, and
* every partitioned configuration: a ``P_R x P_C`` grid of identical
  ``R x C`` arrays with ``P_R * P_C * R * C = N`` and each array
  dimension at least 8 (the paper's floor for a "reasonable" array).

For power-of-two budgets (all the paper uses) shapes are enumerated as
powers of two; general budgets fall back to full factor-pair
enumeration.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analytical.runtime import mapping_utilization, scaleout_runtime
from repro.config.hardware import Dataflow
from repro.errors import SearchError
from repro.mapping.dims import OperandMapping, map_layer
from repro.topology.layer import Layer
from repro.utils.mathutils import factor_pairs, is_power_of_two
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class CandidateConfig:
    """One point of the scale-up/scale-out design space, with its cost."""

    partition_rows: int
    partition_cols: int
    array_rows: int
    array_cols: int
    runtime: int
    utilization: float
    dataflow: Dataflow

    @property
    def num_partitions(self) -> int:
        return self.partition_rows * self.partition_cols

    @property
    def is_monolithic(self) -> bool:
        return self.num_partitions == 1

    @property
    def total_macs(self) -> int:
        return self.num_partitions * self.array_rows * self.array_cols

    @property
    def aspect_ratio(self) -> float:
        """Row:column ratio of one array."""
        return self.array_rows / self.array_cols

    def label(self) -> str:
        return (
            f"{self.partition_rows}x{self.partition_cols} partitions of "
            f"{self.array_rows}x{self.array_cols}"
        )


def _shapes(num_macs: int, min_dim: int) -> List[Tuple[int, int]]:
    """All ``(rows, cols)`` with ``rows * cols == num_macs``, dims >= min_dim.

    Power-of-two budgets enumerate power-of-two shapes (the paper's
    convention); other budgets enumerate every factor pair.
    """
    if is_power_of_two(num_macs):
        shapes = []
        rows = 1
        while rows <= num_macs:
            cols = num_macs // rows
            if rows >= min_dim and cols >= min_dim:
                shapes.append((rows, cols))
            rows <<= 1
        return shapes
    return [pair for pair in factor_pairs(num_macs, minimum=min_dim)]


def array_shapes(num_macs: int, min_dim: int = 1) -> List[Tuple[int, int]]:
    """Enumerate monolithic array shapes for a MAC budget."""
    check_positive_int(num_macs, "num_macs")
    check_positive_int(min_dim, "min_dim")
    shapes = _shapes(num_macs, min_dim)
    if not shapes:
        raise SearchError(
            f"no {min_dim}-bounded array shape exists for {num_macs} MACs"
        )
    return shapes


def partition_grids(num_partitions: int) -> List[Tuple[int, int]]:
    """Enumerate ``(P_R, P_C)`` grids for a partition count."""
    check_positive_int(num_partitions, "num_partitions")
    return _shapes(num_partitions, min_dim=1)


def _partition_counts(total_macs: int, min_array_dim: int) -> Iterable[int]:
    """Partition counts that leave each array at least min_dim x min_dim."""
    max_partitions = total_macs // (min_array_dim * min_array_dim)
    if is_power_of_two(total_macs):
        count = 1
        while count <= max_partitions:
            yield count
            count <<= 1
    else:
        for count in range(1, max_partitions + 1):
            if total_macs % count == 0:
                yield count


@functools.lru_cache(maxsize=512)
def _cached_layer_mapping(layer: Layer, dataflow: Dataflow) -> OperandMapping:
    """Memoized Table III lookup: the mapping depends only on
    ``(layer, dataflow)``, yet callers like :func:`best_scaleup` /
    :func:`best_scaleout` are invoked once per (layer, budget) pair and
    used to re-derive it every time.  Layers are frozen dataclasses, so
    they key an LRU cache directly."""
    return map_layer(layer, dataflow)


def _as_mapping(workload: Union[Layer, OperandMapping], dataflow: Dataflow) -> OperandMapping:
    if isinstance(workload, OperandMapping):
        if workload.dataflow is not dataflow:
            raise SearchError(
                f"mapping dataflow {workload.dataflow} != requested {dataflow}"
            )
        return workload
    return _cached_layer_mapping(workload, dataflow)


def search_space(
    workload: Union[Layer, OperandMapping],
    total_macs: int,
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY,
    min_array_dim: int = 8,
) -> List[CandidateConfig]:
    """Enumerate and cost the full scale-up + scale-out space (Fig. 9a).

    Returns one :class:`CandidateConfig` per (grid, array shape) point,
    including the monolithic (1x1 grid) points.  Runtime is the
    analytical Eq. 5/6 stall-free value.
    """
    check_positive_int(total_macs, "total_macs")
    mapping = _as_mapping(workload, dataflow)
    candidates: List[CandidateConfig] = []
    for num_partitions in _partition_counts(total_macs, min_array_dim):
        macs_per_array = total_macs // num_partitions
        # Monolithic configurations are allowed any aspect ratio down to
        # one row/column; partitioned arrays respect the paper's floor.
        dim_floor = 1 if num_partitions == 1 else min_array_dim
        shapes = _shapes(macs_per_array, dim_floor)
        for grid_rows, grid_cols in partition_grids(num_partitions):
            tile = OperandMapping(
                sr=-(-mapping.sr // grid_rows),
                sc=-(-mapping.sc // grid_cols),
                t=mapping.t,
                dataflow=mapping.dataflow,
            )
            for rows, cols in shapes:
                runtime = scaleout_runtime(mapping, grid_rows, grid_cols, rows, cols)
                util = mapping_utilization(tile, rows, cols)
                candidates.append(
                    CandidateConfig(
                        partition_rows=grid_rows,
                        partition_cols=grid_cols,
                        array_rows=rows,
                        array_cols=cols,
                        runtime=runtime,
                        utilization=util,
                        dataflow=dataflow,
                    )
                )
    if not candidates:
        raise SearchError(
            f"empty design space for {total_macs} MACs with min dim {min_array_dim}"
        )
    return candidates


def best_scaleup(
    workload: Union[Layer, OperandMapping],
    num_macs: int,
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY,
    min_dim: int = 1,
) -> CandidateConfig:
    """The fastest monolithic configuration for one workload (Sec. III-B)."""
    mapping = _as_mapping(workload, dataflow)
    best: Optional[CandidateConfig] = None
    for rows, cols in array_shapes(num_macs, min_dim):
        runtime = scaleout_runtime(mapping, 1, 1, rows, cols)
        if best is None or runtime < best.runtime:
            best = CandidateConfig(
                partition_rows=1,
                partition_cols=1,
                array_rows=rows,
                array_cols=cols,
                runtime=runtime,
                utilization=mapping_utilization(mapping, rows, cols),
                dataflow=dataflow,
            )
    assert best is not None  # array_shapes raised otherwise
    return best


def best_scaleout(
    workload: Union[Layer, OperandMapping],
    total_macs: int,
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY,
    min_array_dim: int = 8,
    include_monolithic: bool = False,
) -> CandidateConfig:
    """The fastest partitioned configuration for one workload (Sec. III-C).

    By default the monolithic point is excluded (Fig. 10 compares best
    scale-up *against* best scale-out); pass ``include_monolithic=True``
    to search the whole space.
    """
    candidates = search_space(workload, total_macs, dataflow, min_array_dim)
    pool = [
        cand
        for cand in candidates
        if include_monolithic or not cand.is_monolithic
    ]
    if not pool:
        raise SearchError(
            f"no partitioned configuration exists for {total_macs} MACs "
            f"with arrays at least {min_array_dim}x{min_array_dim}"
        )
    return min(pool, key=lambda cand: (cand.runtime, cand.num_partitions))


def pareto_front(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated rows of ``points`` (all minimized).

    A row is kept when no other row is at least as good on every
    objective and strictly better on one.  Objectives to *maximize*
    should be negated by the caller (as
    :meth:`repro.store.ledger.SweepLedger.pareto` does over its
    zero-copy columns).  Duplicate rows all survive — dominance is
    strict — and order is ascending, so results are deterministic.
    """
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise SearchError(
            f"pareto_front needs a 2-D (points x objectives) array, "
            f"got shape {matrix.shape}"
        )
    kept: List[int] = []
    for index in range(matrix.shape[0]):
        row = matrix[index]
        dominated = np.any(
            np.all(matrix <= row, axis=1) & np.any(matrix < row, axis=1)
        )
        if not dominated:
            kept.append(index)
    return kept
