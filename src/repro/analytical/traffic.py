"""Closed-form DRAM traffic estimates (extension of the paper's model).

The paper's analytical model (Sec. III) covers runtime only and defers
all memory behaviour to the simulator.  This module closes that gap: it
evaluates the engine's fold-order reuse model *in closed form*, so a
design-space search can price DRAM traffic without instantiating a
simulator.  The estimates are exact — tests assert equality with
:func:`repro.memory.bandwidth.compute_dram_traffic` — because both
implementations realize the same double-buffer policy:

* an operand that fits the working half of its buffer moves once;
* otherwise, a slice is re-fetched whenever the resident slice changes
  between consecutive folds (row-major fold order), and on *every* fold
  if a single slice overflows the working half.

Per dataflow (Table III roles, row-major fold order):

=============== ======================= =======================
Dataflow        IFMAP slice             filter slice
=============== ======================= =======================
OS              row-block (per F_R)     col-block (per F_C)
WS              row-block (per F_R)     fold tile (unique)
IS              fold tile (unique)      row-block (per F_R)
=============== ======================= =======================

Row-blocks keyed by the row fold are fetched once per row fold (their
id is constant across the inner column loop); col-blocks change every
inner iteration and are therefore re-fetched once per fold unless the
whole operand fits; fold tiles are unique and always move exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytical.runtime import fold_runtime
from repro.config.hardware import Dataflow
from repro.errors import MappingError
from repro.mapping.dims import OperandMapping
from repro.memory.buffers import BufferSet
from repro.utils.mathutils import ceil_div
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TrafficEstimate:
    """Closed-form DRAM traffic of one layer on one array, in bytes."""

    ifmap_bytes: int
    filter_bytes: int
    ofmap_bytes: int
    total_cycles: int

    @property
    def read_bytes(self) -> int:
        return self.ifmap_bytes + self.filter_bytes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.ofmap_bytes

    @property
    def avg_read_bw(self) -> float:
        """Average stall-free read bandwidth, bytes per cycle."""
        return self.read_bytes / self.total_cycles

    @property
    def avg_write_bw(self) -> float:
        return self.ofmap_bytes / self.total_cycles

    @property
    def avg_total_bw(self) -> float:
        return self.avg_read_bw + self.avg_write_bw


def _row_block_traffic(
    sr: int,
    t: int,
    array_rows: int,
    col_folds: int,
    working_bytes: int,
    word_bytes: int,
) -> int:
    """Traffic of an operand whose slice is keyed by the row fold.

    The operand holds ``sr * t`` elements, sliced into row blocks of
    ``array_rows * t`` (plus a smaller edge block).  A block that fits
    the working half is fetched once per row fold (it stays resident
    across the inner column loop); a block that overflows streams in
    again for every column fold; when the whole operand fits, each
    block still moves exactly once.  Full and edge blocks are judged
    separately, exactly as the per-slice engine logic does.
    """
    unique_bytes = sr * t * word_bytes
    if unique_bytes <= working_bytes:
        return unique_bytes
    full_blocks, edge_rows = divmod(sr, array_rows)
    total = 0
    full_block_bytes = array_rows * t * word_bytes
    if full_blocks:
        repeat = col_folds if full_block_bytes > working_bytes else 1
        total += full_blocks * full_block_bytes * repeat
    if edge_rows:
        edge_block_bytes = edge_rows * t * word_bytes
        repeat = col_folds if edge_block_bytes > working_bytes else 1
        total += edge_block_bytes * repeat
    return total


def _col_block_traffic(
    row_folds: int,
    unique_elements: int,
    working_bytes: int,
    word_bytes: int,
) -> int:
    """Traffic of an operand whose slice changes every fold (col-keyed).

    Under row-major order the resident column block changes on every
    inner iteration, so each row fold re-streams the whole operand —
    unless all of it fits on chip.
    """
    unique_bytes = unique_elements * word_bytes
    if unique_bytes <= working_bytes:
        return unique_bytes
    return unique_bytes * row_folds


def estimate_traffic(
    mapping: OperandMapping,
    array_rows: int,
    array_cols: int,
    buffers: BufferSet,
    word_bytes: int = 1,
) -> TrafficEstimate:
    """Closed-form DRAM traffic for one mapped layer on one array.

    Exactly matches the cycle-accurate engine's
    :func:`~repro.memory.bandwidth.compute_dram_traffic` totals for the
    same configuration (asserted by tests), at O(1) cost.
    """
    check_positive_int(array_rows, "array_rows")
    check_positive_int(array_cols, "array_cols")
    check_positive_int(word_bytes, "word_bytes")

    sr, sc, t = mapping.sr, mapping.sc, mapping.t
    row_folds = ceil_div(sr, array_rows)
    col_folds = ceil_div(sc, array_cols)
    dataflow = mapping.dataflow

    if dataflow is Dataflow.OUTPUT_STATIONARY:
        ifmap_unique, filter_unique = sr * t, sc * t
        ifmap = _row_block_traffic(
            sr, t, array_rows, col_folds, buffers.ifmap.working_bytes, word_bytes
        )
        filt = _col_block_traffic(
            row_folds, filter_unique, buffers.filter.working_bytes, word_bytes
        )
        # Each output accumulates in place and drains once.
        ofmap = sr * sc * word_bytes
    elif dataflow is Dataflow.WEIGHT_STATIONARY:
        ifmap_unique, filter_unique = sr * t, sr * sc
        ifmap = _row_block_traffic(
            sr, t, array_rows, col_folds, buffers.ifmap.working_bytes, word_bytes
        )
        # Stationary tiles are unique per fold: always exactly once.
        filt = filter_unique * word_bytes
        # Each column emits T partial outputs per row fold.
        ofmap = sc * t * row_folds * word_bytes
    elif dataflow is Dataflow.INPUT_STATIONARY:
        ifmap_unique, filter_unique = sr * sc, sr * t
        ifmap = ifmap_unique * word_bytes
        filt = _row_block_traffic(
            sr, t, array_rows, col_folds, buffers.filter.working_bytes, word_bytes
        )
        ofmap = sc * t * row_folds * word_bytes
    else:  # pragma: no cover - enum is exhaustive
        raise MappingError(f"unsupported dataflow {dataflow!r}")

    # Total cycles: full folds plus edge folds, in closed form.
    full_rows, edge_rows = divmod(sr, array_rows)
    full_cols, edge_cols = divmod(sc, array_cols)

    def row_cycles(rows: int) -> int:
        total = 0
        if full_cols:
            total += full_cols * fold_runtime(rows, array_cols, t)
        if edge_cols:
            total += fold_runtime(rows, edge_cols, t)
        return total

    cycles = 0
    if full_rows:
        cycles += full_rows * row_cycles(array_rows)
    if edge_rows:
        cycles += row_cycles(edge_rows)

    return TrafficEstimate(
        ifmap_bytes=ifmap,
        filter_bytes=filt,
        ofmap_bytes=ofmap,
        total_cycles=cycles,
    )
