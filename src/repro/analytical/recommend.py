"""The heuristic scaling recommendation (paper intro's contribution 2).

The introduction promises "a heuristic-driven approach that efficiently
identifies the optimal scaling strategy, along with the design
configuration within a particular scaling strategy, for a given set of
workloads".  Sections III/IV provide the pieces; this module assembles
them into one call:

1. candidate generation — each workload's locally optimal monolithic
   *and* partitioned configuration (Sec. III-B/C), deduplicated: a
   small, high-quality pool instead of the full Fig. 9a space;
2. closed-form scoring of every candidate on every workload: additive
   runtime (Eq. 5/6), DRAM traffic and energy (the exact traffic and
   event-count models);
3. feasibility filtering against an optional DRAM bandwidth budget
   (the Fig. 11 constraint);
4. selection by the requested objective: ``runtime``, ``energy`` or
   ``edp`` (energy-delay product).

Everything is analytical, so the whole recommendation costs a few
milliseconds even for multi-network workload sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analytical.multiworkload import WorkloadSet
from repro.analytical.objectives import ConfigScore, score_candidate
from repro.analytical.search import CandidateConfig, best_scaleout, best_scaleup
from repro.energy.params import DEFAULT_ENERGY, EnergyParams
from repro.errors import SearchError
from repro.utils.validation import check_choice

OBJECTIVES = ("runtime", "energy", "edp")


@dataclass(frozen=True)
class AggregateScore:
    """One candidate's totals over a whole workload set."""

    candidate: CandidateConfig
    runtime: int
    dram_bytes: int
    energy: float

    @property
    def avg_bandwidth(self) -> float:
        return self.dram_bytes / self.runtime

    @property
    def edp(self) -> float:
        return self.runtime * self.energy

    def objective_value(self, objective: str) -> float:
        return {
            "runtime": float(self.runtime),
            "energy": self.energy,
            "edp": self.edp,
        }[objective]


@dataclass(frozen=True)
class Recommendation:
    """The chosen configuration plus the evidence behind the choice."""

    best: AggregateScore
    ranking: Tuple[AggregateScore, ...]
    objective: str
    bandwidth_budget: Optional[float]
    bandwidth_feasible: bool

    @property
    def candidate(self) -> CandidateConfig:
        return self.best.candidate

    def summary(self) -> str:
        feasibility = ""
        if self.bandwidth_budget is not None:
            verdict = "within" if self.bandwidth_feasible else "EXCEEDS"
            feasibility = (
                f"; {self.best.avg_bandwidth:.1f} B/cyc {verdict} the "
                f"{self.bandwidth_budget:.1f} B/cyc budget"
            )
        return (
            f"{self.candidate.label()} — best {self.objective} "
            f"({self.best.runtime} cycles, energy {self.best.energy:.3g}"
            f"{feasibility})"
        )


def _candidate_pool(
    workloads: WorkloadSet, total_macs: int, min_array_dim: int
) -> List[CandidateConfig]:
    """Local optima of every workload, both scaling strategies, deduped."""
    pool: List[CandidateConfig] = []
    seen = set()
    for layer in workloads.layers:
        candidates = [best_scaleup(layer, total_macs, dataflow=workloads.dataflow)]
        try:
            candidates.append(
                best_scaleout(
                    layer,
                    total_macs,
                    dataflow=workloads.dataflow,
                    min_array_dim=min_array_dim,
                )
            )
        except SearchError:
            pass  # budget too small for any partitioned config
        for cand in candidates:
            key = (cand.partition_rows, cand.partition_cols, cand.array_rows, cand.array_cols)
            if key not in seen:
                seen.add(key)
                pool.append(cand)
    return pool


def _aggregate(
    workloads: WorkloadSet,
    candidate: CandidateConfig,
    total_sram_kb: Tuple[int, int, int],
    word_bytes: int,
    params: EnergyParams,
) -> AggregateScore:
    runtime = 0
    dram = 0
    energy = 0.0
    for layer in workloads.layers:
        score: ConfigScore = score_candidate(
            layer, candidate, total_sram_kb, word_bytes, params
        )
        runtime += score.runtime
        dram += score.dram_bytes
        energy += score.energy
    return AggregateScore(
        candidate=candidate, runtime=runtime, dram_bytes=dram, energy=energy
    )


def recommend_configuration(
    workloads: WorkloadSet,
    total_macs: int,
    objective: str = "runtime",
    bandwidth_budget: Optional[float] = None,
    min_array_dim: int = 8,
    total_sram_kb: Tuple[int, int, int] = (512, 512, 256),
    word_bytes: int = 1,
    params: EnergyParams = DEFAULT_ENERGY,
) -> Recommendation:
    """Pick one configuration for a workload set under a MAC budget.

    ``bandwidth_budget`` (bytes/cycle, average) filters candidates whose
    aggregate demand a memory system cannot feed; if nothing qualifies,
    the lowest-bandwidth candidate is returned with
    ``bandwidth_feasible=False`` so callers see the constraint bind.
    """
    check_choice(objective, "objective", OBJECTIVES)
    pool = _candidate_pool(workloads, total_macs, min_array_dim)
    if not pool:
        raise SearchError(f"no candidates exist for {total_macs} MACs")
    scored = [
        _aggregate(workloads, candidate, total_sram_kb, word_bytes, params)
        for candidate in pool
    ]
    scored.sort(key=lambda score: score.objective_value(objective))

    feasible = scored
    bandwidth_feasible = True
    if bandwidth_budget is not None:
        feasible = [s for s in scored if s.avg_bandwidth <= bandwidth_budget]
        if not feasible:
            bandwidth_feasible = False
            feasible = sorted(scored, key=lambda score: score.avg_bandwidth)[:1]

    return Recommendation(
        best=feasible[0],
        ranking=tuple(scored),
        objective=objective,
        bandwidth_budget=bandwidth_budget,
        bandwidth_feasible=bandwidth_feasible,
    )
