"""Closed-form stall-free runtime (paper Eq. 1-6).

The analytical model captures first-order execution time only — it
deliberately ignores memory capacity and bandwidth (those belong to the
cycle-accurate engine) so large design spaces can be swept cheaply.

All functions work on an :class:`OperandMapping`, i.e. after Table III
has assigned the GEMM dimensions to ``(S_R, S_C, T)`` for a dataflow.
"""

from __future__ import annotations

from repro.mapping.dims import OperandMapping
from repro.utils.mathutils import ceil_div
from repro.utils.validation import check_non_negative_int, check_positive_int


def fold_runtime(rows: int, cols: int, temporal: int) -> int:
    """Eq. 3: cycles for one fold on an ``rows x cols`` array.

    ``tau_F = 2R + C + T - 2``.
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    check_positive_int(temporal, "temporal")
    return 2 * rows + cols + temporal - 2


def unlimited_runtime(mapping: OperandMapping) -> int:
    """Eq. 1: fastest possible runtime given unlimited MAC units.

    With an ``S_R x S_C`` array everything fits in one fold:
    ``tau_min = 2 S_R + S_C + T - 2``.
    """
    return fold_runtime(mapping.sr, mapping.sc, mapping.t)


def scaleup_runtime(mapping: OperandMapping, array_rows: int, array_cols: int) -> int:
    """Eq. 4: stall-free runtime of one layer on one ``R x C`` array.

    ``tau = (2R + C + T - 2) * ceil(S_R/R) * ceil(S_C/C)``.

    Note the model charges every fold the *full-array* fold latency —
    edge folds are not discounted.  The cycle-accurate engine maps edge
    folds exactly and therefore reports a runtime ``<=`` this value,
    with equality when ``R | S_R`` and ``C | S_C``.
    """
    check_positive_int(array_rows, "array_rows")
    check_positive_int(array_cols, "array_cols")
    folds = ceil_div(mapping.sr, array_rows) * ceil_div(mapping.sc, array_cols)
    return fold_runtime(array_rows, array_cols, mapping.t) * folds


def scaleout_runtime(
    mapping: OperandMapping,
    partition_rows: int,
    partition_cols: int,
    array_rows: int,
    array_cols: int,
) -> int:
    """Eq. 5 + Eq. 6: runtime of a ``P_R x P_C`` grid of ``R x C`` arrays.

    Each partition works on the ``(ceil(S_R/P_R), ceil(S_C/P_C))`` tile
    (Eq. 5); partitions run in parallel so the slowest — the one with
    the ceil-sized tile — sets the runtime (Eq. 6).
    """
    check_positive_int(partition_rows, "partition_rows")
    check_positive_int(partition_cols, "partition_cols")
    tile_sr = ceil_div(mapping.sr, partition_rows)
    tile_sc = ceil_div(mapping.sc, partition_cols)
    tile = OperandMapping(sr=tile_sr, sc=tile_sc, t=mapping.t, dataflow=mapping.dataflow)
    return scaleup_runtime(tile, array_rows, array_cols)


def degraded_scaleup_runtime(
    mapping: OperandMapping,
    array_rows: int,
    array_cols: int,
    dead_rows: int = 0,
    dead_cols: int = 0,
) -> int:
    """Eq. 4 on an array with bypassed PE rows/columns.

    Dead rows/columns are skipped by the sequencer, so the machine
    behaves as a smaller ``R' x C'`` array: ``R' = R - dead_rows``,
    ``C' = C - dead_cols``.  A fully dead axis cannot compute anything.
    """
    check_non_negative_int(dead_rows, "dead_rows")
    check_non_negative_int(dead_cols, "dead_cols")
    eff_rows = array_rows - dead_rows
    eff_cols = array_cols - dead_cols
    check_positive_int(eff_rows, "effective array_rows")
    check_positive_int(eff_cols, "effective array_cols")
    return scaleup_runtime(mapping, eff_rows, eff_cols)


def degraded_scaleout_runtime(
    mapping: OperandMapping,
    partition_rows: int,
    partition_cols: int,
    array_rows: int,
    array_cols: int,
    dead_partitions: int = 0,
) -> int:
    """Closed-form Eq. 5/6 for a grid with ``k`` dead partitions.

    With the work of the ``P = P_R * P_C`` Eq.-5 tiles re-mapped evenly
    over the ``P - k`` survivors, the most-loaded survivor runs
    ``ceil(P / (P - k))`` ceil-sized tiles back to back:

    ``tau' = ceil(P / (P - k)) * tau_scaleout``.

    This is the first-order bound the exact remap plan
    (:func:`repro.resilience.remap.remap_layer`) refines with true tile
    shapes; both coincide on healthy grids (``k = 0``).
    """
    check_positive_int(partition_rows, "partition_rows")
    check_positive_int(partition_cols, "partition_cols")
    check_non_negative_int(dead_partitions, "dead_partitions")
    total = partition_rows * partition_cols
    survivors = total - dead_partitions
    check_positive_int(survivors, "surviving partitions")
    tiles_per_survivor = ceil_div(total, survivors)
    return tiles_per_survivor * scaleout_runtime(
        mapping, partition_rows, partition_cols, array_rows, array_cols
    )


def mapping_utilization(mapping: OperandMapping, array_rows: int, array_cols: int) -> float:
    """Average fraction of the array carrying valid mappings over all folds.

    Fig. 9(b-c)'s utilization series: full folds use every PE, edge
    folds only the remainder rows/columns.
    """
    check_positive_int(array_rows, "array_rows")
    check_positive_int(array_cols, "array_cols")
    row_folds = ceil_div(mapping.sr, array_rows)
    col_folds = ceil_div(mapping.sc, array_cols)
    # Sum of mapped PEs over the fold grid factorizes by axis.
    mapped_rows = mapping.sr  # sum of per-row-fold mapped rows
    mapped_cols = mapping.sc
    mapped = mapped_rows * mapped_cols
    available = row_folds * col_folds * array_rows * array_cols
    return mapped / available
