"""Vectorized (numpy) twins of the scalar analytical kernels.

The scalar model in :mod:`repro.analytical.runtime` and
:mod:`repro.analytical.traffic` prices one design point per call; a
design-space sweep calls it hundreds of thousands of times from Python.
This module evaluates Eq. 1-6 runtime, mapping utilization, the exact
(edge-fold-aware) cycle count and the per-operand closed-form DRAM
traffic for *whole arrays of points at once* — a few numpy passes
instead of a Python loop.

Exactness contract: every function here is bit-identical to its scalar
twin, not merely close.  All integer arithmetic runs in int64 (the
paper's quantities stay far below 2**53, asserted by :func:`_as_int64`),
and the only float operation — utilization's ``mapped / available`` —
is an int64 -> float64 true division, which IEEE-754 rounds exactly
like Python's ``int / int`` for operands below 2**53.  The equivalence
is pinned by tests and by the ``vectorized`` verification property
(rel_tol 0), so the fuzzer's boundary-biased cases exercise these
kernels nightly.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.config.hardware import Dataflow
from repro.errors import MappingError

#: Above this, int64 -> float64 conversion stops being exact and the
#: bit-identity contract with the scalar model would silently break.
_EXACT_INT_BOUND = 2**53


def _as_int64(value) -> np.ndarray:
    """Broadcastable int64 view of ``value`` with the exactness guard."""
    array = np.asarray(value, dtype=np.int64)
    if array.size and np.abs(array).max() >= _EXACT_INT_BOUND:
        raise ValueError(
            f"value {np.abs(array).max()} exceeds the 2**53 exactness bound"
        )
    return array


def ceil_div_v(numerator, denominator) -> np.ndarray:
    """Elementwise ``ceil(n / d)`` in pure integer arithmetic."""
    n = _as_int64(numerator)
    d = _as_int64(denominator)
    if np.any(d <= 0):
        raise ValueError("denominators must be positive")
    return -(-n // d)


def fold_runtime_v(rows, cols, temporal) -> np.ndarray:
    """Eq. 3, elementwise: ``2R + C + T - 2``."""
    return 2 * _as_int64(rows) + _as_int64(cols) + _as_int64(temporal) - 2


def scaleup_runtime_v(sr, sc, t, array_rows, array_cols) -> np.ndarray:
    """Eq. 4, elementwise: full-array fold latency times the fold count."""
    folds = ceil_div_v(sr, array_rows) * ceil_div_v(sc, array_cols)
    return fold_runtime_v(array_rows, array_cols, t) * folds


def scaleout_runtime_v(
    sr, sc, t, partition_rows, partition_cols, array_rows, array_cols
) -> np.ndarray:
    """Eq. 5 + Eq. 6, elementwise: Eq. 4 on the ceil-sized tile."""
    tile_sr = ceil_div_v(sr, partition_rows)
    tile_sc = ceil_div_v(sc, partition_cols)
    return scaleup_runtime_v(tile_sr, tile_sc, t, array_rows, array_cols)


def mapping_utilization_v(sr, sc, array_rows, array_cols) -> np.ndarray:
    """Average mapped-PE fraction over all folds, elementwise (float64)."""
    sr = _as_int64(sr)
    sc = _as_int64(sc)
    rows = _as_int64(array_rows)
    cols = _as_int64(array_cols)
    row_folds = ceil_div_v(sr, rows)
    col_folds = ceil_div_v(sc, cols)
    mapped = sr * sc
    available = row_folds * col_folds * rows * cols
    _as_int64(mapped)
    _as_int64(available)
    return mapped / available


def exact_cycles_v(sr, sc, t, array_rows, array_cols) -> np.ndarray:
    """Exact engine cycle count, elementwise: edge folds priced truly.

    The closed form of :func:`repro.analytical.traffic.estimate_traffic`'s
    cycle computation — full and edge folds decomposed by ``divmod`` —
    which the tests pin to the cycle-accurate engine's ``total_cycles``.
    """
    sr = _as_int64(sr)
    sc = _as_int64(sc)
    t = _as_int64(t)
    rows = _as_int64(array_rows)
    cols = _as_int64(array_cols)
    full_rows, edge_rows = np.divmod(sr, rows)
    full_cols, edge_cols = np.divmod(sc, cols)

    def row_cycles(fold_rows: np.ndarray) -> np.ndarray:
        full = full_cols * fold_runtime_v(fold_rows, cols, t)
        edge = np.where(edge_cols > 0, fold_runtime_v(fold_rows, edge_cols, t), 0)
        return full + edge

    cycles = full_rows * row_cycles(np.broadcast_to(rows, full_rows.shape))
    cycles = cycles + np.where(edge_rows > 0, row_cycles(edge_rows), 0)
    return cycles


def _row_block_traffic_v(
    sr, t, array_rows, col_folds, working_bytes, word_bytes
) -> np.ndarray:
    """Vectorized :func:`repro.analytical.traffic._row_block_traffic`."""
    sr = _as_int64(sr)
    t = _as_int64(t)
    rows = _as_int64(array_rows)
    col_folds = _as_int64(col_folds)
    working = _as_int64(working_bytes)
    word = _as_int64(word_bytes)

    unique = sr * t * word
    full_blocks, edge_rows = np.divmod(sr, rows)
    full_block_bytes = rows * t * word
    full_repeat = np.where(full_block_bytes > working, col_folds, 1)
    full_term = full_blocks * full_block_bytes * full_repeat
    edge_block_bytes = edge_rows * t * word
    edge_repeat = np.where(edge_block_bytes > working, col_folds, 1)
    edge_term = np.where(edge_rows > 0, edge_block_bytes * edge_repeat, 0)
    blocked = full_term + edge_term
    return np.where(unique <= working, unique, blocked)


def _col_block_traffic_v(
    row_folds, unique_elements, working_bytes, word_bytes
) -> np.ndarray:
    """Vectorized :func:`repro.analytical.traffic._col_block_traffic`."""
    row_folds = _as_int64(row_folds)
    unique = _as_int64(unique_elements) * _as_int64(word_bytes)
    working = _as_int64(working_bytes)
    return np.where(unique <= working, unique, unique * row_folds)


def estimate_traffic_v(
    sr,
    sc,
    t,
    dataflow: Dataflow,
    array_rows,
    array_cols,
    ifmap_working_bytes,
    filter_working_bytes,
    word_bytes=1,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized closed-form DRAM traffic + exact cycles for one dataflow.

    Returns ``(ifmap_bytes, filter_bytes, ofmap_bytes, total_cycles)``
    arrays, each bit-identical to the scalar
    :func:`repro.analytical.traffic.estimate_traffic` fields evaluated
    per point.  A whole grid sharing one dataflow evaluates in a single
    call; mixed-dataflow grids split by dataflow (three calls at most).
    """
    sr = _as_int64(sr)
    sc = _as_int64(sc)
    t = _as_int64(t)
    rows = _as_int64(array_rows)
    cols = _as_int64(array_cols)
    word = _as_int64(word_bytes)
    row_folds = ceil_div_v(sr, rows)
    col_folds = ceil_div_v(sc, cols)

    if dataflow is Dataflow.OUTPUT_STATIONARY:
        ifmap = _row_block_traffic_v(
            sr, t, rows, col_folds, ifmap_working_bytes, word
        )
        filt = _col_block_traffic_v(row_folds, sc * t, filter_working_bytes, word)
        ofmap = sr * sc * word
    elif dataflow is Dataflow.WEIGHT_STATIONARY:
        ifmap = _row_block_traffic_v(
            sr, t, rows, col_folds, ifmap_working_bytes, word
        )
        filt = sr * sc * word
        ofmap = sc * t * row_folds * word
    elif dataflow is Dataflow.INPUT_STATIONARY:
        ifmap = sr * sc * word
        filt = _row_block_traffic_v(
            sr, t, rows, col_folds, filter_working_bytes, word
        )
        ofmap = sc * t * row_folds * word
    else:  # pragma: no cover - enum is exhaustive
        raise MappingError(f"unsupported dataflow {dataflow!r}")

    cycles = exact_cycles_v(sr, sc, t, rows, cols)
    for operand in (ifmap, filt, ofmap):
        _as_int64(operand)
    return ifmap, filt, ofmap, cycles
