"""Per-layer dataflow selection — which stationarity suits which layer.

The paper fixes the output-stationary dataflow for its scaling study,
but SCALE-Sim supports all three, and Table III makes the trade
explicit: the dataflow decides which tensor dimension pays the temporal
cost and which operand sits still.  This module picks, per layer, the
dataflow that minimizes a chosen objective — using only closed forms,
so whole networks are planned instantly.

Objectives:

* ``runtime`` — Eq. 4 stall-free cycles;
* ``dram``    — total DRAM bytes from the exact traffic model;
* ``sram``    — total SRAM accesses (a proxy for on-chip energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analytical.objectives import estimate_sram_counts
from repro.analytical.runtime import scaleup_runtime
from repro.analytical.traffic import estimate_traffic
from repro.config.hardware import Dataflow, HardwareConfig
from repro.mapping.dims import map_layer
from repro.memory.buffers import BufferSet
from repro.topology.layer import Layer
from repro.topology.network import Network
from repro.utils.validation import check_choice

OBJECTIVES = ("runtime", "dram", "sram")


@dataclass(frozen=True)
class DataflowScore:
    """One (layer, dataflow) evaluation."""

    dataflow: Dataflow
    runtime: int
    dram_bytes: int
    sram_accesses: int

    def value(self, objective: str) -> float:
        return {
            "runtime": float(self.runtime),
            "dram": float(self.dram_bytes),
            "sram": float(self.sram_accesses),
        }[objective]


@dataclass(frozen=True)
class DataflowChoice:
    """The selected dataflow for one layer, with the full comparison."""

    layer_name: str
    objective: str
    best: DataflowScore
    scores: Tuple[DataflowScore, ...]

    @property
    def dataflow(self) -> Dataflow:
        return self.best.dataflow

    def advantage(self) -> float:
        """Best objective value / worst: how much the choice matters."""
        values = [score.value(self.objective) for score in self.scores]
        return max(values) / max(min(values), 1e-12)


def score_dataflows(layer: Layer, config: HardwareConfig) -> List[DataflowScore]:
    """Evaluate all three dataflows for one layer on one array."""
    buffers = BufferSet.from_config(config)
    scores: List[DataflowScore] = []
    for dataflow in Dataflow:
        mapping = map_layer(layer, dataflow)
        runtime = scaleup_runtime(mapping, config.array_rows, config.array_cols)
        traffic = estimate_traffic(
            mapping, config.array_rows, config.array_cols, buffers, config.word_bytes
        )
        sram = estimate_sram_counts(mapping, config.array_rows, config.array_cols)
        scores.append(
            DataflowScore(
                dataflow=dataflow,
                runtime=runtime,
                dram_bytes=traffic.total_bytes,
                sram_accesses=sram.total,
            )
        )
    return scores


def best_dataflow(
    layer: Layer,
    config: HardwareConfig,
    objective: str = "runtime",
) -> DataflowChoice:
    """Pick the objective-minimizing dataflow for one layer."""
    check_choice(objective, "objective", OBJECTIVES)
    scores = score_dataflows(layer, config)
    best = min(scores, key=lambda score: score.value(objective))
    return DataflowChoice(
        layer_name=layer.name,
        objective=objective,
        best=best,
        scores=tuple(scores),
    )


def plan_network_dataflows(
    network: Network,
    config: HardwareConfig,
    objective: str = "runtime",
) -> Dict[str, DataflowChoice]:
    """Per-layer dataflow plan for a whole network."""
    return {
        layer.name: best_dataflow(layer, config, objective) for layer in network
    }


def plan_savings(
    network: Network,
    config: HardwareConfig,
    objective: str = "runtime",
) -> Tuple[float, float]:
    """(fixed-dataflow total, per-layer-best total) for the objective.

    The fixed dataflow is the one in ``config``; the ratio of the two
    totals is the value of making the dataflow schedulable per layer.
    """
    check_choice(objective, "objective", OBJECTIVES)
    fixed_total = 0.0
    best_total = 0.0
    for layer in network:
        scores = score_dataflows(layer, config)
        by_df = {score.dataflow: score for score in scores}
        fixed_total += by_df[config.dataflow].value(objective)
        best_total += min(score.value(objective) for score in scores)
    return fixed_total, best_total
