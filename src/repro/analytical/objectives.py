"""Multi-objective scoring of design points — extension of Sec. IV.

The paper studies runtime, DRAM bandwidth and energy in separate
figures and eyeballs the sweet spots.  This module scores whole
candidate sets on all three objectives at once using only closed forms
(Eq. 5/6 runtime, the exact traffic model, and the event-count energy
model), then extracts the pareto-non-dominated front — the machine-
checkable version of "identify the sweet spots" from the abstract.

Everything here is exact with respect to the library's own models:
closed-form SRAM counts equal the engine's (tested), traffic equals the
engine's (tested), so the scores match what the simulators would
report for monolithic configurations, at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

from repro.analytical.runtime import scaleout_runtime
from repro.analytical.search import CandidateConfig
from repro.analytical.traffic import estimate_traffic
from repro.config.hardware import Dataflow
from repro.dataflow.base import SramCounts
from repro.energy.params import DEFAULT_ENERGY, EnergyParams
from repro.errors import MappingError, SearchError
from repro.mapping.dims import OperandMapping, map_layer
from repro.memory.buffers import BufferSet, DoubleBuffer
from repro.topology.layer import Layer
from repro.utils.mathutils import ceil_div, split_evenly


def estimate_sram_counts(mapping: OperandMapping, array_rows: int, array_cols: int) -> SramCounts:
    """Closed-form SRAM traffic (elements) of one layer on one array.

    Matches :meth:`DataflowEngine.layer_counts` exactly (tested):

    * OS: IFMAP ``S_R*T`` per column fold, filter ``S_C*T`` per row
      fold, one write per output;
    * WS: IFMAP as OS, filter read once (prefill covers the matrix),
      ``S_C*T`` partial writes per row fold;
    * IS mirrors WS with the operands swapped.
    """
    sr, sc, t = mapping.sr, mapping.sc, mapping.t
    row_folds = ceil_div(sr, array_rows)
    col_folds = ceil_div(sc, array_cols)
    if mapping.dataflow is Dataflow.OUTPUT_STATIONARY:
        return SramCounts(
            ifmap_reads=sr * t * col_folds,
            filter_reads=sc * t * row_folds,
            ofmap_writes=sr * sc,
        )
    if mapping.dataflow is Dataflow.WEIGHT_STATIONARY:
        return SramCounts(
            ifmap_reads=sr * t * col_folds,
            filter_reads=sr * sc,
            ofmap_writes=sc * t * row_folds,
        )
    if mapping.dataflow is Dataflow.INPUT_STATIONARY:
        return SramCounts(
            ifmap_reads=sr * sc,
            filter_reads=sr * t * col_folds,
            ofmap_writes=sc * t * row_folds,
        )
    raise MappingError(f"unsupported dataflow {mapping.dataflow!r}")


@dataclass(frozen=True)
class ConfigScore:
    """One candidate's value on the three objectives."""

    candidate: CandidateConfig
    runtime: int
    dram_bytes: int
    energy: float

    @property
    def avg_bandwidth(self) -> float:
        """DRAM bytes over the candidate's runtime."""
        return self.dram_bytes / self.runtime

    def objectives(self) -> Tuple[float, float, float]:
        return (float(self.runtime), float(self.dram_bytes), self.energy)

    def dominates(self, other: "ConfigScore") -> bool:
        """Weak pareto dominance: no worse everywhere, better somewhere."""
        mine, theirs = self.objectives(), other.objectives()
        return all(a <= b for a, b in zip(mine, theirs)) and mine != theirs


def score_candidate(
    layer: Layer,
    candidate: CandidateConfig,
    total_sram_kb: Tuple[int, int, int] = (512, 512, 256),
    word_bytes: int = 1,
    params: EnergyParams = DEFAULT_ENERGY,
) -> ConfigScore:
    """Score one design point on runtime, DRAM traffic and energy.

    SRAM is divided evenly among partitions (paper Sec. IV-A); every
    quantity is computed per distinct partition tile and aggregated
    (runtime = slowest tile, traffic/energy events summed).
    """
    mapping = map_layer(layer, candidate.dataflow)
    parts = candidate.num_partitions
    buffers = BufferSet(
        ifmap=DoubleBuffer("ifmap", max(1, total_sram_kb[0] // parts) * 1024),
        filter=DoubleBuffer("filter", max(1, total_sram_kb[1] // parts) * 1024),
        ofmap=DoubleBuffer("ofmap", max(1, total_sram_kb[2] // parts) * 1024),
    )

    runtime = scaleout_runtime(
        mapping,
        candidate.partition_rows,
        candidate.partition_cols,
        candidate.array_rows,
        candidate.array_cols,
    )

    row_shares = split_evenly(mapping.sr, candidate.partition_rows)
    col_shares = split_evenly(mapping.sc, candidate.partition_cols)
    dram_bytes = 0
    sram = SramCounts()
    macs = 0
    for tile_sr in row_shares:
        for tile_sc in col_shares:
            if tile_sr == 0 or tile_sc == 0:
                continue
            tile = OperandMapping(
                sr=tile_sr, sc=tile_sc, t=mapping.t, dataflow=mapping.dataflow
            )
            traffic = estimate_traffic(
                tile, candidate.array_rows, candidate.array_cols, buffers, word_bytes
            )
            dram_bytes += traffic.total_bytes
            sram = sram + estimate_sram_counts(
                tile, candidate.array_rows, candidate.array_cols
            )
            macs += tile.macs
    if macs == 0:
        raise SearchError(f"candidate {candidate.label()} maps no work for {layer.name!r}")

    pe_cycles = candidate.total_macs * runtime
    energy = (
        params.mac * macs
        + params.sram_access * sram.total
        + params.dram_access * (dram_bytes / word_bytes)
        + params.pe_idle * max(0, pe_cycles - macs)
    )
    return ConfigScore(
        candidate=candidate, runtime=runtime, dram_bytes=dram_bytes, energy=energy
    )


def score_candidates(
    layer: Layer,
    candidates: Iterable[CandidateConfig],
    total_sram_kb: Tuple[int, int, int] = (512, 512, 256),
    word_bytes: int = 1,
    params: EnergyParams = DEFAULT_ENERGY,
) -> List[ConfigScore]:
    """Score every candidate; order preserved."""
    return [
        score_candidate(layer, candidate, total_sram_kb, word_bytes, params)
        for candidate in candidates
    ]


def pareto_front(scores: Sequence[ConfigScore]) -> List[ConfigScore]:
    """Non-dominated subset, sorted by runtime ascending.

    A score survives unless some other score is at least as good on
    every objective and strictly better on one.
    """
    front = [
        score
        for score in scores
        if not any(other.dominates(score) for other in scores)
    ]
    return sorted(front, key=lambda score: score.runtime)
