"""Analytical runtime model and design-space search (paper Sec. III)."""

from repro.analytical.runtime import (
    fold_runtime,
    unlimited_runtime,
    scaleup_runtime,
    scaleout_runtime,
    degraded_scaleup_runtime,
    degraded_scaleout_runtime,
    mapping_utilization,
)
from repro.analytical.search import (
    CandidateConfig,
    array_shapes,
    best_scaleup,
    best_scaleout,
    partition_grids,
    search_space,
)
from repro.analytical.traffic import TrafficEstimate, estimate_traffic
from repro.analytical.recommend import (
    AggregateScore,
    Recommendation,
    recommend_configuration,
)
from repro.analytical.objectives import (
    ConfigScore,
    estimate_sram_counts,
    pareto_front,
    score_candidate,
    score_candidates,
)
from repro.analytical.dataflow_choice import (
    DataflowChoice,
    best_dataflow,
    plan_network_dataflows,
    plan_savings,
)
from repro.analytical.multiworkload import (
    WorkloadSet,
    pareto_search,
    candidate_costs,
    per_workload_losses,
)
from repro.analytical.vectorized import (
    ceil_div_v,
    exact_cycles_v,
    estimate_traffic_v,
    fold_runtime_v,
    mapping_utilization_v,
    scaleout_runtime_v,
    scaleup_runtime_v,
)

__all__ = [
    "fold_runtime",
    "unlimited_runtime",
    "scaleup_runtime",
    "scaleout_runtime",
    "degraded_scaleup_runtime",
    "degraded_scaleout_runtime",
    "mapping_utilization",
    "CandidateConfig",
    "array_shapes",
    "best_scaleup",
    "best_scaleout",
    "partition_grids",
    "search_space",
    "WorkloadSet",
    "pareto_search",
    "candidate_costs",
    "per_workload_losses",
    "TrafficEstimate",
    "estimate_traffic",
    "ConfigScore",
    "estimate_sram_counts",
    "pareto_front",
    "score_candidate",
    "score_candidates",
    "AggregateScore",
    "Recommendation",
    "recommend_configuration",
    "DataflowChoice",
    "best_dataflow",
    "plan_network_dataflows",
    "plan_savings",
    "ceil_div_v",
    "exact_cycles_v",
    "estimate_traffic_v",
    "fold_runtime_v",
    "mapping_utilization_v",
    "scaleout_runtime_v",
    "scaleup_runtime_v",
]
