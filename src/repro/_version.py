"""Single source of the package version.

The version is read from installed package metadata so ``pip install``
and ``pyproject.toml`` stay authoritative; running straight from a
source checkout (``PYTHONPATH=src``) falls back to the pinned string,
which mirrors ``pyproject.toml``.
"""

from __future__ import annotations

from importlib import metadata

#: Fallback for source checkouts that were never pip-installed.
_SOURCE_VERSION = "1.0.0"

try:
    __version__ = metadata.version("repro")
except metadata.PackageNotFoundError:  # pragma: no cover - depends on install
    __version__ = _SOURCE_VERSION
