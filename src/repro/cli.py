"""Command-line front end, in the spirit of the original SCALE-Sim runner.

Subcommands::

    scalesim-repro run      -c config.cfg -t topology.csv [-o outdir]
    scalesim-repro run      --workload resnet50 --array 32x32 ...
    scalesim-repro analyze  --workload resnet50 --array 32x32
    scalesim-repro search   --workload resnet50 --macs 16384 [--scaleout]
    scalesim-repro sweep    --layer TF0 --macs 16384 [--ledger DIR [--incremental]]
    scalesim-repro resweep  --layer TF0 --macs 16384 --ledger DIR
    scalesim-repro resilience --layer TF0 --macs 16384 [--dead 0,1,2,4]
    scalesim-repro dram     --workload TF1 --array 16x16 [--channels 4]
    scalesim-repro validate [--trials N] [--rel-tol T]
    scalesim-repro verify   [--budget S] [--seed N] [--props a,b] [--replay]
    scalesim-repro verify   --bless --reason "why" | --check-golden
    scalesim-repro bench    record|compare [--history FILE] [--threshold T]
    scalesim-repro workloads

``run`` simulates a topology cycle-accurately and writes the report
CSV; ``analyze`` prints the instant closed-form estimates (Eq. 4 plus
the traffic model); ``search`` runs the Sec. IV-B multi-workload
optimization; ``sweep`` regenerates a Fig. 11-style runtime/bandwidth-
vs-partitions series for one layer; ``dram`` replays a layer's prefetch
schedule through the cycle-level DRAM back-end; ``stats`` summarizes a
recorded trace/metrics file.

Global observability flags (before the subcommand): ``--trace FILE``
records a Chrome trace-event / Perfetto JSON timeline, ``--metrics
FILE`` a counters/histograms snapshot, ``--flight DIR`` arms the crash
flight recorder (a bounded telemetry ring dumped to
``flight-<pid>-<ns>.json`` on infrastructure failures, exit codes >=
10), and ``-v`` / ``--log-level`` control the ``repro.*`` logger
hierarchy (report tables always print to stdout; diagnostics go to
stderr).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import functools
import logging
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro._version import __version__
from repro.obs import flight as obs_flight
from repro.obs.bench import (
    DEFAULT_HISTORY,
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    NOISE_FLOOR_S,
)

from repro.analytical.multiworkload import WorkloadSet, pareto_search
from repro.config.hardware import Dataflow, HardwareConfig
from repro.config.parser import load_config
from repro.config.presets import paper_scaling_config
from repro.engine.reports import render_report, write_report_csv
from repro.engine.scaleout import ScaleOutSimulator
from repro.engine.simulator import Simulator
from repro.errors import (
    CheckpointError,
    ConfigError,
    DramError,
    ExecutionError,
    InvariantError,
    MappingError,
    PerfRegressionError,
    ReproError,
    ResilienceError,
    SearchError,
    ServiceError,
    SimulationError,
    StorageError,
    SweepInterrupted,
    TopologyError,
    VerificationError,
    WorkerCrashError,
)
from repro.robust.checkpoint import CheckpointStore
from repro.robust.policy import ExecutionPolicy
from repro.robust.supervisor import SupervisorPolicy
from repro.serve.jobs import sweep_estimate, sweep_measure
from repro.sweep import run_sweep_report
from repro.topology.network import Network
from repro.topology.parser import load_topology
from repro.utils.mathutils import is_power_of_two
from repro.workloads.language import language_layer, TABLE_IV_DIMS
from repro.workloads.registry import available_workloads, get_workload


#: A batch run ended without executing every point (failures tripped the
#: circuit breaker, points were skipped, or SIGINT/SIGTERM drained the
#: sweep early after flushing the checkpoint journal) — distinct from
#: the per-error-class codes so callers can tell "the sweep ran but is
#: incomplete" from "the sweep aborted".
EXIT_INCOMPLETE = 12

#: The supervised worker pool could not make progress: workers kept
#: dying past ``max_restarts`` rebuilds, or a point crash escalated in
#: ``fail_fast`` mode (:class:`~repro.errors.WorkerCrashError`).
EXIT_POOL_LOSS = 13

#: A durable write could not complete (``ENOSPC``/``EIO``/vanished
#: directory — :class:`~repro.errors.StorageError`) and no layer above
#: could degrade gracefully around it.
EXIT_STORAGE = 14

#: The ``repro.serve`` daemon/client layer failed: the daemon cannot
#: bind, the client cannot reach it, a job errored server-side, or
#: back-pressure retries were exhausted
#: (:class:`~repro.errors.ServiceError`).
EXIT_SERVICE = 15

#: The differential-verification harness found a violation: an oracle
#: disagreement, a broken metamorphic property, a regression bundle
#: that reproduces again, a drifted blessed baseline, or a seeded
#: mutant the harness failed to catch
#: (:class:`~repro.errors.VerificationError`).
EXIT_VERIFICATION = 16

#: The perf-regression sentinel tripped: ``bench compare`` measured a
#: tracked benchmark beyond its rolling-baseline noise band
#: (:class:`~repro.errors.PerfRegressionError`) — "slower", distinct
#: from "broken", so CI can gate on it separately.
EXIT_PERF_REGRESSION = 17

#: Stable process exit codes per failure class, most specific first.
#: This table is THE reference for the CLI's exit contract (mirrored in
#: docs/robustness.md):
#:
#: ====  =========================================================
#: code  meaning
#: ====  =========================================================
#: 0     success
#: 1     generic failure (bare :class:`~repro.errors.ReproError`)
#: 2     invalid hardware configuration (``ConfigError``)
#: 3     invalid topology/layer spec (``TopologyError``)
#: 4     simulation engine error (``SimulationError``)
#: 5     unmappable workload (``MappingError``)
#: 6     invalid search space (``SearchError``)
#: 7     DRAM back-end error (``DramError``)
#: 8     checkpoint journal error (``CheckpointError``)
#: 9     invariant violation (``InvariantError``)
#: 10    batch execution failure (``ExecutionError`` and subclasses
#:       without their own code)
#: 11    invalid/unservable fault map (``ResilienceError``)
#: 12    incomplete sweep (breaker trip, skips, or a graceful
#:       SIGINT/SIGTERM drain — ``SweepInterrupted``)
#: 13    worker-pool loss (``WorkerCrashError`` /
#:       ``SupervisorExhaustedError``, or a raw ``BrokenProcessPool``)
#: 14    durable write failure (``StorageError``: ENOSPC, EIO, a
#:       vanished directory) that nothing above could degrade around.
#:       The sweep ledger shares this code: corrupt sealed segments
#:       never exit — they quarantine and re-simulate — so 14 from a
#:       ``--ledger`` run means the ledger *directory itself* could
#:       not be created or opened
#: 15    simulation service failure (``ServiceError``: daemon cannot
#:       bind, unreachable, server-side job error, or exhausted
#:       back-pressure retries)
#: 16    verification failure (``VerificationError``: oracle or
#:       metamorphic violation, a reproducing regression bundle, a
#:       drifted blessed golden baseline, or a surviving mutant)
#: 17    performance regression (``PerfRegressionError``: ``bench
#:       compare`` found a tracked benchmark beyond its rolling
#:       baseline's noise band)
#: ====  =========================================================
EXIT_CODES: Tuple[Tuple[type, int], ...] = (
    (ConfigError, 2),
    (TopologyError, 3),
    (SimulationError, 4),
    (MappingError, 5),
    (SearchError, 6),
    (DramError, 7),
    (CheckpointError, 8),
    (InvariantError, 9),
    (SweepInterrupted, EXIT_INCOMPLETE),
    (WorkerCrashError, EXIT_POOL_LOSS),
    (ExecutionError, 10),
    (ResilienceError, 11),
    (StorageError, EXIT_STORAGE),
    (ServiceError, EXIT_SERVICE),
    (VerificationError, EXIT_VERIFICATION),
    (PerfRegressionError, EXIT_PERF_REGRESSION),
)

#: Generic non-zero exit for failures without a dedicated code.
EXIT_FAILURE = 1

logger = logging.getLogger("repro.cli")


def exit_code_for(exc: BaseException) -> int:
    """Map a :class:`ReproError` to its documented process exit code."""
    for error_type, code in EXIT_CODES:
        if isinstance(exc, error_type):
            return code
    return EXIT_FAILURE


def _add_robust_flags(sub: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags shared by the batch subcommands."""
    sub.add_argument(
        "--checkpoint", metavar="FILE",
        help="JSONL journal recording each completed point",
    )
    sub.add_argument(
        "--resume", action="store_true",
        help="resume an existing --checkpoint journal, skipping completed points",
    )
    sub.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="per-point wall-clock budget",
    )
    sub.add_argument(
        "--max-failures", type=int, dest="max_failures", metavar="N",
        help="collect failures but stop after N of them (default: abort on first)",
    )
    sub.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retries per failing point, with exponential backoff (default 0)",
    )
    sub.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="evaluate grid points on N worker processes (default 1: serial)",
    )
    sub.add_argument(
        "--point-timeout", type=float, dest="point_timeout", metavar="SECONDS",
        help="hard per-point wall-clock ceiling enforced inside each worker "
             "(the runaway point's worker kills itself; needs --workers > 1)",
    )
    sub.add_argument(
        "--point-rss-mb", type=float, dest="point_rss_mb", metavar="MB",
        help="per-point resident-memory ceiling in MiB enforced inside each "
             "worker (needs --workers > 1)",
    )
    sub.add_argument(
        "--quarantine", type=int, default=2, metavar="N",
        help="quarantine a point after it crashes its worker N times, after "
             "one final solo retry (default 2)",
    )


def _robust_workers(args: argparse.Namespace) -> int:
    """Validated worker count: reject < 1, warn + cap at the CPU count."""
    workers = args.workers
    if workers < 1:
        raise ConfigError(f"--workers must be >= 1, got {workers}")
    cpus = os.cpu_count() or 1
    if workers > cpus:
        logger.warning(
            "--workers %d exceeds the %d available CPU(s); capping at %d",
            workers, cpus, cpus,
        )
        return cpus
    return workers


def _robust_supervisor(args: argparse.Namespace) -> SupervisorPolicy:
    try:
        return SupervisorPolicy(
            point_timeout=args.point_timeout,
            point_rss_mb=args.point_rss_mb,
            quarantine_after=args.quarantine,
        )
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def _robust_policy(args: argparse.Namespace) -> ExecutionPolicy:
    try:
        return ExecutionPolicy(
            max_retries=args.retries,
            timeout=args.timeout,
            max_failures=args.max_failures,
            mode="collect" if args.max_failures is not None else "fail_fast",
        )
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def _robust_checkpoint(args: argparse.Namespace) -> Optional[CheckpointStore]:
    if args.resume and not args.checkpoint:
        raise CheckpointError("--resume requires --checkpoint FILE")
    if not args.checkpoint:
        return None
    return CheckpointStore(args.checkpoint, resume=args.resume)


def _sweep_ledger(args: argparse.Namespace):
    """Validated ``--ledger``/``--incremental`` combination for sweep."""
    ledger_dir = getattr(args, "ledger", None)
    incremental = getattr(args, "incremental", False)
    if incremental and not ledger_dir:
        raise ConfigError("--incremental requires --ledger DIR")
    if ledger_dir and args.checkpoint:
        raise ConfigError(
            "--ledger and --checkpoint are mutually exclusive; the ledger "
            "already journals every point durably"
        )
    if not ledger_dir:
        return None
    from repro.serve.jobs import sweep_ledger_version
    from repro.store.ledger import SweepLedger

    # Scope the keys to the full simulation identity, not just the
    # partition counts, so unrelated sweeps can share one ledger.
    version = sweep_ledger_version(
        args.layer, getattr(args, "workload", None) or "resnet50", args.macs
    )
    return SweepLedger(ledger_dir, version=version)


def _parse_shape(text: str, what: str) -> Tuple[int, int]:
    try:
        rows_text, cols_text = text.lower().split("x")
        return int(rows_text), int(cols_text)
    except ValueError:
        raise SystemExit(f"invalid {what} {text!r}; expected e.g. 32x32") from None


def _load_network(args: argparse.Namespace) -> Network:
    if args.topology:
        return load_topology(args.topology)
    if args.workload:
        if args.workload in TABLE_IV_DIMS:
            return Network(args.workload, [language_layer(args.workload)])
        return get_workload(args.workload)
    raise SystemExit("provide --topology FILE or --workload NAME")


def _fault_map_from_args(args: argparse.Namespace):
    """The fault map named by --faults / --fault-map, or ``None``.

    Parse and file errors raise :class:`~repro.errors.ResilienceError`
    (exit code 11).
    """
    from repro.resilience.faultmap import FaultMap, load_fault_map

    spec = getattr(args, "faults", None)
    path = getattr(args, "fault_map", None)
    if spec and path:
        raise ResilienceError("--faults and --fault-map are mutually exclusive")
    if spec:
        return FaultMap.from_spec(spec)
    if path:
        return load_fault_map(path)
    return None


def _build_config(args: argparse.Namespace) -> HardwareConfig:
    if args.config:
        config = load_config(args.config)
    else:
        config = paper_scaling_config(32, 32)
    if args.array:
        rows, cols = _parse_shape(args.array, "--array")
        config = config.with_array(rows, cols)
    if getattr(args, "partitions", None):
        rows, cols = _parse_shape(args.partitions, "--partitions")
        config = config.with_partitions(rows, cols)
    if args.dataflow:
        config = config.with_dataflow(Dataflow.from_string(args.dataflow))
    fault_map = _fault_map_from_args(args)
    if fault_map is not None:
        config = config.with_fault_map(fault_map)
    return config


def _cmd_run(args: argparse.Namespace) -> int:
    network = _load_network(args)
    if args.batch and args.batch > 1:
        network = network.with_batch(args.batch)
    config = _build_config(args)
    if config.is_monolithic:
        result = Simulator(config, loop_order=args.loop_order).run_network(network)
    else:
        result = ScaleOutSimulator(config).run_network(network)
    print(f"# {config.describe()}")
    print(render_report(result))
    if args.outdir:
        outdir = Path(args.outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        path = write_report_csv(result, outdir / f"{network.name}_report.csv")
        print(f"\nreport written to {path}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Closed-form estimates: Eq. 4 runtime + the traffic model."""
    from repro.analytical.runtime import scaleup_runtime
    from repro.analytical.traffic import estimate_traffic
    from repro.mapping.dims import map_layer
    from repro.memory.buffers import BufferSet

    network = _load_network(args)
    config = _build_config(args)
    if not config.is_monolithic:
        raise SystemExit("analyze estimates single arrays; drop --partitions")
    buffers = BufferSet.from_config(config)
    print(f"# analytical estimates, {config.describe()}")
    print(f"{'layer':16s} {'eq4_cycles':>12s} {'dram_rd_B':>12s} {'dram_wr_B':>12s} {'avg_bw':>8s}")
    total_cycles = 0
    for layer in network:
        mapping = map_layer(layer, config.dataflow)
        runtime = scaleup_runtime(mapping, config.array_rows, config.array_cols)
        estimate = estimate_traffic(
            mapping, config.array_rows, config.array_cols, buffers, config.word_bytes
        )
        total_cycles += runtime
        print(
            f"{layer.name:16s} {runtime:12d} {estimate.read_bytes:12d} "
            f"{estimate.ofmap_bytes:12d} {estimate.avg_total_bw:8.2f}"
        )
    print(f"\ntotal Eq.4 cycles: {total_cycles}")
    return 0


def _cmd_dram(args: argparse.Namespace) -> int:
    """Replay one layer's DRAM schedule through the device back-end."""
    from repro.dram.simulator import DramSimulator
    from repro.dram.timing import DramTiming
    from repro.engine.tracefiles import dram_request_stream
    from repro.memory.bandwidth import compute_dram_traffic
    from repro.memory.buffers import BufferSet

    network = _load_network(args)
    config = _build_config(args)
    if not config.is_monolithic:
        raise SystemExit("dram replays single-array traces; drop --partitions")
    simulator = Simulator(config)
    timing = DramTiming(num_channels=args.channels)
    device = DramSimulator(timing)
    print(f"# DRAM replay, {config.describe()}, {args.channels} channel(s)")
    print(f"{'layer':16s} {'demand_bw':>10s} {'achieved':>10s} {'hit_rate':>9s} {'verdict':>12s}")
    for layer in network:
        engine = simulator.engine(layer)
        traffic = compute_dram_traffic(
            engine, BufferSet.from_config(config), config.word_bytes
        )
        requests = list(
            dram_request_stream(traffic, simulator.address_layout(layer))
        )
        stats = device.run(requests)
        demand = traffic.bandwidth.avg_total_bw
        verdict = "keeps up" if stats.achieved_bandwidth >= 0.95 * demand else "falls behind"
        print(
            f"{layer.name:16s} {demand:10.2f} {stats.achieved_bandwidth:10.2f} "
            f"{stats.row_hit_rate:9.2f} {verdict:>12s}"
        )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    network = _load_network(args)
    workloads = WorkloadSet(
        name=network.name,
        layers=tuple(network),
        dataflow=Dataflow.from_string(args.dataflow or "os"),
    )
    best, ranking = pareto_search(workloads, args.macs, scaleout=args.scaleout)
    kind = "scale-out" if args.scaleout else "scale-up"
    print(f"# optimal {kind} configuration for {network.name} at {args.macs} MACs")
    print(f"best: {best.label()}  (total runtime {ranking[0][1]:.2f}x)")
    for rank, (cand, loss) in enumerate(ranking, start=1):
        print(f"  {rank:2d}. {cand.label():40s} perf loss {loss:6.2f}x")
    return 0


def _resolve_layer(args: argparse.Namespace):
    """The layer named by --layer, from Table IV or --workload."""
    if args.layer in TABLE_IV_DIMS:
        return language_layer(args.layer)
    network = get_workload(args.workload or "resnet50")
    if args.layer not in network:
        raise SystemExit(f"unknown layer {args.layer!r}")
    return network[args.layer]


def _cmd_sweep(args: argparse.Namespace) -> int:
    if not is_power_of_two(args.macs):
        raise SystemExit("--macs must be a power of two for the sweep")
    layer = _resolve_layer(args)
    candidates: List[int] = (
        [int(p) for p in args.partitions.split(",")]
        if args.partitions
        else [4**i for i in range(8) if 4**i * 64 <= args.macs]
    )
    counts = [
        count for count in candidates
        if not args.macs % count and is_power_of_two(args.macs // count)
    ]
    ledger = _sweep_ledger(args)
    incremental = getattr(args, "incremental", False)
    print(f"# layer {layer.name}, {args.macs} MACs, OS dataflow")
    if ledger is not None and incremental:
        diff = ledger.diff_grid([{"partitions": count} for count in counts])
        print(f"# incremental re-sweep: {diff.describe()}")
    print("partitions  array       cycles      avg_bw(B/cyc)  peak_bw(B/cyc)")
    if not counts:
        if ledger is not None:
            ledger.close()
        return 0

    # Analytical pruning is opt-in (--top-k/--prune-band) and --exact
    # always wins: without an estimator the sweep is byte-identical to
    # the pre-compiler behaviour.
    pruning = (
        not args.exact
        and (args.top_k is not None or args.prune_band is not None)
    )
    try:
        rows, report = run_sweep_report(
            functools.partial(sweep_measure, layer=layer, macs=args.macs),
            policy=_robust_policy(args),
            checkpoint=_robust_checkpoint(args),
            workers=_robust_workers(args),
            supervisor=_robust_supervisor(args),
            estimator=(
                functools.partial(sweep_estimate, layer=layer, macs=args.macs)
                if pruning
                else None
            ),
            top_k=args.top_k,
            prune_band=args.prune_band,
            exact=args.exact,
            ledger=ledger,
            incremental=incremental,
            partitions=counts,
        )
    finally:
        if ledger is not None:
            ledger.close()
    for row in rows:
        status = row.get("status")
        if status and status != "estimated":
            print(f"{row['partitions']:10d}  {status}: {row.get('error', '')}")
            continue
        marker = "  ~ analytical" if status == "estimated" else ""
        array_rows, array_cols = row["array"].split("x")
        print(
            f"{row['partitions']:10d}  {array_rows}x{int(array_cols):<8d} "
            f"{row['cycles']:10d}  {row['avg_bw']:13.3f}  {row['peak_bw']:14.3f}"
            f"{marker}"
        )
    if report.estimated:
        logger.info(
            "analytical pruning settled %d of %d point(s) without the engine",
            report.estimated, len(report),
        )
    if report.failed or report.skipped:
        logger.warning("sweep incomplete: %s", report.summary())
        return EXIT_INCOMPLETE
    return 0


def _cmd_resweep(args: argparse.Namespace) -> int:
    """``sweep --ledger DIR --incremental`` spelled as a verb."""
    args.incremental = True
    return _cmd_sweep(args)


def _resilience_measure(
    dead: int,
    layer=None,
    macs: int = 0,
    partitions: int = 16,
    seed: int = 0,
    fault_map=None,
) -> List[dict]:
    """One degradation-sweep point; module-level for picklability."""
    from repro.experiments.resilience import degradation_sweep

    rows = degradation_sweep(
        layer,
        total_macs=macs,
        partitions=partitions,
        dead_counts=[dead],
        seed=seed,
        fault_map=fault_map,
    )
    # The sweep axis re-adds the dead count to every row.
    return [{k: v for k, v in row.items() if k != "dead"} for row in rows]


def _cmd_resilience(args: argparse.Namespace) -> int:
    """Degraded-mode sweep: runtime/traffic as partitions fail."""
    if not is_power_of_two(args.macs):
        raise SystemExit("--macs must be a power of two for the sweep")
    layer = _resolve_layer(args)
    fault_map = _fault_map_from_args(args)
    if fault_map is not None:
        dead_counts = [len(fault_map.dead_partitions)]
    else:
        try:
            dead_counts = [int(k) for k in args.dead.split(",")]
        except ValueError:
            raise SystemExit(f"invalid --dead {args.dead!r}; expected e.g. 0,1,2,4") from None

    rows, report = run_sweep_report(
        functools.partial(
            _resilience_measure,
            layer=layer,
            macs=args.macs,
            partitions=args.partitions,
            seed=args.seed,
            fault_map=fault_map,
        ),
        policy=_robust_policy(args),
        checkpoint=_robust_checkpoint(args),
        workers=_robust_workers(args),
        supervisor=_robust_supervisor(args),
        dead=dead_counts,
    )
    print(
        f"# layer {layer.name}, {args.macs} MACs over {args.partitions} "
        f"partition(s), seed {args.seed}"
    )
    print("dead  cycles      slowdown  bound       remapped  noc_byte_hops  e_total")
    for row in rows:
        if row.get("status"):
            print(f"{row['dead']:4d}  {row['status']}: {row.get('error', '')}")
            continue
        print(
            f"{row['dead']:4d}  {row['cycles']:10d}  {row['slowdown']:8.4f}  "
            f"{row['bound_cycles']:10d}  {row['remapped_tiles']:8d}  "
            f"{row['noc_byte_hops']:13d}  {row['e_total']}"
        )
    if report.failed or report.skipped:
        logger.warning("sweep incomplete: %s", report.summary())
        return EXIT_INCOMPLETE
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    print("built-in networks: " + ", ".join(available_workloads()))
    print("Table IV layers:   " + ", ".join(sorted(TABLE_IV_DIMS)))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Summarize a recorded trace/metrics file, flight dump, or ledger."""
    from repro.obs.stats import summarize_file

    chosen = [bool(args.file), bool(args.from_flight), bool(args.ledger)]
    if sum(chosen) != 1:
        raise ConfigError(
            "provide exactly one of FILE, --from-flight FILE or --ledger DIR"
        )
    if args.ledger:
        return _stats_ledger(args)
    target = args.from_flight or args.file
    try:
        if args.from_flight:
            doc = obs_flight.load_flight(args.from_flight)
            print(obs_flight.render_flight_summary(doc, top=args.top))
        else:
            print(summarize_file(args.file, top=args.top))
    except FileNotFoundError:
        raise ConfigError(f"no such file: {target}") from None
    except (ValueError, OSError) as exc:
        raise ConfigError(str(exc)) from exc
    return 0


def _stats_ledger(args: argparse.Namespace) -> int:
    """Health + column-query summary of a columnar sweep ledger."""
    from repro.store.ledger import SweepLedger

    if not Path(args.ledger).is_dir():
        raise ConfigError(f"no such ledger directory: {args.ledger}")
    ledger = SweepLedger(args.ledger, writable=False)
    try:
        status = ledger.status()
        print(f"# ledger {status['root']} (version {status['version']})")
        print(f"mode       {status['mode']}"
              + (f"  ({status['degraded_reason']})"
                 if status["degraded_reason"] else ""))
        print(f"entries    {status['entries']} "
              f"({status['completed']} completed, {status['pending']} unsealed)")
        print(f"segments   {status['segments']} sealed, "
              f"{status['corrupt']} quarantined")
        if status["corrupt"]:
            for path in ledger.quarantined():
                print(f"  corrupt: {path.name}")
        if args.group_by:
            parts = [p.strip() for p in args.group_by.split(",")]
            if len(parts) not in (2, 3):
                raise ConfigError(
                    f"--group-by wants KEY,VALUE[,AGG], got {args.group_by!r}"
                )
            agg = parts[2] if len(parts) == 3 else "min"
            try:
                groups = ledger.group_by(parts[0], parts[1], agg=agg)
            except ValueError as exc:
                raise ConfigError(str(exc)) from exc
            print(f"# {agg}({parts[1]}) by {parts[0]}")
            for group in sorted(groups, key=repr):
                print(f"  {group!r:16}  {groups[group]}")
        if args.pareto:
            names = [n.strip() for n in args.pareto.split(",") if n.strip()]
            try:
                front = ledger.pareto(minimize=names)
            except ValueError as exc:
                raise ConfigError(str(exc)) from exc
            print(f"# pareto front minimizing ({', '.join(names)}): "
                  f"{len(front)} row(s)")
            for row in front:
                cells = ", ".join(f"{name}={row.get(name)}" for name in names)
                print(f"  {cells}")
    finally:
        ledger.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Perf-regression sentinel: measure the suite, record or compare."""
    from repro.obs import bench

    names = (
        [name.strip() for name in args.benches.split(",") if name.strip()]
        if args.benches
        else None
    )
    try:
        results = bench.run_suite(names, repeats=args.repeats)
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc
    history_path = Path(args.history)

    if args.action == "record":
        bench.record(history_path, results, note=args.note)
        print(f"# recorded {len(results)} bench(es) to {history_path}")
        for result in results:
            print(
                f"{result.name:16s} {result.wall_time_s:9.4f}s  "
                f"{len(result.counters)} counter(s)"
            )
        return 0

    try:
        history = bench.load_history(history_path)
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc
    report = bench.compare(
        history,
        results,
        threshold=args.threshold,
        window=args.window,
        noise_floor_s=args.noise_floor,
        inject_slowdown=args.inject_slowdown,
    )
    print(f"# bench compare against {history_path} ({len(history)} history entries)")
    print(report.render())
    if args.record and report.ok:
        # only passing runs feed the rolling baseline; a regressed run
        # must not poison the very history that flagged it
        bench.record(history_path, results, note=args.note)
    report.raise_on_regression()
    return 0


#: Environment fallback for ``validate --rel-tol`` (flag wins).
VALIDATE_REL_TOL_ENV = "REPRO_VALIDATE_REL_TOL"


def _validate_rel_tol(args: argparse.Namespace) -> float:
    """Resolve the validation tolerance: flag, then env, then exact 0."""
    if args.rel_tol is not None:
        value, origin = args.rel_tol, "--rel-tol"
    elif os.environ.get(VALIDATE_REL_TOL_ENV):
        raw = os.environ[VALIDATE_REL_TOL_ENV]
        try:
            value = float(raw)
        except ValueError:
            raise ConfigError(
                f"{VALIDATE_REL_TOL_ENV}={raw!r} is not a number"
            ) from None
        origin = VALIDATE_REL_TOL_ENV
    else:
        return 0.0
    if not (0.0 <= value < 1.0):
        raise ConfigError(
            f"{origin} must be in [0, 1), got {value}"
        )
    return value


def _cmd_validate(args: argparse.Namespace) -> int:
    """Cross-model validation sweep (the Fig. 4 methodology, randomized)."""
    from repro.golden.validate import validation_sweep

    reports = validation_sweep(
        seed=args.seed, trials=args.trials, rel_tol=_validate_rel_tol(args)
    )
    failures = [report for report in reports if not report.passed]
    for report in reports if args.verbose else failures:
        print(report.describe())
    print(
        f"\n{len(reports) - len(failures)}/{len(reports)} configurations agree "
        "across engine, golden array and Eq. 4"
    )
    return 1 if failures else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Differential verification: fuzz, replay, mutation smoke, baselines."""
    from repro.verify import (
        PROPERTIES,
        assert_baselines,
        bless,
        replay_corpus,
        run_mutation_smoke,
        run_verify,
    )

    if args.list_props:
        for name, prop in sorted(PROPERTIES.items()):
            print(f"{name:16} [{prop.kind}] {prop.doc}")
        return 0

    if args.bless:
        paths = bless(
            args.experiments or None,
            reason=args.reason or "",
            baseline_dir=args.baselines,
        )
        for path in paths:
            print(f"blessed {path}")
        return 0

    if args.check_golden:
        report = assert_baselines(
            args.experiments or None,
            baseline_dir=args.baselines,
            rel_tol=args.golden_rel_tol,
        )
        print(report.summary())
        return 0

    if args.replay:
        outcomes = replay_corpus(args.corpus)
        live = {name: violations for name, violations in outcomes.items() if violations}
        print(f"replayed {len(outcomes)} regression bundle(s) from {args.corpus}")
        if live:
            for name, violations in sorted(live.items()):
                for violation in violations:
                    print(f"  {name}: {violation.describe()}")
            raise VerificationError(
                f"{len(live)} regression bundle(s) reproduce their defect again"
            )
        return 0

    if args.mutation_smoke:
        report = run_mutation_smoke(seed=args.seed)
        print(report.summary())
        for name, paths in report.bundles.items():
            for path in paths[:1]:
                print(f"  {name}: shrunk repro at {path}")
        return 0

    props = [name.strip() for name in (args.props or "").split(",") if name.strip()]
    report = run_verify(
        budget=args.budget,
        seed=args.seed,
        props=props or None,
        max_cases=args.cases,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
    )
    print(report.summary())
    for name, count in sorted(report.checks_by_prop.items()):
        print(f"  {name:16} {count} check(s)")
    if not report.passed:
        bundles = ", ".join(str(path) for path in report.bundles) or "none written"
        raise VerificationError(
            f"{len(report.violations)} verification violation(s); "
            f"regression bundle(s): {bundles}"
        )
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    """Run the scaling-recommendation heuristic on a workload set."""
    from repro.analytical.recommend import recommend_configuration

    network = _load_network(args)
    workloads = WorkloadSet(
        name=network.name,
        layers=tuple(network),
        dataflow=Dataflow.from_string(args.dataflow or "os"),
    )
    rec = recommend_configuration(
        workloads,
        args.macs,
        objective=args.objective,
        bandwidth_budget=args.bandwidth,
    )
    print(f"# recommendation for {network.name} at {args.macs} MACs "
          f"(objective: {args.objective})")
    print(f"chosen: {rec.summary()}\n")
    print(f"{'rank':>4s}  {'config':42s} {'cycles':>12s} {'avg_bw':>9s} {'energy':>12s}")
    for rank, score in enumerate(rec.ranking, start=1):
        marker = "  <==" if score.candidate == rec.candidate else ""
        print(
            f"{rank:4d}  {score.candidate.label():42s} {score.runtime:12d} "
            f"{score.avg_bandwidth:9.2f} {score.energy:12.4g}{marker}"
        )
    return 0


def _reproduce_measure(experiment: str):
    """One experiment evaluation; module-level for picklability."""
    from repro.experiments import run_experiment

    return run_experiment(experiment)


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate one of the paper's tables/figures and print its rows."""
    from repro.experiments import available_experiments

    if args.list or not args.experiment:
        print("experiments: " + ", ".join(available_experiments()))
        return 0
    name = args.experiment.lower()
    if name not in available_experiments():
        raise SystemExit(
            f"unknown experiment {args.experiment!r}; "
            f"available: {available_experiments()}"
        )
    rows, report = run_sweep_report(
        _reproduce_measure,
        policy=_robust_policy(args),
        checkpoint=_robust_checkpoint(args),
        workers=_robust_workers(args),
        supervisor=_robust_supervisor(args),
        experiment=[name],
    )
    if report.failed:
        for record in report.failures():
            logger.error(
                "experiment %r failed after %d attempt(s): %s",
                name, record.attempts, record.error,
            )
        return EXIT_FAILURE
    if not rows:
        print(f"# {name}\n(no rows)")
        return 0
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    widths = {
        key: max(len(key), max(len(str(row.get(key, ""))) for row in rows))
        for key in header
    }
    print(f"# {name}")
    print("  ".join(key.ljust(widths[key]) for key in header))
    for row in rows:
        print("  ".join(str(row.get(key, "")).ljust(widths[key]) for key in header))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived simulation daemon until SIGTERM/SIGINT."""
    import signal
    import threading

    from repro.serve.daemon import (
        ServicePolicy,
        SimulationService,
        make_server,
        serve_until_signalled,
    )

    try:
        policy = ServicePolicy(
            workers=args.workers,
            max_queue=args.queue,
            client_quota=args.quota,
            request_timeout=args.request_timeout,
            drain_timeout=args.drain_timeout,
        )
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc
    # /metrics exposition needs live counters/histograms regardless of
    # whether a --metrics snapshot sink was requested
    obs.metrics.enable()
    if args.ledger:
        # The job layer opens the ledger lazily per sweep execution, so
        # the daemon only pays for it when sweep jobs actually arrive.
        from repro.serve.jobs import SWEEP_LEDGER_ENV

        os.environ[SWEEP_LEDGER_ENV] = args.ledger
    service = SimulationService(policy)
    server = make_server(
        service, host=args.host, port=args.port, socket_path=args.socket
    )

    def _stop(signum: int, _frame) -> None:
        logger.warning(
            "received %s: draining in-flight jobs and shutting down",
            signal.Signals(signum).name,
        )
        if signum == signal.SIGTERM:
            # a terminated daemon leaves its black box behind (no-op
            # when the flight recorder is not armed)
            obs_flight.dump("SIGTERM: daemon draining")
        # serve_forever() must be unblocked from another thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _stop)
    return serve_until_signalled(server, service)


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job (or a health probe) to a running daemon."""
    import json as _json

    from repro.serve.client import ServiceClient

    client = ServiceClient(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        client_id=args.client,
        timeout=args.http_timeout,
    )
    if args.health:
        print(_json.dumps(client.health(), indent=2, default=repr))
        return 0
    if bool(args.request) == bool(args.file):
        raise ServiceError("provide exactly one of --request JSON or --file FILE")
    try:
        text = Path(args.file).read_text() if args.file else args.request
        request = _json.loads(text)
    except OSError as exc:
        raise ServiceError(f"cannot read request file: {exc}") from exc
    except _json.JSONDecodeError as exc:
        raise ServiceError(f"request is not valid JSON: {exc}") from exc
    body = client.submit(request, max_retries=args.wait)
    print(_json.dumps(body, indent=2, default=repr))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scalesim-repro",
        description="SCALE-Sim reproduction: systolic DNN accelerator simulator",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record a Chrome trace-event / Perfetto JSON timeline to FILE",
    )
    parser.add_argument(
        "--metrics", metavar="FILE",
        help="write a counters/gauges/histograms snapshot JSON to FILE",
    )
    parser.add_argument(
        "--events", metavar="FILE",
        help="append a JSONL structured event log to FILE",
    )
    parser.add_argument(
        "--flight", metavar="DIR",
        help="arm the crash flight recorder: on infrastructure failures "
             "(exit codes >= 10), unhandled exceptions, or daemon SIGTERM, "
             "dump recent spans/logs/metrics atomically to "
             "DIR/flight-<pid>-<ns>.json (also via $"
             f"{obs_flight.FLIGHT_DIR_ENV})",
    )
    parser.add_argument(
        "--no-cache", dest="no_cache", action="store_true",
        help="disable the in-process simulation result cache",
    )
    parser.add_argument(
        "--store", metavar="DIR",
        help="persist simulation results in a content-addressed store at "
             "DIR (created if missing); identical points are served from "
             "disk across runs and processes",
    )
    parser.add_argument(
        "--no-store", dest="no_store", action="store_true",
        help="disable the persistent result store (overrides --store and "
             "the REPRO_RESULT_STORE environment variable)",
    )
    parser.add_argument(
        "--log-level", dest="log_level",
        choices=["debug", "info", "warning", "error"],
        help="threshold for the repro.* logger hierarchy (stderr)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", dest="verbosity", default=0,
        help="increase log verbosity (-v info, -vv debug)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="cycle-accurate simulation of a topology")
    run.add_argument("-c", "--config", help="SCALE-Sim INI config file")
    run.add_argument("-t", "--topology", help="Table II topology CSV")
    run.add_argument("--workload", help="built-in workload or Table IV layer name")
    run.add_argument("--array", help="array shape, e.g. 32x32")
    run.add_argument("--partitions", help="partition grid, e.g. 4x4")
    run.add_argument("--dataflow", choices=["os", "ws", "is"])
    run.add_argument("--batch", type=int, default=1, help="batch size (default 1)")
    run.add_argument(
        "--loop-order", choices=["row", "col"], default="row",
        help="fold iteration order (affects DRAM traffic only)",
    )
    run.add_argument(
        "--faults", metavar="SPEC",
        help="fault-map spec, e.g. 'pe_row:3;partition:1,2;link:0,0-0,1'",
    )
    run.add_argument(
        "--fault-map", dest="fault_map", metavar="FILE",
        help="JSON fault-map file (see docs/robustness.md)",
    )
    run.add_argument("-o", "--outdir", help="directory for report CSVs")
    run.set_defaults(func=_cmd_run)

    analyze = sub.add_parser("analyze", help="closed-form runtime/traffic estimates")
    analyze.add_argument("-c", "--config", help="SCALE-Sim INI config file")
    analyze.add_argument("-t", "--topology", help="Table II topology CSV")
    analyze.add_argument("--workload", help="built-in workload or Table IV layer name")
    analyze.add_argument("--array", help="array shape, e.g. 32x32")
    analyze.add_argument("--dataflow", choices=["os", "ws", "is"])
    analyze.set_defaults(func=_cmd_analyze, partitions=None)

    dram = sub.add_parser("dram", help="replay DRAM schedule through the device model")
    dram.add_argument("-c", "--config", help="SCALE-Sim INI config file")
    dram.add_argument("-t", "--topology", help="Table II topology CSV")
    dram.add_argument("--workload", help="built-in workload or Table IV layer name")
    dram.add_argument("--array", help="array shape, e.g. 16x16")
    dram.add_argument("--dataflow", choices=["os", "ws", "is"])
    dram.add_argument("--channels", type=int, default=1, help="DRAM channels")
    dram.set_defaults(func=_cmd_dram, partitions=None)

    search = sub.add_parser("search", help="Sec. IV-B multi-workload optimization")
    search.add_argument("--topology", help="Table II topology CSV")
    search.add_argument("--workload", help="built-in workload name")
    search.add_argument("--macs", type=int, required=True, help="total MAC budget")
    search.add_argument("--scaleout", action="store_true", help="search partitioned configs")
    search.add_argument("--dataflow", choices=["os", "ws", "is"])
    search.set_defaults(func=_cmd_search)

    sweep = sub.add_parser("sweep", help="Fig. 11-style partition sweep for one layer")
    sweep.add_argument("--layer", required=True, help="layer name (e.g. TF0, CB2a_3)")
    sweep.add_argument("--workload", help="network containing --layer (default resnet50)")
    sweep.add_argument("--macs", type=int, required=True)
    sweep.add_argument("--partitions", help="comma-separated partition counts")
    sweep.add_argument(
        "--top-k", dest="top_k", type=int, metavar="K",
        help="prune: simulate only the K analytically fastest points "
             "(plus the --prune-band); the rest settle analytically",
    )
    sweep.add_argument(
        "--prune-band", dest="prune_band", type=float, metavar="FRAC",
        help="prune: also simulate every point within FRAC of the "
             "analytical optimum (default 0.25 when pruning is on)",
    )
    sweep.add_argument(
        "--exact", action="store_true",
        help="simulate every point (escape hatch; ignores pruning flags)",
    )
    sweep.add_argument(
        "--ledger", metavar="DIR",
        help="durable columnar sweep ledger directory: every finished "
             "point is journalled crash-safely and sealed into "
             "checksummed segments (see docs/robustness.md)",
    )
    sweep.add_argument(
        "--incremental", action="store_true",
        help="with --ledger: reuse completed ledger points and simulate "
             "only new, changed or quarantined ones",
    )
    _add_robust_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    resweep = sub.add_parser(
        "resweep",
        help="incremental re-run of a ledgered sweep: only new/invalidated "
             "points simulate",
    )
    resweep.add_argument("--layer", required=True, help="layer name (e.g. TF0, CB2a_3)")
    resweep.add_argument("--workload", help="network containing --layer (default resnet50)")
    resweep.add_argument("--macs", type=int, required=True)
    resweep.add_argument("--partitions", help="comma-separated partition counts")
    resweep.add_argument(
        "--top-k", dest="top_k", type=int, metavar="K",
        help="prune: simulate only the K analytically fastest points "
             "(plus the --prune-band); the rest settle analytically",
    )
    resweep.add_argument(
        "--prune-band", dest="prune_band", type=float, metavar="FRAC",
        help="prune: also simulate every point within FRAC of the "
             "analytical optimum (default 0.25 when pruning is on)",
    )
    resweep.add_argument(
        "--exact", action="store_true",
        help="simulate every point (escape hatch; ignores pruning flags)",
    )
    resweep.add_argument(
        "--ledger", metavar="DIR", required=True,
        help="the columnar sweep ledger directory to diff the grid against",
    )
    _add_robust_flags(resweep)
    resweep.set_defaults(func=_cmd_resweep)

    resilience = sub.add_parser(
        "resilience", help="degraded-mode sweep: runtime as partitions fail"
    )
    resilience.add_argument("--layer", required=True, help="layer name (e.g. TF0, CB2a_3)")
    resilience.add_argument("--workload", help="network containing --layer (default resnet50)")
    resilience.add_argument("--macs", type=int, required=True, help="total MAC budget")
    resilience.add_argument(
        "--partitions", type=int, default=16,
        help="partition count of the healthy grid (default 16)",
    )
    resilience.add_argument(
        "--dead", default="0,1,2,4",
        help="comma-separated dead-partition counts (default 0,1,2,4)",
    )
    resilience.add_argument("--seed", type=int, default=0,
                            help="seed for drawing which partitions die")
    resilience.add_argument(
        "--faults", metavar="SPEC",
        help="run exactly this fault scenario instead of --dead/--seed draws",
    )
    resilience.add_argument(
        "--fault-map", dest="fault_map", metavar="FILE",
        help="JSON fault-map file (see docs/robustness.md)",
    )
    _add_robust_flags(resilience)
    resilience.set_defaults(func=_cmd_resilience)

    listing = sub.add_parser("workloads", help="list built-in workloads")
    listing.set_defaults(func=_cmd_workloads)

    validate = sub.add_parser("validate", help="cross-model cycle validation sweep")
    validate.add_argument("--trials", type=int, default=10, help="trials per dataflow")
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("-v", "--verbose", action="store_true",
                          help="print every comparison, not just failures")
    validate.add_argument("--rel-tol", type=float, dest="rel_tol", default=None,
                          metavar="TOL",
                          help="relative tolerance for the cross-model "
                               "comparisons (default: $"
                               f"{VALIDATE_REL_TOL_ENV} or exact)")
    validate.set_defaults(func=_cmd_validate)

    verify = sub.add_parser(
        "verify",
        help="differential verification: fuzz, shrink, regressions, baselines",
    )
    verify.add_argument("--budget", type=float, default=30.0, metavar="SECONDS",
                        help="wall-clock fuzzing budget (default 30)")
    verify.add_argument("--cases", type=int, default=None, metavar="N",
                        help="cap on generated cases (default: budget-bound)")
    verify.add_argument("--seed", type=int, default=0,
                        help="generator seed; (seed, index) replays any case")
    verify.add_argument("--props", metavar="NAMES",
                        help="comma-separated property names (see --list-props)")
    verify.add_argument("--corpus", default="tests/regressions", metavar="DIR",
                        help="regression-bundle corpus directory "
                             "(default tests/regressions)")
    verify.add_argument("--no-shrink", action="store_true",
                        help="skip minimizing violations before bundling")
    verify.add_argument("--replay", action="store_true",
                        help="replay the regression corpus instead of fuzzing")
    verify.add_argument("--mutation-smoke", action="store_true",
                        dest="mutation_smoke",
                        help="prove the harness catches seeded defects")
    verify.add_argument("--check-golden", action="store_true",
                        dest="check_golden",
                        help="diff blessed golden baselines against fresh runs")
    verify.add_argument("--bless", action="store_true",
                        help="freeze current experiment rows as blessed "
                             "baselines (requires --reason)")
    verify.add_argument("--reason", metavar="TEXT",
                        help="justification recorded inside blessed baselines")
    verify.add_argument("--baselines", default="baselines", metavar="DIR",
                        help="blessed-baseline directory (default baselines)")
    verify.add_argument("--rel-tol", type=float, dest="golden_rel_tol",
                        default=0.0, metavar="TOL",
                        help="relative tolerance for --check-golden (default exact)")
    verify.add_argument("--list-props", action="store_true", dest="list_props",
                        help="list the property registry and exit")
    verify.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiment ids for --bless/--check-golden "
                             "(default: all)")
    verify.set_defaults(func=_cmd_verify)

    recommend = sub.add_parser("recommend", help="heuristic scaling recommendation")
    recommend.add_argument("--topology", help="Table II topology CSV")
    recommend.add_argument("--workload", help="built-in workload name")
    recommend.add_argument("--macs", type=int, required=True, help="total MAC budget")
    recommend.add_argument("--objective", choices=["runtime", "energy", "edp"],
                           default="runtime")
    recommend.add_argument("--bandwidth", type=float,
                           help="DRAM bandwidth budget in bytes/cycle")
    recommend.add_argument("--dataflow", choices=["os", "ws", "is"])
    recommend.set_defaults(func=_cmd_recommend)

    reproduce = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    reproduce.add_argument("experiment", nargs="?", help="experiment id, e.g. fig11def")
    reproduce.add_argument("--list", action="store_true", help="list experiment ids")
    _add_robust_flags(reproduce)
    reproduce.set_defaults(func=_cmd_reproduce)

    stats = sub.add_parser(
        "stats", help="summarize a recorded --trace/--metrics file or flight dump"
    )
    stats.add_argument("file", nargs="?",
                       help="trace JSON or metrics JSON to summarize")
    stats.add_argument(
        "--from-flight", dest="from_flight", metavar="FILE",
        help="summarize a crash flight-recorder dump instead "
             "(crash header, top spans, metrics, log tail)",
    )
    stats.add_argument(
        "--top", type=int, default=10,
        help="number of spans/histograms to show (default 10)",
    )
    stats.add_argument(
        "--ledger", metavar="DIR",
        help="summarize a columnar sweep ledger instead (health, "
             "segments, quarantined corruption)",
    )
    stats.add_argument(
        "--group-by", dest="group_by", metavar="KEY,VALUE[,AGG]",
        help="with --ledger: aggregate VALUE per distinct KEY over the "
             "completed rows (AGG: min/max/mean/sum/count; default min)",
    )
    stats.add_argument(
        "--pareto", metavar="COLS",
        help="with --ledger: print the pareto front minimizing the "
             "comma-separated columns",
    )
    stats.set_defaults(func=_cmd_stats)

    bench = sub.add_parser(
        "bench", help="perf-regression sentinel: record or compare the bench suite"
    )
    bench.add_argument("action", choices=["record", "compare"],
                       help="record: append this run to the history; "
                            "compare: judge this run against the rolling baseline")
    bench.add_argument("--history", default=str(DEFAULT_HISTORY), metavar="FILE",
                       help=f"durable JSONL bench history (default {DEFAULT_HISTORY})")
    bench.add_argument("--benches", metavar="NAMES",
                       help="comma-separated bench names (default: whole suite)")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="repetitions per bench; min wall time wins (default 3)")
    bench.add_argument("--note", metavar="TEXT",
                       help="annotation stored in the recorded history entry")
    bench.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       metavar="T",
                       help="relative wall-time regression tolerated "
                            f"(default {DEFAULT_THRESHOLD})")
    bench.add_argument("--window", type=int, default=DEFAULT_WINDOW, metavar="N",
                       help="rolling-baseline window: median of the last N "
                            f"history entries (default {DEFAULT_WINDOW})")
    bench.add_argument("--noise-floor", type=float, dest="noise_floor",
                       default=NOISE_FLOOR_S, metavar="SECONDS",
                       help="absolute wall-time slack below which relative "
                            f"regressions are ignored (default {NOISE_FLOOR_S})")
    bench.add_argument("--inject-slowdown", type=float, dest="inject_slowdown",
                       default=0.0, metavar="FRACTION",
                       help="scale measured wall times by 1+FRACTION — a "
                            "self-test hook proving the sentinel trips")
    bench.add_argument("--record", action="store_true",
                       help="after a passing compare, append this run to the "
                            "history (regressed runs are never recorded)")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the long-lived simulation daemon (see docs/service.md)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787, help="TCP port (default 8787)")
    serve.add_argument("--socket", metavar="PATH",
                       help="serve on a unix domain socket instead of TCP")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent job threads (default 2)")
    serve.add_argument("--queue", type=int, default=8,
                       help="jobs that may wait beyond the running ones before "
                            "429 back-pressure (default 8)")
    serve.add_argument("--quota", type=int, default=4,
                       help="max in-flight requests per client id (default 4)")
    serve.add_argument("--request-timeout", type=float, dest="request_timeout",
                       metavar="SECONDS", help="per-job wall-clock budget")
    serve.add_argument("--drain-timeout", type=float, dest="drain_timeout",
                       default=30.0, metavar="SECONDS",
                       help="SIGTERM drain budget for in-flight jobs (default 30)")
    serve.add_argument("--ledger", metavar="DIR",
                       help="sink sweep jobs into this columnar ledger and "
                            "reuse completed points across requests")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one job to a running daemon and print the result"
    )
    submit.add_argument("--host", default="127.0.0.1", help="daemon address")
    submit.add_argument("--port", type=int, default=8787, help="daemon TCP port")
    submit.add_argument("--socket", metavar="PATH", help="daemon unix socket path")
    submit.add_argument("--client", default="anonymous",
                        help="client id for quota accounting")
    submit.add_argument("--request", metavar="JSON",
                        help="inline job request, e.g. "
                             '\'{"kind":"gemm","m":64,"k":32,"n":48}\'')
    submit.add_argument("--file", metavar="FILE", help="read the job request from FILE")
    submit.add_argument("--wait", type=int, default=0, metavar="N",
                        help="retry back-pressured submissions up to N times, "
                             "honouring the daemon's Retry-After (default 0)")
    submit.add_argument("--health", action="store_true",
                        help="print the daemon's /health snapshot and exit")
    submit.add_argument("--http-timeout", type=float, dest="http_timeout",
                        default=300.0, help="HTTP response timeout (default 300s)")
    submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    obs.configure_logging(level=args.log_level, verbosity=args.verbosity)
    if args.no_cache:
        from repro.perf import cache

        cache.disable()
    from repro import store as result_store

    try:
        if args.no_store:
            result_store.disable()
        elif args.store:
            result_store.configure(args.store)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    sinks_requested = bool(args.trace or args.metrics or args.events)
    if sinks_requested:
        vector = list(argv) if argv is not None else list(sys.argv[1:])
        obs.configure(
            trace_path=args.trace,
            metrics_path=args.metrics,
            events_path=args.events,
            config_digest=obs.config_hash({"argv": vector}),
            extra_metadata={"command": args.command},
        )
    flight_dir = Path(args.flight) if args.flight else obs_flight.flight_dir_from_env()
    if flight_dir is not None:
        if not sinks_requested:
            # arming enables the tracer, but nothing will ever drain its
            # buffer without a --trace sink; bound it so a long-lived
            # process stays flat on memory (a postmortem only needs the
            # recent past anyway)
            obs.trace.limit_records(obs_flight.SPAN_RING_CAPACITY)
        obs_flight.arm(flight_dir, obs.trace, obs.metrics)
    rc = EXIT_FAILURE
    reason: Optional[str] = None
    try:
        rc = args.func(args)
        return rc
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        reason = f"{type(exc).__name__}: {exc}"
        rc = exit_code_for(exc)
        return rc
    except concurrent.futures.BrokenExecutor as exc:
        # A pool loss that escaped the supervisor (should be rare).
        print(f"error: worker pool broke: {exc}", file=sys.stderr)
        reason = f"worker pool broke: {exc}"
        rc = EXIT_POOL_LOSS
        return rc
    except KeyboardInterrupt:
        # Second Ctrl-C (or a serial run's first): completed points are
        # already journalled line-by-line, so --resume still works.
        print("error: interrupted", file=sys.stderr)
        reason = "interrupted (SIGINT)"
        rc = EXIT_INCOMPLETE
        return rc
    except BrokenPipeError:
        # `repro ... | head` closed stdout early; not an error.  Point
        # stdout at devnull so the interpreter's shutdown flush does not
        # print a second traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        rc = 0
        return 0
    finally:
        # Codes >= 10 are infrastructure failures (pool loss, storage,
        # service, incomplete sweeps, ...): exactly the crashes a
        # postmortem needs the recent telemetry for.
        if flight_dir is not None and rc >= 10:
            dump_path = obs_flight.dump(reason or f"exit code {rc}", exit_code=rc)
            if dump_path is not None:
                print(f"flight recorder dump: {dump_path}", file=sys.stderr)
        if sinks_requested:
            for path in obs.flush():
                logger.info("wrote %s", path)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
