"""Shared utilities: integer math, validation helpers, atomic file io."""

from repro.utils.atomicio import atomic_write_json, atomic_write_text
from repro.utils.mathutils import (
    ceil_div,
    factor_pairs,
    is_power_of_two,
    next_power_of_two,
    pow2_range,
    split_evenly,
)
from repro.utils.validation import (
    check_positive_int,
    check_non_negative_int,
    check_choice,
)

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "ceil_div",
    "factor_pairs",
    "is_power_of_two",
    "next_power_of_two",
    "pow2_range",
    "split_evenly",
    "check_positive_int",
    "check_non_negative_int",
    "check_choice",
]
