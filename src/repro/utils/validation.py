"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Iterable


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, raising ``ValueError`` unless it is >= 1.

    Booleans are rejected even though they are ``int`` subclasses —
    passing ``True`` as an array dimension is always a caller bug.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, raising ``ValueError`` unless it is >= 0."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_choice(value: Any, name: str, choices: Iterable[Any]) -> Any:
    """Return ``value`` if it is one of ``choices``, else raise ``ValueError``."""
    options = list(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value
