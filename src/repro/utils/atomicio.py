"""Crash-safe file writes: temp file + fsync + atomic rename.

Every JSON artifact this package persists (metrics/trace exports, run
results, compacted checkpoint journals) goes through
:func:`atomic_write_text`, the pattern the checkpoint store introduced:
the payload is written to a temporary file *in the destination
directory* (so the rename cannot cross filesystems), fsynced, and then
``os.replace``-d over the target.  A crash — or an OOM kill, or a
resource-guard ``os._exit`` — at any instant leaves either the old
complete file or the new one on disk, never a truncated hybrid.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Durably replace ``path``'s contents with ``text``.

    The write is all-or-nothing: readers only ever observe the previous
    complete contents or the new complete contents.  The temporary file
    is cleaned up on failure, and the original file (if any) is left
    untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: Union[str, Path], payload: object, indent: int = 2) -> Path:
    """Serialize ``payload`` as JSON and atomically write it to ``path``."""
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
