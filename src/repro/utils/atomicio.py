"""Crash-safe file writes: temp file + fsync + atomic rename.

Every JSON artifact this package persists (metrics/trace exports, run
results, compacted checkpoint journals, result-store entries) goes
through :func:`atomic_write_text`, the pattern the checkpoint store
introduced: the payload is written to a temporary file *in the
destination directory* (so the rename cannot cross filesystems),
fsynced, and then ``os.replace``-d over the target.  A crash — or an
OOM kill, or a resource-guard ``os._exit`` — at any instant leaves
either the old complete file or the new one on disk, never a truncated
hybrid.

Filesystem failures (``ENOSPC``, ``EIO``, a directory that vanished
mid-write) are contained, not leaked: the orphaned temporary file is
unlinked and a typed :class:`~repro.errors.StorageError` is raised so
callers — and the CLI's exit-code table — can distinguish "the disk is
full" from a bug.  ``StorageError`` subclasses ``OSError``, so existing
``except OSError`` guards keep catching it.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
from pathlib import Path
from typing import Union

from repro.errors import StorageError

#: errno values that mean "the medium failed", worth calling out by name.
_MEDIUM_ERRNOS = {
    errno.ENOSPC: "no space left on device",
    getattr(errno, "EDQUOT", -1): "disk quota exceeded",
    errno.EIO: "I/O error",
}


def _storage_error(action: str, path: Path, exc: OSError) -> StorageError:
    """Wrap an ``OSError`` from the write path as a typed StorageError.

    Built through ``OSError``'s three-argument form so ``errno`` /
    ``strerror`` / ``filename`` are all populated *and* rendered —
    assigning them after a one-argument init would make ``str()`` drop
    the message entirely.
    """
    detail = _MEDIUM_ERRNOS.get(exc.errno or 0)
    reason = detail if detail else (exc.strerror or str(exc))
    return StorageError(exc.errno or 0, f"cannot {action}: {reason}", str(path))


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Durably replace ``path``'s contents with ``text``.

    The write is all-or-nothing: readers only ever observe the previous
    complete contents or the new complete contents.  The temporary file
    is cleaned up on failure — including ``ENOSPC``/``EIO``, which
    surface as :class:`~repro.errors.StorageError` — and the original
    file (if any) is left untouched.
    """
    path = Path(path)
    try:
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
        )
    except OSError as exc:
        raise _storage_error("create temp file beside", path, exc) from exc
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException as failure:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        if isinstance(failure, OSError) and not isinstance(failure, StorageError):
            raise _storage_error("write", path, failure) from failure
        raise
    return path


def atomic_write_bytes(path: Union[str, Path], payload: bytes) -> Path:
    """Durably replace ``path``'s contents with binary ``payload``.

    The binary twin of :func:`atomic_write_text`, used by the columnar
    sweep ledger to publish struct-packed segments: same temp file +
    fsync + ``os.replace`` dance, same all-or-nothing guarantee, same
    :class:`~repro.errors.StorageError` containment of medium failures.
    """
    path = Path(path)
    try:
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
        )
    except OSError as exc:
        raise _storage_error("create temp file beside", path, exc) from exc
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException as failure:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        if isinstance(failure, OSError) and not isinstance(failure, StorageError):
            raise _storage_error("write", path, failure) from failure
        raise
    return path


def atomic_write_json(path: Union[str, Path], payload: object, indent: int = 2) -> Path:
    """Serialize ``payload`` as JSON and atomically write it to ``path``."""
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


def fsync_directory(path: Union[str, Path]) -> None:
    """Flush a directory's entry table (best effort on exotic platforms).

    After ``os.replace`` lands a file, the *directory* entry itself may
    still live only in the page cache; a power loss could forget the
    rename.  The result store fsyncs the entry shard after each put so
    a published entry survives anything short of media failure.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directory fsync unsupported
        pass
    finally:
        os.close(fd)
