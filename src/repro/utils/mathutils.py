"""Small integer-math helpers used throughout the simulator.

These are deliberately dependency-free so every subpackage (mapping,
dataflow, analytical, dram) can use them without import cycles.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


def ceil_div(numerator: int, denominator: int) -> int:
    """Return ``ceil(numerator / denominator)`` using integer math.

    >>> ceil_div(7, 2)
    4
    >>> ceil_div(8, 2)
    4
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive integer power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Return the smallest power of two greater than or equal to ``value``.

    >>> next_power_of_two(5)
    8
    >>> next_power_of_two(8)
    8
    """
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return 1 << (value - 1).bit_length()


def pow2_range(low: int, high: int) -> List[int]:
    """Return all powers of two ``p`` with ``low <= p <= high`` inclusive.

    >>> pow2_range(8, 64)
    [8, 16, 32, 64]
    """
    if low <= 0 or high <= 0:
        raise ValueError("bounds must be positive")
    result = []
    p = 1
    while p <= high:
        if p >= low:
            result.append(p)
        p <<= 1
    return result


def factor_pairs(value: int, minimum: int = 1) -> Iterator[Tuple[int, int]]:
    """Yield all ordered factorizations ``(a, b)`` with ``a * b == value``.

    Both factors are at least ``minimum``.  Pairs are yielded with ``a``
    ascending, so ``(1, n)`` comes first and ``(n, 1)`` last (subject to
    the ``minimum`` filter).

    >>> list(factor_pairs(12, minimum=2))
    [(2, 6), (3, 4), (4, 3), (6, 2)]
    """
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    for a in range(1, value + 1):
        if value % a:
            continue
        b = value // a
        if a >= minimum and b >= minimum:
            yield (a, b)


def split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` near-equal integer chunks.

    The first ``total % parts`` chunks get one extra element, matching
    how a partitioned workload tiles a dimension across a grid of
    arrays.  Every chunk size is either ``floor(total/parts)`` or one
    more, and the sizes sum to ``total``.

    >>> split_evenly(10, 3)
    [4, 3, 3]
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, parts)
    return [base + 1 if i < extra else base for i in range(parts)]
