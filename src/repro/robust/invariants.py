"""Invariant guards: cross-check simulator output against the models.

The cycle-accurate engine, the per-cycle demand arrays and the
closed-form analytical model (paper Eq. 1-6) describe the *same*
execution at different fidelities, so they must agree.  These guards
make that agreement an enforced runtime property instead of a test-time
hope: a corrupted result (bit flip, bad aggregation, fault injection)
is caught at the point it is produced and surfaced as
:class:`~repro.errors.InvariantError` carrying both the measured and
the predicted value.

Two independent checks:

* **Cycle agreement** — the engine's ``total_cycles`` must equal the
  exact fold-by-fold analytical prediction (Eq. 3 summed over the fold
  grid; Eq. 5/6 tiling for partitioned configs) within a relative
  tolerance (default: exact).
* **Trace conservation** — the engine's SRAM element counts must equal
  the totals of its per-cycle demand arrays: reads/writes can neither
  appear nor vanish between the two views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.hardware import HardwareConfig
from repro.errors import InvariantError
from repro.mapping.dims import map_layer
from repro.obs import metrics, trace
from repro.topology.layer import Layer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.base import DataflowEngine, SramCounts
    from repro.engine.results import LayerResult


def _checked(kind: str) -> None:
    """Account one executed guard check."""
    if metrics.enabled:
        metrics.counter("invariant.checks").add()
        metrics.counter(f"invariant.checks.{kind}").add()


def _violation(kind: str, message: str, **attrs: object) -> "InvariantError":
    """Account one guard failure and build the error to raise."""
    metrics.counter("invariant.failures").add()
    trace.event("invariant.violation", kind=kind, **attrs)
    return InvariantError(message)


def expected_cycles(layer: Layer, config: HardwareConfig) -> int:
    """Exact analytical runtime of ``layer`` on ``config`` (Eq. 1-6).

    Unlike :func:`repro.analytical.runtime.scaleup_runtime`, which
    charges every fold the full-array latency, this accounts for edge
    folds exactly, so it must *equal* the cycle-accurate engine — any
    divergence is a bug or a corrupted result, not model error.

    Degraded configs (a :class:`~repro.resilience.FaultMap` on the
    config) are predicted through the same deterministic remap plan the
    scale-out engine executes, so exactness holds there too.  On a
    healthy grid the plan's slowest survivor is the ceil-sized tile of
    Eq. 5/6, recovering the original prediction.
    """
    from repro.resilience.remap import predict_layer_cycles

    mapping = map_layer(layer, config.dataflow)
    return predict_layer_cycles(mapping, config)


def check_cycles(
    result: "LayerResult",
    layer: Layer,
    config: HardwareConfig,
    rel_tol: float = 0.0,
) -> None:
    """Raise :class:`InvariantError` unless cycle counts agree.

    The message carries both values so the divergence is diagnosable
    from the exception alone.
    """
    _checked("cycles")
    predicted = expected_cycles(layer, config)
    measured = result.total_cycles
    if predicted <= 0:
        raise _violation(
            "cycles", f"layer {layer.name!r}: analytical model predicts "
            f"{predicted} cycles", layer=layer.name,
        )
    divergence = abs(measured - predicted) / predicted
    if divergence > rel_tol:
        raise _violation(
            "cycles",
            f"layer {layer.name!r}: cycle-accurate result diverges from the "
            f"analytical model (Eq. 1-6): simulated total_cycles={measured}, "
            f"analytical prediction={predicted} "
            f"(relative divergence {divergence:.4%}, tolerance {rel_tol:.4%})",
            layer=layer.name,
            measured=measured,
            predicted=predicted,
        )


def check_macs(result: "LayerResult", layer: Layer, config: HardwareConfig) -> None:
    """The aggregated MAC count must equal the layer's workload exactly."""
    _checked("macs")
    mapping = map_layer(layer, config.dataflow)
    predicted = mapping.sr * mapping.sc * mapping.t
    if result.macs != predicted:
        raise _violation(
            "macs",
            f"layer {layer.name!r}: simulated macs={result.macs} but the "
            f"mapped workload is S_R*S_C*T={predicted}",
            layer=layer.name,
            measured=result.macs,
            predicted=predicted,
        )


def check_trace_conservation(engine: "DataflowEngine") -> None:
    """Raise unless SRAM counts equal the demand-model totals.

    Sums the engine's exact per-cycle demand arrays over every fold and
    compares against :meth:`layer_counts` — the two views of the same
    execution must conserve every read and write.
    """
    _checked("trace_conservation")
    counts = engine.layer_counts()
    ifmap = filter_ = ofmap = 0
    for fold in engine.plan.folds():
        demand = engine.fold_demand(fold)
        ifmap += int(demand.ifmap_reads.sum())
        filter_ += int(demand.filter_reads.sum())
        ofmap += int(demand.ofmap_writes.sum())
    mismatches = [
        f"{stream} trace total={traced} vs demand-model total={demanded}"
        for stream, traced, demanded in (
            ("ifmap_reads", counts.ifmap_reads, ifmap),
            ("filter_reads", counts.filter_reads, filter_),
            ("ofmap_writes", counts.ofmap_writes, ofmap),
        )
        if traced != demanded
    ]
    if mismatches:
        raise _violation(
            "trace_conservation",
            "SRAM traffic not conserved between count and demand views: "
            + "; ".join(mismatches),
        )


def check_layer_result(
    result: "LayerResult",
    layer: Layer,
    config: HardwareConfig,
    rel_tol: float = 0.0,
) -> "LayerResult":
    """Run every result-level guard; returns ``result`` for chaining."""
    check_cycles(result, layer, config, rel_tol=rel_tol)
    check_macs(result, layer, config)
    _checked("utilization")
    if not 0.0 < result.mapping_utilization <= 1.0 + 1e-9:
        raise _violation(
            "utilization",
            f"layer {layer.name!r}: mapping_utilization="
            f"{result.mapping_utilization} outside (0, 1]",
            layer=layer.name,
        )
    if result.compute_utilization > 1.0 + 1e-9:
        raise _violation(
            "utilization",
            f"layer {layer.name!r}: compute_utilization="
            f"{result.compute_utilization} exceeds 1",
            layer=layer.name,
        )
    return result
