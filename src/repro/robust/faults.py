"""Deterministic fault injection for testing the robust layer.

Wrap any point callable with :func:`inject_faults` to make specific
grid points misbehave in precisely scripted ways — no randomness, no
real clocks — so retry, timeout, checkpoint-resume and invariant-guard
behaviour can be asserted exactly:

    faulty = inject_faults(
        simulate_point,
        Fault(kind="transient", when={"macs": 4096}, times=2),
        Fault(kind="corrupt", when={"macs": 16384},
              mutate=lambda row: {**row, "cycles": row["cycles"] + 999}),
    )

Fault kinds:

* ``"transient"`` — raise :class:`InjectedFault` for the first
  ``times`` matching calls, then behave normally (exercises retries).
* ``"timeout"`` — raise :class:`~repro.errors.PointTimeoutError`
  directly, simulating a hung point without burning wall-clock time.
* ``"interrupt"`` — raise :class:`KeyboardInterrupt`, simulating an
  operator killing the run mid-sweep (exercises checkpoint resume).
* ``"corrupt"`` — let the call succeed, then pass each result row
  through ``mutate`` (exercises invariant guards downstream).

``times`` counts *calls matching that fault*, so a ``times=2``
transient fault fails a point's first two attempts and lets the third
succeed — deterministic retry testing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import PointTimeoutError

FAULT_KINDS = ("transient", "timeout", "interrupt", "corrupt")


class InjectedFault(RuntimeError):
    """A scripted transient failure raised by the fault injector."""


@dataclass
class Fault:
    """One scripted misbehaviour.

    ``when`` is a parameter subset that must match the call's keyword
    arguments (``None`` matches every call); ``times`` caps how many
    matching calls trigger it (``None`` = always).  ``mutate`` is
    required for ``kind="corrupt"`` and maps one result row to its
    corrupted form.
    """

    kind: str
    when: Optional[Dict] = None
    times: Optional[int] = 1
    mutate: Optional[Callable[[Dict], Dict]] = None
    exc: Optional[Callable[[], BaseException]] = None
    _fired: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.kind == "corrupt" and self.mutate is None:
            raise ValueError("corrupt faults need a mutate callable")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")

    @property
    def fired(self) -> int:
        """How many times this fault has triggered so far."""
        return self._fired

    def matches(self, params: Dict) -> bool:
        if self.times is not None and self._fired >= self.times:
            return False
        if self.when is None:
            return True
        return all(params.get(key) == value for key, value in self.when.items())

    def trigger(self, params: Dict) -> None:
        """Raise this fault's exception (non-corrupt kinds)."""
        self._fired += 1
        _record_injection(self, params)
        if self.kind == "transient":
            raise (self.exc() if self.exc else InjectedFault(
                f"injected transient failure #{self._fired} at {_describe(params)}"
            ))
        if self.kind == "timeout":
            raise PointTimeoutError(
                f"injected timeout #{self._fired} at {_describe(params)}"
            )
        if self.kind == "interrupt":
            raise KeyboardInterrupt(
                f"injected interrupt #{self._fired} at {_describe(params)}"
            )
        raise AssertionError(f"trigger() called for kind {self.kind!r}")


def _record_injection(fault: "Fault", params: Dict) -> None:
    """Account one injected fault in the observability layer."""
    from repro.obs import metrics, trace

    metrics.counter("robust.faults_injected").add()
    trace.event("robust.fault_injected", kind=fault.kind, fired=fault.fired)


def _describe(params: Dict) -> str:
    try:
        return json.dumps(params, sort_keys=True, default=repr)
    except TypeError:  # pragma: no cover - default=repr is total
        return repr(params)


def scenario_seed(params: Dict, seed: int = 0) -> int:
    """Deterministic per-point seed: hash of the sweep parameters + seed.

    The same grid point always draws the same fault scenario across
    runs and resumes, yet distinct points get independent scenarios —
    the degraded-mode analogue of the checkpoint key.
    """
    import hashlib

    canonical = json.dumps({"params": params, "seed": seed}, sort_keys=True, default=repr)
    return int.from_bytes(hashlib.sha256(canonical.encode()).digest()[:8], "big")


def fault_scenario(
    params: Dict,
    partition_rows: int,
    partition_cols: int,
    dead_partitions: int = 1,
    dead_links: int = 0,
    seed: int = 0,
):
    """Draw a deterministic degraded-hardware scenario for one sweep point.

    Returns a :class:`~repro.resilience.FaultMap` sampled by
    :func:`~repro.resilience.random_fault_map` under the per-point seed
    of :func:`scenario_seed`, so injecting hardware faults into a sweep
    is reproducible point by point.
    """
    from repro.resilience.faultmap import random_fault_map

    return random_fault_map(
        partition_rows,
        partition_cols,
        dead_partitions=dead_partitions,
        dead_links=dead_links,
        seed=scenario_seed(params, seed),
    )


WORKER_FAULT_KINDS = ("kill", "freeze", "hog", "sleep")


@dataclass(frozen=True)
class WorkerFault:
    """One scripted *process-level* misbehaviour for chaos testing.

    Unlike :class:`Fault` (which raises exceptions the retry policy can
    see), a worker fault attacks the worker process itself, exercising
    the supervised pool's crash recovery:

    * ``"kill"`` — the worker SIGKILLs itself (simulates a segfault or
      an OOM kill; the parent sees :class:`BrokenProcessPool`).
    * ``"freeze"`` — the worker SIGSTOPs itself for ``hold_seconds``
      (simulates a wedged process; exercises heartbeat detection).
    * ``"hog"`` — the worker allocates ``hog_mb`` MiB and holds it for
      ``hold_seconds`` (exercises the RSS ceiling).
    * ``"sleep"`` — the worker sleeps ``hold_seconds`` inside the point
      (exercises the wall-clock ceiling).

    ``when`` is a parameter subset that must match the call; ``times``
    caps the total firings *across all worker processes*: because a
    killed worker loses its memory, firing state lives in marker files
    under ``marker_dir``, claimed atomically (``O_CREAT | O_EXCL``) so
    restarted workers see prior firings and a point that killed its
    worker once completes normally on resubmission.
    """

    kind: str
    marker_dir: str
    when: Optional[Dict] = None
    times: int = 1
    hog_mb: int = 256
    hold_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {WORKER_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.hog_mb < 1:
            raise ValueError(f"hog_mb must be >= 1, got {self.hog_mb}")
        if self.hold_seconds < 0:
            raise ValueError(f"hold_seconds must be >= 0, got {self.hold_seconds}")

    def matches(self, params: Dict) -> bool:
        if self.when is None:
            return True
        return all(params.get(key) == value for key, value in self.when.items())

    def claim(self, params: Dict) -> bool:
        """Atomically claim one firing; ``False`` once ``times`` is spent."""
        import hashlib
        import os

        digest = hashlib.sha256(
            f"{self.kind}:{_describe(params)}".encode()
        ).hexdigest()[:16]
        for slot in range(self.times):
            marker = os.path.join(self.marker_dir, f"wf-{digest}-{slot}")
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
        return False

    def trigger(self, params: Dict) -> None:
        import os
        import signal as _signal
        import time as _time

        from repro.obs import metrics, trace

        metrics.counter("robust.worker_faults_injected").add()
        trace.event("robust.worker_fault", kind=self.kind)
        if self.kind == "kill":
            os.kill(os.getpid(), _signal.SIGKILL)
        elif self.kind == "freeze":
            pid = os.getpid()
            # SIGSTOP halts every thread, so self-rescue needs a helper
            # process: fork a child that thaws us after hold_seconds in
            # case no supervisor kills the frozen worker first.
            if os.fork() == 0:  # pragma: no cover - trivial helper child
                # Drop every inherited fd: holding the worker's pipe
                # ends would keep the pool's death-detection sentinel
                # from firing while the helper outlives the worker.
                os.closerange(3, 4096)
                _time.sleep(self.hold_seconds)
                try:
                    os.kill(pid, _signal.SIGCONT)
                except ProcessLookupError:
                    pass
                os._exit(0)
            os.kill(pid, _signal.SIGSTOP)
        elif self.kind == "hog":
            hog = bytearray(self.hog_mb << 20)
            hog[:: 1 << 12] = b"\x01" * len(hog[:: 1 << 12])  # touch every page
            _time.sleep(self.hold_seconds)
            del hog
        elif self.kind == "sleep":
            _time.sleep(self.hold_seconds)


class _WorkerFaultInjector:
    """Picklable wrapper firing :class:`WorkerFault` s before the point."""

    def __init__(self, fn: Callable[..., object], faults: tuple):
        self.fn = fn
        self.faults = faults

    def __call__(self, **params: object) -> object:
        for fault in self.faults:
            if fault.matches(params) and fault.claim(params):
                fault.trigger(params)
        return self.fn(**params)


def inject_worker_faults(
    fn: Callable[..., object], *faults: WorkerFault
) -> Callable[..., object]:
    """Wrap ``fn`` so scripted :class:`WorkerFault` s attack the worker.

    The wrapper is picklable whenever ``fn`` is, and firing state lives
    in each fault's ``marker_dir``, so injection is deterministic across
    worker restarts: matching unclaimed faults fire in order before the
    point runs (a ``kill`` never returns, so it ends the sequence).
    """
    return _WorkerFaultInjector(fn, tuple(faults))


def inject_faults(fn: Callable[..., object], *faults: Fault) -> Callable[..., object]:
    """Wrap ``fn`` so the scripted ``faults`` fire on matching calls.

    Faults are evaluated in order; the first matching raising fault
    (transient/timeout/interrupt) fires per call, while every matching
    corrupt fault is applied to the successful result.
    """
    raising = [f for f in faults if f.kind != "corrupt"]
    corrupting = [f for f in faults if f.kind == "corrupt"]

    def wrapper(**params: object) -> object:
        for fault in raising:
            if fault.matches(params):
                fault.trigger(params)
        outcome = fn(**params)
        for fault in corrupting:
            if fault.matches(params):
                fault._fired += 1
                _record_injection(fault, params)
                if isinstance(outcome, dict):
                    outcome = fault.mutate(outcome)
                else:
                    outcome = [fault.mutate(dict(row)) for row in outcome]
        return outcome

    wrapper.faults = tuple(faults)  # type: ignore[attr-defined]
    return wrapper
