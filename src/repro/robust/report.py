"""Structured outcome records for batch runs.

These replace the stringly ``"error"`` column that sweeps used to emit:
every grid point — succeeded, retried, replayed from a checkpoint,
failed or skipped by the circuit breaker — gets a :class:`PointRecord`,
and a batch returns a :class:`RunReport` that accounts for *every*
point, so nothing fails silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Terminal states a grid point can end in.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_CACHED = "cached"  # replayed from a checkpoint, not re-executed
STATUS_SKIPPED = "skipped"  # never ran: circuit breaker tripped first
STATUS_ESTIMATED = "estimated"  # pruned: settled by the analytical model

ALL_STATUSES = (
    STATUS_OK,
    STATUS_FAILED,
    STATUS_CACHED,
    STATUS_SKIPPED,
    STATUS_ESTIMATED,
)


@dataclass(frozen=True)
class PointRecord:
    """Everything the executor knows about one grid point's execution."""

    params: Dict
    status: str
    attempts: int = 1
    duration: float = 0.0
    rows: Tuple[Dict, ...] = ()
    error: Optional[str] = None
    #: Exception chain, outermost first (``raise X from Y`` → [X, Y]).
    error_chain: Tuple[str, ...] = ()
    #: The live exception object (in-memory only, never journalled) so
    #: fail-fast drivers can re-raise the original error unchanged.
    exception: Optional[BaseException] = None

    def __post_init__(self) -> None:
        if self.status not in ALL_STATUSES:
            raise ValueError(f"status must be one of {ALL_STATUSES}, got {self.status!r}")
        object.__setattr__(self, "rows", tuple(self.rows))
        object.__setattr__(self, "error_chain", tuple(self.error_chain))

    @property
    def succeeded(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED, STATUS_ESTIMATED)


def exception_chain(exc: BaseException) -> List[str]:
    """Render an exception and its causes, outermost first."""
    chain: List[str] = []
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        if current.__cause__ is not None:
            current = current.__cause__
        elif not current.__suppress_context__:
            current = current.__context__
        else:
            current = None
    return chain


@dataclass(frozen=True)
class RunReport:
    """Per-point accounting for one batch run."""

    records: Tuple[PointRecord, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "records", tuple(self.records))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def count(self, status: str) -> int:
        return sum(1 for record in self.records if record.status == status)

    @property
    def ok(self) -> int:
        return self.count(STATUS_OK)

    @property
    def failed(self) -> int:
        return self.count(STATUS_FAILED)

    @property
    def cached(self) -> int:
        return self.count(STATUS_CACHED)

    @property
    def skipped(self) -> int:
        return self.count(STATUS_SKIPPED)

    @property
    def estimated(self) -> int:
        return self.count(STATUS_ESTIMATED)

    @property
    def total_attempts(self) -> int:
        return sum(record.attempts for record in self.records)

    def failures(self) -> Sequence[PointRecord]:
        return [record for record in self.records if record.status == STATUS_FAILED]

    def rows(self, include_failures: bool = True) -> List[Dict]:
        """Flatten to sweep-style row dicts.

        Successful points contribute their measurement rows unchanged;
        failed/skipped points contribute one row with a stable
        ``status`` column and the error text, so downstream CSV export
        never sees a schema that silently drops points.
        """
        out: List[Dict] = []
        for record in self.records:
            if record.succeeded:
                out.extend(dict(row) for row in record.rows)
            elif include_failures:
                out.append(
                    {
                        **record.params,
                        "status": record.status,
                        "error": record.error or "",
                    }
                )
        return out

    def summary(self) -> str:
        """One-line human summary, e.g. ``12 ok, 2 cached, 1 failed``."""
        parts = [
            f"{self.count(status)} {status}"
            for status in ALL_STATUSES
            if self.count(status)
        ]
        return ", ".join(parts) if parts else "empty run"

    def ensure_complete(self) -> "RunReport":
        """Raise :class:`~repro.errors.CircuitOpenError` if the circuit
        breaker skipped points; returns ``self`` for chaining."""
        from repro.errors import CircuitOpenError

        if self.skipped:
            raise CircuitOpenError(
                f"run incomplete: {self.failed} failure(s) tripped the circuit "
                f"breaker, skipping {self.skipped} of {len(self)} points "
                f"({self.summary()})"
            )
        return self
