"""Fault-tolerant point/batch executor.

:func:`execute_point` runs one callable under an
:class:`~repro.robust.policy.ExecutionPolicy` — retries with
exponential backoff, a per-point wall-clock timeout, and a structured
:class:`~repro.robust.report.PointRecord` outcome instead of a raw
exception.  :func:`execute_grid` drives a whole list of grid points
through it, journalling each completed point to an optional
:class:`~repro.robust.checkpoint.CheckpointStore` and enforcing the
``max_failures`` circuit breaker.

Timeouts run the attempt on a worker thread and abandon it when the
budget expires; the thread itself cannot be killed (CPython offers no
safe preemption), so a truly hung point leaks one daemon thread — the
sweep still makes progress, which is the property we need.  Tests avoid
wall-clock dependence entirely by injecting simulated timeouts through
:mod:`repro.robust.faults`.

``KeyboardInterrupt`` (and other ``BaseException`` non-errors) always
propagates immediately: the checkpoint journal already holds every
finished point, which is exactly what resume needs.
"""

from __future__ import annotations

import concurrent.futures
import logging
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import CircuitOpenError, PointTimeoutError
from repro.obs import metrics, trace
from repro.obs.progress import ProgressSnapshot, ProgressTracker
from repro.robust.checkpoint import PointJournal
from repro.robust.policy import ExecutionPolicy
from repro.robust.report import (
    STATUS_CACHED,
    STATUS_ESTIMATED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    PointRecord,
    RunReport,
    exception_chain,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.robust.supervisor import SupervisorPolicy

#: Default single-attempt, collect-mode policy used when none is given.
DEFAULT_POLICY = ExecutionPolicy()

logger = logging.getLogger("repro.robust.executor")
progress_logger = logging.getLogger("repro.obs.progress")


def _as_rows(outcome: Union[Dict, Sequence[Dict]]) -> List[Dict]:
    if isinstance(outcome, dict):
        return [outcome]
    if isinstance(outcome, (list, tuple)):
        return [dict(row) for row in outcome]
    raise TypeError(
        f"point callable must return a dict or a sequence of dicts, "
        f"got {type(outcome).__name__}"
    )


def _attempt(
    fn: Callable[..., object],
    params: Dict,
    timeout: Optional[float],
) -> object:
    """Run one attempt, enforcing the wall-clock timeout if set."""
    if timeout is None:
        return fn(**params)
    executor = concurrent.futures.ThreadPoolExecutor(max_workers=1)
    try:
        future = executor.submit(fn, **params)
        try:
            return future.result(timeout=timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise PointTimeoutError(
                f"point {params!r} exceeded its {timeout}s wall-clock budget"
            ) from None
    finally:
        executor.shutdown(wait=False)


def execute_point(
    fn: Callable[..., object],
    params: Dict,
    policy: Optional[ExecutionPolicy] = None,
    key: str = "",
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> PointRecord:
    """Run ``fn(**params)`` under ``policy`` and return its record.

    ``sleep`` and ``clock`` are injectable for deterministic tests.
    Exceptions matched by ``policy.retry_on`` are retried up to
    ``policy.max_retries`` times with backoff; anything else (or an
    exhausted point) yields a ``failed`` record — never a raised
    exception, so batch drivers choose the failure semantics.
    """
    policy = policy or DEFAULT_POLICY
    start = clock()
    attempt = 0
    while True:
        attempt += 1
        try:
            rows = _as_rows(_attempt(fn, params, policy.timeout))
        except Exception as exc:  # noqa: BLE001 - containment is the point
            if isinstance(exc, PointTimeoutError):
                metrics.counter("robust.timeouts").add()
                trace.event("robust.timeout", key=key, attempt=attempt)
            if policy.should_retry(exc, attempt):
                metrics.counter("robust.retries").add()
                trace.event(
                    "robust.retry",
                    key=key,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
                logger.debug(
                    "point %s attempt %d failed (%s: %s); retrying",
                    key or params, attempt, type(exc).__name__, exc,
                )
                delay = policy.backoff_delay(attempt, key=key)
                if delay:
                    sleep(delay)
                continue
            trace.event(
                "robust.point_failed",
                key=key,
                attempts=attempt,
                error=type(exc).__name__,
            )
            logger.warning(
                "point %s failed after %d attempt(s): %s: %s",
                key or params, attempt, type(exc).__name__, exc,
            )
            return PointRecord(
                params=params,
                status=STATUS_FAILED,
                attempts=attempt,
                duration=clock() - start,
                error=f"{type(exc).__name__}: {exc}",
                error_chain=tuple(exception_chain(exc)),
                exception=exc,
            )
        return PointRecord(
            params=params,
            status=STATUS_OK,
            attempts=attempt,
            duration=clock() - start,
            rows=tuple(rows),
        )


class _GridRun:
    """Shared bookkeeping between the serial and parallel grid drivers.

    Both drivers funnel every point through the same four operations —
    ``settle_skipped`` (breaker already open), ``try_replay``
    (checkpoint resume), ``finish_executed`` (observe + journal + apply
    failure semantics) and ``report`` — so ordering, journalling and
    circuit-breaker behaviour are identical by construction.
    """

    def __init__(
        self,
        points: Sequence[Dict],
        policy: ExecutionPolicy,
        checkpoint: Optional[PointJournal],
        clock: Callable[[], float],
        on_progress: Optional[Callable[[ProgressSnapshot], None]],
    ):
        self.policy = policy
        self.checkpoint = checkpoint
        self.on_progress = on_progress
        self.records: List[PointRecord] = []
        self.failures = 0
        self.tripped = False
        self.progress = ProgressTracker(len(points), clock=clock)
        metrics.gauge("sweep.points_total").set(len(points))

    def key(self, index: int, params: Dict) -> str:
        return self.checkpoint.key(params) if self.checkpoint is not None else str(index)

    def settle(self, record: PointRecord) -> None:
        self.records.append(record)
        metrics.counter(f"robust.points_{record.status}").add()
        snapshot = self.progress.update()
        metrics.gauge("sweep.points_done").set(snapshot.done)
        progress_logger.info("sweep %s [%s]", snapshot.describe(), record.status)
        if self.on_progress is not None:
            self.on_progress(snapshot)

    def settle_skipped(self, params: Dict) -> None:
        self.settle(
            PointRecord(
                params=params,
                status=STATUS_SKIPPED,
                attempts=0,
                error=(
                    f"circuit breaker open after {self.failures} failures "
                    f"(max_failures={self.policy.max_failures})"
                ),
            )
        )

    def try_replay(self, params: Dict) -> bool:
        """Replay ``params`` from the checkpoint journal if completed."""
        if self.checkpoint is None or not self.checkpoint.completed(params):
            return False
        entry = self.checkpoint.get(params)
        metrics.counter("robust.checkpoint_replays").add()
        trace.event("robust.checkpoint_replay", key=self.checkpoint.key(params))
        self.settle(
            PointRecord(
                params=params,
                status=STATUS_CACHED,
                attempts=0,
                rows=tuple(entry.get("rows", ())),
            )
        )
        return True

    def finish_executed(self, record: PointRecord, params: Dict) -> None:
        """Observe, settle and journal one executed record, then apply
        the policy's failure semantics (may raise, may trip the breaker)."""
        if metrics.enabled:
            metrics.histogram("robust.point_seconds").observe(record.duration)
            metrics.counter("robust.point_attempts").add(record.attempts)
        self.settle(record)
        if self.checkpoint is not None:
            self.checkpoint.record(
                params,
                status=record.status,
                rows=list(record.rows),
                attempts=record.attempts,
                duration=record.duration,
                error=record.error,
            )
        if record.status == STATUS_FAILED:
            self.failures += 1
            if self.policy.mode == "fail_fast":
                if record.exception is not None:
                    raise record.exception
                raise CircuitOpenError(
                    f"point {params!r} failed after {record.attempts} attempt(s): "
                    f"{record.error}"
                )
            if self.policy.max_failures is not None and self.failures >= self.policy.max_failures:
                self.tripped = True
                logger.warning(
                    "circuit breaker tripped after %d failure(s); "
                    "skipping the remaining points", self.failures,
                )
                trace.event("robust.circuit_open", failures=self.failures)

    def report(self) -> RunReport:
        return RunReport(records=self.records)


def execute_grid(
    fn: Callable[..., object],
    points: Sequence[Dict],
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[PointJournal] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_progress: Optional[Callable[[ProgressSnapshot], None]] = None,
    workers: int = 1,
    supervisor: Optional["SupervisorPolicy"] = None,
    estimates: Optional[Sequence[Optional[Sequence[Dict]]]] = None,
) -> RunReport:
    """Run every point through :func:`execute_point`, with journalling.

    * Points already completed in ``checkpoint`` are replayed as
      ``cached`` records without re-execution (resume semantics).
    * In ``fail_fast`` mode the first exhausted failure re-raises its
      original exception.
    * In ``collect`` mode failures are recorded; once ``max_failures``
      of them accumulate, the remaining points are marked ``skipped``
      and a :class:`CircuitOpenError` record stops further execution.

    ``workers > 1`` dispatches point execution to a supervised process
    pool (see :mod:`repro.robust.supervisor`) while preserving all of
    the above exactly — record order, retries, the circuit breaker
    counted in points order, and the journal written only from this
    process.  The supervisor additionally survives worker crashes
    (rebuild + resubmit), enforces per-point wall-clock/RSS ceilings
    inside the workers, quarantines crash-looping points, and drains +
    flushes the journal on SIGINT/SIGTERM; tune it with a
    :class:`~repro.robust.supervisor.SupervisorPolicy`.  The call
    transparently falls back to serial execution when ``fn``,
    ``points`` or ``policy`` cannot be pickled, or when non-default
    ``sleep``/``clock`` callables are injected (worker processes always
    run on real time).

    Progress telemetry: every settled point updates a
    :class:`~repro.obs.progress.ProgressTracker` whose snapshot (points
    done/total, rolling throughput, ETA) is logged at INFO under
    ``repro.obs.progress``, pushed to ``on_progress`` if given, and
    mirrored into the ``sweep.points_done``/``sweep.points_total``
    gauges.

    ``estimates`` (aligned with ``points``) opts in to pruned-grid
    execution: a point whose entry is a row sequence settles as an
    ``estimated`` record carrying those rows — no ``fn`` call — while
    ``None`` entries execute normally (serial or pooled).  Estimated
    points are journalled under their own status, so a later ``exact``
    run re-executes them while completed exact results are still
    replayed as ``cached`` in preference to re-estimating.
    """
    policy = policy or DEFAULT_POLICY
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if estimates is not None:
        return _execute_pruned(
            fn,
            points,
            estimates,
            policy=policy,
            checkpoint=checkpoint,
            sleep=sleep,
            clock=clock,
            on_progress=on_progress,
            workers=workers,
            supervisor=supervisor,
        )
    if workers > 1:
        from repro.perf.parallel import execute_grid_parallel, pickle_problem

        if sleep is not time.sleep or clock is not time.monotonic:
            logger.warning(
                "workers=%d requested with injected sleep/clock; worker "
                "processes run on real time — executing serially instead",
                workers,
            )
        else:
            problem = pickle_problem(fn, points, policy)
            if problem is None:
                return execute_grid_parallel(
                    fn,
                    points,
                    policy=policy,
                    checkpoint=checkpoint,
                    clock=clock,
                    on_progress=on_progress,
                    workers=workers,
                    supervisor=supervisor,
                )
            logger.warning(
                "workers=%d requested but %s; executing serially instead",
                workers,
                problem,
            )

    run = _GridRun(points, policy, checkpoint, clock, on_progress)
    for index, params in enumerate(points):
        if run.tripped:
            run.settle_skipped(params)
            continue
        if run.try_replay(params):
            continue
        key = run.key(index, params)
        with trace.span("robust.grid_point", key=key):
            record = execute_point(
                fn, params, policy=policy, key=key, sleep=sleep, clock=clock
            )
        run.finish_executed(record, params)
    return run.report()


def _execute_pruned(
    fn: Callable[..., object],
    points: Sequence[Dict],
    estimates: Sequence[Optional[Sequence[Dict]]],
    policy: ExecutionPolicy,
    checkpoint: Optional[PointJournal],
    sleep: Callable[[float], None],
    clock: Callable[[], float],
    on_progress: Optional[Callable[[ProgressSnapshot], None]],
    workers: int,
    supervisor: Optional["SupervisorPolicy"],
) -> RunReport:
    """Pruned-grid execution plan: simulate the frontier, settle the rest.

    The frontier subset (``estimates[i] is None``) runs through the
    normal :func:`execute_grid` machinery — serial or supervised pool,
    retries, circuit breaker, checkpoint replay — and the pruned points
    are merged back in original grid order as ``estimated`` records, so
    rows, reports and journals keep the full grid's shape.
    """
    if len(estimates) != len(points):
        raise ValueError(
            f"estimates must align with points: {len(estimates)} != {len(points)}"
        )
    frontier = [
        params
        for params, estimate in zip(points, estimates)
        if estimate is None
    ]
    inner = execute_grid(
        fn,
        frontier,
        policy=policy,
        checkpoint=checkpoint,
        sleep=sleep,
        clock=clock,
        on_progress=on_progress,
        workers=workers,
        supervisor=supervisor,
    )
    executed = iter(inner.records)
    records: List[PointRecord] = []
    for params, estimate in zip(points, estimates):
        if estimate is None:
            records.append(next(executed))
            continue
        # A completed exact result beats re-estimating on resume.
        if checkpoint is not None and checkpoint.completed(params):
            entry = checkpoint.get(params)
            metrics.counter("robust.checkpoint_replays").add()
            records.append(
                PointRecord(
                    params=params,
                    status=STATUS_CACHED,
                    attempts=0,
                    rows=tuple(entry.get("rows", ())),
                )
            )
            continue
        record = PointRecord(
            params=params,
            status=STATUS_ESTIMATED,
            attempts=0,
            rows=tuple(dict(row) for row in estimate),
        )
        metrics.counter("robust.points_estimated").add()
        if checkpoint is not None:
            checkpoint.record(
                params,
                status=STATUS_ESTIMATED,
                rows=list(record.rows),
                attempts=0,
                duration=0.0,
                error=None,
            )
        records.append(record)
    return RunReport(records=records)
