"""Append-only checkpoint journal for resumable batch runs.

Every completed grid point is journalled as one JSON line, so an
interrupted sweep resumes exactly where it stopped: points whose key is
already present with status ``"ok"`` are replayed from the journal
instead of re-executed.

Keys are a stable SHA-256 of the point's parameters *and* a version
string (defaulting to the package version), so a code upgrade silently
invalidates stale checkpoints instead of resuming with mismatched
results.  The journal is written line-at-a-time and fsynced, so a
power loss after :meth:`~CheckpointStore.record` returns cannot lose
the point; a crash *mid*-write at worst truncates the final line,
which the loader tolerates by discarding it.  Long-lived journals
accumulate superseded and failed lines; :meth:`~CheckpointStore
.compact` rewrites the file atomically (temp file + ``os.replace``)
keeping only the latest useful record per key.

Journal line schema::

    {"key": "...", "version": "...", "params": {...},
     "status": "ok" | "failed", "rows": [...], "attempts": N,
     "duration": seconds, "error": "..." | null}
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Protocol, Union

from repro.errors import CheckpointError
from repro.utils.atomicio import atomic_write_text


def _package_version() -> str:
    from repro._version import __version__

    return __version__


class PointJournal(Protocol):
    """What the executor needs from a journal of completed grid points.

    :class:`CheckpointStore` is the JSONL reference implementation;
    :class:`repro.store.ledger.SweepLedger` is the durable columnar
    one.  Anything satisfying this protocol can be passed wherever a
    ``checkpoint=`` is accepted (``execute_grid``, ``run_sweep``, the
    supervised pool) — the executor only ever keys, reads, tests and
    records points.
    """

    version: str

    def key(self, params: Dict) -> str: ...

    def get(self, params: Dict) -> Optional[Dict]: ...

    def completed(self, params: Dict) -> bool: ...

    def record(
        self,
        params: Dict,
        status: str,
        rows: Optional[List[Dict]] = None,
        attempts: int = 1,
        duration: float = 0.0,
        error: Optional[str] = None,
    ) -> Dict: ...


def parse_journal_lines(
    text: str,
    source: Union[str, Path],
    logger: Optional[logging.Logger] = None,
) -> Iterator[Dict]:
    """Yield the valid journal entries in ``text``, tolerating damage.

    The shared loader for every JSONL point journal (the checkpoint
    file, the ledger's ``active.jsonl`` tail): a crash mid-append at
    worst truncates the final line, and unrelated junk must not poison
    a resume — both are logged and skipped, and the affected point
    simply re-simulates.
    """
    if logger is None:
        logger = logging.getLogger("repro.robust.checkpoint")
    lines = text.splitlines()
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            # A crash mid-write leaves a truncated trailing line;
            # everything before it is still a valid prefix of the
            # run.  The dropped point simply re-simulates on resume.
            logger.warning(
                "journal %s line %d/%d is not valid JSON "
                "(likely truncated by a crash mid-write); dropping it, "
                "the point will be re-simulated",
                source, number, len(lines),
            )
            continue
        if not isinstance(entry, dict) or "key" not in entry:
            logger.warning(
                "journal %s line %d/%d is not a journal entry; "
                "dropping it", source, number, len(lines),
            )
            continue
        yield entry


def point_key(params: Dict, version: str) -> str:
    """Stable content hash of one grid point under one code version."""
    try:
        canonical = json.dumps(
            {"params": params, "version": version},
            sort_keys=True,
            default=repr,
        )
    except TypeError as exc:  # pragma: no cover - default=repr is total
        raise CheckpointError(f"unhashable sweep parameters {params!r}") from exc
    import hashlib

    return hashlib.sha256(canonical.encode()).hexdigest()


class CheckpointStore:
    """JSONL journal of completed grid points, keyed by params + version."""

    def __init__(
        self,
        path: Union[str, Path],
        version: Optional[str] = None,
        resume: bool = True,
    ):
        self.path = Path(path)
        self.version = version if version is not None else _package_version()
        self._entries: Dict[str, Dict] = {}
        if self.path.exists():
            if self.path.is_dir():
                raise CheckpointError(f"checkpoint path is a directory: {self.path}")
            if not resume:
                raise CheckpointError(
                    f"checkpoint {self.path} already exists; pass resume=True "
                    "(CLI: --resume) to continue it, or remove the file"
                )
            self._load()
            logging.getLogger("repro.robust.checkpoint").info(
                "resuming checkpoint %s: %d completed point(s)",
                self.path, len(self._entries),
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}") from exc
        for entry in parse_journal_lines(text, self.path):
            self._entries[entry["key"]] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self._entries.values())

    def key(self, params: Dict) -> str:
        return point_key(params, self.version)

    def get(self, params: Dict) -> Optional[Dict]:
        """The journal entry for ``params``, or ``None`` if never recorded."""
        return self._entries.get(self.key(params))

    def completed(self, params: Dict) -> bool:
        """True when ``params`` already finished successfully."""
        entry = self.get(params)
        return entry is not None and entry.get("status") == "ok"

    @property
    def completed_count(self) -> int:
        return sum(1 for e in self._entries.values() if e.get("status") == "ok")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(
        self,
        params: Dict,
        status: str,
        rows: Optional[List[Dict]] = None,
        attempts: int = 1,
        duration: float = 0.0,
        error: Optional[str] = None,
    ) -> Dict:
        """Journal one finished point (successful or exhausted)."""
        entry = {
            "key": self.key(params),
            "version": self.version,
            "params": params,
            "status": status,
            "rows": rows if rows is not None else [],
            "attempts": attempts,
            "duration": duration,
            "error": error,
        }
        try:
            # No sort_keys: row dicts must round-trip with their column
            # order intact so resumed output matches a fresh run.
            line = json.dumps(entry, default=repr)
        except TypeError as exc:  # pragma: no cover - default=repr is total
            raise CheckpointError(f"unserializable checkpoint entry: {exc}") from exc
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot append to checkpoint {self.path}: {exc}"
            ) from exc
        self._entries[entry["key"]] = entry
        return entry

    def compact(self, drop_failed: bool = True) -> int:
        """Rewrite the journal with only the latest record per key.

        Re-recorded points leave superseded lines behind, and failed
        points (``drop_failed``) are worth retrying on the next resume
        rather than replaying as failures.  The rewrite is atomic: a
        temp file in the same directory is fsynced and then
        ``os.replace``-d over the journal, so a crash at any instant
        leaves either the old complete journal or the new one, never a
        torn file.  Returns the number of journal lines dropped.
        """
        if not self.path.exists():
            return 0
        try:
            raw_lines = [
                line for line in self.path.read_text(encoding="utf-8").splitlines()
                if line.strip()
            ]
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}") from exc

        keep = {
            key: entry
            for key, entry in self._entries.items()
            if not (drop_failed and entry.get("status") != "ok")
        }
        text = "".join(json.dumps(entry, default=repr) + "\n" for entry in keep.values())
        try:
            atomic_write_text(self.path, text)
        except OSError as exc:
            raise CheckpointError(
                f"cannot compact checkpoint {self.path}: {exc}"
            ) from exc
        self._entries = keep
        return len(raw_lines) - len(keep)
