"""Execution policies for fault-tolerant batch runs.

An :class:`ExecutionPolicy` describes *how hard to try* on each point of
a batch run: how many times a failing point is retried, how long to back
off between attempts (exponential with deterministic jitter), how long a
single point may run before it is declared hung, and when the whole run
should give up (the ``max_failures`` circuit breaker).

Policies are plain frozen dataclasses so they can live in checkpoints,
test parametrizations and CLI plumbing without surprises.  All timing
decisions are pure functions of the policy and the attempt number, which
keeps retry schedules reproducible — the jitter is derived from a hash
of the point key, not from a global RNG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple, Type

#: Failure-handling modes: abort the batch on first exhausted point, or
#: collect failures and keep sweeping.
MODES = ("fail_fast", "collect")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a batch executor treats each grid point.

    Attributes
    ----------
    max_retries:
        Retries *after* the first attempt; ``0`` means a single try.
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per further retry (exponential backoff).
    backoff_max:
        Upper clamp on any single delay.
    jitter:
        Fraction of the delay added/subtracted deterministically from a
        hash of ``(point key, attempt)`` — spreads retry storms without
        sacrificing reproducibility.
    timeout:
        Per-point wall-clock budget in seconds; ``None`` disables it.
    max_failures:
        Circuit breaker: once this many points have *exhausted* their
        retries, the rest of the run is skipped.  ``None`` disables it.
    mode:
        ``"fail_fast"`` re-raises the first exhausted failure,
        ``"collect"`` records it and moves on.
    retry_on:
        Exception classes considered transient (retried).  Anything else
        fails the point immediately.
    """

    max_retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    timeout: Optional[float] = None
    max_failures: Optional[int] = None
    mode: str = "collect"
    retry_on: Tuple[Type[BaseException], ...] = field(default=(Exception,))

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.max_failures is not None and self.max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got {self.max_failures}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")

    @property
    def max_attempts(self) -> int:
        """Total tries per point, first attempt included."""
        return self.max_retries + 1

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        Deterministic: the jitter term comes from hashing the point key
        with the attempt number, so re-running an identical batch yields
        an identical retry schedule.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        if self.jitter and delay:
            digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
            # Map the first 8 digest bytes to [-1, 1).
            unit = int.from_bytes(digest[:8], "big") / 2**63 - 1.0
            delay = max(0.0, delay * (1.0 + self.jitter * unit))
        return delay

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be retried."""
        if attempt >= self.max_attempts:
            return False
        return isinstance(exc, self.retry_on)


#: Strict default used by CLI entry points: one try, abort on failure.
FAIL_FAST = ExecutionPolicy(mode="fail_fast")

#: Lenient default for exploratory sweeps: collect failures, no retries.
COLLECT = ExecutionPolicy(mode="collect")
