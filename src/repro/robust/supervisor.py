"""Supervised worker pool: crash recovery, resource guards, graceful shutdown.

:func:`execute_grid_supervised` is the multiprocess grid backend behind
``execute_grid(workers=N)``.  It keeps the PR-4 contract — rows, CSVs,
checkpoint journals and reports byte-identical to a serial run — while
surviving the failure modes a bare :class:`ProcessPoolExecutor` turns
into unhandled tracebacks:

* **Dead workers.**  A worker killed by a signal, a segfault or the OOM
  killer breaks the pool; the supervisor reads its scratch-dir
  breadcrumbs to attribute the crash to the point(s) that were running,
  rebuilds the pool, and resubmits every unsettled point (results that
  already came back are kept, not recomputed).
* **Runaway points.**  A watchdog thread *inside each worker* enforces
  the per-point wall-clock and RSS ceilings: on breach it journals a
  kill breadcrumb and the worker kills itself with ``os._exit``, so a
  runaway simulation can never take the host down with it.
* **Hung workers.**  The watchdog also heartbeats; with
  ``heartbeat_timeout`` set, the parent SIGKILLs any worker whose
  heartbeat goes stale (e.g. a process stopped or wedged in C code),
  which funnels into the normal crash-recovery path.
* **Crash loops.**  A point that crashes the pool ``quarantine_after``
  times is retried once *alone* in a dedicated single-worker pool; if
  that also dies the point is quarantined as a failed
  :class:`~repro.robust.report.PointRecord` (counted against
  ``max_failures``), and the sweep moves on.  Points that merely hit
  transient crashes finish with records identical to a clean serial
  run, so determinism is preserved.  Once the pool has been rebuilt
  ``max_restarts`` times, :class:`~repro.errors.SupervisorExhaustedError`
  aborts the run (CLI exit code 13).
* **Operator interrupts.**  SIGINT/SIGTERM handlers installed for the
  duration of the run drain every completed future in points order,
  flush their journal lines (the checkpoint store fsyncs each one), and
  raise :class:`~repro.errors.SweepInterrupted` (CLI exit code 12) so
  ``--resume`` continues exactly where the run stopped.

Scratch-dir protocol (one temporary directory per run, shared with the
workers):

* ``started-<index>.json`` — written by a worker when it begins a
  point (key, pid, timestamp); removed when the point returns.  On a
  pool crash, lingering files identify the suspects.
* ``kill-<index>.json`` — written by the resource watchdog just before
  ``os._exit``, recording the reason (``wall_clock`` / ``rss``) and the
  measured usage, so resource kills are classified, not anonymous.
* ``hb-<index>.json`` — touched by the watchdog every poll interval;
  the parent treats a stale mtime as a hung worker.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import json
import logging
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Set, Tuple

from repro.errors import SupervisorExhaustedError, SweepInterrupted, WorkerCrashError
from repro.obs import metrics, trace
from repro.obs.progress import ProgressSnapshot
from repro.obs.service import CORRELATION_KEY, correlation_id_from_env
from repro.obs.tracer import SpanRecord
from repro.robust.checkpoint import PointJournal
from repro.robust.policy import ExecutionPolicy
from repro.robust.report import STATUS_FAILED, PointRecord, RunReport

logger = logging.getLogger("repro.robust.supervisor")

#: Exit code a worker uses when its resource watchdog kills the process.
RESOURCE_KILL_EXIT = 70

#: Prefix of the per-run scratch directories under the system tempdir.
SCRATCH_PREFIX = "repro-supervisor-"

#: A scratch dir untouched this long belongs to a run that died without
#: reaching its ``finally`` (SIGKILL, power loss); reap it on the next
#: supervised run's startup.  Generous enough that a live concurrent
#: run — whose heartbeat breadcrumbs keep refreshing the mtime — is
#: never collected.
SCRATCH_STALE_SECONDS = 24 * 3600.0


def reap_stale_scratch(
    max_age_seconds: float = SCRATCH_STALE_SECONDS,
    root: Optional[Path] = None,
) -> int:
    """Remove abandoned supervisor scratch dirs; returns how many.

    A run killed with SIGKILL (or the machine losing power) never runs
    the ``rmtree`` in :func:`execute_grid_supervised`'s ``finally``, so
    breadcrumb dirs accumulate in the tempdir.  Each supervised run
    sweeps its siblings on startup: any ``repro-supervisor-*`` dir
    whose newest content is older than ``max_age_seconds`` is removed.
    Active runs are safe — their heartbeat files are rewritten every
    poll interval, keeping the dir young.
    """
    base = Path(root) if root is not None else Path(tempfile.gettempdir())
    now = time.time()
    reaped = 0
    try:
        candidates = list(base.glob(f"{SCRATCH_PREFIX}*"))
    except OSError:  # pragma: no cover - tempdir itself unreadable
        return 0
    for candidate in candidates:
        try:
            if not candidate.is_dir():
                continue
            newest = candidate.stat().st_mtime
            for entry in candidate.iterdir():
                with contextlib.suppress(OSError):
                    newest = max(newest, entry.stat().st_mtime)
        except OSError:
            continue  # vanished or unreadable; another run may own it
        if now - newest <= max_age_seconds:
            continue
        shutil.rmtree(candidate, ignore_errors=True)
        if not candidate.exists():
            reaped += 1
            logger.info(
                "reaped stale supervisor scratch dir %s (idle %.0fs)",
                candidate, now - newest,
            )
    if reaped and metrics.enabled:
        metrics.counter("supervisor.scratch_reaped").add(reaped)
        trace.event("supervisor.scratch_reaped", count=reaped)
    return reaped


@dataclass(frozen=True)
class SupervisorPolicy:
    """How the supervised pool guards and restarts its workers.

    Attributes
    ----------
    point_timeout:
        Hard per-point wall-clock ceiling in seconds, enforced *inside*
        the worker: on breach the worker journals a kill breadcrumb and
        ``os._exit``-s.  Unlike :attr:`ExecutionPolicy.timeout` (which
        abandons a thread and may leak it), this frees every resource
        the point held.  ``None`` disables it.
    point_rss_mb:
        Per-point resident-set-size ceiling in MiB, enforced the same
        way.  ``None`` disables it.
    quarantine_after:
        Pool crashes a single point may cause before it is retried once
        in a dedicated single-worker pool and then quarantined as a
        failed record.
    max_restarts:
        Total pool rebuilds before the run aborts with
        :class:`~repro.errors.SupervisorExhaustedError`.
    heartbeat_timeout:
        Parent-side staleness bound in seconds on a running worker's
        heartbeat file; on breach the parent SIGKILLs the worker and
        normal crash recovery takes over.  ``None`` disables it.
    poll_interval:
        Sampling period for the worker watchdog and the parent's
        future polling, in seconds.
    """

    point_timeout: Optional[float] = None
    point_rss_mb: Optional[float] = None
    quarantine_after: int = 2
    max_restarts: int = 8
    heartbeat_timeout: Optional[float] = None
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError(f"point_timeout must be > 0, got {self.point_timeout}")
        if self.point_rss_mb is not None and self.point_rss_mb <= 0:
            raise ValueError(f"point_rss_mb must be > 0, got {self.point_rss_mb}")
        if self.quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {self.quarantine_after}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be > 0, got {self.heartbeat_timeout}")
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {self.poll_interval}")

    @property
    def guards_worker(self) -> bool:
        """Whether workers need the in-process watchdog thread."""
        return (
            self.point_timeout is not None
            or self.point_rss_mb is not None
            or self.heartbeat_timeout is not None
        )


#: Defaults applied when ``execute_grid(workers=N)`` gets no policy.
DEFAULT_SUPERVISOR = SupervisorPolicy()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def process_rss_mb() -> float:
    """This process's resident set size in MiB (best effort)."""
    try:
        with open("/proc/self/statm") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE") / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError):
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, kB elsewhere
            peak /= 1024.0
        return peak / 1024.0


def _write_json(path: Path, payload: Dict) -> None:
    """Durably write a small breadcrumb file (fsynced before return)."""
    try:
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, default=repr))
            handle.flush()
            os.fsync(handle.fileno())
    except OSError:  # pragma: no cover - scratch dir vanished mid-teardown
        pass


def _read_json(path: Path) -> Optional[Dict]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


class _ResourceWatchdog(threading.Thread):
    """In-worker guard: heartbeats, wall-clock and RSS ceilings.

    Runs as a daemon thread beside the point.  On a ceiling breach it
    journals a ``kill-<index>.json`` breadcrumb (so the parent can
    classify the crash) and terminates the whole worker process with
    ``os._exit`` — the only reliable way to stop a runaway point, since
    CPython threads cannot be killed.
    """

    def __init__(self, key: str, index: int, sup: SupervisorPolicy, scratch: Path):
        super().__init__(daemon=True, name=f"repro-watchdog-{index}")
        self.key = key
        self.index = index
        self.sup = sup
        self.scratch = scratch
        self.started_at = time.monotonic()
        self._stopped = threading.Event()

    def stop(self) -> None:
        self._stopped.set()

    def run(self) -> None:
        heartbeat = self.scratch / f"hb-{self.index}.json"
        _write_json(heartbeat, {"pid": os.getpid(), "key": self.key})
        while not self._stopped.wait(self.sup.poll_interval):
            with contextlib.suppress(OSError):
                heartbeat.touch()
            elapsed = time.monotonic() - self.started_at
            if self.sup.point_timeout is not None and elapsed > self.sup.point_timeout:
                self._kill("wall_clock", elapsed, None)
            if self.sup.point_rss_mb is not None:
                rss = process_rss_mb()
                if rss > self.sup.point_rss_mb:
                    self._kill("rss", elapsed, rss)

    def _kill(self, reason: str, elapsed: float, rss_mb: Optional[float]) -> None:
        _write_json(
            self.scratch / f"kill-{self.index}.json",
            {
                "index": self.index,
                "key": self.key,
                "pid": os.getpid(),
                "reason": reason,
                "elapsed": round(elapsed, 3),
                "rss_mb": round(rss_mb, 1) if rss_mb is not None else None,
                "limit": (
                    self.sup.point_timeout if reason == "wall_clock"
                    else self.sup.point_rss_mb
                ),
            },
        )
        os._exit(RESOURCE_KILL_EXIT)


def _worker_initializer(trace_enabled: bool) -> None:
    """Per-worker-process setup, run once when the pool spawns it.

    Mirrors the parent's logging level (``REPRO_LOG_LEVEL``), restarts
    the tracer with a fresh epoch when the parent traces (a forked
    worker inherits the parent's buffer — those spans are the parent's,
    not this worker's), and binds any correlation ID handed down via
    ``REPRO_CORRELATION_ID`` so worker spans stitch into the request
    trace that dispatched them.
    """
    from repro.obs.logconf import configure_from_env

    configure_from_env()
    if trace_enabled:
        trace.clear()
        trace.enable()
    cid = correlation_id_from_env()
    if cid:
        trace.bind(**{CORRELATION_KEY: cid})


#: Worker span files: ``spans-<index>.json`` in the scratch dir.
_SPANS_PREFIX = "spans"

#: Schema tag of one worker span file.
WORKER_SPANS_SCHEMA = "repro.worker-spans/1"


def _export_worker_spans(scratch_dir: Path, index: int, mark: int) -> None:
    """Dump the spans this point recorded into the shared scratch dir.

    ``mark`` is the tracer buffer length when the point began — workers
    are reused across points, so only the new slice belongs to this
    one.  Timestamps stay in this worker's epoch; the file carries
    ``epoch_unix`` so the parent can re-anchor them into its own trace.
    """
    records = trace.records()[mark:]
    if not records:
        return
    _write_json(
        scratch_dir / f"{_SPANS_PREFIX}-{index}.json",
        {
            "schema": WORKER_SPANS_SCHEMA,
            "index": index,
            "pid": os.getpid(),
            "epoch_unix": trace.epoch_unix,
            "spans": [
                {
                    "name": record.name,
                    "category": record.category,
                    "start_ns": record.start_ns,
                    "duration_ns": record.duration_ns,
                    "self_ns": record.self_ns,
                    "thread_id": record.thread_id,
                    "depth": record.depth,
                    "phase": record.phase,
                    "args": record.args,
                }
                for record in records
            ],
        },
    )


def _counter_snapshot() -> Dict[str, int]:
    if not metrics.enabled:
        return {}
    return dict(metrics.snapshot().get("counters", {}))


def merge_counter_deltas(deltas: Dict[str, int]) -> None:
    """Fold a worker's counter deltas into the parent registry."""
    if not deltas or not metrics.enabled:
        return
    for name, delta in deltas.items():
        metrics.counter(name).add(delta)


def run_supervised_point(
    fn: Callable[..., object],
    params: Dict,
    policy: ExecutionPolicy,
    key: str,
    index: int,
    sup: SupervisorPolicy,
    scratch: str,
) -> Tuple[PointRecord, Dict[str, int]]:
    """Worker-side execution of one grid point under supervision.

    Writes the ``started`` breadcrumb for crash attribution, arms the
    resource watchdog, runs the point through the full retry policy of
    :func:`~repro.robust.executor.execute_point`, and returns the
    record plus the delta of every counter the point moved so the
    parent can merge the accounting.
    """
    from repro.robust.executor import execute_point

    scratch_dir = Path(scratch)
    started = scratch_dir / f"started-{index}.json"
    _write_json(
        started,
        {"index": index, "key": key, "pid": os.getpid(), "started_unix": time.time()},
    )
    watchdog: Optional[_ResourceWatchdog] = None
    if sup.guards_worker:
        watchdog = _ResourceWatchdog(key, index, sup, scratch_dir)
        watchdog.start()
    span_mark = len(trace)
    try:
        before = _counter_snapshot()
        record = execute_point(fn, params, policy=policy, key=key)
        after = _counter_snapshot()
        deltas = {
            name: after[name] - before.get(name, 0)
            for name in after
            if after[name] != before.get(name, 0)
        }
        if record.exception is not None:
            try:
                pickle.dumps(record.exception)
            except Exception:  # noqa: BLE001 - exotic exceptions stay worker-side
                record = replace(record, exception=None)
        return record, deltas
    finally:
        if trace.enabled:
            _export_worker_spans(scratch_dir, index, span_mark)
        if watchdog is not None:
            watchdog.stop()
        for leftover in (started, scratch_dir / f"hb-{index}.json"):
            with contextlib.suppress(OSError):
                leftover.unlink()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class _Supervisor:
    """One supervised grid run: submission, drain, crash recovery."""

    def __init__(
        self,
        fn: Callable[..., object],
        points: Sequence[Dict],
        policy: ExecutionPolicy,
        checkpoint: Optional[PointJournal],
        clock: Callable[[], float],
        on_progress: Optional[Callable[[ProgressSnapshot], None]],
        workers: int,
        sup: SupervisorPolicy,
        scratch: Path,
    ):
        from repro.robust.executor import _GridRun

        self.fn = fn
        self.points = list(points)
        self.policy = policy
        self.checkpoint = checkpoint
        self.workers = workers
        self.sup = sup
        self.scratch = scratch
        self.run = _GridRun(points, policy, checkpoint, clock, on_progress)
        self.pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self.futures: Dict[int, concurrent.futures.Future] = {}
        self.unsettled: Set[int] = set()
        self.serial_pending: Set[int] = set()
        self.crash_counts: Dict[int, int] = {}
        self.crash_reasons: Dict[int, str] = {}
        self.restarts = 0
        self.stop_signum: Optional[int] = None

    # -- submission ----------------------------------------------------

    def _submit(self, index: int) -> None:
        params = self.points[index]
        self.futures[index] = self.pool.submit(
            run_supervised_point,
            self.fn,
            params,
            self.policy,
            self.run.key(index, params),
            index,
            self.sup,
            str(self.scratch),
        )
        self.unsettled.add(index)

    def _make_pool(self, workers: int) -> concurrent.futures.ProcessPoolExecutor:
        """A pool whose workers mirror the parent's logging/trace setup."""
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_initializer,
            initargs=(trace.enabled,),
        )

    def submit_all(self) -> None:
        self.pool = self._make_pool(self.workers)
        for index, params in enumerate(self.points):
            if self.checkpoint is not None and self.checkpoint.completed(params):
                continue  # replayed as `cached` at its drain turn
            self._submit(index)

    def discard(self, index: int) -> None:
        """Stop tracking a point (breaker skip or checkpoint replay)."""
        future = self.futures.pop(index, None)
        if future is not None:
            future.cancel()
        self.unsettled.discard(index)

    # -- drain ---------------------------------------------------------

    def execute(self) -> RunReport:
        self.submit_all()
        try:
            for index, params in enumerate(self.points):
                self.check_stop()
                if self.run.tripped:
                    self.discard(index)
                    self.run.settle_skipped(params)
                    continue
                if self.run.try_replay(params):
                    self.discard(index)
                    continue
                with trace.span("robust.grid_point", key=self.run.key(index, params)):
                    record, deltas = self.result(index, params)
                merge_counter_deltas(deltas)
                self.drain_worker_spans()
                self.unsettled.discard(index)
                self.run.finish_executed(record, params)
            self.shutdown(wait=True)
            self.drain_worker_spans()
        except BaseException:
            self.shutdown(wait=False)
            raise
        return self.run.report()

    def result(self, index: int, params: Dict) -> Tuple[PointRecord, Dict[str, int]]:
        """This point's outcome, surviving pool losses along the way."""
        while True:
            if index in self.serial_pending:
                return self.solo_retry(index, params)
            future = self.futures[index]
            try:
                return future.result(timeout=self.sup.poll_interval)
            except concurrent.futures.TimeoutError:
                self.check_stop()
                self.check_heartbeats()
            except concurrent.futures.BrokenExecutor as exc:
                self.handle_crash(exc)

    # -- crash recovery ------------------------------------------------

    def _read_breadcrumbs(self, prefix: str) -> Dict[int, Dict]:
        found: Dict[int, Dict] = {}
        for path in self.scratch.glob(f"{prefix}-*.json"):
            info = _read_json(path)
            if info is not None and isinstance(info.get("index"), int):
                found[info["index"]] = info
        return found

    def _clear_breadcrumbs(self) -> None:
        for path in self.scratch.glob("*.json"):
            with contextlib.suppress(OSError):
                path.unlink()

    def drain_worker_spans(self) -> int:
        """Merge worker span files into the parent trace, re-anchored.

        Worker timestamps are relative to each worker's own epoch; the
        per-file ``epoch_unix`` maps them onto the parent's timeline.
        Files are consumed (unlinked) as they are merged.  Must run
        before :meth:`_clear_breadcrumbs`, which deletes every JSON in
        the scratch dir indiscriminately.
        """
        if not trace.enabled:
            return 0
        merged = 0
        for path in sorted(self.scratch.glob(f"{_SPANS_PREFIX}-*.json")):
            doc = _read_json(path)
            with contextlib.suppress(OSError):
                path.unlink()
            if not doc or doc.get("schema") != WORKER_SPANS_SCHEMA:
                continue
            try:
                offset_ns = int(
                    (float(doc["epoch_unix"]) - trace.epoch_unix) * 1e9
                )
            except (KeyError, TypeError, ValueError):
                continue
            for span in doc.get("spans", ()):
                try:
                    record = SpanRecord(
                        name=span["name"],
                        category=span.get("category", "repro"),
                        start_ns=int(span["start_ns"]) + offset_ns,
                        duration_ns=int(span.get("duration_ns", 0)),
                        self_ns=int(span.get("self_ns", 0)),
                        thread_id=int(span.get("thread_id", 0)),
                        depth=int(span.get("depth", 0)),
                        phase=span.get("phase", "X"),
                        args={**span.get("args", {}), "worker_pid": doc.get("pid")},
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                trace.add_record(record)
                merged += 1
        return merged

    def handle_crash(self, exc: BaseException) -> None:
        """Attribute a pool loss, rebuild the pool, resubmit lost work."""
        self.restarts += 1
        metrics.counter("supervisor.restarts").add()
        suspects = self._read_breadcrumbs("started")
        kills = self._read_breadcrumbs("kill")
        self.drain_worker_spans()
        self._clear_breadcrumbs()
        for index in sorted(set(suspects) | set(kills)):
            if index not in self.unsettled:
                continue  # a discarded duplicate; nothing left to blame
            kill_info = kills.get(index)
            reason = kill_info["reason"] if kill_info else "worker_death"
            self.crash_counts[index] = self.crash_counts.get(index, 0) + 1
            self.crash_reasons[index] = reason
            key = self.run.key(index, self.points[index])
            metrics.counter("supervisor.crashes").add()
            if kill_info:
                metrics.counter("supervisor.resource_kills").add()
                trace.event(
                    "supervisor.resource_kill",
                    key=key,
                    reason=reason,
                    elapsed=kill_info.get("elapsed"),
                    rss_mb=kill_info.get("rss_mb"),
                    limit=kill_info.get("limit"),
                )
            trace.event(
                "supervisor.worker_crash",
                key=key,
                reason=reason,
                crashes=self.crash_counts[index],
            )
            logger.warning(
                "worker crash #%d for point %s (%s)",
                self.crash_counts[index], key, reason,
            )
        if self.restarts > self.sup.max_restarts:
            raise SupervisorExhaustedError(
                f"worker pool lost {self.restarts} time(s), exceeding "
                f"max_restarts={self.sup.max_restarts}; giving up ({exc})"
            ) from exc
        self._rebuild_pool()

    def _rebuild_pool(self) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = self._make_pool(self.workers)
        resubmitted = kept = 0
        for index in sorted(self.unsettled):
            if self.crash_counts.get(index, 0) >= self.sup.quarantine_after:
                self.futures.pop(index, None)
                self.serial_pending.add(index)
                continue
            future = self.futures.get(index)
            if future is not None and future.done() and not future.cancelled():
                try:
                    future.result(timeout=0)
                    kept += 1
                    continue  # finished before the pool broke; keep the result
                except BaseException:  # noqa: BLE001 - broken future, re-run it
                    pass
            self._submit(index)
            resubmitted += 1
        trace.event(
            "supervisor.pool_rebuild",
            restart=self.restarts,
            resubmitted=resubmitted,
            kept=kept,
            quarantine_pending=len(self.serial_pending),
        )
        logger.warning(
            "rebuilt worker pool (restart %d/%d): %d point(s) resubmitted, "
            "%d completed result(s) kept, %d awaiting solo retry",
            self.restarts, self.sup.max_restarts, resubmitted, kept,
            len(self.serial_pending),
        )

    def solo_retry(self, index: int, params: Dict) -> Tuple[PointRecord, Dict[str, int]]:
        """Last chance for a crash-looping point: one dedicated worker.

        Running it alone preserves determinism (an environment-induced
        crash completes with a record identical to a serial run) while a
        point that *always* kills its process can only take the solo
        worker down — the host and the rest of the sweep survive, and
        the point is quarantined as a failed record.
        """
        crashes = self.crash_counts.get(index, 0)
        key = self.run.key(index, params)
        metrics.counter("supervisor.serial_retries").add()
        trace.event("supervisor.serial_retry", key=key, crashes=crashes)
        logger.warning(
            "point %s crashed the pool %d time(s); retrying alone before quarantine",
            key, crashes,
        )
        solo = self._make_pool(1)
        try:
            future = solo.submit(
                run_supervised_point,
                self.fn, params, self.policy, key, index, self.sup, str(self.scratch),
            )
            while True:
                try:
                    record, deltas = future.result(timeout=self.sup.poll_interval)
                except concurrent.futures.TimeoutError:
                    self.check_stop()
                    continue
                except concurrent.futures.BrokenExecutor:
                    kill_info = self._read_breadcrumbs("kill").get(index)
                    self.drain_worker_spans()
                    self._clear_breadcrumbs()
                    self.serial_pending.discard(index)
                    return self._quarantine(index, params, key, kill_info), {}
                self.serial_pending.discard(index)
                return record, deltas
        finally:
            solo.shutdown(wait=False, cancel_futures=True)

    def _quarantine(
        self,
        index: int,
        params: Dict,
        key: str,
        kill_info: Optional[Dict],
    ) -> PointRecord:
        crashes = self.crash_counts.get(index, 0) + 1
        self.crash_counts[index] = crashes
        if kill_info:
            detail = (
                f"resource guard killed it each time "
                f"({kill_info['reason']} ceiling {kill_info.get('limit')})"
            )
        else:
            reason = self.crash_reasons.get(index, "worker_death")
            detail = f"the worker died each time ({reason})"
        error = WorkerCrashError(
            f"point {key} crashed its worker {crashes} time(s), including a "
            f"dedicated solo retry; {detail}; quarantined"
        )
        metrics.counter("supervisor.quarantined").add()
        trace.event("supervisor.quarantine", key=key, crashes=crashes)
        logger.error("quarantining point %s: %s", key, error)
        message = f"{type(error).__name__}: {error}"
        return PointRecord(
            params=params,
            status=STATUS_FAILED,
            attempts=crashes,
            error=message,
            error_chain=(message,),
            exception=error,
        )

    # -- hung-worker detection -----------------------------------------

    def check_heartbeats(self) -> None:
        """SIGKILL workers whose heartbeat went stale (hung, not dead)."""
        if self.sup.heartbeat_timeout is None:
            return
        now = time.time()
        for index, info in self._read_breadcrumbs("started").items():
            if index not in self.unsettled:
                continue
            pid = info.get("pid")
            heartbeat = self.scratch / f"hb-{index}.json"
            try:
                last_beat = heartbeat.stat().st_mtime
            except OSError:
                last_beat = info.get("started_unix", now)
            if now - last_beat <= self.sup.heartbeat_timeout or not pid:
                continue
            metrics.counter("supervisor.heartbeats_missed").add()
            trace.event(
                "supervisor.heartbeat_lost",
                key=info.get("key"),
                pid=pid,
                stale_seconds=round(now - last_beat, 3),
            )
            logger.warning(
                "worker %s heartbeat stale for %.2fs (point %s); killing it",
                pid, now - last_beat, info.get("key"),
            )
            with contextlib.suppress(ProcessLookupError, PermissionError, OSError):
                os.kill(pid, signal.SIGKILL)

    # -- graceful shutdown ---------------------------------------------

    def handle_signal(self, signum: int, _frame) -> None:
        if self.stop_signum is not None:  # second signal: stop immediately
            raise KeyboardInterrupt
        self.stop_signum = signum

    def check_stop(self) -> None:
        """Honour a pending SIGINT/SIGTERM: drain, flush, raise."""
        if self.stop_signum is None:
            return
        try:
            sig_name = signal.Signals(self.stop_signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            sig_name = str(self.stop_signum)
        metrics.counter("supervisor.interrupts").add()
        trace.event("supervisor.interrupted", signal=sig_name)
        logger.warning(
            "received %s: draining completed points and flushing the journal",
            sig_name,
        )
        drained = 0
        for index in sorted(self.unsettled - self.serial_pending):
            future = self.futures.get(index)
            if future is None or not future.done() or future.cancelled():
                continue
            try:
                record, deltas = future.result(timeout=0)
            except BaseException:  # noqa: BLE001 - broken futures hold no work
                continue
            merge_counter_deltas(deltas)
            self.unsettled.discard(index)
            try:
                # Journals the record (fsynced) before failure semantics,
                # which no longer matter: the run is ending either way.
                self.run.finish_executed(record, self.points[index])
            except BaseException:  # noqa: BLE001
                pass
            drained += 1
        self.drain_worker_spans()
        self.shutdown(wait=False)
        raise SweepInterrupted(
            f"sweep interrupted by {sig_name}: {drained} in-flight point(s) "
            f"drained, journal flushed; resume with --checkpoint/--resume",
            signum=self.stop_signum,
        )

    def shutdown(self, wait: bool) -> None:
        if self.pool is not None:
            self.pool.shutdown(wait=wait, cancel_futures=True)
            self.pool = None


@contextlib.contextmanager
def _signal_guard(supervisor: _Supervisor):
    """Install SIGINT/SIGTERM drain handlers for the run's duration."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, supervisor.handle_signal)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def execute_grid_supervised(
    fn: Callable[..., object],
    points: Sequence[Dict],
    policy: ExecutionPolicy,
    checkpoint: Optional[PointJournal],
    clock: Callable[[], float],
    on_progress: Optional[Callable[[ProgressSnapshot], None]],
    workers: int,
    supervisor: Optional[SupervisorPolicy] = None,
) -> RunReport:
    """Drain a supervised process-pool grid in points order.

    Call through :func:`repro.robust.executor.execute_grid` — it owns
    the picklability and clock checks that make the serial fallback
    safe.  Semantics match a serial run exactly (records in points
    order, failures counted in points order, journal written only from
    this process); see the module docstring for the failure modes
    handled on top of that.
    """
    sup = supervisor or DEFAULT_SUPERVISOR
    reap_stale_scratch()
    scratch = Path(tempfile.mkdtemp(prefix=SCRATCH_PREFIX))
    run = _Supervisor(
        fn, points, policy, checkpoint, clock, on_progress, workers, sup, scratch
    )
    try:
        with _signal_guard(run):
            return run.execute()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
