"""repro.robust — fault-tolerant execution layer for batch runs.

Every sweep, experiment and CLI batch command routes through this
subsystem.  It provides:

* :class:`ExecutionPolicy` — retries with exponential backoff and
  deterministic jitter, per-point wall-clock timeouts, a
  ``max_failures`` circuit breaker, and fail-fast vs. collect modes.
* :class:`CheckpointStore` — a JSONL journal of completed grid points
  keyed by a stable hash of parameters + code version, so interrupted
  sweeps resume exactly where they stopped.
* :class:`PointRecord` / :class:`RunReport` — structured per-point
  outcomes (status, attempts, duration, exception chain) replacing the
  old stringly ``"error"`` column.
* Invariant guards (:func:`check_layer_result`,
  :func:`check_trace_conservation`) that cross-check cycle-accurate
  results against the analytical model (Eq. 1-6) and trace
  conservation, raising :class:`~repro.errors.InvariantError` on
  divergence.
* :class:`SupervisorPolicy` / :func:`execute_grid_supervised` — the
  supervised worker pool behind ``workers > 1``: crash recovery with
  pool rebuilds and resubmission, per-point wall-clock/RSS ceilings
  enforced inside the workers, hung-worker heartbeat detection,
  solo-retry-then-quarantine for crash-looping points, and graceful
  SIGINT/SIGTERM drain + journal flush.
* A deterministic fault-injection harness (:mod:`repro.robust.faults`)
  for testing all of the above — including :class:`WorkerFault` /
  :func:`inject_worker_faults` for process-level chaos (SIGKILL,
  freezes, memory hogs).

See ``docs/robustness.md`` for the full story.
"""

from repro.robust.checkpoint import (
    CheckpointStore,
    PointJournal,
    parse_journal_lines,
    point_key,
)
from repro.robust.executor import execute_grid, execute_point
from repro.robust.faults import (
    Fault,
    InjectedFault,
    WorkerFault,
    fault_scenario,
    inject_faults,
    inject_worker_faults,
    scenario_seed,
)
from repro.robust.invariants import (
    check_cycles,
    check_layer_result,
    check_macs,
    check_trace_conservation,
    expected_cycles,
)
from repro.robust.policy import COLLECT, FAIL_FAST, ExecutionPolicy
from repro.robust.report import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    PointRecord,
    RunReport,
    exception_chain,
)
from repro.robust.supervisor import SupervisorPolicy, execute_grid_supervised

__all__ = [
    "CheckpointStore",
    "PointJournal",
    "parse_journal_lines",
    "point_key",
    "execute_grid",
    "execute_point",
    "SupervisorPolicy",
    "execute_grid_supervised",
    "Fault",
    "InjectedFault",
    "WorkerFault",
    "fault_scenario",
    "inject_faults",
    "inject_worker_faults",
    "scenario_seed",
    "check_cycles",
    "check_layer_result",
    "check_macs",
    "check_trace_conservation",
    "expected_cycles",
    "COLLECT",
    "FAIL_FAST",
    "ExecutionPolicy",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "PointRecord",
    "RunReport",
    "exception_chain",
]
