"""Layer descriptions.

Two concrete layer types cover everything the paper simulates:

* :class:`ConvLayer` — a 2D convolution given by the Table II
  hyper-parameters (IFMAP height/width, filter height/width, channels,
  number of filters, stride).  Fully-connected layers are expressed as
  convolutions whose filter equals the IFMAP, exactly as the paper's
  Sec. II-E prescribes.
* :class:`GemmLayer` — a raw matrix multiplication given directly by the
  pre-mapped ``(S_R, T, S_C)`` triple of Table IV.  The language-model
  workloads (GNMT, DeepSpeech2, Transformer, NCF) use this form.

Both expose the same small interface the rest of the library needs:
the GEMM dimensions ``(gemm_m, gemm_k, gemm_n)`` = (OFMAP pixels per
filter, window size, number of filters), operand element counts, and
MAC counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import TopologyError
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class Layer:
    """Common base: a named unit of work that lowers to a GEMM.

    Subclasses must provide ``gemm_m`` (spatial rows under OS mapping,
    i.e. OFMAP pixels per filter), ``gemm_k`` (reduction length, i.e.
    convolution window size) and ``gemm_n`` (number of filters).
    """

    name: str

    # --- GEMM view -----------------------------------------------------
    @property
    def gemm_m(self) -> int:
        raise NotImplementedError

    @property
    def gemm_k(self) -> int:
        raise NotImplementedError

    @property
    def gemm_n(self) -> int:
        raise NotImplementedError

    # --- Derived counts ------------------------------------------------
    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations in the layer."""
        return self.gemm_m * self.gemm_k * self.gemm_n

    @property
    def ifmap_elements(self) -> int:
        """Distinct input operand elements (the S_R x T operand matrix)."""
        return self.gemm_m * self.gemm_k

    @property
    def filter_elements(self) -> int:
        """Distinct filter operand elements (the T x S_C operand matrix)."""
        return self.gemm_k * self.gemm_n

    @property
    def ofmap_elements(self) -> int:
        """Distinct output elements (the S_R x S_C result matrix)."""
        return self.gemm_m * self.gemm_n

    def gemm_dims(self) -> Tuple[int, int, int]:
        """Return ``(M, K, N)`` where the layer computes (MxK) @ (KxN)."""
        return (self.gemm_m, self.gemm_k, self.gemm_n)

    def describe(self) -> str:
        m, k, n = self.gemm_dims()
        return f"{self.name}: GEMM {m}x{k}x{n} ({self.macs} MACs)"


@dataclass(frozen=True)
class ConvLayer(Layer):
    """A convolution layer per Table II of the paper.

    ``batch`` extends the Table II schema (which describes batch-1
    inference): a batch of B inputs multiplies the OFMAP pixels per
    filter by B while filters are shared, exactly like SCALE-Sim v2's
    batching support.
    """

    ifmap_h: int = 1
    ifmap_w: int = 1
    filter_h: int = 1
    filter_w: int = 1
    channels: int = 1
    num_filters: int = 1
    stride: int = 1
    batch: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("layer name must be non-empty")
        for field_name in (
            "ifmap_h",
            "ifmap_w",
            "filter_h",
            "filter_w",
            "channels",
            "num_filters",
            "stride",
            "batch",
        ):
            try:
                check_positive_int(getattr(self, field_name), field_name)
            except ValueError as exc:
                raise TopologyError(f"layer {self.name!r}: {exc}") from exc
        if self.filter_h > self.ifmap_h or self.filter_w > self.ifmap_w:
            raise TopologyError(
                f"layer {self.name!r}: filter ({self.filter_h}x{self.filter_w}) "
                f"larger than IFMAP ({self.ifmap_h}x{self.ifmap_w})"
            )

    # --- Convolution geometry -------------------------------------------
    @property
    def ofmap_h(self) -> int:
        """OFMAP height: number of vertical window placements."""
        return (self.ifmap_h - self.filter_h) // self.stride + 1

    @property
    def ofmap_w(self) -> int:
        """OFMAP width: number of horizontal window placements."""
        return (self.ifmap_w - self.filter_w) // self.stride + 1

    @property
    def window_size(self) -> int:
        """Elements per convolution window (the paper's W_conv)."""
        return self.filter_h * self.filter_w * self.channels

    @property
    def ofmap_pixels_per_filter(self) -> int:
        """OFMAP pixels one filter produces across the batch
        (the paper's N_ofmap, times the batch size)."""
        return self.ofmap_h * self.ofmap_w * self.batch

    # --- GEMM view --------------------------------------------------------
    @property
    def gemm_m(self) -> int:
        return self.ofmap_pixels_per_filter

    @property
    def gemm_k(self) -> int:
        return self.window_size

    @property
    def gemm_n(self) -> int:
        return self.num_filters

    @property
    def is_fully_connected(self) -> bool:
        """True when the filter covers the whole IFMAP (matrix-vector)."""
        return self.filter_h == self.ifmap_h and self.filter_w == self.ifmap_w

    # --- Raw tensor footprints (pre-lowering) ----------------------------
    @property
    def raw_ifmap_elements(self) -> int:
        """Elements in the original (un-lowered) IFMAP tensor(s)."""
        return self.ifmap_h * self.ifmap_w * self.channels * self.batch

    def with_batch(self, batch: int) -> "ConvLayer":
        """Return a copy of this layer processing a batch of ``batch``."""
        from dataclasses import replace

        return replace(self, batch=batch)

    @property
    def raw_filter_elements(self) -> int:
        """Elements across all filter tensors."""
        return self.window_size * self.num_filters

    def as_row(self) -> Dict[str, object]:
        """Serialize to the Table II CSV row schema."""
        return {
            "Layer name": self.name,
            "IFMAP Height": self.ifmap_h,
            "IFMAP Width": self.ifmap_w,
            "Filter Height": self.filter_h,
            "Filter Width": self.filter_w,
            "Channels": self.channels,
            "Num Filter": self.num_filters,
            "Strides": self.stride,
        }

    @classmethod
    def fully_connected(cls, name: str, inputs: int, outputs: int) -> "ConvLayer":
        """Build an FC layer as a 1x1-spatial convolution over ``inputs`` channels."""
        return cls(
            name=name,
            ifmap_h=1,
            ifmap_w=1,
            filter_h=1,
            filter_w=1,
            channels=inputs,
            num_filters=outputs,
            stride=1,
        )


@dataclass(frozen=True)
class GemmLayer(Layer):
    """A bare matrix multiplication of shape (M x K) @ (K x N).

    ``M`` plays the role of N_ofmap, ``K`` of W_conv and ``N`` of
    N_filter, matching how Table IV lists language-model layers as
    ``(S_R, T, S_C)`` under the output-stationary mapping.
    """

    m: int = 1
    k: int = 1
    n: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("layer name must be non-empty")
        for field_name in ("m", "k", "n"):
            try:
                check_positive_int(getattr(self, field_name), field_name)
            except ValueError as exc:
                raise TopologyError(f"layer {self.name!r}: {exc}") from exc

    @property
    def gemm_m(self) -> int:
        return self.m

    @property
    def gemm_k(self) -> int:
        return self.k

    @property
    def gemm_n(self) -> int:
        return self.n

    def with_batch(self, batch: int) -> "GemmLayer":
        """Return a copy computing ``batch`` stacked GEMMs (M scaled)."""
        from dataclasses import replace

        check_positive_int(batch, "batch")
        return replace(self, m=self.m * batch)

    def as_conv(self) -> ConvLayer:
        """Lower to an equivalent ConvLayer (M 1x1 windows over K channels).

        The equivalent convolution has a 1-pixel-wide IFMAP column of
        height M with a 1x1xK filter — it produces the same GEMM
        dimensions under every dataflow mapping.
        """
        return ConvLayer(
            name=self.name,
            ifmap_h=self.m,
            ifmap_w=1,
            filter_h=1,
            filter_w=1,
            channels=self.k,
            num_filters=self.n,
            stride=1,
        )
