"""Conv-to-GEMM lowering with raw tensor addressing (im2col).

The dataflow engines address the *lowered* operand matrices (an
``M x K`` IFMAP matrix, a ``K x N`` filter matrix).  The original
SCALE-Sim, however, emits traces in the *raw tensor* address space:
the same IFMAP pixel appears at the same address every time any
convolution window touches it, which is exactly how overlapping-window
reuse becomes visible in the trace.

:class:`TensorAddressLayout` provides that view.  It implements the
same three-method interface as
:class:`~repro.dataflow.base.AddressLayout` — ``ifmap_addr(window,
element)``, ``filter_addr(element, filt)``, ``ofmap_addr(window,
filt)`` — so it can be passed to any engine's ``fold_trace`` /
``layer_trace`` unchanged, but resolves coordinates through the
convolution geometry:

* IFMAP tensor, channel-minor: ``addr = (row * W + col) * C + ch``.
* Filters, one after another, each channel-minor:
  ``addr = n * (R_f * S_f * C) + (r * S_f + s) * C + ch``.
* OFMAP, channel-minor: ``addr = (orow * W_o + ocol) * N + n``.

Window ``i`` of the lowered matrix is output pixel ``(i // W_o,
i % W_o)``; window element ``kk`` decomposes channel-minor into the
in-window offset ``(r, s, ch)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import TopologyError
from repro.topology.layer import ConvLayer


@dataclass(frozen=True)
class TensorAddressLayout:
    """Raw-tensor addressing for one convolution layer's traces."""

    layer: ConvLayer
    ifmap_offset: int = 0
    filter_offset: int = 10_000_000
    ofmap_offset: int = 20_000_000

    # Duck-typed counterparts of AddressLayout's m/k/n, used by callers
    # that size regions.
    @property
    def m(self) -> int:
        return self.layer.gemm_m

    @property
    def k(self) -> int:
        return self.layer.gemm_k

    @property
    def n(self) -> int:
        return self.layer.gemm_n

    # ------------------------------------------------------------------
    # Coordinate decompositions
    # ------------------------------------------------------------------
    @property
    def _pixels_per_image(self) -> int:
        return self.layer.ofmap_h * self.layer.ofmap_w

    @property
    def _image_bytes(self) -> int:
        return self.layer.ifmap_h * self.layer.ifmap_w * self.layer.channels

    def window_image(self, window: int) -> int:
        """Which batch image convolution window ``window`` belongs to."""
        if not 0 <= window < self.m:
            raise TopologyError(f"window {window} out of range [0, {self.m})")
        return window // self._pixels_per_image

    def window_origin(self, window: int) -> Tuple[int, int]:
        """Top-left IFMAP pixel (within its image) of window ``window``."""
        if not 0 <= window < self.m:
            raise TopologyError(f"window {window} out of range [0, {self.m})")
        pixel = window % self._pixels_per_image
        out_row, out_col = divmod(pixel, self.layer.ofmap_w)
        return (out_row * self.layer.stride, out_col * self.layer.stride)

    def element_offset(self, element: int) -> Tuple[int, int, int]:
        """In-window ``(row, col, channel)`` of window element ``element``."""
        if not 0 <= element < self.k:
            raise TopologyError(f"element {element} out of range [0, {self.k})")
        channels = self.layer.channels
        row, rest = divmod(element, self.layer.filter_w * channels)
        col, channel = divmod(rest, channels)
        return (row, col, channel)

    # ------------------------------------------------------------------
    # The AddressLayout interface, tensor-space edition
    # ------------------------------------------------------------------
    def ifmap_addr(self, window: int, element: int) -> int:
        """Raw address of the IFMAP pixel window ``window`` reads as its
        ``element``-th operand.  Overlapping windows share addresses;
        batch images occupy consecutive tensor-sized regions."""
        base_row, base_col = self.window_origin(window)
        row_off, col_off, channel = self.element_offset(element)
        row = base_row + row_off
        col = base_col + col_off
        pixel = (row * self.layer.ifmap_w + col) * self.layer.channels + channel
        return self.ifmap_offset + self.window_image(window) * self._image_bytes + pixel

    def filter_addr(self, element: int, filt: int) -> int:
        """Raw address of weight ``element`` of filter ``filt``."""
        if not 0 <= filt < self.n:
            raise TopologyError(f"filter {filt} out of range [0, {self.n})")
        row, col, channel = self.element_offset(element)
        within = (row * self.layer.filter_w + col) * self.layer.channels + channel
        return self.filter_offset + filt * self.k + within

    def ofmap_addr(self, window: int, filt: int) -> int:
        """Raw address of OFMAP pixel (window, output channel)."""
        if not 0 <= filt < self.n:
            raise TopologyError(f"filter {filt} out of range [0, {self.n})")
        if not 0 <= window < self.m:
            raise TopologyError(f"window {window} out of range [0, {self.m})")
        return self.ofmap_offset + window * self.n + filt

    # ------------------------------------------------------------------
    # Reuse analytics
    # ------------------------------------------------------------------
    def unique_ifmap_pixels(self) -> int:
        """Distinct IFMAP addresses the layer touches.

        Strides larger than the kernel skip pixels, so this can be less
        than the full tensor footprint.
        """
        layer = self.layer

        def covered(extent: int, kernel: int, steps: int) -> int:
            if layer.stride >= kernel:
                return steps * kernel
            return (steps - 1) * layer.stride + kernel

        rows = covered(layer.ifmap_h, layer.filter_h, layer.ofmap_h)
        cols = covered(layer.ifmap_w, layer.filter_w, layer.ofmap_w)
        return rows * cols * layer.channels * layer.batch

    def ifmap_reuse_factor(self) -> float:
        """Average times each touched IFMAP pixel is read by the lowered
        GEMM: ``(M * K) / unique``.  1.0 means no window overlap."""
        return (self.m * self.k) / self.unique_ifmap_pixels()
