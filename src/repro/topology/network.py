"""A network is an ordered collection of layers.

SCALE-Sim simulates a topology file one row at a time and serializes
parallel cells in file order (Sec. II-E); :class:`Network` therefore is
a simple ordered sequence with name-based lookup and aggregate stats.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Union

from repro.errors import TopologyError
from repro.topology.layer import Layer


class Network:
    """An ordered, immutable-ish sequence of uniquely named layers."""

    def __init__(self, name: str, layers: Iterable[Layer]):
        if not name:
            raise TopologyError("network name must be non-empty")
        self.name = name
        self._layers: List[Layer] = list(layers)
        if not self._layers:
            raise TopologyError(f"network {name!r} has no layers")
        self._by_name: Dict[str, Layer] = {}
        for layer in self._layers:
            if layer.name in self._by_name:
                raise TopologyError(
                    f"network {name!r} has duplicate layer name {layer.name!r}"
                )
            self._by_name[layer.name] = layer

    # --- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers)

    def __getitem__(self, key: Union[int, str]) -> Layer:
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                raise KeyError(
                    f"network {self.name!r} has no layer {key!r}; "
                    f"layers are {self.layer_names()}"
                ) from None
        return self._layers[key]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    # --- Queries -------------------------------------------------------------
    def layer_names(self) -> List[str]:
        """Layer names in execution order."""
        return [layer.name for layer in self._layers]

    def subset(self, names: Sequence[str], name: str = "") -> "Network":
        """Return a new Network containing only ``names``, in the given order."""
        picked = [self[name_] for name_ in names]
        return Network(name or f"{self.name}-subset", picked)

    @property
    def total_macs(self) -> int:
        """Total MAC operations across all layers."""
        return sum(layer.macs for layer in self._layers)

    def with_batch(self, batch: int) -> "Network":
        """Return a copy of the network processing a batch of ``batch``.

        Every layer must support ``with_batch`` (ConvLayer and GemmLayer
        both do).
        """
        return Network(
            f"{self.name}-b{batch}",
            [layer.with_batch(batch) for layer in self._layers],
        )

    def describe(self) -> str:
        """Multi-line summary: one row per layer plus a total."""
        lines = [f"Network {self.name}: {len(self)} layers, {self.total_macs} MACs"]
        lines.extend("  " + layer.describe() for layer in self._layers)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(name={self.name!r}, layers={len(self)})"
