"""Workload topology (paper Table II): layers, networks, CSV parsing."""

from repro.topology.layer import ConvLayer, GemmLayer, Layer
from repro.topology.network import Network
from repro.topology.parser import (
    load_topology,
    parse_topology_text,
    dump_topology,
    TOPOLOGY_HEADER,
)

__all__ = [
    "ConvLayer",
    "GemmLayer",
    "Layer",
    "Network",
    "load_topology",
    "parse_topology_text",
    "dump_topology",
    "TOPOLOGY_HEADER",
]
