"""Parse and emit SCALE-Sim topology CSV files (paper Table II).

Format, one layer per row::

    Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width,
    Channels, Num Filter, Strides,

A header row is optional (detected by non-numeric second column), and a
trailing comma — present in the original tool's files — is tolerated.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Union

from repro.errors import TopologyError
from repro.topology.layer import ConvLayer
from repro.topology.network import Network

#: Canonical header row, as listed in Table II of the paper.
TOPOLOGY_HEADER = [
    "Layer name",
    "IFMAP Height",
    "IFMAP Width",
    "Filter Height",
    "Filter Width",
    "Channels",
    "Num Filter",
    "Strides",
]

_NUM_FIELDS = 8

#: Dimensions past this are file corruption, not hardware: a single
#: layer dimension beyond 2^31-1 overflows every downstream consumer's
#: expectations long before any machine could simulate it.
MAX_DIMENSION = 2**31 - 1


def _is_header(cells: List[str]) -> bool:
    """A row is a header when *every* dimension column is non-numeric.

    Requiring all columns distinguishes a real header from a data row
    with a single typo (which should be reported as an error instead).
    """
    dims = cells[1:_NUM_FIELDS]
    return bool(dims) and all(not cell.strip().lstrip("-").isdigit() for cell in dims)


def _parse_row(cells: List[str], line_no: int) -> ConvLayer:
    if len(cells) < _NUM_FIELDS:
        raise TopologyError(
            f"topology line {line_no}: expected {_NUM_FIELDS} fields "
            f"({', '.join(TOPOLOGY_HEADER)}), got {len(cells)}"
        )
    name = cells[0].strip()
    try:
        dims = [int(cell) for cell in cells[1:_NUM_FIELDS]]
    except ValueError as exc:
        raise TopologyError(f"topology line {line_no}: non-integer dimension: {exc}") from exc
    for column, value in zip(TOPOLOGY_HEADER[1:], dims):
        if value < 1:
            raise TopologyError(
                f"topology line {line_no}: {column} must be >= 1, got {value}"
            )
        if value > MAX_DIMENSION:
            raise TopologyError(
                f"topology line {line_no}: {column} is absurdly large "
                f"({value} > {MAX_DIMENSION}); refusing to simulate it"
            )
    return ConvLayer(
        name=name,
        ifmap_h=dims[0],
        ifmap_w=dims[1],
        filter_h=dims[2],
        filter_w=dims[3],
        channels=dims[4],
        num_filters=dims[5],
        stride=dims[6],
    )


def parse_topology_text(text: str, name: str = "topology") -> Network:
    """Parse topology CSV contents into a :class:`Network`.

    Tolerates a UTF-8 byte-order mark (files exported from Windows
    tooling often carry one) and blank or whitespace-only lines.
    """
    layers: List[ConvLayer] = []
    reader = csv.reader(io.StringIO(text.lstrip("\ufeff")))
    for line_no, row in enumerate(reader, start=1):
        cells = [cell for cell in (c.strip() for c in row)]
        # Drop a single trailing empty cell caused by a trailing comma.
        if cells and cells[-1] == "":
            cells = cells[:-1]
        if not cells or all(cell == "" for cell in cells):
            continue
        if line_no == 1 and _is_header(cells):
            continue
        layers.append(_parse_row(cells, line_no))
    if not layers:
        raise TopologyError(f"topology {name!r} contains no layers")
    return Network(name, layers)


def load_topology(path: Union[str, Path]) -> Network:
    """Load a topology CSV file from disk; the network is named after the file."""
    path = Path(path)
    if not path.exists():
        raise TopologyError(f"topology file not found: {path}")
    return parse_topology_text(path.read_text(encoding="utf-8-sig"), name=path.stem)


def dump_topology(network: Network, path: Union[str, Path]) -> Path:
    """Write ``network`` to a Table II CSV file.

    GEMM layers are lowered to equivalent convolutions.  Table II has no
    batch column, so batched conv layers are also lowered to an
    equivalent batch-1 GEMM first — the file round-trips to layers with
    identical GEMM dimensions, which is what the simulator consumes.
    """
    from repro.topology.layer import GemmLayer

    path = Path(path)
    rows = [",".join(TOPOLOGY_HEADER) + ","]
    for layer in network:
        if isinstance(layer, ConvLayer) and layer.batch == 1:
            conv = layer
        else:
            conv = GemmLayer(
                layer.name, m=layer.gemm_m, k=layer.gemm_k, n=layer.gemm_n
            ).as_conv()
        row = conv.as_row()
        rows.append(",".join(str(row[key]) for key in TOPOLOGY_HEADER) + ",")
    path.write_text("\n".join(rows) + "\n")
    return path
