"""Cross-model validation harness (Fig. 4 as a reusable API).

Three independent models of the same machine live in this library: the
trace-based engine, the closed-form analytical model, and the
PE-register-level golden array.  This module runs all three on one
problem and reports whether they agree, under the documented rules:

* engine cycles == golden cycles, always (both are exact);
* engine cycles <= analytical Eq. 4, with equality iff the mapped
  dimensions divide the array;
* the golden array's numeric output equals ``a @ b`` (checked inside
  :func:`golden_gemm` itself — a mismatch raises).

Used by the test-suite, the Fig. 4 benchmark and the CLI ``validate``
verb.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analytical.runtime import scaleup_runtime
from repro.config.hardware import Dataflow
from repro.dataflow.factory import engine_for_gemm
from repro.golden.gemm import golden_gemm
from repro.mapping.dims import map_gemm


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one cross-model comparison."""

    m: int
    k: int
    n: int
    dataflow: Dataflow
    array_rows: int
    array_cols: int
    engine_cycles: int
    golden_cycles: int
    analytical_cycles: int
    dims_divide: bool
    #: Relative tolerance applied to the equality comparisons.  The
    #: default 0.0 keeps the historical exact semantics; a sweep can
    #: relax it (CLI ``--rel-tol`` / ``REPRO_VALIDATE_REL_TOL``) when
    #: hunting large drifts without failing on known rounding quirks.
    rel_tol: float = 0.0

    def _close(self, left: int, right: int) -> bool:
        if self.rel_tol <= 0.0:
            return left == right
        return math.isclose(left, right, rel_tol=self.rel_tol, abs_tol=0.0)

    @property
    def engine_matches_golden(self) -> bool:
        return self._close(self.engine_cycles, self.golden_cycles)

    @property
    def engine_within_analytical(self) -> bool:
        if self.engine_cycles <= self.analytical_cycles:
            return True
        return self._close(self.engine_cycles, self.analytical_cycles)

    @property
    def exact_when_divisible(self) -> bool:
        if not self.dims_divide:
            return True
        return self._close(self.engine_cycles, self.analytical_cycles)

    @property
    def passed(self) -> bool:
        return (
            self.engine_matches_golden
            and self.engine_within_analytical
            and self.exact_when_divisible
        )

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.m}x{self.k}x{self.n} {self.dataflow.value} on "
            f"{self.array_rows}x{self.array_cols}: engine {self.engine_cycles}, "
            f"golden {self.golden_cycles}, Eq.4 {self.analytical_cycles}"
        )


def validate_configuration(
    m: int,
    k: int,
    n: int,
    dataflow: Dataflow,
    array_rows: int,
    array_cols: int,
    seed: int = 0,
    rel_tol: float = 0.0,
) -> ValidationReport:
    """Run all three models on one GEMM/array pair and compare.

    ``rel_tol`` relaxes the report's equality checks; 0.0 (the
    default) demands exact agreement, as the models are documented to
    provide.
    """
    engine = engine_for_gemm(m, k, n, dataflow, array_rows, array_cols)
    mapping = map_gemm(m, k, n, dataflow)
    rng = np.random.default_rng(seed)
    a = rng.integers(-8, 8, (m, k))
    b = rng.integers(-8, 8, (k, n))
    golden = golden_gemm(a, b, dataflow, array_rows, array_cols)
    return ValidationReport(
        m=m,
        k=k,
        n=n,
        dataflow=dataflow,
        array_rows=array_rows,
        array_cols=array_cols,
        engine_cycles=engine.total_cycles(),
        golden_cycles=golden.cycles,
        analytical_cycles=scaleup_runtime(mapping, array_rows, array_cols),
        dims_divide=(mapping.sr % array_rows == 0 and mapping.sc % array_cols == 0),
        rel_tol=rel_tol,
    )


def validation_sweep(
    seed: int = 0,
    trials: int = 20,
    max_dim: int = 24,
    max_array: int = 8,
    dataflows: Optional[Sequence[Dataflow]] = None,
    rel_tol: float = 0.0,
) -> List[ValidationReport]:
    """Randomized cross-model sweep: ``trials`` reports per dataflow."""
    rng = np.random.default_rng(seed)
    reports: List[ValidationReport] = []
    for dataflow in dataflows or list(Dataflow):
        for trial in range(trials):
            m, k, n = (int(rng.integers(1, max_dim + 1)) for _ in range(3))
            rows, cols = (int(rng.integers(1, max_array + 1)) for _ in range(2))
            reports.append(
                validate_configuration(
                    m, k, n, dataflow, rows, cols, seed=seed + trial, rel_tol=rel_tol
                )
            )
    return reports
