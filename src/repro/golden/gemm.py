"""Run a full (possibly folded) GEMM through the register-level array.

This stitches :mod:`repro.golden.array` fold simulations together using
the same fold plan as the trace-based engine, assembles the numerical
result, and reports the end-to-end cycle count.  A mismatch between the
assembled result and ``a @ b`` means a dataflow-model bug, so it raises
rather than returning silently wrong data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.hardware import Dataflow
from repro.errors import SimulationError
from repro.golden.array import (
    run_output_stationary_fold,
    run_weight_stationary_fold,
)
from repro.mapping.dims import map_gemm
from repro.mapping.folds import plan_folds


@dataclass(frozen=True)
class GoldenGemmResult:
    """Outcome of a full GEMM on the register-level array."""

    cycles: int
    output: np.ndarray
    macs: int
    num_folds: int


def golden_gemm(
    a: np.ndarray,
    b: np.ndarray,
    dataflow: Dataflow,
    array_rows: int,
    array_cols: int,
) -> GoldenGemmResult:
    """Compute ``a @ b`` on an ``array_rows x array_cols`` systolic array.

    Folds execute back to back (matching the engine's serialization);
    partial sums from different row folds of WS/IS are accumulated as
    they exit, as the accelerator's output buffer would.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise SimulationError(f"incompatible GEMM shapes {a.shape} x {b.shape}")
    m, k = a.shape
    _, n = b.shape

    mapping = map_gemm(m, k, n, dataflow)
    plan = plan_folds(mapping, array_rows, array_cols)
    output = np.zeros((m, n), dtype=np.int64)
    cycles = 0
    macs = 0

    for fold in plan.folds():
        ro, co = fold.row_offset, fold.col_offset
        r, c = fold.rows, fold.cols
        if dataflow is Dataflow.OUTPUT_STATIONARY:
            result = run_output_stationary_fold(a[ro : ro + r, :], b[:, co : co + c])
            output[ro : ro + r, co : co + c] = result.output
        elif dataflow is Dataflow.WEIGHT_STATIONARY:
            stream = a[:, ro : ro + r]  # T x r, T = M wavefronts
            stationary = b[ro : ro + r, co : co + c]
            result = run_weight_stationary_fold(stream, stationary)
            output[:, co : co + c] += result.output
        elif dataflow is Dataflow.INPUT_STATIONARY:
            stream = b[ro : ro + r, :].T  # T x r, T = N wavefronts
            stationary = a[:, ro : ro + r].T[:, co : co + c]
            result = run_weight_stationary_fold(stream, stationary)
            output[co : co + c, :] += result.output.T
        else:  # pragma: no cover - enum is exhaustive
            raise SimulationError(f"unsupported dataflow {dataflow!r}")
        cycles += result.cycles
        macs += result.macs

    expected = a @ b
    if not np.array_equal(output, expected):
        raise SimulationError(
            f"golden array produced a wrong result for {dataflow} "
            f"({m}x{k}x{n} on {array_rows}x{array_cols})"
        )
    return GoldenGemmResult(cycles=cycles, output=output, macs=macs, num_folds=plan.num_folds)
