"""Cycle-by-cycle register-level simulation of one systolic fold.

Two microarchitectures cover the three dataflows:

* :func:`run_output_stationary_fold` — operands flow right (IFMAP) and
  down (filters); each PE accumulates in place; results shift down and
  exit the bottom edge after compute finishes.
* :func:`run_weight_stationary_fold` — one operand is pre-filled and
  held; the other streams right along rows while partial sums cascade
  down columns (input-stationary is this machine with swapped roles —
  see :mod:`repro.golden.gemm`).

The simulators advance explicit register arrays one cycle at a time and
never consult the closed-form latency; the cycle counts they report are
an independent check of Eq. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class GoldenFoldResult:
    """Outcome of one fold on the register-level array."""

    cycles: int
    output: np.ndarray
    macs: int


def _as_2d(matrix: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(matrix, dtype=np.int64)
    if array.ndim != 2 or array.size == 0:
        raise SimulationError(f"{name} must be a non-empty 2D matrix, got shape {array.shape}")
    return array


def run_output_stationary_fold(
    a_tile: np.ndarray,
    b_tile: np.ndarray,
    dedicated_output_plane: bool = False,
) -> GoldenFoldResult:
    """Simulate one OS fold: ``a_tile`` is r x T, ``b_tile`` is T x c.

    Returns the r x c products and the exact cycle count.  By default
    results drain through the PE mesh (r extra cycles); with
    ``dedicated_output_plane=True`` each accumulator is captured the
    cycle its T-th MAC completes (the paper's Sec. II-A alternative),
    so the fold ends with the last MAC.
    """
    a_tile = _as_2d(a_tile, "a_tile")
    b_tile = _as_2d(b_tile, "b_tile")
    r, t = a_tile.shape
    t2, c = b_tile.shape
    if t != t2:
        raise SimulationError(f"inner dimensions disagree: {t} vs {t2}")

    h_val = np.zeros((r, c), dtype=np.int64)  # operand moving right
    h_ok = np.zeros((r, c), dtype=bool)
    v_val = np.zeros((r, c), dtype=np.int64)  # operand moving down
    v_ok = np.zeros((r, c), dtype=bool)
    acc = np.zeros((r, c), dtype=np.int64)
    mac_count = np.zeros((r, c), dtype=np.int64)

    cycle = 0
    macs = 0
    # Compute phase: run until every PE has performed its T MACs.
    while not np.all(mac_count >= t):
        # Shift the store-and-forward registers by one hop.
        new_h = np.empty_like(h_val)
        new_h_ok = np.empty_like(h_ok)
        new_h[:, 1:] = h_val[:, :-1]
        new_h_ok[:, 1:] = h_ok[:, :-1]
        new_v = np.empty_like(v_val)
        new_v_ok = np.empty_like(v_ok)
        new_v[1:, :] = v_val[:-1, :]
        new_v_ok[1:, :] = v_ok[:-1, :]
        # Edge injection with the skew of Fig. 6a: row i's k-th IFMAP
        # element enters at cycle i + k, column j's k-th filter at j + k.
        for i in range(r):
            k = cycle - i
            if 0 <= k < t:
                new_h[i, 0] = a_tile[i, k]
                new_h_ok[i, 0] = True
            else:
                new_h[i, 0] = 0
                new_h_ok[i, 0] = False
        for j in range(c):
            k = cycle - j
            if 0 <= k < t:
                new_v[0, j] = b_tile[k, j]
                new_v_ok[0, j] = True
            else:
                new_v[0, j] = 0
                new_v_ok[0, j] = False
        h_val, h_ok, v_val, v_ok = new_h, new_h_ok, new_v, new_v_ok
        both = h_ok & v_ok
        acc[both] += h_val[both] * v_val[both]
        fired = int(both.sum())
        mac_count[both] += 1
        macs += fired
        cycle += 1
        if cycle > 4 * (r + c + t):
            raise SimulationError("OS golden simulation failed to converge")

    if dedicated_output_plane:
        # The plane captured every accumulator as it completed; the fold
        # is over when the last MAC fires.
        return GoldenFoldResult(cycles=cycle, output=acc.copy(), macs=macs)

    # Drain phase: accumulators shift down; the bottom row exits each
    # cycle, so r cycles empty the array.
    output = np.zeros((r, c), dtype=np.int64)
    for step in range(r):
        output[r - 1 - step, :] = acc[r - 1, :]
        acc[1:, :] = acc[:-1, :]
        cycle += 1

    return GoldenFoldResult(cycles=cycle, output=output, macs=macs)


def run_weight_stationary_fold(stream: np.ndarray, stationary: np.ndarray) -> GoldenFoldResult:
    """Simulate one WS fold.

    ``stationary`` is the r x c tile held in the PEs (weights under WS);
    ``stream`` is T x r: ``stream[w, i]`` is the value row ``i`` receives
    for wavefront ``w``.  Column ``j`` emits
    ``sum_i stream[w, i] * stationary[i, j]`` for each wavefront; the
    result is returned as a T x c matrix.
    """
    stream = _as_2d(stream, "stream")
    stationary = _as_2d(stationary, "stationary")
    t, r = stream.shape
    r2, c = stationary.shape
    if r != r2:
        raise SimulationError(f"row dimensions disagree: {r} vs {r2}")

    # Prefill: weights shift down from the top edge, one row per cycle;
    # after r cycles row i holds stationary[i, :].  Simulated literally.
    weights = np.zeros((r, c), dtype=np.int64)
    cycle = 0
    for _ in range(r):
        weights[1:, :] = weights[:-1, :]
        weights[0, :] = stationary[r - 1 - cycle, :]
        cycle += 1
    if not np.array_equal(weights, stationary):
        raise SimulationError("prefill failed to place weights")

    x_val = np.zeros((r, c), dtype=np.int64)  # activations moving right
    x_ok = np.zeros((r, c), dtype=bool)
    psum = np.zeros((r, c), dtype=np.int64)  # partial sums moving down
    psum_ok = np.zeros((r, c), dtype=bool)

    output = np.zeros((t, c), dtype=np.int64)
    collected = np.zeros((t, c), dtype=bool)
    macs = 0
    stream_cycle = 0
    while not collected.all():
        new_x = np.empty_like(x_val)
        new_x_ok = np.empty_like(x_ok)
        new_x[:, 1:] = x_val[:, :-1]
        new_x_ok[:, 1:] = x_ok[:, :-1]
        for i in range(r):
            w = stream_cycle - i
            if 0 <= w < t:
                new_x[i, 0] = stream[w, i]
                new_x_ok[i, 0] = True
            else:
                new_x[i, 0] = 0
                new_x_ok[i, 0] = False
        # Partial sums cascade down one row per cycle; row 0 starts fresh.
        new_psum = np.zeros((r, c), dtype=np.int64)
        new_psum_ok = np.zeros((r, c), dtype=bool)
        new_psum[1:, :] = psum[:-1, :]
        new_psum_ok[1:, :] = psum_ok[:-1, :]

        x_val, x_ok = new_x, new_x_ok
        contribution = np.where(x_ok, x_val * weights, 0)
        macs += int(x_ok.sum())
        result = new_psum + contribution
        result_ok = x_ok | new_psum_ok

        # The bottom row's finished sums exit this cycle.  The wavefront
        # exiting column j at stream cycle s carries window w = s - (r-1) - j.
        for j in range(c):
            w = stream_cycle - (r - 1) - j
            if 0 <= w < t and result_ok[r - 1, j]:
                output[w, j] = result[r - 1, j]
                collected[w, j] = True
        psum, psum_ok = result, result_ok
        stream_cycle += 1
        cycle += 1
        if stream_cycle > 4 * (r + c + t):
            raise SimulationError("WS golden simulation failed to converge")

    return GoldenFoldResult(cycles=cycle, output=output, macs=macs)
