"""PE-level functional systolic-array simulator (the RTL stand-in).

The paper validates SCALE-Sim's cycle counts against a Verilog
implementation (Fig. 4).  This package plays that role: it models every
PE's store-and-forward registers cycle by cycle, actually performs the
arithmetic, and reports when the last result leaves the array — a
microarchitecturally explicit model that is independent of both the
trace-based engine and the closed-form Eq. 3/4.
"""

from repro.golden.array import (
    GoldenFoldResult,
    run_output_stationary_fold,
    run_weight_stationary_fold,
)
from repro.golden.gemm import GoldenGemmResult, golden_gemm
from repro.golden.validate import (
    ValidationReport,
    validate_configuration,
    validation_sweep,
)

__all__ = [
    "GoldenFoldResult",
    "run_output_stationary_fold",
    "run_weight_stationary_fold",
    "GoldenGemmResult",
    "golden_gemm",
    "ValidationReport",
    "validate_configuration",
    "validation_sweep",
]
