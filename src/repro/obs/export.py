"""Serialize traces and metrics: Chrome trace-event JSON and JSONL.

Three output formats, all JSON-loadable:

* **Chrome trace-event / Perfetto** (:func:`write_chrome_trace`) — the
  ``{"traceEvents": [...]}`` object form, openable directly in
  https://ui.perfetto.dev or ``chrome://tracing``.  Spans are complete
  events (``"ph": "X"`` with microsecond ``ts``/``dur``), tracer events
  are instants (``"ph": "i"``), and the file's ``metadata`` block
  carries the package version and config hash so every artifact is
  attributable to an exact run.
* **Metrics JSON** (:func:`write_metrics_json`) — the registry snapshot
  (counters / gauges / histogram percentiles) under the same header.
* **JSONL event log** (:func:`write_event_jsonl`) — one JSON object per
  line, header first, for ``grep``/stream processing of long runs.

All three writers are crash-safe: the document is serialized in memory
and lands via :func:`repro.utils.atomicio.atomic_write_text` (temp file
+ fsync + rename), so a crash mid-export never leaves a truncated
artifact behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro._version import __version__
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import PHASE_COMPLETE, SpanRecord, Tracer
from repro.utils.atomicio import atomic_write_text

PathLike = Union[str, Path]


def config_hash(payload: object) -> str:
    """Short deterministic hash of any JSON-representable payload.

    Used to stamp trace/metrics files with the configuration (CLI
    argument vector, config description, ...) that produced them.
    """
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def run_metadata(
    config_digest: Optional[str] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """The reproducibility header shared by every exported file."""
    meta = {
        "tool": "scalesim-repro",
        "version": __version__,
        "config_hash": config_digest,
        "created_unix": time.time(),
    }
    if extra:
        meta.update(extra)
    return meta


def _span_to_event(record: SpanRecord, pid: int) -> Dict:
    event = {
        "name": record.name,
        "cat": record.category,
        "ph": record.phase,
        "ts": record.start_ns / 1000.0,  # trace-event timestamps are in us
        "pid": pid,
        "tid": record.thread_id,
        "args": {**record.args, "depth": record.depth},
    }
    if record.phase == PHASE_COMPLETE:
        event["dur"] = record.duration_ns / 1000.0
        event["args"]["self_us"] = record.self_ns / 1000.0
    else:
        event["s"] = "t"  # instant scope: thread
    return event


def chrome_trace_events(tracer: Tracer) -> List[Dict]:
    """The tracer's records as Chrome trace-event dicts, in time order."""
    pid = os.getpid()
    events = [_span_to_event(record, pid) for record in tracer.records()]
    events.sort(key=lambda event: event["ts"])
    return events


def write_chrome_trace(
    tracer: Tracer,
    path: PathLike,
    metadata: Optional[Dict] = None,
) -> Path:
    """Write the tracer's buffer as a Perfetto-openable trace file."""
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "metadata": metadata if metadata is not None else run_metadata(),
    }
    return atomic_write_text(path, json.dumps(doc, indent=1, default=repr))


def write_metrics_json(
    registry: MetricsRegistry,
    path: PathLike,
    metadata: Optional[Dict] = None,
) -> Path:
    """Write the registry snapshot under the reproducibility header."""
    doc = {
        "metadata": metadata if metadata is not None else run_metadata(),
        **registry.snapshot(),
    }
    return atomic_write_text(path, json.dumps(doc, indent=1, default=repr))


def write_event_jsonl(
    tracer: Tracer,
    path: PathLike,
    metadata: Optional[Dict] = None,
) -> Path:
    """Write every record as one JSON line, header line first."""
    header = {"type": "header", **(metadata if metadata is not None else run_metadata())}
    lines = [json.dumps(header, default=repr)]
    for record in tracer.records():
        lines.append(
            json.dumps(
                {
                    "type": "span" if record.phase == PHASE_COMPLETE else "event",
                    "name": record.name,
                    "cat": record.category,
                    "ts_us": record.start_ns / 1000.0,
                    "dur_us": record.duration_ns / 1000.0,
                    "self_us": record.self_ns / 1000.0,
                    "tid": record.thread_id,
                    "depth": record.depth,
                    "args": record.args,
                },
                default=repr,
            )
        )
    return atomic_write_text(path, "\n".join(lines) + "\n")


def load_trace(path: PathLike) -> Dict:
    """Load a Chrome trace file, validating its basic shape."""
    with Path(path).open() as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace-event file (no traceEvents)")
    return doc


def load_metrics(path: PathLike) -> Dict:
    """Load a metrics JSON file, validating its basic shape."""
    with Path(path).open() as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "counters" not in doc:
        raise ValueError(f"{path}: not a metrics file (no counters)")
    return doc
