"""Nested span tracer with a strict no-op fast path when disabled.

A :class:`Tracer` records *spans* (timed, nested regions of execution)
and *events* (instants) into an in-memory buffer that the exporters in
:mod:`repro.obs.export` turn into Chrome trace-event / Perfetto JSON or
a JSONL event log.  Usage::

    from repro.obs import trace

    with trace.span("run_layer", layer=layer.name):
        ...
    trace.event("retry", attempt=2)

Design constraints, in priority order:

* **Disabled is free.**  The default-constructed tracer is disabled;
  ``span()`` then returns a shared singleton whose ``__enter__`` /
  ``__exit__`` do nothing, and ``event()`` returns immediately.  The
  only per-call cost on the hot path is one attribute check.
* **Nesting is exact.**  Spans form a stack per thread; each finished
  span knows its depth and its *self time* (duration minus the summed
  duration of its direct children), which is what ``repro stats`` ranks
  by.
* **Thread-tolerant.**  The robust executor runs points on worker
  threads when a timeout is set; span stacks are thread-local and the
  record buffer is guarded by a lock taken only at span exit.

Beyond recording, the tracer supports three integration hooks used by
the operational-observability layer:

* **Bound context** (:meth:`Tracer.bind` / :meth:`Tracer.bound`) — a
  thread-local attribute dict (e.g. a request correlation ID) merged
  into every span/event recorded on that thread, so one ``bind`` at a
  request boundary stamps every nested segment without threading the
  ID through call signatures.
* **Listeners** (:meth:`Tracer.add_listener`) — callbacks invoked with
  each finished :class:`SpanRecord`; the crash flight recorder uses
  this to keep its bounded ring without a second instrumentation pass.
* **Foreign records** (:meth:`Tracer.add_record` /
  :meth:`Tracer.add_span`) — inject already-timed spans, used to merge
  worker-process span files into the parent trace and to synthesize
  segments whose duration is known only after the fact (queue wait).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Union

#: Phase tags, following the Chrome trace-event format.
PHASE_COMPLETE = "X"  # a span with a duration
PHASE_INSTANT = "i"   # a point-in-time event


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (or instant event) as recorded by the tracer.

    Timestamps are ``time.perf_counter_ns()`` values relative to the
    tracer's epoch, so they start near zero and are monotonic within a
    run.
    """

    name: str
    category: str
    start_ns: int
    duration_ns: int
    self_ns: int
    thread_id: int
    depth: int
    phase: str = PHASE_COMPLETE
    args: Dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: Singleton no-op span: the entire cost of a disabled ``with`` block.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records itself on the owning tracer at exit."""

    __slots__ = ("_tracer", "name", "category", "args", "start_ns",
                 "_child_ns", "_parent", "_depth")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.start_ns = 0
        self._child_ns = 0
        self._parent: Optional[_Span] = None
        self._depth = 0

    def set(self, **attrs: Any) -> "_Span":
        """Attach extra attributes to this span (chains)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        duration = end_ns - self.start_ns
        if self._parent is not None:
            self._parent._child_ns += duration
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        bound = getattr(self._tracer._local, "context", None)
        if bound:
            for key, value in bound.items():
                self.args.setdefault(key, value)
        self._tracer._record(
            SpanRecord(
                name=self.name,
                category=self.category,
                start_ns=self.start_ns - self._tracer.epoch_ns,
                duration_ns=duration,
                self_ns=duration - self._child_ns,
                thread_id=threading.get_ident(),
                depth=self._depth,
                phase=PHASE_COMPLETE,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Collects :class:`SpanRecord` objects for one process run."""

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self._records: Union[List[SpanRecord], Deque[SpanRecord]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._listeners: List[Callable[[SpanRecord], None]] = []
        self._max_records: Optional[int] = None
        self.epoch_ns = time.perf_counter_ns()
        self.epoch_unix = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        """Drop all recorded spans and restart the epoch."""
        with self._lock:
            if self._max_records is not None:
                self._records = deque(maxlen=self._max_records)
            else:
                self._records = []
        self.epoch_ns = time.perf_counter_ns()
        self.epoch_unix = time.time()

    def limit_records(self, limit: Optional[int]) -> None:
        """Bound the record buffer to the newest ``limit`` spans.

        Long-lived processes (the daemon, an armed flight recorder with
        no ``--trace`` sink) enable tracing indefinitely; a bounded
        buffer keeps memory flat while the newest spans — the ones a
        postmortem wants — survive.  ``None`` restores the unbounded
        buffer.  Existing records are preserved (newest kept on
        shrink).
        """
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            self._max_records = limit
            if limit is None:
                self._records = list(self._records)
            else:
                self._records = deque(self._records, maxlen=limit)

    # ------------------------------------------------------------------
    # Bound context & listeners
    # ------------------------------------------------------------------
    def bind(self, **attrs: Any) -> None:
        """Merge ``attrs`` into this thread's bound context.

        Bound attributes are added (``setdefault`` — explicit span args
        win) to every span and event recorded on this thread until
        :meth:`unbind`.  Used to stamp a correlation ID across every
        segment of one request.
        """
        context = getattr(self._local, "context", None)
        if context is None:
            context = self._local.context = {}
        context.update(attrs)

    def unbind(self, *names: str) -> None:
        """Remove ``names`` from this thread's bound context (all if empty)."""
        context = getattr(self._local, "context", None)
        if not context:
            return
        if not names:
            context.clear()
            return
        for name in names:
            context.pop(name, None)

    def bound(self, **attrs: Any):
        """Context manager form of :meth:`bind`; restores prior values."""
        return _BoundContext(self, attrs)

    def context(self) -> Dict[str, Any]:
        """A copy of this thread's bound context."""
        return dict(getattr(self._local, "context", None) or {})

    def add_listener(self, listener: Callable[[SpanRecord], None]) -> None:
        """Invoke ``listener`` with every record as it is recorded."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[SpanRecord], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, /, category: str = "repro", **args: Any):
        """A context manager timing one nested region.

        Disabled tracers return the shared :data:`NULL_SPAN` singleton
        without allocating anything.
        """
        if not self._enabled:
            return NULL_SPAN
        return _Span(self, name, category, args)

    def event(self, name: str, /, category: str = "repro", **args: Any) -> None:
        """Record an instantaneous event at the current nesting depth."""
        if not self._enabled:
            return
        stack = self._stack()
        bound = getattr(self._local, "context", None)
        if bound:
            for key, value in bound.items():
                args.setdefault(key, value)
        self._record(
            SpanRecord(
                name=name,
                category=category,
                start_ns=time.perf_counter_ns() - self.epoch_ns,
                duration_ns=0,
                self_ns=0,
                thread_id=threading.get_ident(),
                depth=len(stack),
                phase=PHASE_INSTANT,
                args=args,
            )
        )

    def add_record(self, record: SpanRecord) -> None:
        """Inject an already-built record (e.g. from a worker process).

        Timestamps must already be relative to *this* tracer's epoch —
        callers merging foreign span files re-anchor via ``epoch_unix``
        first.  No-op while disabled, like all recording paths.
        """
        if not self._enabled:
            return
        self._record(record)

    def add_span(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        /,
        category: str = "repro",
        **args: Any,
    ) -> None:
        """Synthesize a span whose timing is known only after the fact.

        Used for segments that are not a ``with`` block in any single
        thread — e.g. a job's queue wait, measured between enqueue and
        dispatch.  ``start_ns`` is relative to this tracer's epoch.
        """
        if not self._enabled:
            return
        bound = getattr(self._local, "context", None)
        if bound:
            for key, value in bound.items():
                args.setdefault(key, value)
        self._record(
            SpanRecord(
                name=name,
                category=category,
                start_ns=start_ns,
                duration_ns=duration_ns,
                self_ns=duration_ns,
                thread_id=threading.get_ident(),
                depth=0,
                phase=PHASE_COMPLETE,
                args=args,
            )
        )

    def now_ns(self) -> int:
        """The current time, relative to this tracer's epoch."""
        return time.perf_counter_ns() - self.epoch_ns

    def records(self) -> List[SpanRecord]:
        """A snapshot copy of everything recorded so far."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
        # Listeners run outside the lock: a listener that itself records
        # (or takes its own lock) must not deadlock the tracer.
        for listener in list(self._listeners):
            try:
                listener(record)
            except Exception:
                pass


#: Sentinel distinguishing "key absent" from "key bound to None".
_MISSING = object()


class _BoundContext:
    """Scope guard for :meth:`Tracer.bound`; restores shadowed values."""

    __slots__ = ("_tracer", "_attrs", "_saved")

    def __init__(self, tracer: Tracer, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._attrs = attrs
        self._saved: Dict[str, Any] = {}

    def __enter__(self) -> "_BoundContext":
        context = getattr(self._tracer._local, "context", None)
        if context is None:
            context = self._tracer._local.context = {}
        self._saved = {key: context.get(key, _MISSING) for key in self._attrs}
        context.update(self._attrs)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        context = getattr(self._tracer._local, "context", None)
        if context is not None:
            for key, value in self._saved.items():
                if value is _MISSING:
                    context.pop(key, None)
                else:
                    context[key] = value
        return False
