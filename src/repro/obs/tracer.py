"""Nested span tracer with a strict no-op fast path when disabled.

A :class:`Tracer` records *spans* (timed, nested regions of execution)
and *events* (instants) into an in-memory buffer that the exporters in
:mod:`repro.obs.export` turn into Chrome trace-event / Perfetto JSON or
a JSONL event log.  Usage::

    from repro.obs import trace

    with trace.span("run_layer", layer=layer.name):
        ...
    trace.event("retry", attempt=2)

Design constraints, in priority order:

* **Disabled is free.**  The default-constructed tracer is disabled;
  ``span()`` then returns a shared singleton whose ``__enter__`` /
  ``__exit__`` do nothing, and ``event()`` returns immediately.  The
  only per-call cost on the hot path is one attribute check.
* **Nesting is exact.**  Spans form a stack per thread; each finished
  span knows its depth and its *self time* (duration minus the summed
  duration of its direct children), which is what ``repro stats`` ranks
  by.
* **Thread-tolerant.**  The robust executor runs points on worker
  threads when a timeout is set; span stacks are thread-local and the
  record buffer is guarded by a lock taken only at span exit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Phase tags, following the Chrome trace-event format.
PHASE_COMPLETE = "X"  # a span with a duration
PHASE_INSTANT = "i"   # a point-in-time event


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (or instant event) as recorded by the tracer.

    Timestamps are ``time.perf_counter_ns()`` values relative to the
    tracer's epoch, so they start near zero and are monotonic within a
    run.
    """

    name: str
    category: str
    start_ns: int
    duration_ns: int
    self_ns: int
    thread_id: int
    depth: int
    phase: str = PHASE_COMPLETE
    args: Dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: Singleton no-op span: the entire cost of a disabled ``with`` block.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records itself on the owning tracer at exit."""

    __slots__ = ("_tracer", "name", "category", "args", "start_ns",
                 "_child_ns", "_parent", "_depth")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.start_ns = 0
        self._child_ns = 0
        self._parent: Optional[_Span] = None
        self._depth = 0

    def set(self, **attrs: Any) -> "_Span":
        """Attach extra attributes to this span (chains)."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        duration = end_ns - self.start_ns
        if self._parent is not None:
            self._parent._child_ns += duration
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._record(
            SpanRecord(
                name=self.name,
                category=self.category,
                start_ns=self.start_ns - self._tracer.epoch_ns,
                duration_ns=duration,
                self_ns=duration - self._child_ns,
                thread_id=threading.get_ident(),
                depth=self._depth,
                phase=PHASE_COMPLETE,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Collects :class:`SpanRecord` objects for one process run."""

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self.epoch_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        """Drop all recorded spans and restart the epoch."""
        with self._lock:
            self._records = []
        self.epoch_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, /, category: str = "repro", **args: Any):
        """A context manager timing one nested region.

        Disabled tracers return the shared :data:`NULL_SPAN` singleton
        without allocating anything.
        """
        if not self._enabled:
            return NULL_SPAN
        return _Span(self, name, category, args)

    def event(self, name: str, /, category: str = "repro", **args: Any) -> None:
        """Record an instantaneous event at the current nesting depth."""
        if not self._enabled:
            return
        stack = self._stack()
        self._record(
            SpanRecord(
                name=name,
                category=category,
                start_ns=time.perf_counter_ns() - self.epoch_ns,
                duration_ns=0,
                self_ns=0,
                thread_id=threading.get_ident(),
                depth=len(stack),
                phase=PHASE_INSTANT,
                args=args,
            )
        )

    def records(self) -> List[SpanRecord]:
        """A snapshot copy of everything recorded so far."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
