"""``repro.obs`` — observability: span tracing, metrics, export, progress.

The subsystem is built around two process-wide singletons that every
instrumented module shares:

* :data:`trace` — a :class:`~repro.obs.tracer.Tracer`; instrumented
  code wraps regions in ``with trace.span("name", key=value):`` and
  marks instants with ``trace.event(...)``.
* :data:`metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`;
  instrumented code bumps ``metrics.counter("sim.cycles").add(n)`` and
  friends.

Both are **disabled by default** and then cost one attribute check per
call site — simulation results are identical either way; observability
only ever *reads* the execution.

Typical embedding (this is what the CLI's ``--trace``/``--metrics``
flags do)::

    from repro import obs

    obs.configure(trace_path="run.trace.json", metrics_path="run.metrics.json",
                  config_digest=obs.config_hash(argv))
    ...  # run simulations
    obs.flush()   # writes the configured files, headers included

Files are Chrome trace-event JSON (open in https://ui.perfetto.dev) and
a metrics snapshot; ``repro stats FILE`` summarizes either.  See
``docs/observability.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.export import (
    chrome_trace_events,
    config_hash,
    load_metrics,
    load_trace,
    run_metadata,
    write_chrome_trace,
    write_event_jsonl,
    write_metrics_json,
)
from repro.obs.logconf import configure_logging, get_logger, resolve_level
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import ProgressSnapshot, ProgressTracker
from repro.obs.stats import (
    SpanStat,
    render_metrics_summary,
    render_trace_summary,
    summarize_file,
    trace_span_stats,
)
from repro.obs.tracer import NULL_SPAN, SpanRecord, Tracer

#: Process-wide tracer every instrumented module shares.
trace = Tracer()

#: Process-wide metrics registry every instrumented module shares.
metrics = MetricsRegistry()

#: Export destinations registered by :func:`configure`.
_sinks: Dict[str, Optional[object]] = {
    "trace_path": None,
    "metrics_path": None,
    "events_path": None,
    "metadata": None,
}


def configure(
    trace_path: Optional[Union[str, Path]] = None,
    metrics_path: Optional[Union[str, Path]] = None,
    events_path: Optional[Union[str, Path]] = None,
    config_digest: Optional[str] = None,
    extra_metadata: Optional[Dict] = None,
) -> None:
    """Enable the singletons for the sinks requested and remember them.

    Each path argument independently enables the matching collector
    (``events_path`` records through the tracer too).  Call
    :func:`flush` to write the files.
    """
    metadata = run_metadata(config_digest=config_digest, extra=extra_metadata)
    _sinks["metadata"] = metadata
    if trace_path or events_path:
        _sinks["trace_path"] = Path(trace_path) if trace_path else None
        _sinks["events_path"] = Path(events_path) if events_path else None
        trace.enable()
    if metrics_path:
        _sinks["metrics_path"] = Path(metrics_path)
        metrics.enable()


def flush() -> List[Path]:
    """Write every configured sink; returns the paths written."""
    metadata = _sinks["metadata"] or run_metadata()
    written: List[Path] = []
    if _sinks["trace_path"]:
        written.append(write_chrome_trace(trace, _sinks["trace_path"], metadata=metadata))
    if _sinks["events_path"]:
        written.append(write_event_jsonl(trace, _sinks["events_path"], metadata=metadata))
    if _sinks["metrics_path"]:
        written.append(
            write_metrics_json(metrics, _sinks["metrics_path"], metadata=metadata)
        )
    return written


def reset() -> None:
    """Disable and clear both singletons and forget the sinks (tests)."""
    trace.disable()
    trace.clear()
    metrics.disable()
    metrics.clear()
    for key in _sinks:
        _sinks[key] = None


__all__ = [
    "trace",
    "metrics",
    "Tracer",
    "SpanRecord",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ProgressTracker",
    "ProgressSnapshot",
    "configure",
    "flush",
    "reset",
    "config_hash",
    "run_metadata",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_metrics_json",
    "write_event_jsonl",
    "load_trace",
    "load_metrics",
    "SpanStat",
    "trace_span_stats",
    "render_trace_summary",
    "render_metrics_summary",
    "summarize_file",
    "configure_logging",
    "resolve_level",
    "get_logger",
]
