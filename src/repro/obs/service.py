"""Service-grade observability: correlation IDs and Prometheus text.

Two concerns shared by the daemon, the client, and the supervised pool:

**Correlation IDs.**  One ``repro submit`` round-trip crosses four
process/thread boundaries (client → daemon accept thread → job thread →
store / worker process).  A correlation ID minted once — client-side in
:meth:`repro.serve.client.ServiceClient.submit`, or at daemon ingress
for clients that send none — is carried in the
:data:`CORRELATION_HEADER` HTTP header, bound into the tracer's
thread-local context on the serving thread (so every span and event
recorded while the job runs carries ``cid=...``), and exported to
worker processes via the :data:`CORRELATION_ENV` environment variable.
The result: one stitched trace per job whose queue-wait, execution and
store segments all share a single ID, greppable in daemon logs and
visible in the exported trace JSON.

**Prometheus text exposition.**  :func:`prometheus_text` renders a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot (plus optional
raw-name-keyed extras, e.g. the daemon's admission counters) in the
Prometheus text format, stdlib-only:

* counters become ``<family>_total`` with ``# TYPE ... counter``;
* gauges keep their name with ``# TYPE ... gauge``;
* histograms export summary-style: ``quantile`` labelled samples plus
  ``_sum`` / ``_count``.

Instrument names may embed labels with the ``name{key="value"}``
convention — ``serve.job_seconds{kind="gemm"}`` and
``serve.job_seconds{kind="run"}`` export as two samples of one
``repro_serve_job_seconds`` family.  Dots and other illegal characters
mangle to ``_``; if mangling (or the ``_total`` suffix) would merge two
families of *different* types, exposition fails loudly with
:class:`~repro.errors.InstrumentKindError` rather than emitting a
scrape the server would reject.

:func:`parse_prometheus_text` is the matching validator — a strict
parser used by tests and the smoke drill to prove ``GET /metrics``
output is well-formed.
"""

from __future__ import annotations

import os
import re
import uuid
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import InstrumentKindError
from repro.obs.metrics import MetricsRegistry, Number

#: HTTP header carrying the request correlation ID end to end.
CORRELATION_HEADER = "X-Repro-Correlation-Id"

#: Environment variable handing the ID to worker processes.
CORRELATION_ENV = "REPRO_CORRELATION_ID"

#: Span/event argument key under which the ID is recorded.
CORRELATION_KEY = "cid"

#: Default metric-name prefix (Prometheus namespace).
PROMETHEUS_PREFIX = "repro"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_MANGLE_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABELS_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_TYPE_RE = re.compile(
    r"^#\s+TYPE\s+(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)\s+(?P<type>\w+)\s*$"
)

#: Summary quantiles exported per histogram (percentile, label value).
_QUANTILES = ((50, "0.5"), (90, "0.9"), (99, "0.99"))


def new_correlation_id() -> str:
    """A fresh, log-friendly correlation ID (16 hex chars)."""
    return uuid.uuid4().hex[:16]


def correlation_id_from_env() -> Optional[str]:
    """The ID handed to this (worker) process, if any."""
    value = os.environ.get(CORRELATION_ENV, "").strip()
    return value or None


# ----------------------------------------------------------------------
# Name handling
# ----------------------------------------------------------------------
def split_labels(name: str) -> Tuple[str, str]:
    """Split ``'base{k="v"}'`` into ``('base', 'k="v"')``.

    Names without an embedded label set return ``(name, "")``.
    """
    brace = name.find("{")
    if brace < 0:
        return name, ""
    if not name.endswith("}"):
        raise ValueError(f"malformed labelled metric name {name!r}")
    return name[:brace], name[brace + 1 : -1]


def mangle(name: str, prefix: str = PROMETHEUS_PREFIX) -> str:
    """A legal Prometheus metric name for one raw instrument base name."""
    mangled = _MANGLE_RE.sub("_", name)
    if prefix:
        mangled = f"{prefix}_{mangled}"
    if not _NAME_RE.fullmatch(mangled):
        raise ValueError(f"cannot mangle {name!r} into a metric name")
    return mangled


def _format_value(value: Number) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _labelled(family: str, labels: str, extra: str = "") -> str:
    parts = [p for p in (labels, extra) if p]
    if not parts:
        return family
    return f"{family}{{{','.join(parts)}}}"


class _Exposition:
    """Accumulates families, guarding against cross-type name merges."""

    def __init__(self) -> None:
        self._types: Dict[str, str] = {}
        self._origins: Dict[str, str] = {}
        self._lines: Dict[str, List[str]] = {}
        self._order: List[str] = []

    def family(self, family: str, ptype: str, raw_name: str) -> List[str]:
        known = self._types.get(family)
        if known is None:
            self._types[family] = ptype
            self._origins[family] = raw_name
            self._order.append(family)
            self._lines[family] = [f"# TYPE {family} {ptype}"]
        elif known != ptype:
            raise InstrumentKindError(
                f"metric name collision after mangling: {raw_name!r} "
                f"({ptype}) and {self._origins[family]!r} "
                f"({known}) both expose as {family!r}"
            )
        return self._lines[family]

    def render(self) -> str:
        chunks: List[str] = []
        for family in self._order:
            chunks.extend(self._lines[family])
        return "\n".join(chunks) + "\n" if chunks else ""


def prometheus_text(
    registry: MetricsRegistry,
    extra_counters: Optional[Mapping[str, Number]] = None,
    extra_gauges: Optional[Mapping[str, Number]] = None,
    prefix: str = PROMETHEUS_PREFIX,
) -> str:
    """Render ``registry`` (+ extras) in the Prometheus text format.

    ``extra_counters`` / ``extra_gauges`` are raw-name-keyed values
    merged over the registry snapshot; an extra whose raw name matches
    a registry instrument *replaces* it (the daemon mirrors its
    admission counts into the registry under the same names, so the
    merge dedups rather than double-exports).
    """
    snap = registry.snapshot()
    counters: Dict[str, Number] = dict(snap["counters"])
    counters.update(extra_counters or {})
    gauges: Dict[str, Optional[Number]] = dict(snap["gauges"])
    gauges.update(extra_gauges or {})

    out = _Exposition()
    for raw, value in sorted(counters.items()):
        base, labels = split_labels(raw)
        family = mangle(base, prefix)
        if not family.endswith("_total"):
            family += "_total"
        out.family(family, "counter", raw).append(
            f"{_labelled(family, labels)} {_format_value(value)}"
        )
    for raw, value in sorted(gauges.items()):
        if value is None:
            continue
        base, labels = split_labels(raw)
        family = mangle(base, prefix)
        out.family(family, "gauge", raw).append(
            f"{_labelled(family, labels)} {_format_value(value)}"
        )
    for raw, hist in sorted(snap["histograms"].items()):
        base, labels = split_labels(raw)
        family = mangle(base, prefix)
        lines = out.family(family, "summary", raw)
        for percentile, quantile in _QUANTILES:
            value = hist.get(f"p{percentile}")
            if value is None:
                continue
            quantile_label = 'quantile="%s"' % quantile
            lines.append(
                f"{_labelled(family, labels, quantile_label)} {_format_value(value)}"
            )
        lines.append(
            f"{_labelled(family + '_sum', labels)} {_format_value(hist['sum'])}"
        )
        lines.append(
            f"{_labelled(family + '_count', labels)} {_format_value(hist['count'])}"
        )
    return out.render()


# ----------------------------------------------------------------------
# Validation (tests, smoke drills)
# ----------------------------------------------------------------------
def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    remaining = text.strip()
    if not remaining:
        return labels
    while remaining:
        match = _LABELS_RE.match(remaining)
        if not match:
            raise ValueError(f"malformed label set at {remaining!r}")
        labels[match.group("key")] = match.group("value")
        remaining = remaining[match.end():]
        if remaining.startswith(","):
            remaining = remaining[1:]
        elif remaining:
            raise ValueError(f"malformed label separator at {remaining!r}")
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Strictly parse Prometheus exposition text.

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``
    and raises ``ValueError`` on any malformed line, unknown-family
    sample, or duplicate ``# TYPE`` declaration — strict on purpose, so
    a test that parses ``GET /metrics`` output actually proves format
    validity.
    """
    families: Dict[str, Dict] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = _TYPE_RE.match(line)
            if match:
                name = match.group("name")
                if name in families:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
                ptype = match.group("type")
                if ptype not in ("counter", "gauge", "summary", "histogram", "untyped"):
                    raise ValueError(f"line {lineno}: unknown type {ptype!r}")
                families[name] = {"type": ptype, "samples": []}
            continue  # HELP and comments pass through
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            ) from None
        family = name
        for suffix in ("_sum", "_count", "_bucket"):
            if family not in families and name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        if family not in families:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE line")
        families[family]["samples"].append((name, labels, value))
    return families


def sample_value(
    families: Mapping[str, Dict], family: str, **labels: str
) -> Optional[float]:
    """The value of one sample in a parsed exposition, or None."""
    entry = families.get(family)
    if not entry:
        return None
    for name, sample_labels, value in entry["samples"]:
        if name == family and all(
            sample_labels.get(key) == wanted for key, wanted in labels.items()
        ):
            return value
    return None
